// sthsl_trace_check — standalone validator for the observability layer's
// JSON artifacts, used by CI after a traced training run:
//
//   sthsl_trace_check trace   trace.json        # chrome://tracing events
//   sthsl_trace_check metrics metrics.json      # metrics/op-profile dump
//   sthsl_trace_check run-log run.jsonl         # experiment run ledger
//   sthsl_trace_check access-log access.jsonl   # serving access log
//   sthsl_trace_check roofline BENCH_roofline.json  # roofline bench dump
//   sthsl_trace_check --selftest                # embedded good/bad samples
//
// Exits 0 when the file parses as JSON and has the expected structure,
// 1 otherwise. Deliberately dependency-free (no sthsl lib, no third-party
// JSON): the tiny recursive-descent parser in json_mini.h is enough to
// assert structure.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json_mini.h"

namespace {

using sthsl::json::JsonParser;
using sthsl::json::JsonValue;

constexpr JsonValue::Kind kNum = JsonValue::Kind::kNumber;
constexpr JsonValue::Kind kStr = JsonValue::Kind::kString;
constexpr JsonValue::Kind kObj = JsonValue::Kind::kObject;
constexpr JsonValue::Kind kArr = JsonValue::Kind::kArray;

// -- Structure validators -----------------------------------------------------

bool Complain(const std::string& what) {
  std::fprintf(stderr, "sthsl_trace_check: %s\n", what.c_str());
  return false;
}

/// Chrome trace-event format: root object with a "traceEvents" array; every
/// event is an object carrying name/ph (strings), ts/pid/tid (numbers), and
/// a numeric dur for "X" complete events.
bool ValidateTrace(const JsonValue& root) {
  if (!root.Is(kObj)) {
    return Complain("trace root is not an object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->Is(kArr)) {
    return Complain("missing \"traceEvents\" array");
  }
  size_t index = 0;
  for (const JsonValue& event : events->items) {
    ++index;
    if (!event.Is(kObj)) {
      return Complain("traceEvents[" + std::to_string(index - 1) +
                      "] is not an object");
    }
    const JsonValue* name = event.FindOfKind("name", kStr);
    const JsonValue* ph = event.FindOfKind("ph", kStr);
    if (name == nullptr || ph == nullptr ||
        event.FindOfKind("ts", kNum) == nullptr ||
        event.FindOfKind("pid", kNum) == nullptr ||
        event.FindOfKind("tid", kNum) == nullptr) {
      return Complain("event " + std::to_string(index - 1) +
                      " lacks name/ph strings or ts/pid/tid numbers");
    }
    if (ph->text == "X") {
      const JsonValue* dur = event.FindOfKind("dur", kNum);
      if (dur == nullptr || dur->number < 0.0) {
        return Complain("complete event " + std::to_string(index - 1) +
                        " ('" + name->text + "') lacks a non-negative dur");
      }
    }
  }
  std::printf("trace OK: %zu events\n", events->items.size());
  return true;
}

/// Metrics dump: root object with counters/gauges/histograms objects plus an
/// ops array of per-op profiles. Histogram snapshots must carry the full
/// count/min/max/mean/p50/p95/p99 summary (all numeric).
bool ValidateMetrics(const JsonValue& root) {
  if (!root.Is(kObj)) {
    return Complain("metrics root is not an object");
  }
  for (const char* key : {"counters", "gauges", "histograms"}) {
    const JsonValue* section = root.Find(key);
    if (section == nullptr || !section->Is(kObj)) {
      return Complain(std::string("missing \"") + key + "\" object");
    }
  }
  for (const auto& [name, snapshot] : root.Find("histograms")->members) {
    if (!snapshot.Is(kObj)) {
      return Complain("histogram '" + name + "' is not an object");
    }
    for (const char* field :
         {"count", "min", "max", "mean", "p50", "p95", "p99"}) {
      if (snapshot.FindOfKind(field, kNum) == nullptr) {
        return Complain("histogram '" + name + "' lacks numeric \"" + field +
                        "\"");
      }
    }
  }
  // "ops" is optional: the training exporter always writes it, but the
  // serving tier's /metrics JSON has no autograd profile to report. When
  // present it must still be well-formed.
  const JsonValue* ops = root.Find("ops");
  if (ops != nullptr) {
    if (!ops->Is(kArr)) {
      return Complain("\"ops\" is not an array");
    }
    for (const JsonValue& op : ops->items) {
      if (!op.Is(kObj) || op.Find("name") == nullptr ||
          op.Find("forward_calls") == nullptr) {
        return Complain("ops entry lacks name/forward_calls");
      }
    }
  }
  std::printf("metrics OK: %zu ops, %zu counters, %zu histograms\n",
              ops == nullptr ? 0 : ops->items.size(),
              root.Find("counters")->members.size(),
              root.Find("histograms")->members.size());
  return true;
}

// -- Roofline bench validation ------------------------------------------------

bool NonNegativeNumber(const JsonValue& record, const char* field) {
  const JsonValue* value = record.FindOfKind(field, kNum);
  return value != nullptr && value->number >= 0.0;
}

/// BENCH_roofline.json (src/util/obs/roofline.h writer): a "peaks" object
/// with positive roofs, and a non-empty "ops" array whose entries carry
/// consistent coordinates — intensity must equal flops/bytes (1% relative
/// tolerance), pct_of_roof must land in [0, 120] (a small overshoot absorbs
/// peaks-calibration noise), "bound" must be compute or memory, and counters
/// must be null or an object of non-negative numbers.
bool ValidateRoofline(const JsonValue& root) {
  if (!root.Is(kObj)) {
    return Complain("roofline root is not an object");
  }
  const JsonValue* bench = root.FindOfKind("bench", kStr);
  if (bench == nullptr || bench->text != "roofline") {
    return Complain("missing \"bench\":\"roofline\" marker");
  }
  const JsonValue* peaks = root.FindOfKind("peaks", kObj);
  if (peaks == nullptr) {
    return Complain("missing \"peaks\" object");
  }
  for (const char* field :
       {"gflops_1t", "gbps_1t", "threads", "compute_roof_gflops",
        "memory_roof_gbps"}) {
    const JsonValue* value = peaks->FindOfKind(field, kNum);
    if (value == nullptr || value->number <= 0.0) {
      return Complain("peaks lacks positive numeric \"" + std::string(field) +
                      "\"");
    }
  }
  if (peaks->FindOfKind("cpu_model", kStr) == nullptr) {
    return Complain("peaks lacks string \"cpu_model\"");
  }
  const JsonValue* ops = root.FindOfKind("ops", kArr);
  if (ops == nullptr || ops->items.empty()) {
    return Complain("missing or empty \"ops\" array");
  }
  size_t index = 0;
  for (const JsonValue& op : ops->items) {
    const std::string where = "ops[" + std::to_string(index++) + "]";
    if (!op.Is(kObj)) return Complain(where + " is not an object");
    if (op.FindOfKind("name", kStr) == nullptr) {
      return Complain(where + " lacks string \"name\"");
    }
    for (const char* field :
         {"calls", "flops", "bytes", "us", "intensity", "achieved_gflops",
          "achieved_gbps", "roof_gflops", "pct_of_roof"}) {
      if (!NonNegativeNumber(op, field)) {
        return Complain(where + " lacks non-negative numeric \"" +
                        std::string(field) + "\"");
      }
    }
    const double flops = op.Find("flops")->number;
    const double bytes = op.Find("bytes")->number;
    const double intensity = op.Find("intensity")->number;
    if (flops > 0.0 && bytes > 0.0) {
      const double expected = flops / bytes;
      if (std::fabs(intensity - expected) > 0.01 * expected) {
        return Complain(where + ": intensity " + std::to_string(intensity) +
                        " != flops/bytes " + std::to_string(expected));
      }
    }
    const double pct = op.Find("pct_of_roof")->number;
    if (pct > 120.0) {
      return Complain(where + ": pct_of_roof " + std::to_string(pct) +
                      " exceeds 120 — peaks calibration is inconsistent "
                      "with the cost model");
    }
    const JsonValue* bound = op.FindOfKind("bound", kStr);
    if (bound == nullptr ||
        (bound->text != "compute" && bound->text != "memory")) {
      return Complain(where + ": \"bound\" is not compute|memory");
    }
    const JsonValue* counters = op.Find("counters");
    if (counters == nullptr) {
      return Complain(where + " lacks \"counters\" (object or null)");
    }
    if (counters->Is(kObj)) {
      for (const auto& [counter, value] : counters->members) {
        // Individually-failed events read as -1 while the group stays valid.
        if (!value.Is(kNum) || value.number < -1.0) {
          return Complain(where + ": counter '" + counter +
                          "' is not a number >= -1");
        }
      }
    } else if (!counters->Is(JsonValue::Kind::kNull)) {
      return Complain(where + ": \"counters\" is neither object nor null");
    }
  }
  std::printf("roofline OK: %zu op(s)\n", ops->items.size());
  return true;
}

// -- Run-ledger (JSONL) validation --------------------------------------------

/// A numeric field may legitimately be null (non-finite values are rendered
/// as null by the ledger); everything else must be a number.
bool NumberOrNull(const JsonValue& record, const char* field) {
  const JsonValue* value = record.Find(field);
  return value != nullptr &&
         (value->Is(kNum) || value->Is(JsonValue::Kind::kNull));
}

bool ValidateLedgerHeader(const JsonValue& record, const std::string& where) {
  if (record.FindOfKind("schema", kNum) == nullptr ||
      record.FindOfKind("run", kNum) == nullptr ||
      record.FindOfKind("model", kStr) == nullptr ||
      record.FindOfKind("train_seed", kNum) == nullptr ||
      record.FindOfKind("config", kObj) == nullptr) {
    return Complain(where + ": header lacks schema/run/model/train_seed/"
                    "config");
  }
  const JsonValue* dataset = record.FindOfKind("dataset", kObj);
  if (dataset == nullptr) {
    return Complain(where + ": header lacks \"dataset\" object");
  }
  for (const char* field : {"rows", "cols", "days", "categories"}) {
    if (dataset->FindOfKind(field, kNum) == nullptr) {
      return Complain(where + ": header dataset lacks numeric \"" +
                      std::string(field) + "\"");
    }
  }
  return true;
}

bool ValidateLedgerEpoch(const JsonValue& record, const std::string& where) {
  for (const char* field : {"run", "epoch", "epoch_seconds", "windows"}) {
    if (record.FindOfKind(field, kNum) == nullptr) {
      return Complain(where + ": epoch record lacks numeric \"" +
                      std::string(field) + "\"");
    }
  }
  for (const char* field : {"loss", "lr", "grad_norm"}) {
    if (!NumberOrNull(record, field)) {
      return Complain(where + ": epoch record lacks \"" + std::string(field) +
                      "\"");
    }
  }
  const JsonValue* params = record.FindOfKind("params", kArr);
  if (params == nullptr) {
    return Complain(where + ": epoch record lacks \"params\" array");
  }
  size_t index = 0;
  for (const JsonValue& param : params->items) {
    ++index;
    if (!param.Is(kObj) || param.FindOfKind("name", kStr) == nullptr) {
      return Complain(where + ": params[" + std::to_string(index - 1) +
                      "] lacks a string \"name\"");
    }
    for (const char* field :
         {"grad_norm", "update_ratio", "nan_grad_frac", "zero_grad_frac"}) {
      if (!NumberOrNull(param, field)) {
        return Complain(where + ": params[" + std::to_string(index - 1) +
                        "] lacks \"" + std::string(field) + "\"");
      }
    }
  }
  return true;
}

bool ValidateLedgerFinal(const JsonValue& record, const std::string& where) {
  if (record.FindOfKind("model", kStr) == nullptr) {
    return Complain(where + ": final record lacks string \"model\"");
  }
  const JsonValue* overall = record.FindOfKind("overall", kObj);
  if (overall == nullptr) {
    return Complain(where + ": final record lacks \"overall\" object");
  }
  for (const char* field : {"mae", "mape"}) {
    if (!NumberOrNull(*overall, field)) {
      return Complain(where + ": final overall lacks \"" + std::string(field) +
                      "\"");
    }
  }
  return true;
}

/// Run ledger: one JSON object per line; records are typed by "record"
/// (header / epoch / event / final). Epoch, event, and final records must
/// follow a header for the same file, and at least one header is required.
bool ValidateRunLog(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  size_t headers = 0;
  size_t epochs = 0;
  size_t finals = 0;
  bool in_run = false;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string where = "line " + std::to_string(line_no);
    JsonValue record;
    std::string error;
    if (!JsonParser(line).Parse(&record, &error)) {
      return Complain(where + ": " + error);
    }
    if (!record.Is(kObj)) {
      return Complain(where + ": record is not an object");
    }
    const JsonValue* kind = record.FindOfKind("record", kStr);
    if (kind == nullptr) {
      return Complain(where + ": record lacks a string \"record\" field");
    }
    if (kind->text == "header") {
      if (!ValidateLedgerHeader(record, where)) return false;
      ++headers;
      in_run = true;
    } else if (kind->text == "epoch") {
      if (!in_run) return Complain(where + ": epoch record before any header");
      if (!ValidateLedgerEpoch(record, where)) return false;
      ++epochs;
    } else if (kind->text == "event") {
      if (!in_run) return Complain(where + ": event record before any header");
      if (record.FindOfKind("kind", kStr) == nullptr) {
        return Complain(where + ": event record lacks string \"kind\"");
      }
    } else if (kind->text == "final") {
      if (!in_run) return Complain(where + ": final record before any header");
      if (!ValidateLedgerFinal(record, where)) return false;
      ++finals;
    } else {
      return Complain(where + ": unknown record type '" + kind->text + "'");
    }
  }
  if (headers == 0) {
    return Complain("run log contains no header record");
  }
  std::printf("run-log OK: %zu run(s), %zu epoch record(s), %zu final(s)\n",
              headers, epochs, finals);
  return true;
}

// -- Access-log (JSONL) validation --------------------------------------------

bool IsLowerHexId(const std::string& text, size_t length) {
  if (text.size() != length) return false;
  bool nonzero = false;
  for (char c : text) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
    if (c != '0') nonzero = true;
  }
  return nonzero;
}

/// Serving access log: one JSON object per line with ts/method/path strings,
/// valid non-zero trace_id (32 hex) and span_id (16 hex), numeric
/// status/bytes/total_us, and a stages object of non-negative stage
/// durations whose sum does not exceed total_us. cache_hit/batch_size are
/// optional (predict requests only) but type-checked when present.
bool ValidateAccessLog(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  size_t records = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string where = "line " + std::to_string(line_no);
    JsonValue record;
    std::string error;
    if (!JsonParser(line).Parse(&record, &error)) {
      return Complain(where + ": " + error);
    }
    if (!record.Is(kObj)) {
      return Complain(where + ": record is not an object");
    }
    for (const char* field : {"ts", "trace_id", "span_id", "method", "path"}) {
      if (record.FindOfKind(field, kStr) == nullptr) {
        return Complain(where + ": record lacks string \"" +
                        std::string(field) + "\"");
      }
    }
    if (!IsLowerHexId(record.Find("trace_id")->text, 32)) {
      return Complain(where + ": trace_id is not 32 lowercase hex chars "
                      "(non-zero)");
    }
    if (!IsLowerHexId(record.Find("span_id")->text, 16)) {
      return Complain(where + ": span_id is not 16 lowercase hex chars "
                      "(non-zero)");
    }
    for (const char* field : {"status", "bytes", "total_us"}) {
      if (record.FindOfKind(field, kNum) == nullptr) {
        return Complain(where + ": record lacks numeric \"" +
                        std::string(field) + "\"");
      }
    }
    const double total_us = record.Find("total_us")->number;
    if (total_us < 0.0) {
      return Complain(where + ": negative total_us");
    }
    const JsonValue* stages = record.FindOfKind("stages", kObj);
    if (stages == nullptr) {
      return Complain(where + ": record lacks \"stages\" object");
    }
    double stage_sum = 0.0;
    for (const auto& [stage, value] : stages->members) {
      if (!value.Is(kNum) || value.number < 0.0) {
        return Complain(where + ": stage '" + stage +
                        "' is not a non-negative number");
      }
      stage_sum += value.number;
    }
    // Stage durations are disjoint sub-intervals of the request, so their
    // sum is bounded by the total (0.05us slack absorbs %.3f rounding).
    if (stage_sum > total_us + 0.05) {
      return Complain(where + ": stage sum " + std::to_string(stage_sum) +
                      "us exceeds total_us " + std::to_string(total_us));
    }
    const JsonValue* cache_hit = record.Find("cache_hit");
    if (cache_hit != nullptr && !cache_hit->Is(JsonValue::Kind::kBool)) {
      return Complain(where + ": cache_hit is not a boolean");
    }
    const JsonValue* batch_size = record.Find("batch_size");
    if (batch_size != nullptr &&
        (!batch_size->Is(kNum) || batch_size->number < 0.0)) {
      return Complain(where + ": batch_size is not a non-negative number");
    }
    ++records;
  }
  if (records == 0) {
    return Complain("access log contains no records");
  }
  std::printf("access-log OK: %zu record(s)\n", records);
  return true;
}

int CheckFile(const std::string& mode, const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    Complain("cannot open " + path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  if (mode == "run-log") return ValidateRunLog(text) ? 0 : 1;
  if (mode == "access-log") return ValidateAccessLog(text) ? 0 : 1;

  JsonValue root;
  std::string error;
  if (!JsonParser(text).Parse(&root, &error)) {
    Complain(path + ": " + error);
    return 1;
  }
  if (mode == "trace") return ValidateTrace(root) ? 0 : 1;
  if (mode == "metrics") return ValidateMetrics(root) ? 0 : 1;
  if (mode == "roofline") return ValidateRoofline(root) ? 0 : 1;
  Complain("unknown mode '" + mode + "'");
  return 1;
}

// -- Self-test ----------------------------------------------------------------

// Ledger sample fragments (kept out of the table for readability).
constexpr const char kGoodLedgerHeader[] =
    "{\"record\":\"header\",\"schema\":1,\"run\":1,\"model\":\"STHSL\","
    "\"dataset\":{\"city\":\"NYC\",\"rows\":3,\"cols\":3,\"days\":120,"
    "\"categories\":4,\"generator_seed\":11},\"train_end\":90,"
    "\"train_seed\":7,\"build\":{\"compiler\":\"test\",\"flags\":\"NDEBUG\"},"
    "\"config\":{\"window\":14,\"lr\":0.005}}";
constexpr const char kGoodLedgerEpoch[] =
    "{\"record\":\"epoch\",\"run\":1,\"epoch\":1,\"loss\":1.25,\"lr\":0.005,"
    "\"epoch_seconds\":0.07,\"windows\":32,\"grad_norm\":3.5,"
    "\"peak_tensor_bytes\":0,\"validation_mae\":0.9,\"best_snapshot\":true,"
    "\"params\":[{\"name\":\"head.weight\",\"numel\":36,\"grad_norm\":1.5,"
    "\"weight_norm\":2.0,\"update_ratio\":0.01,\"nan_grad_frac\":0,"
    "\"zero_grad_frac\":0.25}]}";
constexpr const char kGoodAccessRecord[] =
    "{\"ts\":\"2026-08-08T12:00:00.123Z\","
    "\"trace_id\":\"0af7651916cd43dd8448eb211c80319c\","
    "\"span_id\":\"b7ad6b7169203331\",\"method\":\"POST\","
    "\"path\":\"/v1/predict\",\"status\":200,\"bytes\":412,"
    "\"total_us\":184.250,\"stages\":{\"header_parse\":3.100,"
    "\"body_parse\":21.000,\"cache_lookup\":1.500,\"queue_wait\":50.000,"
    "\"batch_assembly\":2.000,\"inference\":90.000,\"serialize\":10.000},"
    "\"cache_hit\":false,\"batch_size\":4}";
constexpr const char kGoodLedgerFinal[] =
    "{\"record\":\"final\",\"run\":1,\"model\":\"STHSL\",\"city\":\"NYC\","
    "\"overall\":{\"name\":\"overall\",\"mae\":0.43,\"mape\":0.3,"
    "\"rmse\":0.9,\"entries\":360},\"categories\":[]}";

int SelfTest() {
  struct Sample {
    const char* label;
    const char* mode;  // "trace", "metrics", "run-log", "roofline" or "parse"
    std::string json;
    bool expect_ok;
  };
  const Sample kSamples[] = {
      {"good trace", "trace",
       "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
       "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"sthsl\"}},"
       "{\"name\":\"matmul\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":1.5,"
       "\"dur\":2.25,\"pid\":1,\"tid\":1}]}",
       true},
      {"empty trace", "trace", "{\"traceEvents\":[]}", true},
      {"trace missing events key", "trace", "{\"events\":[]}", false},
      {"X event without dur", "trace",
       "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"pid\":1,"
       "\"tid\":1}]}",
       false},
      {"event with non-string name", "trace",
       "{\"traceEvents\":[{\"name\":3,\"ph\":\"X\",\"ts\":0,\"dur\":1,"
       "\"pid\":1,\"tid\":1}]}",
       false},
      {"good metrics", "metrics",
       "{\"counters\":{\"train/epochs\":3},\"gauges\":{},"
       "\"histograms\":{\"loss\":{\"count\":2,\"min\":0.1,\"max\":0.4,"
       "\"mean\":0.25,\"p50\":0.1,\"p95\":0.4,\"p99\":0.4}},"
       "\"ops\":[{\"name\":\"matmul\",\"forward_calls\":10,"
       "\"forward_us\":12.5,\"backward_calls\":10,\"backward_us\":20.0,"
       "\"bytes_touched\":4096}],"
       "\"scopes\":[],\"tensor_memory\":{\"live_bytes\":0,\"peak_bytes\":9}}",
       true},
      {"metrics missing histograms", "metrics",
       "{\"counters\":{},\"gauges\":{},\"ops\":[]}", false},
      {"histogram without min/max", "metrics",
       "{\"counters\":{},\"gauges\":{},"
       "\"histograms\":{\"loss\":{\"count\":2,\"mean\":0.25,\"p50\":0.1,"
       "\"p95\":0.4,\"p99\":0.4}},\"ops\":[]}",
       false},
      {"histogram without p99", "metrics",
       "{\"counters\":{},\"gauges\":{},"
       "\"histograms\":{\"loss\":{\"count\":2,\"min\":0.1,\"max\":0.4,"
       "\"mean\":0.25,\"p50\":0.1,\"p95\":0.4}},\"ops\":[]}",
       false},
      {"serve metrics without ops", "metrics",
       "{\"counters\":{\"serve/requests\":9},\"gauges\":{},"
       "\"histograms\":{\"serve/latency_us\":{\"count\":9,\"min\":10,"
       "\"max\":900,\"mean\":120,\"p50\":80,\"p95\":500,\"p99\":880}},"
       "\"cache\":{\"hits\":5}}",
       true},
      {"malformed ops entry", "metrics",
       "{\"counters\":{},\"gauges\":{},\"histograms\":{},"
       "\"ops\":[{\"forward_us\":1.0}]}",
       false},
      {"good run log", "run-log",
       std::string(kGoodLedgerHeader) + "\n" + kGoodLedgerEpoch + "\n" +
           "{\"record\":\"event\",\"run\":1,\"kind\":\"early_stop\","
           "\"epoch\":2,\"value\":0.9}\n" +
           kGoodLedgerFinal + "\n",
       true},
      {"run log with null loss (non-finite)", "run-log",
       std::string(kGoodLedgerHeader) +
           "\n{\"record\":\"epoch\",\"run\":1,\"epoch\":1,\"loss\":null,"
           "\"lr\":0.005,\"epoch_seconds\":0.07,\"windows\":32,"
           "\"grad_norm\":null,\"peak_tensor_bytes\":0,\"params\":[]}\n",
       true},
      {"empty run log", "run-log", "", false},
      {"run log epoch before header", "run-log",
       std::string(kGoodLedgerEpoch) + "\n", false},
      {"run log header missing dataset", "run-log",
       "{\"record\":\"header\",\"schema\":1,\"run\":1,\"model\":\"m\","
       "\"train_seed\":7,\"config\":{}}\n",
       false},
      {"run log param missing update_ratio", "run-log",
       std::string(kGoodLedgerHeader) +
           "\n{\"record\":\"epoch\",\"run\":1,\"epoch\":1,\"loss\":1,"
           "\"lr\":0.005,\"epoch_seconds\":0.07,\"windows\":32,"
           "\"grad_norm\":1,\"params\":[{\"name\":\"w\",\"grad_norm\":1,"
           "\"nan_grad_frac\":0,\"zero_grad_frac\":0}]}\n",
       false},
      {"run log final missing overall", "run-log",
       std::string(kGoodLedgerHeader) +
           "\n{\"record\":\"final\",\"run\":1,\"model\":\"m\"}\n",
       false},
      {"run log unknown record type", "run-log",
       std::string(kGoodLedgerHeader) + "\n{\"record\":\"bogus\"}\n", false},
      {"run log broken json line", "run-log",
       std::string(kGoodLedgerHeader) + "\n{\"record\":\"epoch\",\n", false},
      {"good access log", "access-log",
       std::string(kGoodAccessRecord) + "\n" +
           "{\"ts\":\"2026-08-08T12:00:01.000Z\","
           "\"trace_id\":\"00000000000000000000000000000001\","
           "\"span_id\":\"000000000000000a\",\"method\":\"GET\","
           "\"path\":\"/healthz\",\"status\":200,\"bytes\":64,"
           "\"total_us\":20.5,\"stages\":{\"header_parse\":2.0}}\n",
       true},
      {"empty access log", "access-log", "", false},
      {"access log bad trace id", "access-log",
       "{\"ts\":\"t\",\"trace_id\":\"XYZ\",\"span_id\":\"b7ad6b7169203331\","
       "\"method\":\"GET\",\"path\":\"/\",\"status\":200,\"bytes\":1,"
       "\"total_us\":1.0,\"stages\":{}}\n",
       false},
      {"access log all-zero span id", "access-log",
       "{\"ts\":\"t\",\"trace_id\":\"0af7651916cd43dd8448eb211c80319c\","
       "\"span_id\":\"0000000000000000\",\"method\":\"GET\",\"path\":\"/\","
       "\"status\":200,\"bytes\":1,\"total_us\":1.0,\"stages\":{}}\n",
       false},
      {"access log missing stages", "access-log",
       "{\"ts\":\"t\",\"trace_id\":\"0af7651916cd43dd8448eb211c80319c\","
       "\"span_id\":\"b7ad6b7169203331\",\"method\":\"GET\",\"path\":\"/\","
       "\"status\":200,\"bytes\":1,\"total_us\":1.0}\n",
       false},
      {"access log stage sum exceeds total", "access-log",
       "{\"ts\":\"t\",\"trace_id\":\"0af7651916cd43dd8448eb211c80319c\","
       "\"span_id\":\"b7ad6b7169203331\",\"method\":\"POST\","
       "\"path\":\"/v1/predict\",\"status\":200,\"bytes\":1,"
       "\"total_us\":10.0,\"stages\":{\"inference\":8.0,\"queue_wait\":7.0}}"
       "\n",
       false},
      {"access log negative stage", "access-log",
       "{\"ts\":\"t\",\"trace_id\":\"0af7651916cd43dd8448eb211c80319c\","
       "\"span_id\":\"b7ad6b7169203331\",\"method\":\"POST\","
       "\"path\":\"/v1/predict\",\"status\":200,\"bytes\":1,"
       "\"total_us\":10.0,\"stages\":{\"inference\":-1.0}}\n",
       false},
      {"access log non-boolean cache_hit", "access-log",
       std::string("{\"ts\":\"t\","
                   "\"trace_id\":\"0af7651916cd43dd8448eb211c80319c\","
                   "\"span_id\":\"b7ad6b7169203331\",\"method\":\"POST\","
                   "\"path\":\"/v1/predict\",\"status\":200,\"bytes\":1,"
                   "\"total_us\":10.0,\"stages\":{},\"cache_hit\":1}\n"),
       false},
      {"good roofline", "roofline",
       "{\"bench\":\"roofline\",\"peaks\":{\"cpu_model\":\"TestCPU\","
       "\"gflops_1t\":10,\"gbps_1t\":5,\"threads\":4,"
       "\"compute_roof_gflops\":40,\"memory_roof_gbps\":5,"
       "\"calibrated_utc\":\"2026-01-01T00:00:00Z\",\"from_cache\":true},"
       "\"ops\":[{\"name\":\"matmul\",\"calls\":3,\"flops\":200000000,"
       "\"bytes\":4000000,\"us\":50000,\"intensity\":50,"
       "\"achieved_gflops\":4,\"achieved_gbps\":0.08,\"roof_gflops\":40,"
       "\"pct_of_roof\":10,\"bound\":\"compute\",\"counters\":{\"cycles\":"
       "100,\"instructions\":200,\"l1d_misses\":-1,\"llc_misses\":5,"
       "\"branch_misses\":1}},{\"name\":\"softmax\",\"calls\":3,"
       "\"flops\":327680,\"bytes\":524288,\"us\":100,\"intensity\":0.625,"
       "\"achieved_gflops\":3.2768,\"achieved_gbps\":5.24288,"
       "\"roof_gflops\":3.125,\"pct_of_roof\":104.9,\"bound\":\"memory\","
       "\"counters\":null},{\"name\":\"spmm\",\"calls\":3,"
       "\"flops\":1000000,\"bytes\":2000000,\"us\":1000,\"intensity\":0.5,"
       "\"achieved_gflops\":1,\"achieved_gbps\":2,\"roof_gflops\":2.5,"
       "\"pct_of_roof\":40,\"bound\":\"memory\",\"counters\":null},"
       "{\"name\":\"gather.bwd\",\"calls\":3,\"flops\":131072,"
       "\"bytes\":1048576,\"us\":500,\"intensity\":0.125,"
       "\"achieved_gflops\":0.262144,\"achieved_gbps\":2.097152,"
       "\"roof_gflops\":0.625,\"pct_of_roof\":41.9,\"bound\":\"memory\","
       "\"counters\":null}]}",
       true},
      {"roofline with empty ops", "roofline",
       "{\"bench\":\"roofline\",\"peaks\":{\"cpu_model\":\"c\","
       "\"gflops_1t\":10,\"gbps_1t\":5,\"threads\":4,"
       "\"compute_roof_gflops\":40,\"memory_roof_gbps\":5},\"ops\":[]}",
       false},
      {"roofline missing peaks", "roofline",
       "{\"bench\":\"roofline\",\"ops\":[{\"name\":\"x\"}]}", false},
      {"roofline zero memory roof", "roofline",
       "{\"bench\":\"roofline\",\"peaks\":{\"cpu_model\":\"c\","
       "\"gflops_1t\":10,\"gbps_1t\":0,\"threads\":4,"
       "\"compute_roof_gflops\":40,\"memory_roof_gbps\":0},"
       "\"ops\":[{\"name\":\"x\"}]}",
       false},
      {"roofline inconsistent intensity", "roofline",
       "{\"bench\":\"roofline\",\"peaks\":{\"cpu_model\":\"c\","
       "\"gflops_1t\":10,\"gbps_1t\":5,\"threads\":4,"
       "\"compute_roof_gflops\":40,\"memory_roof_gbps\":5},"
       "\"ops\":[{\"name\":\"x\",\"calls\":1,\"flops\":100,\"bytes\":100,"
       "\"us\":1,\"intensity\":7,\"achieved_gflops\":0.1,"
       "\"achieved_gbps\":0.1,\"roof_gflops\":5,\"pct_of_roof\":2,"
       "\"bound\":\"memory\",\"counters\":null}]}",
       false},
      {"roofline pct over 120", "roofline",
       "{\"bench\":\"roofline\",\"peaks\":{\"cpu_model\":\"c\","
       "\"gflops_1t\":10,\"gbps_1t\":5,\"threads\":4,"
       "\"compute_roof_gflops\":40,\"memory_roof_gbps\":5},"
       "\"ops\":[{\"name\":\"x\",\"calls\":1,\"flops\":100,\"bytes\":100,"
       "\"us\":1,\"intensity\":1,\"achieved_gflops\":0.1,"
       "\"achieved_gbps\":0.1,\"roof_gflops\":5,\"pct_of_roof\":150,"
       "\"bound\":\"memory\",\"counters\":null}]}",
       false},
      {"roofline bad bound verdict", "roofline",
       "{\"bench\":\"roofline\",\"peaks\":{\"cpu_model\":\"c\","
       "\"gflops_1t\":10,\"gbps_1t\":5,\"threads\":4,"
       "\"compute_roof_gflops\":40,\"memory_roof_gbps\":5},"
       "\"ops\":[{\"name\":\"x\",\"calls\":1,\"flops\":100,\"bytes\":100,"
       "\"us\":1,\"intensity\":1,\"achieved_gflops\":0.1,"
       "\"achieved_gbps\":0.1,\"roof_gflops\":5,\"pct_of_roof\":2,"
       "\"bound\":\"latency\",\"counters\":null}]}",
       false},
      {"roofline counters wrong type", "roofline",
       "{\"bench\":\"roofline\",\"peaks\":{\"cpu_model\":\"c\","
       "\"gflops_1t\":10,\"gbps_1t\":5,\"threads\":4,"
       "\"compute_roof_gflops\":40,\"memory_roof_gbps\":5},"
       "\"ops\":[{\"name\":\"x\",\"calls\":1,\"flops\":100,\"bytes\":100,"
       "\"us\":1,\"intensity\":1,\"achieved_gflops\":0.1,"
       "\"achieved_gbps\":0.1,\"roof_gflops\":5,\"pct_of_roof\":2,"
       "\"bound\":\"memory\",\"counters\":7}]}",
       false},
      {"unbalanced braces", "parse", "{\"a\":[1,2}", false},
      {"trailing garbage", "parse", "{} {}", false},
      {"escapes and nesting", "parse",
       "{\"s\":\"line\\nbreak \\u0041 \\\"q\\\"\",\"deep\":[[[{\"x\":null},"
       "true,false,-1.5e-3]]]}",
       true},
  };

  int failures = 0;
  for (const Sample& sample : kSamples) {
    bool ok = false;
    std::string error;
    if (std::strcmp(sample.mode, "run-log") == 0) {
      ok = ValidateRunLog(sample.json);
    } else if (std::strcmp(sample.mode, "access-log") == 0) {
      ok = ValidateAccessLog(sample.json);
    } else {
      JsonValue root;
      ok = JsonParser(sample.json).Parse(&root, &error);
      if (ok && std::strcmp(sample.mode, "trace") == 0) {
        ok = ValidateTrace(root);
      } else if (ok && std::strcmp(sample.mode, "metrics") == 0) {
        ok = ValidateMetrics(root);
      } else if (ok && std::strcmp(sample.mode, "roofline") == 0) {
        ok = ValidateRoofline(root);
      }
    }
    if (ok != sample.expect_ok) {
      std::fprintf(stderr, "SELFTEST FAIL: %s (expected %s, got %s%s%s)\n",
                   sample.label, sample.expect_ok ? "ok" : "reject",
                   ok ? "ok" : "reject", error.empty() ? "" : ": ",
                   error.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("selftest OK: %zu samples\n",
                sizeof(kSamples) / sizeof(kSamples[0]));
    return 0;
  }
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sthsl_trace_check trace <file>\n"
               "       sthsl_trace_check metrics <file>\n"
               "       sthsl_trace_check run-log <file>\n"
               "       sthsl_trace_check access-log <file>\n"
               "       sthsl_trace_check roofline <file>\n"
               "       sthsl_trace_check --selftest\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--selftest") == 0) return SelfTest();
  if (argc != 3) return Usage();
  std::string mode = argv[1];
  // Accept the flag spelling too (`--run-log FILE` etc.).
  if (mode.rfind("--", 0) == 0) mode = mode.substr(2);
  return CheckFile(mode, argv[2]);
}
