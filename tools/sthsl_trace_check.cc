// sthsl_trace_check — standalone validator for the observability layer's
// JSON artifacts, used by CI after a traced training run:
//
//   sthsl_trace_check trace   trace.json     # chrome://tracing event file
//   sthsl_trace_check metrics metrics.json   # metrics/op-profile dump
//   sthsl_trace_check --selftest             # embedded good/bad samples
//
// Exits 0 when the file parses as JSON and has the expected structure,
// 1 otherwise. Deliberately dependency-free (no sthsl lib, no third-party
// JSON): a tiny recursive-descent parser is enough to assert structure.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// -- Minimal JSON value + parser ----------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  bool Is(Kind k) const { return kind == k; }
  const JsonValue* Find(const std::string& key) const {
    const auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& input) : input_(input) {}

  // Parses the whole input as one JSON value; returns false (with `error`
  // set) on any syntax problem or trailing garbage.
  bool Parse(JsonValue* out, std::string* error) {
    error_ = error;
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != input_.size()) return Fail("trailing characters after value");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      std::ostringstream stream;
      stream << message << " at byte " << pos_;
      *error_ = stream.str();
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= input_.size()) return Fail("unexpected end of input");
    const char c = input_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->text);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  bool ParseKeyword(JsonValue* out) {
    static const struct {
      const char* word;
      JsonValue::Kind kind;
      bool boolean;
    } kKeywords[] = {{"true", JsonValue::Kind::kBool, true},
                     {"false", JsonValue::Kind::kBool, false},
                     {"null", JsonValue::Kind::kNull, false}};
    for (const auto& keyword : kKeywords) {
      const size_t len = std::strlen(keyword.word);
      if (input_.compare(pos_, len, keyword.word) == 0) {
        out->kind = keyword.kind;
        out->boolean = keyword.boolean;
        pos_ += len;
        return true;
      }
    }
    return Fail("invalid keyword");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < input_.size() && input_[pos_] == '-') ++pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E' || input_[pos_] == '+' ||
            input_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    char* end = nullptr;
    const std::string token = input_.substr(start, pos_ - start);
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= input_.size()) break;
      const char esc = input_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > input_.size()) return Fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(input_[pos_ + i]))) {
              return Fail("invalid \\u escape");
            }
          }
          // Structure checking only: the code point value is not needed.
          *out += '?';
          pos_ += 4;
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return Fail("expected '['");
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue item;
      if (!ParseValue(&item)) return false;
      out->items.push_back(std::move(item));
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return Fail("expected '{'");
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->members[key] = std::move(value);
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}' in object");
    }
  }

  const std::string& input_;
  size_t pos_ = 0;
  std::string* error_ = nullptr;
};

// -- Structure validators -----------------------------------------------------

bool Complain(const std::string& what) {
  std::fprintf(stderr, "sthsl_trace_check: %s\n", what.c_str());
  return false;
}

/// Chrome trace-event format: root object with a "traceEvents" array; every
/// event is an object carrying name/ph (strings), ts/pid/tid (numbers), and
/// a numeric dur for "X" complete events.
bool ValidateTrace(const JsonValue& root) {
  if (!root.Is(JsonValue::Kind::kObject)) {
    return Complain("trace root is not an object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->Is(JsonValue::Kind::kArray)) {
    return Complain("missing \"traceEvents\" array");
  }
  size_t index = 0;
  for (const JsonValue& event : events->items) {
    ++index;
    if (!event.Is(JsonValue::Kind::kObject)) {
      return Complain("traceEvents[" + std::to_string(index - 1) +
                      "] is not an object");
    }
    const JsonValue* name = event.Find("name");
    const JsonValue* ph = event.Find("ph");
    const JsonValue* ts = event.Find("ts");
    const JsonValue* pid = event.Find("pid");
    const JsonValue* tid = event.Find("tid");
    if (name == nullptr || !name->Is(JsonValue::Kind::kString) ||
        ph == nullptr || !ph->Is(JsonValue::Kind::kString) ||
        ts == nullptr || !ts->Is(JsonValue::Kind::kNumber) ||
        pid == nullptr || !pid->Is(JsonValue::Kind::kNumber) ||
        tid == nullptr || !tid->Is(JsonValue::Kind::kNumber)) {
      return Complain("event " + std::to_string(index - 1) +
                      " lacks name/ph strings or ts/pid/tid numbers");
    }
    if (ph->text == "X") {
      const JsonValue* dur = event.Find("dur");
      if (dur == nullptr || !dur->Is(JsonValue::Kind::kNumber) ||
          dur->number < 0.0) {
        return Complain("complete event " + std::to_string(index - 1) +
                        " ('" + name->text + "') lacks a non-negative dur");
      }
    }
  }
  std::printf("trace OK: %zu events\n", events->items.size());
  return true;
}

/// Metrics dump: root object with counters/gauges/histograms objects plus an
/// ops array of per-op profiles.
bool ValidateMetrics(const JsonValue& root) {
  if (!root.Is(JsonValue::Kind::kObject)) {
    return Complain("metrics root is not an object");
  }
  for (const char* key : {"counters", "gauges", "histograms"}) {
    const JsonValue* section = root.Find(key);
    if (section == nullptr || !section->Is(JsonValue::Kind::kObject)) {
      return Complain(std::string("missing \"") + key + "\" object");
    }
  }
  const JsonValue* ops = root.Find("ops");
  if (ops == nullptr || !ops->Is(JsonValue::Kind::kArray)) {
    return Complain("missing \"ops\" array");
  }
  for (const JsonValue& op : ops->items) {
    if (!op.Is(JsonValue::Kind::kObject) || op.Find("name") == nullptr ||
        op.Find("forward_calls") == nullptr) {
      return Complain("ops entry lacks name/forward_calls");
    }
  }
  std::printf("metrics OK: %zu ops, %zu counters, %zu histograms\n",
              ops->items.size(), root.Find("counters")->members.size(),
              root.Find("histograms")->members.size());
  return true;
}

int CheckFile(const std::string& mode, const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    Complain("cannot open " + path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  JsonValue root;
  std::string error;
  if (!JsonParser(text).Parse(&root, &error)) {
    Complain(path + ": " + error);
    return 1;
  }
  if (mode == "trace") return ValidateTrace(root) ? 0 : 1;
  if (mode == "metrics") return ValidateMetrics(root) ? 0 : 1;
  Complain("unknown mode '" + mode + "'");
  return 1;
}

// -- Self-test ----------------------------------------------------------------

int SelfTest() {
  struct Sample {
    const char* label;
    const char* mode;  // "trace", "metrics" or "parse"
    const char* json;
    bool expect_ok;
  };
  const Sample kSamples[] = {
      {"good trace", "trace",
       "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
       "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"sthsl\"}},"
       "{\"name\":\"matmul\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":1.5,"
       "\"dur\":2.25,\"pid\":1,\"tid\":1}]}",
       true},
      {"empty trace", "trace", "{\"traceEvents\":[]}", true},
      {"trace missing events key", "trace", "{\"events\":[]}", false},
      {"X event without dur", "trace",
       "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"pid\":1,"
       "\"tid\":1}]}",
       false},
      {"event with non-string name", "trace",
       "{\"traceEvents\":[{\"name\":3,\"ph\":\"X\",\"ts\":0,\"dur\":1,"
       "\"pid\":1,\"tid\":1}]}",
       false},
      {"good metrics", "metrics",
       "{\"counters\":{\"train/epochs\":3},\"gauges\":{},"
       "\"histograms\":{\"loss\":{\"count\":2,\"min\":0.1,\"max\":0.4,"
       "\"mean\":0.25,\"p50\":0.1,\"p95\":0.4}},"
       "\"ops\":[{\"name\":\"matmul\",\"forward_calls\":10,"
       "\"forward_us\":12.5,\"backward_calls\":10,\"backward_us\":20.0,"
       "\"bytes_touched\":4096}],"
       "\"scopes\":[],\"tensor_memory\":{\"live_bytes\":0,\"peak_bytes\":9}}",
       true},
      {"metrics missing histograms", "metrics",
       "{\"counters\":{},\"gauges\":{},\"ops\":[]}", false},
      {"unbalanced braces", "parse", "{\"a\":[1,2}", false},
      {"trailing garbage", "parse", "{} {}", false},
      {"escapes and nesting", "parse",
       "{\"s\":\"line\\nbreak \\u0041 \\\"q\\\"\",\"deep\":[[[{\"x\":null},"
       "true,false,-1.5e-3]]]}",
       true},
  };

  int failures = 0;
  for (const Sample& sample : kSamples) {
    JsonValue root;
    std::string error;
    bool ok = JsonParser(sample.json).Parse(&root, &error);
    if (ok && std::strcmp(sample.mode, "trace") == 0) {
      ok = ValidateTrace(root);
    } else if (ok && std::strcmp(sample.mode, "metrics") == 0) {
      ok = ValidateMetrics(root);
    }
    if (ok != sample.expect_ok) {
      std::fprintf(stderr, "SELFTEST FAIL: %s (expected %s, got %s%s%s)\n",
                   sample.label, sample.expect_ok ? "ok" : "reject",
                   ok ? "ok" : "reject", error.empty() ? "" : ": ",
                   error.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("selftest OK: %zu samples\n",
                sizeof(kSamples) / sizeof(kSamples[0]));
    return 0;
  }
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sthsl_trace_check trace <file>\n"
               "       sthsl_trace_check metrics <file>\n"
               "       sthsl_trace_check --selftest\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--selftest") == 0) return SelfTest();
  if (argc != 3) return Usage();
  return CheckFile(argv[1], argv[2]);
}
