// sthsl_analyze: multi-pass static analyzer for the ST-HSL source tree.
//
// Replaces the token-grepping sthsl_lint with a real lexer (comments,
// strings, raw strings, line continuations, preprocessor directives) and
// four passes over `<root>/src`:
//
//   layering      include DAG: util -> exec -> tensor -> nn/metrics ->
//                 data -> core -> baselines -> serve, plus include-cycle
//                 detection (rules layer-dag, include-cycle, unknown-layer)
//   determinism   the exec determinism contract: raw threading confined to
//                 exec/serve, no ambient randomness or wall-clock reads in
//                 kernels, no float accumulation in hash order (det-*)
//   concurrency   `_mu` mutex convention: RAII locking only, prefix-guarded
//                 fields touched under their lock, no lock-order inversions
//                 (mutex-guard, guarded-field, lock-order)
//   headers       path-derived include guards, STHSL_CHECK over assert,
//                 cast hygiene, header self-containment
//
// Known findings live in a baseline file (tools/analyze_baseline.txt);
// anything not baselined fails the run. Registered in ctest and CI (which
// also uploads the SARIF). See docs/correctness_tooling.md for the rule
// catalog.
//
// Usage:
//   sthsl_analyze <repo_root> [--baseline <file>] [--format text|json|sarif]
//                 [--out <file>] [--only <pass>[,<pass>...]]
//                 [--fix-baseline] [--compiler <c++>] [--no-self-contained]
//                 [--list-rules]

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/baseline.h"

namespace {

using sthsl::analyze::AnalyzeOptions;
using sthsl::analyze::AnalyzeResult;

int Usage() {
  std::cerr
      << "usage: sthsl_analyze <repo_root> [--baseline <file>]\n"
         "                     [--format text|json|sarif] [--out <file>]\n"
         "                     [--only <pass>[,<pass>...]] [--fix-baseline]\n"
         "                     [--compiler <c++>] [--no-self-contained]\n"
         "                     [--list-rules]\n"
         "passes: layering determinism concurrency headers\n";
  return 2;
}

std::vector<std::string> SplitCommas(const std::string& arg) {
  std::vector<std::string> parts;
  std::istringstream in(arg);
  std::string part;
  while (std::getline(in, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

int ListRules() {
  for (const auto& rule : sthsl::analyze::Rules()) {
    std::cout << rule.id << " (" << rule.pass << ", "
              << sthsl::analyze::SeverityName(rule.severity) << "): "
              << rule.summary << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  AnalyzeOptions options;
  std::string format = "text";
  std::string out_path;
  bool fix_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      const char* v = next();
      if (!v) return Usage();
      options.baseline_path = v;
    } else if (arg == "--format" || arg.rfind("--format=", 0) == 0) {
      const char* v =
          arg.size() > 9 && arg[8] == '=' ? arg.c_str() + 9 : next();
      if (!v) return Usage();
      format = v;
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "sthsl_analyze: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--only" || arg.rfind("--only=", 0) == 0) {
      const char* v = arg.size() > 7 && arg[6] == '=' ? arg.c_str() + 7
                                                      : next();
      if (!v) return Usage();
      for (const std::string& pass : SplitCommas(v)) {
        const auto& names = sthsl::analyze::PassNames();
        if (std::find(names.begin(), names.end(), pass) == names.end()) {
          std::cerr << "sthsl_analyze: unknown pass '" << pass << "'\n";
          return 2;
        }
        options.only_passes.push_back(pass);
      }
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return Usage();
      out_path = v;
    } else if (arg == "--compiler") {
      const char* v = next();
      if (!v) return Usage();
      options.compiler = v;
    } else if (arg == "--no-self-contained") {
      options.check_self_contained = false;
    } else if (arg == "--fix-baseline") {
      fix_baseline = true;
    } else if (arg == "--list-rules") {
      return ListRules();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "sthsl_analyze: unknown argument " << arg << "\n";
      return Usage();
    } else if (options.root.empty()) {
      options.root = arg;
    } else {
      return Usage();
    }
  }
  if (options.root.empty()) return Usage();

  if (fix_baseline) {
    // Re-run without suppressions and write the baseline that silences the
    // current tree.
    AnalyzeOptions all = options;
    const std::string baseline_path = options.baseline_path.empty()
                                          ? options.root +
                                                "/tools/analyze_baseline.txt"
                                          : options.baseline_path;
    all.baseline_path.clear();
    const AnalyzeResult result = sthsl::analyze::RunAnalysis(all);
    if (!result.ok) {
      std::cerr << "sthsl_analyze: " << result.error << "\n";
      return 2;
    }
    std::ofstream out(baseline_path);
    if (!out) {
      std::cerr << "sthsl_analyze: cannot write " << baseline_path << "\n";
      return 2;
    }
    out << sthsl::analyze::RenderBaseline(result.findings);
    std::cout << "sthsl_analyze: wrote " << baseline_path << " ("
              << result.findings.size() << " suppression(s))\n";
    return 0;
  }

  const AnalyzeResult result = sthsl::analyze::RunAnalysis(options);
  if (!result.ok) {
    std::cerr << "sthsl_analyze: " << result.error << "\n";
    return 2;
  }
  const std::string report = sthsl::analyze::RenderReport(result, format);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "sthsl_analyze: cannot write " << out_path << "\n";
      return 2;
    }
    out << report;
    // Keep the human-readable verdict on stdout so ctest logs stay useful.
    std::cout << sthsl::analyze::RenderReport(result, "text");
  } else if (format != "text") {
    std::cout << report;
    std::cerr << sthsl::analyze::RenderReport(result, "text");
  } else {
    std::cout << report;
  }
  return result.findings.empty() ? 0 : 1;
}
