#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

// include-guard violation: the guard above should be derived from the path
// (STHSL_BAD_GUARD_H_).

#endif  // WRONG_GUARD_NAME_H
