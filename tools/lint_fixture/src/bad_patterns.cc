// Deliberately broken file: the sthsl_lint_fixture ctest case asserts that
// the lint binary reports these patterns and exits non-zero.

#include <cassert>

namespace sthsl_lint_fixture {

int StripConst(const int* value) {
  int* writable = const_cast<int*>(value);  // const-cast violation
  assert(writable != nullptr);              // bare-assert violation
  float f = 1.0f;
  return *reinterpret_cast<int*>(&f) + *writable;  // reinterpret-cast violation
}

}  // namespace sthsl_lint_fixture
