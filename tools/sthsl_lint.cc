// sthsl_lint: repo-invariant checker for the ST-HSL source tree.
//
// Walks `<root>/src` and enforces:
//   include-guard      .h guards must be STHSL_<PATH>_<FILE>_H_ (path-derived)
//   bare-assert        no bare assert( — use STHSL_CHECK and friends
//   const-cast         no const_cast anywhere under src/
//   reinterpret-cast   reinterpret_cast only in src/nn/serialization.cc
//   self-contained     every header compiles standalone (-fsyntax-only)
//
// Known violations can be grandfathered in a baseline file (one
// `<path>:<rule>` per line, `#` comments); anything not listed there fails
// the run. Registered as a ctest test so violations fail the build.
//
// Usage:
//   sthsl_lint <repo_root> [--baseline <file>] [--compiler <c++>]
//              [--no-self-contained]

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string path;  // relative to the repo root, '/'-separated
  int line;          // 1-based; 0 when the finding is file-level
  std::string rule;
  std::string message;
};

struct Options {
  fs::path root;
  fs::path baseline;
  std::string compiler = "c++";
  bool check_self_contained = true;
};

std::string RelPath(const fs::path& file, const fs::path& root) {
  return fs::relative(file, root).generic_string();
}

// The guard for src/tensor/ops.h is STHSL_TENSOR_OPS_H_: the path relative
// to src/, uppercased, with every non-alphanumeric character folded to '_'.
std::string ExpectedGuard(const std::string& rel_to_src) {
  std::string guard = "STHSL_";
  for (char c : rel_to_src) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';  // trailing underscore; ".h" already became "_H"
  return guard;
}

std::vector<std::string> ReadLines(const fs::path& file) {
  std::vector<std::string> lines;
  std::ifstream in(file);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True when `token` occurs in `line` as a standalone identifier (not as a
// suffix of a longer identifier like static_assert for "assert").
bool HasToken(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool start_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool end_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (start_ok && end_ok) return true;
    pos = end;
  }
  return false;
}

void CheckIncludeGuard(const fs::path& file, const std::string& rel,
                       const std::string& rel_to_src,
                       const std::vector<std::string>& lines,
                       std::vector<Violation>& out) {
  const std::string expected = ExpectedGuard(rel_to_src);
  std::string ifndef_guard;
  int ifndef_line = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::istringstream is(lines[i]);
    std::string directive, symbol;
    is >> directive >> symbol;
    if (directive == "#ifndef") {
      ifndef_guard = symbol;
      ifndef_line = static_cast<int>(i) + 1;
      // The guard's #define must follow immediately.
      if (i + 1 < lines.size()) {
        std::istringstream next(lines[i + 1]);
        std::string next_directive, next_symbol;
        next >> next_directive >> next_symbol;
        if (next_directive != "#define" || next_symbol != ifndef_guard) {
          out.push_back({rel, ifndef_line, "include-guard",
                         "#ifndef " + ifndef_guard +
                             " is not followed by a matching #define"});
        }
      }
      break;
    }
    if (!directive.empty() && directive[0] == '#') break;  // other directive
  }
  if (ifndef_guard.empty()) {
    out.push_back({rel, 1, "include-guard",
                   "header has no include guard (expected " + expected + ")"});
  } else if (ifndef_guard != expected) {
    out.push_back({rel, ifndef_line, "include-guard",
                   "guard " + ifndef_guard + " does not match the path; "
                   "expected " + expected});
  }
}

// Blanks out comments and string/char literals so the token rules only see
// code. Raw string literals are not handled (none in the tree; a use would
// surface as a lint failure worth a look anyway).
std::vector<std::string> StripCommentsAndStrings(
    const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block_comment = false;
  for (const std::string& line : lines) {
    std::string code(line.size(), ' ');
    for (size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (line[i] == '"' || line[i] == '\'') {
        const char quote = line[i];
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == quote) {
            break;
          }
          ++i;
        }
        continue;
      }
      code[i] = line[i];
    }
    out.push_back(std::move(code));
  }
  return out;
}

void CheckTextRules(const std::string& rel,
                    const std::vector<std::string>& lines,
                    std::vector<Violation>& out) {
  // Byte-level I/O boundaries where reinterpret_cast is unavoidable: the
  // binary checkpoint codec and the POSIX sockaddr casts of the HTTP server.
  const bool reinterpret_allowed =
      rel == "src/nn/serialization.cc" || rel == "src/serve/http.cc";
  const std::vector<std::string> code = StripCommentsAndStrings(lines);
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const int lineno = static_cast<int>(i) + 1;
    // Call-like bare assert; the preceding-character test in HasToken already
    // excludes static_assert and STHSL_* macros.
    const size_t pos = line.find("assert(");
    if (pos != std::string::npos && (pos == 0 || !IsIdentChar(line[pos - 1]))) {
      out.push_back({rel, lineno, "bare-assert",
                     "bare assert() — use STHSL_CHECK so failures carry "
                     "file/line context and fire in release builds"});
    }
    if (HasToken(line, "const_cast")) {
      out.push_back({rel, lineno, "const-cast",
                     "const_cast is forbidden in src/ — expose a mutable "
                     "accessor instead"});
    }
    if (!reinterpret_allowed && HasToken(line, "reinterpret_cast")) {
      out.push_back({rel, lineno, "reinterpret-cast",
                     "reinterpret_cast is confined to "
                     "src/nn/serialization.cc"});
    }
  }
}

void CheckSelfContained(const fs::path& file, const std::string& rel,
                        const Options& opts, std::vector<Violation>& out) {
  // Compile the header alone: it must pull in everything it needs.
  std::string cmd = "\"" + opts.compiler + "\" -std=c++20 -fsyntax-only -x c++ -I \"" +
                    (opts.root / "src").string() + "\" \"" + file.string() +
                    "\" 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) {
    out.push_back({rel, 0, "self-contained",
                   "header does not compile standalone (" + opts.compiler +
                       " -std=c++20 -fsyntax-only failed)"});
  }
}

std::set<std::string> LoadBaseline(const fs::path& file) {
  std::set<std::string> suppressed;
  if (file.empty()) return suppressed;
  std::ifstream in(file);
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim whitespace.
    line.erase(0, line.find_first_not_of(" \t"));
    line.erase(line.find_last_not_of(" \t") + 1);
    if (!line.empty()) suppressed.insert(line);
  }
  return suppressed;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      opts.baseline = argv[++i];
    } else if (arg == "--compiler" && i + 1 < argc) {
      opts.compiler = argv[++i];
    } else if (arg == "--no-self-contained") {
      opts.check_self_contained = false;
    } else if (opts.root.empty()) {
      opts.root = arg;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (opts.root.empty()) {
    std::cerr << "usage: sthsl_lint <repo_root> [--baseline <file>] "
                 "[--compiler <c++>] [--no-self-contained]\n";
    return 2;
  }
  const fs::path src = opts.root / "src";
  if (!fs::is_directory(src)) {
    std::cerr << "sthsl_lint: no src/ directory under " << opts.root << "\n";
    return 2;
  }

  std::vector<Violation> violations;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& file : files) {
    const std::string rel = RelPath(file, opts.root);
    const auto lines = ReadLines(file);
    CheckTextRules(rel, lines, violations);
    if (file.extension() == ".h") {
      CheckIncludeGuard(file, rel, RelPath(file, src), lines, violations);
      if (opts.check_self_contained) {
        CheckSelfContained(file, rel, opts, violations);
      }
    }
  }

  const std::set<std::string> baseline = LoadBaseline(opts.baseline);
  int reported = 0;
  int suppressed = 0;
  for (const Violation& v : violations) {
    if (baseline.count(v.path + ":" + v.rule)) {
      ++suppressed;
      continue;
    }
    std::cout << v.path;
    if (v.line > 0) std::cout << ":" << v.line;
    std::cout << ": [" << v.rule << "] " << v.message << "\n";
    ++reported;
  }

  std::cout << "sthsl_lint: " << files.size() << " files, " << reported
            << " violation(s), " << suppressed << " suppressed\n";
  return reported == 0 ? 0 : 1;
}
