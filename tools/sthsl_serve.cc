// sthsl_serve — long-running crime-prediction inference service.
//
//   sthsl_serve --bundle DIR [--host 127.0.0.1] [--port 8080]
//               [--threads N] [--max-batch N] [--max-wait-us N]
//               [--cache-entries N] [--cache-shards N]
//
// Loads a model bundle written by `sthsl_cli export-bundle` and answers
//   POST /v1/predict   one (R, W, C) window → (R, C) predicted counts
//   GET  /healthz      readiness probe with bundle identity
//   GET  /metrics      serve/* counters + latency/batch-size percentiles
// until SIGTERM/SIGINT, then drains gracefully: stops accepting, finishes
// in-flight requests, flushes the micro-batcher, exits 0. Every option can
// also come from the environment (STHSL_SERVE_PORT etc., flags win).
// See docs/serving.md for the full endpoint and tuning reference.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "exec/exec.h"
#include "serve/bundle.h"
#include "serve/engine.h"
#include "serve/http.h"
#include "serve/service.h"
#include "util/logging.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: sthsl_serve --bundle DIR [options]\n"
      "  --host ADDR        bind address (default 127.0.0.1; use 0.0.0.0\n"
      "                     only behind a trusted proxy)\n"
      "  --port N           TCP port; 0 picks an ephemeral port (default "
      "8080)\n"
      "  --threads N        inference worker threads (default 2)\n"
      "  --exec-threads N   kernel threads per inference worker (default:\n"
      "                     hardware threads / worker threads, min 1, so\n"
      "                     workers x kernel threads never oversubscribes)\n"
      "  --max-batch N      micro-batch size bound (default 8)\n"
      "  --max-wait-us N    micro-batch wait bound in µs (default 2000)\n"
      "  --cache-entries N  LRU prediction-cache entries, 0 disables "
      "(default 1024)\n"
      "  --cache-shards N   cache lock shards (default 8)\n"
      "environment fallbacks: STHSL_SERVE_HOST, STHSL_SERVE_PORT,\n"
      "  STHSL_SERVE_THREADS, STHSL_SERVE_EXEC_THREADS, "
      "STHSL_SERVE_MAX_BATCH,\n"
      "  STHSL_SERVE_MAX_WAIT_US, STHSL_SERVE_CACHE_ENTRIES, "
      "STHSL_SERVE_CACHE_SHARDS\n"
      "  (STHSL_THREADS also sets the kernel thread count; --exec-threads\n"
      "  and STHSL_SERVE_EXEC_THREADS win over it)\n");
  return 2;
}

std::string OptionOrEnv(const std::string& flag_value, const char* env_name,
                        const std::string& fallback) {
  if (!flag_value.empty()) return flag_value;
  const char* env = std::getenv(env_name);
  if (env != nullptr && env[0] != '\0') return env;
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bundle_dir, host, port, threads, exec_threads, max_batch,
      max_wait_us, cache_entries, cache_shards;
  struct FlagTarget {
    const char* name;
    std::string* value;
  } flags[] = {
      {"--bundle", &bundle_dir},         {"--host", &host},
      {"--port", &port},                 {"--threads", &threads},
      {"--exec-threads", &exec_threads}, {"--max-batch", &max_batch},
      {"--max-wait-us", &max_wait_us},   {"--cache-entries", &cache_entries},
      {"--cache-shards", &cache_shards},
  };
  for (int i = 1; i + 1 < argc; i += 2) {
    bool known = false;
    for (auto& flag : flags) {
      if (std::strcmp(argv[i], flag.name) == 0) {
        *flag.value = argv[i + 1];
        known = true;
        break;
      }
    }
    if (!known) return Usage();
  }
  if (argc % 2 == 0) return Usage();  // dangling flag without a value
  if (bundle_dir.empty()) return Usage();

  using sthsl::serve::EngineConfig;
  EngineConfig config;
  const std::string host_value =
      OptionOrEnv(host, "STHSL_SERVE_HOST", "127.0.0.1");
  const int port_value =
      std::atoi(OptionOrEnv(port, "STHSL_SERVE_PORT", "8080").c_str());
  config.batcher.worker_threads =
      std::atoll(OptionOrEnv(threads, "STHSL_SERVE_THREADS", "2").c_str());
  config.batcher.max_batch_size =
      std::atoll(OptionOrEnv(max_batch, "STHSL_SERVE_MAX_BATCH", "8").c_str());
  config.batcher.max_wait_us = std::atoll(
      OptionOrEnv(max_wait_us, "STHSL_SERVE_MAX_WAIT_US", "2000").c_str());
  config.cache_entries = std::atoll(
      OptionOrEnv(cache_entries, "STHSL_SERVE_CACHE_ENTRIES", "1024").c_str());
  config.cache_shards = std::atoll(
      OptionOrEnv(cache_shards, "STHSL_SERVE_CACHE_SHARDS", "8").c_str());

  // Kernel threads compose with the batcher workers: each worker drives the
  // shared kernel pool, so default the pool to hardware / workers to avoid
  // oversubscription. Explicit settings (flag, STHSL_SERVE_EXEC_THREADS,
  // then a plain STHSL_THREADS) win over the computed default.
  const std::string exec_threads_value =
      OptionOrEnv(exec_threads, "STHSL_SERVE_EXEC_THREADS", "");
  if (!exec_threads_value.empty()) {
    sthsl::exec::SetThreadCount(std::atoi(exec_threads_value.c_str()));
  } else if (std::getenv("STHSL_THREADS") == nullptr) {
    const int workers = std::max(1, static_cast<int>(
        config.batcher.worker_threads));
    sthsl::exec::SetThreadCount(
        std::max(1, sthsl::exec::HardwareThreadCount() / workers));
  }

  auto bundle_or = sthsl::serve::LoadBundle(bundle_dir);
  if (!bundle_or.ok()) {
    std::fprintf(stderr, "cannot load bundle %s: %s\n", bundle_dir.c_str(),
                 bundle_or.status().ToString().c_str());
    return 1;
  }
  STHSL_LOG(Info) << "loaded bundle " << bundle_dir << ": model "
                  << bundle_or.value().manifest.model << ", city "
                  << bundle_or.value().manifest.city << ", window shape (R="
                  << bundle_or.value().manifest.num_regions()
                  << ", W=" << bundle_or.value().manifest.config.train.window
                  << ", C=" << bundle_or.value().manifest.categories << ")";

  sthsl::serve::InferenceEngine engine(std::move(bundle_or).value(), config);
  sthsl::serve::PredictService service(&engine);
  sthsl::serve::HttpServer server;
  service.Register(&server);

  sthsl::Status started = server.Start(host_value, port_value);
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  // The line the smoke tests and operators wait for; flushed immediately.
  std::printf("sthsl_serve listening on %s:%d\n", host_value.c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  STHSL_LOG(Info) << "stop signal received; draining";
  server.Drain();     // finish in-flight HTTP requests first
  engine.Shutdown();  // then flush the micro-batcher queue
  STHSL_LOG(Info) << "drained cleanly after " << server.requests_served()
                  << " requests";
  return 0;
}
