// sthsl_report — aggregates run-ledger JSONL files (and optionally bench
// JSON dumps) into human-readable comparison tables, and gates CI on
// quality/speed regressions against a committed baseline:
//
//   sthsl_report run1.jsonl run2.jsonl              # markdown table
//   sthsl_report --csv runs/*.jsonl                 # CSV for spreadsheets
//   sthsl_report --bench BENCH_table5_efficiency.json runs/*.jsonl
//   sthsl_report --bench BENCH_serve.json             # serve latency table
//   sthsl_report --emit-baseline base.json runs/*.jsonl
//   sthsl_report --gate base.json --tolerance 10 --time-tolerance 100 \
//                runs/*.jsonl                       # exit 1 on regression
//   sthsl_report --bench BENCH_parallel.json          # thread-scaling table
//   sthsl_report --roofline BENCH_roofline.json       # roofline markdown
//   sthsl_report --roofline BENCH_roofline.json \
//                --gate-roofline bench/roofline_baseline.json \
//                --roofline-tolerance 75             # per-op GFLOP/s floors
//   sthsl_report --selftest
//
// A run is one header→final span in a ledger (see src/util/obs/run_ledger.h
// for the writer). The gate compares, per (model, city), the final masked
// test MAE and the mean epoch wall time against the baseline entry and
// fails when either exceeds baseline * (1 + tolerance/100). Missing models
// fail the gate too — a bench that silently stops covering a model must not
// pass. Dependency-free like sthsl_trace_check: the validators must stay
// trustworthy without linking the library they check.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json_mini.h"

namespace {

using sthsl::json::JsonParser;
using sthsl::json::JsonValue;

constexpr JsonValue::Kind kNum = JsonValue::Kind::kNumber;
constexpr JsonValue::Kind kStr = JsonValue::Kind::kString;
constexpr JsonValue::Kind kObj = JsonValue::Kind::kObject;
constexpr JsonValue::Kind kArr = JsonValue::Kind::kArray;

const double kNan = std::nan("");

bool Complain(const std::string& what) {
  std::fprintf(stderr, "sthsl_report: %s\n", what.c_str());
  return false;
}

/// One header→final span of a ledger file, reduced to the comparison row.
struct RunSummary {
  std::string source;  // ledger path (or "<selftest>")
  std::string model;
  std::string city;
  int64_t epochs = 0;
  double final_loss = kNan;         // loss of the last epoch record
  double best_val_mae = kNan;       // min validation_mae across epochs
  double mean_epoch_seconds = kNan;
  double test_mae = kNan;           // masked test metrics from the final
  double test_mape = kNan;          // record; NaN until has_final
  double test_rmse = kNan;
  bool has_final = false;
};

/// Per-model row of a BENCH_table5_efficiency.json dump.
struct BenchModel {
  std::string name;
  double nyc_epoch_seconds = kNan;
  double chi_epoch_seconds = kNan;
};

/// A BENCH_serve.json dump from sthsl_loadgen: run-level totals plus one
/// latency row per histogram (client round-trip first, then the server-
/// reported serve/latency_us and serve/stage/* histograms it scraped).
struct ServeBench {
  struct Row {
    std::string name;
    double count = kNan;
    double mean = kNan;
    double p50 = kNan;
    double p95 = kNan;
    double p99 = kNan;
  };
  std::string source;
  double qps = kNan;
  double requests = kNan;
  double errors = kNan;
  double trace_mismatches = kNan;
  double cache_hits = kNan;
  std::vector<Row> rows;
};

/// One op row of a BENCH_roofline.json dump (see src/util/obs/roofline.h for
/// the writer), counters optional.
struct RooflineOp {
  std::string name;
  double calls = kNan;
  double flops = kNan;
  double bytes = kNan;
  double us = kNan;
  double intensity = kNan;
  double achieved_gflops = kNan;
  double achieved_gbps = kNan;
  double roof_gflops = kNan;
  double pct_of_roof = kNan;
  std::string bound;
  bool has_counters = false;
  double cycles = kNan;
  double instructions = kNan;
  double l1d_misses = kNan;
  double llc_misses = kNan;
  double branch_misses = kNan;
};

struct RooflineDoc {
  std::string source;
  std::string cpu_model;
  double gflops_1t = kNan;
  double gbps_1t = kNan;
  double threads = kNan;
  double compute_roof_gflops = kNan;
  double memory_roof_gbps = kNan;
  std::vector<RooflineOp> ops;
};

/// One kernel of a BENCH_parallel.json thread-scaling dump.
struct ParallelKernel {
  struct Point {
    double threads = kNan;
    double us = kNan;
    double speedup = kNan;
  };
  std::string name;
  double serial_us = kNan;
  std::vector<Point> points;
};

double NumberOr(const JsonValue& record, const char* field, double fallback) {
  const JsonValue* value = record.FindOfKind(field, kNum);
  return value == nullptr ? fallback : value->number;
}

std::string StringOr(const JsonValue& record, const char* field,
                     const std::string& fallback) {
  const JsonValue* value = record.FindOfKind(field, kStr);
  return value == nullptr ? fallback : value->text;
}

// -- Ledger aggregation -------------------------------------------------------

bool ParseLedgerText(const std::string& text, const std::string& source,
                     std::vector<RunSummary>* out) {
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  RunSummary current;
  bool open = false;
  double epoch_seconds_sum = 0.0;
  int64_t epoch_seconds_count = 0;

  const auto finish = [&]() {
    if (!open) return;
    if (epoch_seconds_count > 0) {
      current.mean_epoch_seconds =
          epoch_seconds_sum / static_cast<double>(epoch_seconds_count);
    }
    out->push_back(current);
  };

  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue record;
    std::string error;
    if (!JsonParser(line).Parse(&record, &error)) {
      return Complain(source + " line " + std::to_string(line_no) + ": " +
                      error);
    }
    const std::string kind = StringOr(record, "record", "");
    if (kind == "header") {
      finish();
      current = RunSummary();
      open = true;
      epoch_seconds_sum = 0.0;
      epoch_seconds_count = 0;
      current.source = source;
      current.model = StringOr(record, "model", "?");
      const JsonValue* dataset = record.FindOfKind("dataset", kObj);
      if (dataset != nullptr) {
        current.city = StringOr(*dataset, "city", "?");
      }
    } else if (kind == "epoch" && open) {
      ++current.epochs;
      current.final_loss = NumberOr(record, "loss", kNan);
      const double seconds = NumberOr(record, "epoch_seconds", kNan);
      if (std::isfinite(seconds)) {
        epoch_seconds_sum += seconds;
        ++epoch_seconds_count;
      }
      const double val = NumberOr(record, "validation_mae", kNan);
      if (std::isfinite(val) &&
          (!std::isfinite(current.best_val_mae) || val < current.best_val_mae)) {
        current.best_val_mae = val;
      }
    } else if (kind == "final" && open) {
      current.city = StringOr(record, "city", current.city);
      const JsonValue* overall = record.FindOfKind("overall", kObj);
      if (overall != nullptr) {
        current.test_mae = NumberOr(*overall, "mae", kNan);
        current.test_mape = NumberOr(*overall, "mape", kNan);
        current.test_rmse = NumberOr(*overall, "rmse", kNan);
        current.has_final = true;
      }
    }
    // "event" records and orphan lines don't affect the summary.
  }
  finish();
  return true;
}

bool LoadFile(const std::string& path, std::string* out) {
  std::ifstream file(path);
  if (!file) return Complain("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  *out = buffer.str();
  return true;
}

// -- Bench JSON (table5 format) -----------------------------------------------

ServeBench::Row ServeRow(const std::string& name, const JsonValue& snapshot,
                         double fallback_count) {
  ServeBench::Row row;
  row.name = name;
  row.count = NumberOr(snapshot, "count", fallback_count);
  row.mean = NumberOr(snapshot, "mean", kNan);
  row.p50 = NumberOr(snapshot, "p50", kNan);
  row.p95 = NumberOr(snapshot, "p95", kNan);
  row.p99 = NumberOr(snapshot, "p99", kNan);
  return row;
}

bool ParseServeBench(const JsonValue& root, const std::string& source,
                     std::vector<ServeBench>* out) {
  ServeBench bench;
  bench.source = source;
  bench.qps = NumberOr(root, "qps", kNan);
  bench.requests = NumberOr(root, "requests", kNan);
  bench.errors = NumberOr(root, "errors", kNan);
  bench.trace_mismatches = NumberOr(root, "trace_mismatches", kNan);
  bench.cache_hits = NumberOr(root, "cache_hits", kNan);
  const JsonValue* client = root.FindOfKind("latency_us", kObj);
  if (client == nullptr) {
    return Complain(source + ": missing \"latency_us\" object");
  }
  bench.rows.push_back(ServeRow("client round_trip", *client, bench.requests));
  const JsonValue* server = root.FindOfKind("server", kObj);
  if (server != nullptr) {
    for (const auto& [name, snapshot] : server->members) {
      if (!snapshot.Is(kObj)) continue;
      bench.rows.push_back(ServeRow(name, snapshot, kNan));
    }
  }
  out->push_back(bench);
  return true;
}

bool ParseParallelBench(const JsonValue& root, const std::string& source,
                        std::vector<ParallelKernel>* out) {
  const JsonValue* kernels = root.FindOfKind("kernels", kArr);
  if (kernels == nullptr) {
    return Complain(source + ": missing \"kernels\" array");
  }
  for (const JsonValue& kernel : kernels->items) {
    if (!kernel.Is(kObj)) continue;
    ParallelKernel row;
    row.name = StringOr(kernel, "name", "?");
    row.serial_us = NumberOr(kernel, "serial_us", kNan);
    const JsonValue* threads = kernel.FindOfKind("threads", kArr);
    if (threads != nullptr) {
      for (const JsonValue& point : threads->items) {
        if (!point.Is(kObj)) continue;
        ParallelKernel::Point p;
        p.threads = NumberOr(point, "threads", kNan);
        p.us = NumberOr(point, "us", kNan);
        p.speedup = NumberOr(point, "speedup", kNan);
        row.points.push_back(p);
      }
    }
    out->push_back(row);
  }
  return true;
}

bool ParseBenchText(const std::string& text, const std::string& source,
                    std::vector<BenchModel>* out,
                    std::vector<ServeBench>* serve_out,
                    std::vector<ParallelKernel>* parallel_out) {
  JsonValue root;
  std::string error;
  if (!JsonParser(text).Parse(&root, &error)) {
    return Complain(source + ": " + error);
  }
  // sthsl_loadgen dumps identify themselves; a top-level "kernels" array is
  // the bench_kernels thread-scaling dump; anything else must be the table5
  // efficiency format with a "models" array.
  if (root.Is(kObj) &&
      StringOr(root, "benchmark", "") == "sthsl_serve") {
    return ParseServeBench(root, source, serve_out);
  }
  if (root.Is(kObj) && root.FindOfKind("kernels", kArr) != nullptr) {
    return ParseParallelBench(root, source, parallel_out);
  }
  const JsonValue* models =
      root.Is(kObj) ? root.FindOfKind("models", kArr) : nullptr;
  if (models == nullptr) {
    return Complain(source + ": missing \"models\" array");
  }
  for (const JsonValue& model : models->items) {
    if (!model.Is(kObj)) continue;
    BenchModel row;
    row.name = StringOr(model, "name", "?");
    row.nyc_epoch_seconds = NumberOr(model, "nyc_epoch_seconds", kNan);
    row.chi_epoch_seconds = NumberOr(model, "chi_epoch_seconds", kNan);
    out->push_back(row);
  }
  return true;
}

// -- Roofline (BENCH_roofline.json) -------------------------------------------

bool ParseRooflineText(const std::string& text, const std::string& source,
                       RooflineDoc* out) {
  JsonValue root;
  std::string error;
  if (!JsonParser(text).Parse(&root, &error)) {
    return Complain(source + ": " + error);
  }
  if (!root.Is(kObj) || StringOr(root, "bench", "") != "roofline") {
    return Complain(source + ": not a BENCH_roofline.json document "
                             "(\"bench\":\"roofline\")");
  }
  out->source = source;
  const JsonValue* peaks = root.FindOfKind("peaks", kObj);
  if (peaks == nullptr) {
    return Complain(source + ": missing \"peaks\" object");
  }
  out->cpu_model = StringOr(*peaks, "cpu_model", "?");
  out->gflops_1t = NumberOr(*peaks, "gflops_1t", kNan);
  out->gbps_1t = NumberOr(*peaks, "gbps_1t", kNan);
  out->threads = NumberOr(*peaks, "threads", kNan);
  out->compute_roof_gflops = NumberOr(*peaks, "compute_roof_gflops", kNan);
  out->memory_roof_gbps = NumberOr(*peaks, "memory_roof_gbps", kNan);
  const JsonValue* ops = root.FindOfKind("ops", kArr);
  if (ops == nullptr) return Complain(source + ": missing \"ops\" array");
  for (const JsonValue& op : ops->items) {
    if (!op.Is(kObj)) continue;
    RooflineOp row;
    row.name = StringOr(op, "name", "?");
    row.calls = NumberOr(op, "calls", kNan);
    row.flops = NumberOr(op, "flops", kNan);
    row.bytes = NumberOr(op, "bytes", kNan);
    row.us = NumberOr(op, "us", kNan);
    row.intensity = NumberOr(op, "intensity", kNan);
    row.achieved_gflops = NumberOr(op, "achieved_gflops", kNan);
    row.achieved_gbps = NumberOr(op, "achieved_gbps", kNan);
    row.roof_gflops = NumberOr(op, "roof_gflops", kNan);
    row.pct_of_roof = NumberOr(op, "pct_of_roof", kNan);
    row.bound = StringOr(op, "bound", "?");
    const JsonValue* counters = op.FindOfKind("counters", kObj);
    if (counters != nullptr) {
      row.has_counters = true;
      row.cycles = NumberOr(*counters, "cycles", kNan);
      row.instructions = NumberOr(*counters, "instructions", kNan);
      row.l1d_misses = NumberOr(*counters, "l1d_misses", kNan);
      row.llc_misses = NumberOr(*counters, "llc_misses", kNan);
      row.branch_misses = NumberOr(*counters, "branch_misses", kNan);
    }
    out->ops.push_back(row);
  }
  return true;
}

// -- Rendering ----------------------------------------------------------------

std::string Cell(double value) {
  if (!std::isfinite(value)) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", value);
  return buf;
}

void PrintMarkdown(const std::vector<RunSummary>& runs) {
  if (runs.empty()) return;  // bench-only invocation
  std::printf("| model | city | epochs | final loss | best val MAE | "
              "epoch s | test MAE | test MAPE | test RMSE |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|\n");
  for (const RunSummary& run : runs) {
    std::printf("| %s | %s | %lld | %s | %s | %s | %s | %s | %s |\n",
                run.model.c_str(), run.city.c_str(),
                static_cast<long long>(run.epochs),
                Cell(run.final_loss).c_str(), Cell(run.best_val_mae).c_str(),
                Cell(run.mean_epoch_seconds).c_str(),
                Cell(run.test_mae).c_str(), Cell(run.test_mape).c_str(),
                Cell(run.test_rmse).c_str());
  }
}

void PrintCsv(const std::vector<RunSummary>& runs) {
  std::printf("model,city,epochs,final_loss,best_val_mae,mean_epoch_seconds,"
              "test_mae,test_mape,test_rmse,source\n");
  for (const RunSummary& run : runs) {
    std::printf("%s,%s,%lld,%s,%s,%s,%s,%s,%s,%s\n", run.model.c_str(),
                run.city.c_str(), static_cast<long long>(run.epochs),
                Cell(run.final_loss).c_str(), Cell(run.best_val_mae).c_str(),
                Cell(run.mean_epoch_seconds).c_str(),
                Cell(run.test_mae).c_str(), Cell(run.test_mape).c_str(),
                Cell(run.test_rmse).c_str(), run.source.c_str());
  }
}

void PrintBench(const std::vector<BenchModel>& bench) {
  if (bench.empty()) return;
  std::printf("\n| model | NYC epoch s | CHI epoch s |\n|---|---|---|\n");
  for (const BenchModel& row : bench) {
    std::printf("| %s | %s | %s |\n", row.name.c_str(),
                Cell(row.nyc_epoch_seconds).c_str(),
                Cell(row.chi_epoch_seconds).c_str());
  }
}

void PrintServeBench(const std::vector<ServeBench>& benches) {
  for (const ServeBench& bench : benches) {
    std::printf("\nserve bench %s: qps %s | requests %s | errors %s | "
                "trace mismatches %s | cache hits %s\n",
                bench.source.c_str(), Cell(bench.qps).c_str(),
                Cell(bench.requests).c_str(), Cell(bench.errors).c_str(),
                Cell(bench.trace_mismatches).c_str(),
                Cell(bench.cache_hits).c_str());
    std::printf("| histogram | count | mean µs | p50 | p95 | p99 |\n"
                "|---|---|---|---|---|---|\n");
    for (const ServeBench::Row& row : bench.rows) {
      std::printf("| %s | %s | %s | %s | %s | %s |\n", row.name.c_str(),
                  Cell(row.count).c_str(), Cell(row.mean).c_str(),
                  Cell(row.p50).c_str(), Cell(row.p95).c_str(),
                  Cell(row.p99).c_str());
    }
  }
}

void PrintParallelBench(const std::vector<ParallelKernel>& kernels) {
  if (kernels.empty()) return;
  std::printf("\nexec thread scaling (best-of-N wall time)\n");
  std::printf("| kernel | threads | µs | speedup |\n|---|---|---|---|\n");
  for (const ParallelKernel& kernel : kernels) {
    for (const ParallelKernel::Point& point : kernel.points) {
      std::printf("| %s | %s | %s | %s |\n", kernel.name.c_str(),
                  Cell(point.threads).c_str(), Cell(point.us).c_str(),
                  Cell(point.speedup).c_str());
    }
  }
}

void PrintRoofline(const RooflineDoc& doc) {
  std::printf("\nroofline %s: cpu %s | %s GFLOP/s x %s threads = %s "
              "compute roof | %s GB/s memory roof\n",
              doc.source.c_str(), doc.cpu_model.c_str(),
              Cell(doc.gflops_1t).c_str(), Cell(doc.threads).c_str(),
              Cell(doc.compute_roof_gflops).c_str(),
              Cell(doc.memory_roof_gbps).c_str());
  std::printf("| op | calls | GFLOP | int | GFLOP/s | GB/s | %%roof | bound "
              "| IPC | LLC miss |\n|---|---|---|---|---|---|---|---|---|---|"
              "\n");
  for (const RooflineOp& op : doc.ops) {
    const double ipc = op.has_counters && op.cycles > 0.0
                           ? op.instructions / op.cycles
                           : kNan;
    std::printf("| %s | %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
                op.name.c_str(), Cell(op.calls).c_str(),
                Cell(op.flops / 1e9).c_str(), Cell(op.intensity).c_str(),
                Cell(op.achieved_gflops).c_str(),
                Cell(op.achieved_gbps).c_str(), Cell(op.pct_of_roof).c_str(),
                op.bound.c_str(), Cell(ipc).c_str(),
                Cell(op.llc_misses).c_str());
  }
}

// -- Baseline emit / gate -----------------------------------------------------

std::string JsonNumberOrNull(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

/// Gate baselines key on (model, city); MAE comes from the run's final
/// record, epoch_seconds from the mean over its epoch records.
std::string RenderBaseline(const std::vector<RunSummary>& runs) {
  std::string json = "{\"baseline\":\"sthsl_report\",\"schema\":1,"
                     "\"entries\":[";
  bool first = true;
  for (const RunSummary& run : runs) {
    if (!first) json += ",";
    first = false;
    json += "{\"model\":" + sthsl::json::JsonQuote(run.model) +
            ",\"city\":" + sthsl::json::JsonQuote(run.city) +
            ",\"mae\":" + JsonNumberOrNull(run.test_mae) +
            ",\"epoch_seconds\":" + JsonNumberOrNull(run.mean_epoch_seconds) +
            "}";
  }
  json += "]}";
  return json;
}

/// Returns the number of gate failures (0 = pass). Baselines with null MAE
/// or epoch_seconds skip that comparison.
int RunGate(const std::string& baseline_text, const std::string& source,
            const std::vector<RunSummary>& runs, double tolerance_pct,
            double time_tolerance_pct) {
  JsonValue root;
  std::string error;
  if (!JsonParser(baseline_text).Parse(&root, &error)) {
    Complain(source + ": " + error);
    return 1;
  }
  const JsonValue* entries =
      root.Is(kObj) ? root.FindOfKind("entries", kArr) : nullptr;
  if (entries == nullptr) {
    Complain(source + ": missing \"entries\" array");
    return 1;
  }
  int failures = 0;
  for (const JsonValue& entry : entries->items) {
    if (!entry.Is(kObj)) continue;
    const std::string model = StringOr(entry, "model", "?");
    const std::string city = StringOr(entry, "city", "?");
    const double base_mae = NumberOr(entry, "mae", kNan);
    const double base_seconds = NumberOr(entry, "epoch_seconds", kNan);
    const RunSummary* match = nullptr;
    for (const RunSummary& run : runs) {  // last match wins
      if (run.model == model && run.city == city) match = &run;
    }
    if (match == nullptr) {
      std::printf("GATE FAIL %s/%s: no current run for baseline entry\n",
                  model.c_str(), city.c_str());
      ++failures;
      continue;
    }
    if (std::isfinite(base_mae)) {
      const double limit = base_mae * (1.0 + tolerance_pct / 100.0);
      if (!std::isfinite(match->test_mae)) {
        std::printf("GATE FAIL %s/%s: current run has no final test MAE\n",
                    model.c_str(), city.c_str());
        ++failures;
      } else if (match->test_mae > limit) {
        std::printf("GATE FAIL %s/%s: MAE %.6g > %.6g (baseline %.6g "
                    "+%.3g%%)\n",
                    model.c_str(), city.c_str(), match->test_mae, limit,
                    base_mae, tolerance_pct);
        ++failures;
      } else {
        std::printf("GATE ok   %s/%s: MAE %.6g <= %.6g\n", model.c_str(),
                    city.c_str(), match->test_mae, limit);
      }
    }
    if (std::isfinite(base_seconds) &&
        std::isfinite(match->mean_epoch_seconds)) {
      const double limit = base_seconds * (1.0 + time_tolerance_pct / 100.0);
      if (match->mean_epoch_seconds > limit) {
        std::printf("GATE FAIL %s/%s: epoch %.4gs > %.4gs (baseline %.4gs "
                    "+%.3g%%)\n",
                    model.c_str(), city.c_str(), match->mean_epoch_seconds,
                    limit, base_seconds, time_tolerance_pct);
        ++failures;
      } else {
        std::printf("GATE ok   %s/%s: epoch %.4gs <= %.4gs\n", model.c_str(),
                    city.c_str(), match->mean_epoch_seconds, limit);
      }
    }
  }
  if (failures == 0) {
    std::printf("gate OK: %zu baseline entr%s within tolerance\n",
                entries->items.size(),
                entries->items.size() == 1 ? "y" : "ies");
  }
  return failures;
}

/// Roofline baselines key on op name and store the achieved GFLOP/s of the
/// emitting run; the gate applies its tolerance as a floor, so machine drift
/// between the committing host and CI is absorbed by --roofline-tolerance.
std::string RenderRooflineBaseline(const RooflineDoc& doc) {
  std::string json = "{\"baseline\":\"sthsl_report_roofline\",\"schema\":1,"
                     "\"cpu_model\":" +
                     sthsl::json::JsonQuote(doc.cpu_model) + ",\"ops\":[";
  bool first = true;
  for (const RooflineOp& op : doc.ops) {
    if (!std::isfinite(op.achieved_gflops)) continue;
    if (!first) json += ",";
    first = false;
    json += "{\"name\":" + sthsl::json::JsonQuote(op.name) +
            ",\"gflops\":" + JsonNumberOrNull(op.achieved_gflops) + "}";
  }
  json += "]}";
  return json;
}

/// Per-op achieved-GFLOP/s floor gate: every baseline op must be present in
/// the current roofline report at >= baseline * (1 - tolerance/100). A
/// baseline entry may carry its own "tolerance" field to tighten (or relax)
/// the global --roofline-tolerance for that op: the high-arithmetic-intensity
/// kernels (matmul, conv2d) run long enough to be stable on shared runners,
/// so their rows hold a tighter floor than the noisy sub-millisecond ops.
/// Returns the number of failures (0 = pass).
int RunRooflineGate(const std::string& baseline_text, const std::string& source,
                    const RooflineDoc& doc, double tolerance_pct) {
  JsonValue root;
  std::string error;
  if (!JsonParser(baseline_text).Parse(&root, &error)) {
    Complain(source + ": " + error);
    return 1;
  }
  const JsonValue* ops = root.Is(kObj) ? root.FindOfKind("ops", kArr) : nullptr;
  if (ops == nullptr) {
    Complain(source + ": missing \"ops\" array");
    return 1;
  }
  int failures = 0;
  for (const JsonValue& entry : ops->items) {
    if (!entry.Is(kObj)) continue;
    const std::string name = StringOr(entry, "name", "?");
    const double base_gflops = NumberOr(entry, "gflops", kNan);
    if (!std::isfinite(base_gflops)) continue;
    double op_tolerance = NumberOr(entry, "tolerance", tolerance_pct);
    if (!std::isfinite(op_tolerance)) op_tolerance = tolerance_pct;
    const RooflineOp* match = nullptr;
    for (const RooflineOp& op : doc.ops) {
      if (op.name == name) match = &op;
    }
    if (match == nullptr) {
      std::printf("ROOFLINE GATE FAIL %s: op missing from current report\n",
                  name.c_str());
      ++failures;
      continue;
    }
    const double floor = base_gflops * (1.0 - op_tolerance / 100.0);
    if (!std::isfinite(match->achieved_gflops) ||
        match->achieved_gflops < floor) {
      std::printf("ROOFLINE GATE FAIL %s: %.6g GFLOP/s < %.6g (baseline "
                  "%.6g -%.3g%%)\n",
                  name.c_str(), match->achieved_gflops, floor, base_gflops,
                  op_tolerance);
      ++failures;
    } else {
      std::printf("ROOFLINE GATE ok   %s: %.6g GFLOP/s >= %.6g\n",
                  name.c_str(), match->achieved_gflops, floor);
    }
  }
  if (failures == 0) {
    std::printf("roofline gate OK: %zu op floor%s held\n", ops->items.size(),
                ops->items.size() == 1 ? "" : "s");
  }
  return failures;
}

// -- Self-test ----------------------------------------------------------------

constexpr const char kSelfTestLedger[] =
    "{\"record\":\"header\",\"schema\":1,\"run\":1,\"model\":\"STHSL\","
    "\"dataset\":{\"city\":\"NYC-small\",\"rows\":3,\"cols\":3,\"days\":120,"
    "\"categories\":4,\"generator_seed\":11},\"train_end\":90,"
    "\"train_seed\":7,\"config\":{}}\n"
    "{\"record\":\"epoch\",\"run\":1,\"epoch\":1,\"loss\":2.0,\"lr\":0.005,"
    "\"epoch_seconds\":0.1,\"windows\":32,\"grad_norm\":3.0,\"params\":[]}\n"
    "{\"record\":\"epoch\",\"run\":1,\"epoch\":2,\"loss\":1.0,\"lr\":0.004,"
    "\"epoch_seconds\":0.3,\"windows\":32,\"grad_norm\":2.0,"
    "\"validation_mae\":0.8,\"best_snapshot\":true,\"params\":[]}\n"
    "{\"record\":\"event\",\"run\":1,\"kind\":\"restore_best\",\"epoch\":2,"
    "\"value\":0.8}\n"
    "{\"record\":\"final\",\"run\":1,\"model\":\"STHSL\",\"city\":"
    "\"NYC-small\",\"overall\":{\"name\":\"overall\",\"mae\":0.5,"
    "\"mape\":0.3,\"rmse\":0.9,\"entries\":360},\"categories\":[]}\n";

int SelfTest() {
  int failures = 0;
  const auto expect = [&](bool ok, const char* label) {
    if (!ok) {
      std::fprintf(stderr, "SELFTEST FAIL: %s\n", label);
      ++failures;
    }
  };

  std::vector<RunSummary> runs;
  expect(ParseLedgerText(kSelfTestLedger, "<selftest>", &runs),
         "ledger parses");
  expect(runs.size() == 1, "one run extracted");
  if (runs.size() == 1) {
    const RunSummary& run = runs[0];
    expect(run.model == "STHSL" && run.city == "NYC-small",
           "model/city extracted");
    expect(run.epochs == 2, "epoch count");
    expect(std::fabs(run.final_loss - 1.0) < 1e-12, "final loss is last epoch");
    expect(std::fabs(run.best_val_mae - 0.8) < 1e-12, "best validation MAE");
    expect(std::fabs(run.mean_epoch_seconds - 0.2) < 1e-12,
           "mean epoch seconds");
    expect(run.has_final && std::fabs(run.test_mae - 0.5) < 1e-12,
           "final test MAE");
  }

  // Baseline round-trip: a gate against a self-emitted baseline passes.
  const std::string baseline = RenderBaseline(runs);
  expect(RunGate(baseline, "<selftest>", runs, 10.0, 100.0) == 0,
         "gate passes against own baseline");

  // Injected 20% MAE regression must fail a 10% gate.
  std::vector<RunSummary> regressed = runs;
  if (!regressed.empty()) regressed[0].test_mae *= 1.2;
  expect(RunGate(baseline, "<selftest>", regressed, 10.0, 100.0) > 0,
         "gate fails on 20% MAE regression at 10% tolerance");
  expect(RunGate(baseline, "<selftest>", regressed, 30.0, 100.0) == 0,
         "gate passes 20% regression at 30% tolerance");

  // A slower run must fail the time gate.
  std::vector<RunSummary> slower = runs;
  if (!slower.empty()) slower[0].mean_epoch_seconds *= 3.0;
  expect(RunGate(baseline, "<selftest>", slower, 10.0, 100.0) > 0,
         "gate fails on 3x epoch-time regression at 100% tolerance");

  // A missing model must fail the gate.
  const std::vector<RunSummary> empty;
  expect(RunGate(baseline, "<selftest>", empty, 10.0, 100.0) > 0,
         "gate fails when the baseline model has no current run");

  // Bench JSON parsing (table5 format).
  std::vector<BenchModel> bench;
  std::vector<ServeBench> serve_bench;
  std::vector<ParallelKernel> parallel;
  expect(ParseBenchText("{\"bench\":\"table5_efficiency\",\"models\":["
                        "{\"name\":\"STGCN\",\"nyc_epoch_seconds\":0.5,"
                        "\"chi_epoch_seconds\":0.4,\"ops\":[]}]}",
                        "<selftest>", &bench, &serve_bench, &parallel),
         "bench json parses");
  expect(bench.size() == 1 && bench[0].name == "STGCN" &&
             std::fabs(bench[0].nyc_epoch_seconds - 0.5) < 1e-12,
         "bench model extracted");
  std::vector<BenchModel> bad_bench;
  expect(!ParseBenchText("{\"bench\":\"x\"}", "<selftest>", &bad_bench,
                         &serve_bench, &parallel),
         "bench json without models rejected");

  // Thread-scaling bench parsing (bench_kernels BENCH_parallel format).
  expect(ParseBenchText(
             "{\"hardware_threads\": 8,\"kernels\": [{\"name\": "
             "\"gemm_nn_256\", \"serial_us\": 1000.0, \"threads\": ["
             "{\"threads\": 1, \"us\": 1000.0, \"speedup\": 1.0},"
             "{\"threads\": 4, \"us\": 300.0, \"speedup\": 3.333}]}]}",
             "<selftest>", &bench, &serve_bench, &parallel),
         "parallel bench json parses");
  expect(parallel.size() == 1 && parallel[0].name == "gemm_nn_256" &&
             parallel[0].points.size() == 2 &&
             std::fabs(parallel[0].points[1].speedup - 3.333) < 1e-9,
         "parallel kernel rows extracted");

  // Roofline parsing, baseline round-trip and gate.
  const char kRooflineSample[] =
      "{\"bench\":\"roofline\",\"peaks\":{\"cpu_model\":\"TestCPU\","
      "\"gflops_1t\":10,\"gbps_1t\":5,\"threads\":4,"
      "\"compute_roof_gflops\":40,\"memory_roof_gbps\":5,"
      "\"calibrated_utc\":\"2026-01-01T00:00:00Z\",\"from_cache\":false},"
      "\"ops\":[{\"name\":\"matmul\",\"calls\":3,\"flops\":200000000,"
      "\"bytes\":4000000,\"us\":50000,\"intensity\":50,"
      "\"achieved_gflops\":4,\"achieved_gbps\":0.08,\"roof_gflops\":40,"
      "\"pct_of_roof\":10,\"bound\":\"compute\",\"counters\":{\"cycles\":"
      "1000,\"instructions\":2000,\"l1d_misses\":10,\"llc_misses\":5,"
      "\"branch_misses\":1}},{\"name\":\"softmax\",\"calls\":3,"
      "\"flops\":327680,\"bytes\":524288,\"us\":100,\"intensity\":0.625,"
      "\"achieved_gflops\":3.2768,\"achieved_gbps\":5.24288,"
      "\"roof_gflops\":3.125,\"pct_of_roof\":104.9,\"bound\":\"memory\","
      "\"counters\":null},{\"name\":\"spmm\",\"calls\":3,"
      "\"flops\":1000000,\"bytes\":2000000,\"us\":1000,\"intensity\":0.5,"
      "\"achieved_gflops\":1,\"achieved_gbps\":2,\"roof_gflops\":2.5,"
      "\"pct_of_roof\":40,\"bound\":\"memory\",\"counters\":null},"
      "{\"name\":\"gather.bwd\",\"calls\":3,\"flops\":131072,"
      "\"bytes\":1048576,\"us\":500,\"intensity\":0.125,"
      "\"achieved_gflops\":0.262144,\"achieved_gbps\":2.097152,"
      "\"roof_gflops\":0.625,\"pct_of_roof\":41.9,\"bound\":\"memory\","
      "\"counters\":null}]}";
  RooflineDoc roofline;
  expect(ParseRooflineText(kRooflineSample, "<selftest>", &roofline),
         "roofline json parses");
  expect(roofline.ops.size() == 4 && roofline.cpu_model == "TestCPU" &&
             std::fabs(roofline.compute_roof_gflops - 40.0) < 1e-12,
         "roofline peaks extracted");
  expect(roofline.ops.size() == 4 && roofline.ops[2].name == "spmm" &&
             roofline.ops[3].name == "gather.bwd" &&
             std::fabs(roofline.ops[2].intensity - 0.5) < 1e-12,
         "sparse-kernel roofline rows extracted");
  expect(roofline.ops.size() == 4 && roofline.ops[0].has_counters &&
             std::fabs(roofline.ops[0].cycles - 1000.0) < 1e-12 &&
             !roofline.ops[1].has_counters,
         "roofline counters extracted, null counters skipped");
  RooflineDoc bad_roofline;
  expect(!ParseRooflineText("{\"bench\":\"roofline\"}", "<selftest>",
                            &bad_roofline),
         "roofline without peaks rejected");

  const std::string roofline_baseline = RenderRooflineBaseline(roofline);
  expect(RunRooflineGate(roofline_baseline, "<selftest>", roofline, 10.0) ==
             0,
         "roofline gate passes against own baseline");
  RooflineDoc slower_roofline = roofline;
  slower_roofline.ops[0].achieved_gflops *= 0.5;
  expect(RunRooflineGate(roofline_baseline, "<selftest>", slower_roofline,
                         10.0) > 0,
         "roofline gate fails on 2x GFLOP/s regression at 10% tolerance");
  expect(RunRooflineGate(roofline_baseline, "<selftest>", slower_roofline,
                         60.0) == 0,
         "roofline gate passes 2x regression at 60% tolerance");
  RooflineDoc missing_roofline = roofline;
  missing_roofline.ops.erase(missing_roofline.ops.begin());
  expect(RunRooflineGate(roofline_baseline, "<selftest>", missing_roofline,
                         10.0) > 0,
         "roofline gate fails when a baseline op disappears");
  // A per-op "tolerance" field tightens the floor for that op only.
  const char kPerOpBaseline[] =
      "{\"baseline\":\"sthsl_report_roofline\",\"schema\":1,\"ops\":["
      "{\"name\":\"matmul\",\"gflops\":4,\"tolerance\":10},"
      "{\"name\":\"softmax\",\"gflops\":3.2768}]}";
  expect(RunRooflineGate(kPerOpBaseline, "<selftest>", roofline, 60.0) == 0,
         "per-op tolerance passes at baseline performance");
  expect(RunRooflineGate(kPerOpBaseline, "<selftest>", slower_roofline,
                         60.0) > 0,
         "tight per-op floor fails a 2x regression the global would allow");

  // Serve bench parsing (sthsl_loadgen format): client latency plus the
  // server-side histograms scraped from /metrics, p99 included.
  expect(ParseBenchText(
             "{\"benchmark\":\"sthsl_serve\",\"connections\":2,"
             "\"seconds\":1.5,\"requests\":300,\"errors\":0,"
             "\"trace_mismatches\":0,\"cache_hits\":250,\"qps\":200,"
             "\"latency_us\":{\"mean\":90,\"p50\":80,\"p95\":200,"
             "\"p99\":400},\"server\":{\"serve/latency_us\":{\"count\":300,"
             "\"mean\":60,\"p50\":50,\"p95\":150,\"p99\":350},"
             "\"serve/stage/inference_us\":{\"count\":50,\"mean\":40,"
             "\"p50\":35,\"p95\":90,\"p99\":120}}}",
             "<selftest>", &bench, &serve_bench, &parallel),
         "serve bench json parses");
  expect(serve_bench.size() == 1, "one serve bench extracted");
  if (serve_bench.size() == 1) {
    const ServeBench& serve = serve_bench[0];
    expect(std::fabs(serve.qps - 200.0) < 1e-12 &&
               std::fabs(serve.trace_mismatches) < 1e-12,
           "serve bench totals extracted");
    expect(serve.rows.size() == 3, "client + 2 server histogram rows");
    expect(serve.rows.size() == 3 &&
               serve.rows[0].name == "client round_trip" &&
               std::fabs(serve.rows[0].p99 - 400.0) < 1e-12 &&
               std::fabs(serve.rows[0].count - 300.0) < 1e-12,
           "client row carries p99 and falls back to request count");
    expect(serve.rows.size() == 3 &&
               serve.rows[2].name == "serve/stage/inference_us" &&
               std::fabs(serve.rows[2].p99 - 120.0) < 1e-12,
           "server stage row carries p99");
  }
  std::vector<ServeBench> bad_serve;
  expect(!ParseBenchText("{\"benchmark\":\"sthsl_serve\",\"qps\":1}",
                         "<selftest>", &bench, &bad_serve, &parallel),
         "serve bench without latency_us rejected");

  if (failures == 0) {
    std::printf("selftest OK\n");
    return 0;
  }
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sthsl_report [options] <ledger.jsonl>...\n"
               "  --csv                  emit CSV instead of markdown\n"
               "  --bench FILE           include a BENCH_*.json table "
               "(table5 epoch times or\n"
               "                         sthsl_loadgen serve latency; "
               "repeatable)\n"
               "  --emit-baseline FILE   write a gate baseline from the "
               "aggregated runs\n"
               "  --gate FILE            compare runs against a baseline; "
               "exit 1 on regression\n"
               "  --tolerance P          allowed MAE regression %% "
               "(default 10)\n"
               "  --time-tolerance P     allowed epoch-seconds regression %% "
               "(default 50)\n"
               "  --roofline FILE        render a BENCH_roofline.json report "
               "as markdown\n"
               "  --emit-roofline-baseline FILE\n"
               "                         write per-op achieved-GFLOP/s "
               "baseline from --roofline\n"
               "  --gate-roofline FILE   enforce per-op GFLOP/s floors from "
               "a baseline\n"
               "                         against --roofline; exit 1 on "
               "regression\n"
               "  --roofline-tolerance P allowed GFLOP/s drop %% below "
               "baseline (default 50);\n"
               "                         a baseline op's own \"tolerance\" "
               "field overrides it\n"
               "  --selftest             run embedded checks\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  std::vector<std::string> ledger_paths;
  std::vector<std::string> bench_paths;
  std::vector<std::string> roofline_paths;
  std::string emit_baseline;
  std::string gate_path;
  std::string emit_roofline_baseline;
  std::string gate_roofline_path;
  double tolerance = 10.0;
  double time_tolerance = 50.0;
  double roofline_tolerance = 50.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--selftest") return SelfTest();
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--bench") {
      const char* value = next();
      if (value == nullptr) return Usage();
      bench_paths.push_back(value);
    } else if (arg == "--emit-baseline") {
      const char* value = next();
      if (value == nullptr) return Usage();
      emit_baseline = value;
    } else if (arg == "--gate") {
      const char* value = next();
      if (value == nullptr) return Usage();
      gate_path = value;
    } else if (arg == "--tolerance") {
      const char* value = next();
      if (value == nullptr) return Usage();
      tolerance = std::atof(value);
    } else if (arg == "--time-tolerance") {
      const char* value = next();
      if (value == nullptr) return Usage();
      time_tolerance = std::atof(value);
    } else if (arg == "--roofline") {
      const char* value = next();
      if (value == nullptr) return Usage();
      roofline_paths.push_back(value);
    } else if (arg == "--emit-roofline-baseline") {
      const char* value = next();
      if (value == nullptr) return Usage();
      emit_roofline_baseline = value;
    } else if (arg == "--gate-roofline") {
      const char* value = next();
      if (value == nullptr) return Usage();
      gate_roofline_path = value;
    } else if (arg == "--roofline-tolerance") {
      const char* value = next();
      if (value == nullptr) return Usage();
      roofline_tolerance = std::atof(value);
    } else if (arg.rfind("--", 0) == 0) {
      Complain("unknown option '" + arg + "'");
      return Usage();
    } else {
      ledger_paths.push_back(arg);
    }
  }
  if (ledger_paths.empty() && bench_paths.empty() && roofline_paths.empty()) {
    return Usage();
  }

  std::vector<RunSummary> runs;
  for (const std::string& path : ledger_paths) {
    std::string text;
    if (!LoadFile(path, &text)) return 1;
    if (!ParseLedgerText(text, path, &runs)) return 1;
  }
  std::vector<BenchModel> bench;
  std::vector<ServeBench> serve_bench;
  std::vector<ParallelKernel> parallel;
  for (const std::string& path : bench_paths) {
    std::string text;
    if (!LoadFile(path, &text)) return 1;
    if (!ParseBenchText(text, path, &bench, &serve_bench, &parallel)) {
      return 1;
    }
  }
  std::vector<RooflineDoc> rooflines;
  for (const std::string& path : roofline_paths) {
    std::string text;
    RooflineDoc doc;
    if (!LoadFile(path, &text)) return 1;
    if (!ParseRooflineText(text, path, &doc)) return 1;
    rooflines.push_back(std::move(doc));
  }

  if (csv) {
    PrintCsv(runs);
  } else {
    PrintMarkdown(runs);
    PrintBench(bench);
    PrintServeBench(serve_bench);
    PrintParallelBench(parallel);
    for (const RooflineDoc& doc : rooflines) PrintRoofline(doc);
  }

  if (!emit_roofline_baseline.empty()) {
    if (rooflines.empty()) {
      Complain("--emit-roofline-baseline requires --roofline FILE");
      return 1;
    }
    std::FILE* file = std::fopen(emit_roofline_baseline.c_str(), "w");
    if (file == nullptr) {
      Complain("cannot open " + emit_roofline_baseline + " for writing");
      return 1;
    }
    const std::string json = RenderRooflineBaseline(rooflines.front());
    std::fwrite(json.data(), 1, json.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::fprintf(stderr, "sthsl_report: wrote roofline baseline %s (%zu "
                 "op%s)\n",
                 emit_roofline_baseline.c_str(), rooflines.front().ops.size(),
                 rooflines.front().ops.size() == 1 ? "" : "s");
  }

  if (!emit_baseline.empty()) {
    std::FILE* file = std::fopen(emit_baseline.c_str(), "w");
    if (file == nullptr) {
      Complain("cannot open " + emit_baseline + " for writing");
      return 1;
    }
    const std::string json = RenderBaseline(runs);
    std::fwrite(json.data(), 1, json.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::fprintf(stderr, "sthsl_report: wrote baseline %s (%zu entr%s)\n",
                 emit_baseline.c_str(), runs.size(),
                 runs.size() == 1 ? "y" : "ies");
  }

  int gate_failures = 0;
  if (!gate_path.empty()) {
    std::string text;
    if (!LoadFile(gate_path, &text)) return 1;
    gate_failures += RunGate(text, gate_path, runs, tolerance, time_tolerance);
  }
  if (!gate_roofline_path.empty()) {
    if (rooflines.empty()) {
      Complain("--gate-roofline requires --roofline FILE");
      return 1;
    }
    std::string text;
    if (!LoadFile(gate_roofline_path, &text)) return 1;
    gate_failures += RunRooflineGate(text, gate_roofline_path,
                                     rooflines.front(), roofline_tolerance);
  }
  return gate_failures == 0 ? 0 : 1;
}
