// sthsl_loadgen — closed-loop load generator for sthsl_serve.
//
//   sthsl_loadgen --bundle DIR [--host 127.0.0.1] [--port 8080]
//                 [--connections 4] [--seconds 5] [--distinct-windows 16]
//                 [--min-qps 0] [--out BENCH_serve.json]
//
// Reads the bundle manifest to learn the window shape, waits for /healthz,
// then runs N closed-loop worker threads. Each worker holds one keep-alive
// connection and POSTs /v1/predict back-to-back, cycling through a small
// pool of distinct deterministic windows so the run exercises both the
// cache-miss (first pass) and cache-hit (subsequent passes) paths.
//
// Every request carries a unique W3C traceparent header; the server must
// echo the same trace id back (with a fresh span id) or the request counts
// as an error. After the run the tool scrapes GET /metrics (JSON) and
// prints the server-reported per-stage latency histograms next to the
// client-measured round-trip latency, so queue/batch/inference time can be
// separated from network and parse overhead without extra tooling.
//
// On completion it prints QPS and latency percentiles, writes them as JSON
// to --out (client numbers plus the scraped server stats under "server"),
// and exits non-zero if any request failed or QPS fell below --min-qps —
// which is what the CI smoke job gates on.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/bundle.h"
#include "util/json_mini.h"

namespace {

struct Options {
  std::string bundle_dir;
  std::string host = "127.0.0.1";
  int port = 8080;
  int connections = 4;
  double seconds = 5.0;
  int distinct_windows = 16;
  double min_qps = 0.0;
  std::string out = "BENCH_serve.json";
};

int Usage() {
  std::fprintf(stderr,
               "usage: sthsl_loadgen --bundle DIR [--host ADDR] [--port N]\n"
               "                     [--connections N] [--seconds S]\n"
               "                     [--distinct-windows N] [--min-qps Q]\n"
               "                     [--out FILE]\n");
  return 2;
}

// One blocking client connection. Minimal on purpose: the only server it
// must talk to is sthsl_serve, which always answers with Content-Length.
class Connection {
 public:
  ~Connection() { Close(); }

  bool Open(const std::string& host, int port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      Close();
      return false;
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool connected() const { return fd_ >= 0; }

  // Writes one buffer fully; workers send the per-request header block and
  // the pre-rendered body as two buffers to avoid copying the body just to
  // splice in a fresh traceparent header.
  bool SendAll(const std::string& data) {
    if (fd_ < 0) return false;
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads one response; fills `status` and `body`, and when `head` is
  // non-null the raw header block (for traceparent echo checks).
  bool ReadResponse(int* status, std::string* body, std::string* head_out) {
    // Read until the header block is complete, then until Content-Length
    // bytes of body have arrived. Leftover bytes stay in buffer_ for the
    // next response on this keep-alive connection.
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return false;
    }
    const std::string head = buffer_.substr(0, header_end);
    if (head_out != nullptr) *head_out = head;
    if (std::sscanf(head.c_str(), "HTTP/1.1 %d", status) != 1) return false;
    size_t content_length = 0;
    std::string lower(head);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    const size_t cl = lower.find("content-length:");
    if (cl != std::string::npos) {
      content_length = std::strtoul(head.c_str() + cl + 15, nullptr, 10);
    }
    const size_t body_start = header_end + 4;
    while (buffer_.size() < body_start + content_length) {
      if (!Fill()) return false;
    }
    *body = buffer_.substr(body_start, content_length);
    buffer_.erase(0, body_start + content_length);
    return true;
  }

  // Sends one request and reads one response; fills `status` and `body`.
  bool RoundTrip(const std::string& request, int* status, std::string* body) {
    return SendAll(request) && ReadResponse(status, body, nullptr);
  }

 private:
  bool Fill() {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

// Deterministic non-negative "crime counts" so re-runs hit the same cache
// keys; index k yields a window distinct from every other k.
std::string RenderPredictBody(const std::vector<int64_t>& shape, int k) {
  int64_t numel = 1;
  for (int64_t extent : shape) numel *= extent;
  std::string body = "{\"window\": [";
  uint32_t state = 2654435761u * static_cast<uint32_t>(k + 1);
  for (int64_t i = 0; i < numel; ++i) {
    state = state * 1664525u + 1013904223u;
    body += (i == 0 ? "" : ",") + std::to_string(state % 7);
  }
  body += "]}";
  return body;
}

std::string RenderRequest(const std::string& host, const std::string& target,
                          const std::string& body) {
  std::string request = body.empty() ? "GET " : "POST ";
  request += target + " HTTP/1.1\r\nHost: " + host + "\r\n";
  if (!body.empty()) {
    request += "Content-Type: application/json\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\n";
  }
  request += "Connection: keep-alive\r\n\r\n" + body;
  return request;
}

// Header block for a predict POST, left open so the worker can append its
// per-request traceparent line plus the terminating blank line, then send
// the (shared, pre-rendered) body as a second buffer.
std::string RenderPredictHead(const std::string& host, size_t body_size) {
  return "POST /v1/predict HTTP/1.1\r\nHost: " + host +
         "\r\nContent-Type: application/json\r\nContent-Length: " +
         std::to_string(body_size) + "\r\nConnection: keep-alive\r\n";
}

// Per-worker deterministic trace-id source (splitmix64). Distinct workers
// seed from their index so ids never collide within a run.
struct TraceIdSource {
  uint64_t state;
  uint64_t Next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return z != 0 ? z : 1;
  }
  std::string HexId(int hex_digits) {
    static const char* kDigits = "0123456789abcdef";
    std::string id(static_cast<size_t>(hex_digits), '0');
    for (int filled = 0; filled < hex_digits; filled += 16) {
      uint64_t value = Next();
      for (int i = 0; i < 16 && filled + i < hex_digits; ++i) {
        id[static_cast<size_t>(filled + i)] =
            kDigits[(value >> (60 - 4 * i)) & 0xF];
      }
    }
    return id;
  }
};

// Case-insensitive single-header lookup in a raw response header block.
std::string HeaderValue(const std::string& head, const std::string& name) {
  std::string lower(head);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  const std::string needle = "\r\n" + name + ":";
  const size_t at = lower.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  while (begin < head.size() && head[begin] == ' ') ++begin;
  size_t end = head.find("\r\n", begin);
  if (end == std::string::npos) end = head.size();
  return head.substr(begin, end - begin);
}

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  // Nearest-rank, matching obs::MetricsRegistry histogram percentiles.
  const size_t rank = static_cast<size_t>(
      std::max(1.0, std::ceil(p / 100.0 * sorted_us.size())));
  return sorted_us[std::min(rank, sorted_us.size()) - 1];
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string arg = argv[i];
    const std::string value = argv[i + 1];
    if (arg == "--bundle") opts.bundle_dir = value;
    else if (arg == "--host") opts.host = value;
    else if (arg == "--port") opts.port = std::atoi(value.c_str());
    else if (arg == "--connections") opts.connections = std::atoi(value.c_str());
    else if (arg == "--seconds") opts.seconds = std::atof(value.c_str());
    else if (arg == "--distinct-windows")
      opts.distinct_windows = std::atoi(value.c_str());
    else if (arg == "--min-qps") opts.min_qps = std::atof(value.c_str());
    else if (arg == "--out") opts.out = value;
    else return Usage();
  }
  if (opts.bundle_dir.empty() || opts.connections < 1 ||
      opts.distinct_windows < 1 || opts.seconds <= 0 || argc % 2 == 0) {
    return Usage();
  }

  auto manifest_or = sthsl::serve::ReadManifest(opts.bundle_dir);
  if (!manifest_or.ok()) {
    std::fprintf(stderr, "cannot read bundle manifest: %s\n",
                 manifest_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<int64_t> shape = manifest_or.value().WindowShape();

  // Wait for the server to come up: /healthz must answer 200 within ~10s.
  {
    bool healthy = false;
    const std::string probe = RenderRequest(opts.host, "/healthz", "");
    for (int attempt = 0; attempt < 100 && !healthy; ++attempt) {
      Connection probe_conn;
      int status = 0;
      std::string body;
      if (probe_conn.Open(opts.host, opts.port) &&
          probe_conn.RoundTrip(probe, &status, &body) && status == 200) {
        healthy = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!healthy) {
      std::fprintf(stderr, "server %s:%d did not become healthy within 10s\n",
                   opts.host.c_str(), opts.port);
      return 1;
    }
  }

  // Pre-render one body (and its open-ended header block) per distinct
  // window; workers cycle the bodies and append a fresh traceparent line
  // per request.
  std::vector<std::string> bodies;
  std::vector<std::string> heads;
  bodies.reserve(opts.distinct_windows);
  heads.reserve(opts.distinct_windows);
  for (int k = 0; k < opts.distinct_windows; ++k) {
    bodies.push_back(RenderPredictBody(shape, k));
    heads.push_back(RenderPredictHead(opts.host, bodies.back().size()));
  }

  std::atomic<uint64_t> total_requests{0};
  std::atomic<uint64_t> total_errors{0};
  std::atomic<uint64_t> trace_mismatches{0};
  std::atomic<uint64_t> cache_hits{0};
  std::vector<std::vector<double>> per_thread_latencies(opts.connections);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(opts.seconds);
  const auto bench_start = std::chrono::steady_clock::now();

  std::vector<std::thread> workers;
  for (int w = 0; w < opts.connections; ++w) {
    workers.emplace_back([&, w] {
      Connection conn;
      if (!conn.Open(opts.host, opts.port)) {
        total_errors.fetch_add(1);
        return;
      }
      std::vector<double>& latencies = per_thread_latencies[w];
      TraceIdSource ids{0x5354u + static_cast<uint64_t>(w) * 0x100000001b3ULL};
      // Offset each worker's cycle so they don't all hammer window 0 at once.
      size_t next = static_cast<size_t>(w) % bodies.size();
      while (std::chrono::steady_clock::now() < deadline) {
        const std::string trace_id = ids.HexId(32);
        const std::string header_block = heads[next] + "traceparent: 00-" +
                                         trace_id + "-" + ids.HexId(16) +
                                         "-01\r\n\r\n";
        const auto start = std::chrono::steady_clock::now();
        int status = 0;
        std::string body;
        std::string response_head;
        if (!conn.SendAll(header_block) || !conn.SendAll(bodies[next]) ||
            !conn.ReadResponse(&status, &body, &response_head) ||
            status != 200) {
          total_errors.fetch_add(1);
          if (!conn.connected() || !conn.Open(opts.host, opts.port)) return;
          continue;
        }
        const auto end = std::chrono::steady_clock::now();
        // The server must echo our trace id (with its own span id); a
        // mismatch means request-scoped tracing is broken and the run fails.
        const std::string echoed = HeaderValue(response_head, "traceparent");
        if (echoed.size() != 55 || echoed.substr(3, 32) != trace_id) {
          trace_mismatches.fetch_add(1);
        }
        latencies.push_back(
            std::chrono::duration<double, std::micro>(end - start).count());
        total_requests.fetch_add(1);
        if (body.find("\"cache_hit\": true") != std::string::npos) {
          cache_hits.fetch_add(1);
        }
        next = (next + 1) % bodies.size();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  std::vector<double> latencies;
  for (const auto& chunk : per_thread_latencies) {
    latencies.insert(latencies.end(), chunk.begin(), chunk.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const uint64_t ok = total_requests.load();
  const uint64_t errors = total_errors.load();
  const double qps = elapsed > 0 ? static_cast<double>(ok) / elapsed : 0.0;
  const double p50 = Percentile(latencies, 50.0);
  const double p95 = Percentile(latencies, 95.0);
  const double p99 = Percentile(latencies, 99.0);
  const double mean =
      latencies.empty()
          ? 0.0
          : std::accumulate(latencies.begin(), latencies.end(), 0.0) /
                static_cast<double>(latencies.size());

  const uint64_t mismatches = trace_mismatches.load();
  std::printf(
      "sthsl_loadgen: %llu ok, %llu errors, %llu trace mismatches in %.2fs "
      "over %d connections\n"
      "  qps %.1f | client latency µs mean %.0f p50 %.0f p95 %.0f p99 %.0f | "
      "cache hits %llu\n",
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(mismatches), elapsed, opts.connections,
      qps, mean, p50, p95, p99,
      static_cast<unsigned long long>(cache_hits.load()));

  // Scrape the server's own view: GET /metrics (JSON) and pull out the
  // serve/latency_us and serve/stage/* histograms. The gap between the
  // client round-trip and the server total is network + HTTP overhead;
  // the stage rows split the server total further.
  std::vector<std::pair<std::string, sthsl::json::JsonValue>> server_stats;
  {
    Connection scrape;
    int status = 0;
    std::string metrics_body;
    if (scrape.Open(opts.host, opts.port) &&
        scrape.RoundTrip(RenderRequest(opts.host, "/metrics", ""), &status,
                         &metrics_body) &&
        status == 200) {
      sthsl::json::JsonValue metrics;
      std::string error;
      sthsl::json::JsonParser parser(metrics_body);
      if (parser.Parse(&metrics, &error)) {
        const sthsl::json::JsonValue* histograms = metrics.FindOfKind(
            "histograms", sthsl::json::JsonValue::Kind::kObject);
        if (histograms != nullptr) {
          for (const auto& [name, snapshot] : histograms->members) {
            if (name == "serve/latency_us" ||
                name.rfind("serve/stage/", 0) == 0) {
              server_stats.emplace_back(name, snapshot);
            }
          }
        }
      } else {
        std::fprintf(stderr, "warning: /metrics JSON did not parse: %s\n",
                     error.c_str());
      }
    } else {
      std::fprintf(stderr, "warning: could not scrape /metrics after run\n");
    }
  }
  if (!server_stats.empty()) {
    std::printf("  server-reported latency (µs, from /metrics):\n");
    std::printf("    %-28s %8s %8s %8s %8s %8s\n", "histogram", "count",
                "mean", "p50", "p95", "p99");
    std::printf("    %-28s %8llu %8.0f %8.0f %8.0f %8.0f  (client-measured)\n",
                "round_trip", static_cast<unsigned long long>(ok), mean, p50,
                p95, p99);
    for (const auto& [name, snapshot] : server_stats) {
      const auto field = [&snapshot](const char* key) {
        const sthsl::json::JsonValue* value = snapshot.Find(key);
        return value != nullptr ? value->number : 0.0;
      };
      std::printf("    %-28s %8.0f %8.0f %8.0f %8.0f %8.0f\n", name.c_str(),
                  field("count"), field("mean"), field("p50"), field("p95"),
                  field("p99"));
    }
  }

  std::ofstream out(opts.out);
  out << "{\n"
      << "  \"benchmark\": \"sthsl_serve\",\n"
      << "  \"connections\": " << opts.connections << ",\n"
      << "  \"seconds\": " << elapsed << ",\n"
      << "  \"requests\": " << ok << ",\n"
      << "  \"errors\": " << errors << ",\n"
      << "  \"trace_mismatches\": " << mismatches << ",\n"
      << "  \"cache_hits\": " << cache_hits.load() << ",\n"
      << "  \"qps\": " << qps << ",\n"
      << "  \"latency_us\": {\"mean\": " << mean << ", \"p50\": " << p50
      << ", \"p95\": " << p95 << ", \"p99\": " << p99 << "},\n"
      << "  \"server\": {";
  for (size_t i = 0; i < server_stats.size(); ++i) {
    const auto& [name, snapshot] = server_stats[i];
    const auto field = [&snapshot](const char* key) {
      const sthsl::json::JsonValue* value = snapshot.Find(key);
      return value != nullptr ? value->number : 0.0;
    };
    out << (i == 0 ? "" : ", ") << sthsl::json::JsonQuote(name) << ": {\"count\": "
        << field("count") << ", \"mean\": " << field("mean")
        << ", \"p50\": " << field("p50") << ", \"p95\": " << field("p95")
        << ", \"p99\": " << field("p99") << "}";
  }
  out << "}\n"
      << "}\n";
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opts.out.c_str());
    return 1;
  }

  if (errors > 0) {
    std::fprintf(stderr, "FAIL: %llu request error(s)\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "FAIL: %llu traceparent echo mismatch(es)\n",
                 static_cast<unsigned long long>(mismatches));
    return 1;
  }
  if (opts.min_qps > 0 && qps < opts.min_qps) {
    std::fprintf(stderr, "FAIL: qps %.1f below gate %.1f\n", qps, opts.min_qps);
    return 1;
  }
  return 0;
}
