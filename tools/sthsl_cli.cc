// sthsl — command-line interface to the library, covering the full
// lifecycle a downstream user needs without writing C++:
//
//   sthsl generate      --city nyc --out data.csv [--seed N] [--days N]
//   sthsl train         --data data.csv --ckpt model.bin [--epochs N] [...]
//   sthsl evaluate      --data data.csv --ckpt model.bin
//   sthsl forecast      --data data.csv --ckpt model.bin [--horizon N]
//   sthsl export-bundle --data data.csv --ckpt model.bin --out bundle/
//   sthsl predict       --bundle bundle/ --data data.csv [--day T]
//   sthsl stats         --data data.csv
//
// Checkpoints store only parameters; `train`, `evaluate`, `forecast` and
// `export-bundle` must be invoked with the same architecture flags (--dim,
// --hyper, --kernel, --window) for shapes to line up — mismatches are
// rejected by the strict checkpoint loader. A bundle directory is
// self-describing (manifest + weights), so `predict` and the sthsl_serve
// service need no architecture flags at all.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/forecaster.h"
#include "core/multi_step.h"
#include "core/sthsl_model.h"
#include "data/generator.h"
#include "data/stats.h"
#include "exec/exec.h"
#include "nn/serialization.h"
#include "serve/bundle.h"
#include "util/obs/calibrate.h"
#include "util/obs/obs.h"

using namespace sthsl;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atoll(it->second.c_str());
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: sthsl_cli <command> [options]\n"
      "  generate --city nyc|chicago --out FILE [--seed N] [--days N]\n"
      "  train    --data FILE --ckpt FILE [--epochs N] [--dim N]\n"
      "           [--hyper N] [--kernel N] [--window N] [--steps N]\n"
      "           [--train-seed N] [--run-log FILE]\n"
      "  evaluate --data FILE --ckpt FILE [architecture flags]\n"
      "  forecast --data FILE --ckpt FILE [--horizon N] [arch flags]\n"
      "  export-bundle --data FILE --ckpt FILE --out DIR [arch flags]\n"
      "           [--gen-seed N]   package the checkpoint as a\n"
      "           self-describing bundle dir (manifest.json + weights.bin)\n"
      "           for sthsl_serve / predict; records dataset geometry,\n"
      "           normalization moments and provenance\n"
      "  predict  --bundle DIR --data FILE [--day T]\n"
      "           one-shot offline prediction: feed the --window days\n"
      "           ending at day T (default: end of file) through the\n"
      "           bundled model, print per-region/category forecasts\n"
      "  stats    --data FILE [--verbose 1] [--window N]\n"
      "           --verbose 1 adds storage mode, tensor nnz/density and a\n"
      "           per-window (default len 14) sparsity summary\n"
      "  calibrate [--force 1] [--budget-ms N]\n"
      "           measure this machine's single-thread FMA GFLOP/s and\n"
      "           stream-triad GB/s for the roofline reporter; results are\n"
      "           cached per CPU model (~/.cache/sthsl/machine_peaks.json,\n"
      "           STHSL_CACHE_DIR overrides) — --force 1 remeasures\n"
      "execution (any command):\n"
      "  --threads N         kernel thread count (default: STHSL_THREADS or\n"
      "                      all hardware threads; results are bitwise\n"
      "                      identical at any value)\n"
      "observability (any command):\n"
      "  --trace-out FILE    enable tracing, write chrome://tracing JSON\n"
      "  --metrics-out FILE  enable tracing, write metrics/op-profile JSON\n"
      "  (STHSL_TRACE=1 in the environment enables the same machinery)\n"
      "  --run-log FILE      (train only) append a JSONL run ledger: config,\n"
      "                      per-epoch loss/grad-flow stats, final metrics\n"
      "  (STHSL_RUN_LOG=FILE in the environment is the process default)\n");
  return 2;
}

SthslConfig ConfigFromArgs(const Args& args) {
  SthslConfig config;
  config.dim = args.GetInt("dim", 16);
  config.num_hyperedges = args.GetInt("hyper", 32);
  config.kernel_size = args.GetInt("kernel", 3);
  config.train.window = args.GetInt("window", 14);
  config.train.epochs = args.GetInt("epochs", 12);
  config.train.max_steps_per_epoch = args.GetInt("steps", 16);
  config.train.seed = static_cast<uint64_t>(args.GetInt("train-seed", 7));
  return config;
}

Result<CrimeDataset> LoadData(const Args& args) {
  const std::string path = args.Get("data", "");
  if (path.empty()) return Status::InvalidArgument("--data is required");
  return CrimeDataset::LoadCsv(path);
}

// Builds a forecaster whose network is materialized (via a minimal Fit) so
// a checkpoint can be loaded into it.
SthslForecaster MaterializeModel(const SthslConfig& config,
                                 const CrimeDataset& data,
                                 int64_t train_end) {
  SthslConfig init = config;
  init.train.epochs = 1;
  init.train.max_steps_per_epoch = 1;
  init.train.validation_days = 0;
  SthslForecaster model(init);
  model.Fit(data, train_end);
  return model;
}

int CmdGenerate(const Args& args) {
  CrimeGenConfig gen = args.Get("city", "nyc") == "chicago"
                           ? ChicagoSmallPreset()
                           : NycSmallPreset();
  if (args.options.count("days")) {
    const int64_t days = args.GetInt("days", gen.days);
    // Rescale category totals so the per-day intensity stays calibrated.
    for (auto& total : gen.category_totals) {
      total *= static_cast<double>(days) / static_cast<double>(gen.days);
    }
    gen.days = days;
  }
  if (args.options.count("seed")) {
    gen.seed = static_cast<uint64_t>(args.GetInt("seed", 0));
  }
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 2;
  }
  CrimeDataset data = GenerateCrimeData(gen);
  Status status = data.SaveCsv(out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %lld regions x %lld days x %lld categories\n",
              out.c_str(), static_cast<long long>(data.num_regions()),
              static_cast<long long>(data.num_days()),
              static_cast<long long>(data.num_categories()));
  return 0;
}

int CmdTrain(const Args& args) {
  auto data_or = LoadData(args);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const CrimeDataset& data = data_or.value();
  const int64_t train_end = data.num_days() - data.num_days() / 8;
  SthslConfig config = ConfigFromArgs(args);
  // Run-ledger output is wired here (not in ConfigFromArgs): evaluate and
  // forecast also build TrainConfigs for checkpoint materialization, and
  // those throwaway one-step fits must not be ledgered.
  config.train.run_log = args.Get("run-log", "");
  SthslForecaster model(config);
  std::printf("training ST-HSL (%lld epochs) on days [0, %lld)...\n",
              static_cast<long long>(config.train.epochs),
              static_cast<long long>(train_end));
  model.Fit(data, train_end);

  const std::string ckpt = args.Get("ckpt", "");
  if (!ckpt.empty()) {
    Status status = SaveCheckpoint(*model.net(), ckpt);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint written to %s\n", ckpt.c_str());
  }
  CrimeMetrics metrics =
      EvaluateForecaster(model, data, train_end, data.num_days());
  const EvalResult overall = metrics.Overall();
  std::printf("test MAE %.4f  MAPE %.4f  RMSE %.4f\n", overall.mae,
              overall.mape, overall.rmse);
  return 0;
}

int CmdEvaluate(const Args& args) {
  auto data_or = LoadData(args);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const CrimeDataset& data = data_or.value();
  const int64_t train_end = data.num_days() - data.num_days() / 8;
  SthslForecaster model =
      MaterializeModel(ConfigFromArgs(args), data, train_end);
  Status status = LoadCheckpoint(*model.mutable_net(), args.Get("ckpt", ""));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  CrimeMetrics metrics =
      EvaluateForecaster(model, data, train_end, data.num_days());
  for (int64_t c = 0; c < data.num_categories(); ++c) {
    const EvalResult r = metrics.Category(c);
    std::printf("%-12s MAE %.4f  MAPE %.4f  RMSE %.4f\n",
                data.category_names()[static_cast<size_t>(c)].c_str(), r.mae,
                r.mape, r.rmse);
  }
  const EvalResult overall = metrics.Overall();
  std::printf("%-12s MAE %.4f  MAPE %.4f  RMSE %.4f  hit-rate@3 %.2f\n",
              "overall", overall.mae, overall.mape, overall.rmse,
              metrics.HitRateAtK(std::min<int64_t>(3, data.num_regions())));
  return 0;
}

int CmdForecast(const Args& args) {
  auto data_or = LoadData(args);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const CrimeDataset& data = data_or.value();
  const int64_t horizon = args.GetInt("horizon", 7);
  SthslForecaster model =
      MaterializeModel(ConfigFromArgs(args), data, data.num_days());
  Status status = LoadCheckpoint(*model.mutable_net(), args.Get("ckpt", ""));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  auto forecasts = ForecastHorizon(model, data, data.num_days(), horizon);
  std::printf("citywide expected incidents per category, next %lld days:\n",
              static_cast<long long>(horizon));
  std::printf("%-6s", "day");
  for (const auto& cat : data.category_names()) {
    std::printf("%12s", cat.substr(0, 10).c_str());
  }
  std::printf("\n");
  for (size_t h = 0; h < forecasts.size(); ++h) {
    std::printf("+%-5zu", h + 1);
    for (int64_t c = 0; c < data.num_categories(); ++c) {
      double total = 0.0;
      for (int64_t r = 0; r < data.num_regions(); ++r) {
        total += forecasts[h].At({r, c});
      }
      std::printf("%12.1f", total);
    }
    std::printf("\n");
  }
  return 0;
}

// Runs `git rev-parse HEAD` so bundles record which tree produced them;
// "unknown" when git (or a repo) is unavailable, e.g. from an installed tree.
std::string GitHashOrUnknown() {
  std::string hash;
  if (FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, pipe) != nullptr) hash = buf;
    pclose(pipe);
  }
  while (!hash.empty() && (hash.back() == '\n' || hash.back() == '\r')) {
    hash.pop_back();
  }
  return hash.empty() ? "unknown" : hash;
}

int CmdExportBundle(const Args& args) {
  auto data_or = LoadData(args);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out DIR is required\n");
    return 2;
  }
  const CrimeDataset& data = data_or.value();
  const int64_t train_end = data.num_days() - data.num_days() / 8;
  SthslForecaster model =
      MaterializeModel(ConfigFromArgs(args), data, train_end);
  Status status = LoadCheckpoint(*model.mutable_net(), args.Get("ckpt", ""));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  serve::BundleManifest provenance;
  provenance.city = data.city_name();
  provenance.category_names = data.category_names();
  provenance.generator_seed = args.GetInt("gen-seed", -1);
  provenance.git_hash = GitHashOrUnknown();
  provenance.tool = "sthsl_cli export-bundle";
  status = serve::WriteBundle(model, out, provenance);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "bundle written to %s: model %s, city %s, window %lld, "
      "grid %lldx%lld, %lld categories\n",
      out.c_str(), model.Name().c_str(), data.city_name().c_str(),
      static_cast<long long>(model.train_config().window),
      static_cast<long long>(data.rows()), static_cast<long long>(data.cols()),
      static_cast<long long>(data.num_categories()));
  return 0;
}

int CmdPredict(const Args& args) {
  const std::string bundle_dir = args.Get("bundle", "");
  if (bundle_dir.empty()) {
    std::fprintf(stderr, "--bundle DIR is required\n");
    return 2;
  }
  auto bundle_or = serve::LoadBundle(bundle_dir);
  if (!bundle_or.ok()) {
    std::fprintf(stderr, "%s\n", bundle_or.status().ToString().c_str());
    return 1;
  }
  const serve::BundleManifest& manifest = bundle_or.value().manifest;
  auto data_or = LoadData(args);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const CrimeDataset& data = data_or.value();
  if (data.num_regions() != manifest.num_regions() ||
      data.num_categories() != manifest.categories) {
    std::fprintf(stderr,
                 "dataset geometry (%lld regions, %lld categories) does not "
                 "match bundle %s (%lld regions, %lld categories)\n",
                 static_cast<long long>(data.num_regions()),
                 static_cast<long long>(data.num_categories()),
                 bundle_dir.c_str(),
                 static_cast<long long>(manifest.num_regions()),
                 static_cast<long long>(manifest.categories));
    return 1;
  }
  const int64_t window = manifest.config.train.window;
  const int64_t day = args.GetInt("day", data.num_days());
  if (day < window || day > data.num_days()) {
    std::fprintf(stderr,
                 "--day %lld out of range: need window of %lld days, file "
                 "has %lld\n",
                 static_cast<long long>(day), static_cast<long long>(window),
                 static_cast<long long>(data.num_days()));
    return 1;
  }

  Tensor input = data.WindowInput(day, window);
  std::vector<Tensor> predictions =
      bundle_or.value().model->PredictWindows({input});
  const Tensor& prediction = predictions.front();

  std::printf("prediction for day %lld (window [%lld, %lld), model %s):\n",
              static_cast<long long>(day), static_cast<long long>(day - window),
              static_cast<long long>(day), manifest.model.c_str());
  std::printf("%-12s %10s %10s  %s\n", "category", "citywide", "max-cell",
              "hotspot");
  for (int64_t c = 0; c < manifest.categories; ++c) {
    double total = 0.0;
    double max_value = -1.0;
    int64_t max_region = 0;
    for (int64_t r = 0; r < manifest.num_regions(); ++r) {
      const double value = prediction.At({r, c});
      total += value;
      if (value > max_value) {
        max_value = value;
        max_region = r;
      }
    }
    std::printf("%-12s %10.2f %10.3f  (%lld, %lld)\n",
                manifest.category_names[static_cast<size_t>(c)].c_str(), total,
                max_value, static_cast<long long>(max_region / manifest.cols),
                static_cast<long long>(max_region % manifest.cols));
  }
  return 0;
}

int CmdStats(const Args& args) {
  auto data_or = LoadData(args);
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const CrimeDataset& data = data_or.value();
  std::printf("%s: %lldx%lld grid (%lld regions), %lld days\n",
              data.city_name().c_str(), static_cast<long long>(data.rows()),
              static_cast<long long>(data.cols()),
              static_cast<long long>(data.num_regions()),
              static_cast<long long>(data.num_days()));
  for (int64_t c = 0; c < data.num_categories(); ++c) {
    std::printf("  %-12s %10.0f cases  gini %.3f\n",
                data.category_names()[static_cast<size_t>(c)].c_str(),
                data.CategoryTotal(c), SpatialGini(data, c));
  }
  auto histogram = DensityHistogram(data, 0.25);
  std::printf("  density bins (0.25 wide):");
  for (int64_t count : histogram) {
    std::printf(" %lld", static_cast<long long>(count));
  }
  std::printf("\n");
  if (args.GetInt("verbose", 0) != 0) {
    // Sparsity of the tensor the model actually consumes: global fill plus
    // per-window nnz/density over every training-window-sized slice.
    std::printf("  storage: %s  nnz %lld / %lld cells  density %.4f\n",
                data.sparse_storage() ? "sparse (COO)" : "dense",
                static_cast<long long>(data.Nnz()),
                static_cast<long long>(data.num_regions() * data.num_days() *
                                       data.num_categories()),
                data.Density());
    const int64_t window =
        std::min<int64_t>(args.GetInt("window", 14), data.num_days());
    const WindowDensitySummary windows =
        SummarizeWindowDensity(data, window);
    std::printf(
        "  windows (len %lld, %lld total): nnz min %lld mean %.1f max %lld"
        "  density min %.4f mean %.4f max %.4f\n",
        static_cast<long long>(windows.window),
        static_cast<long long>(windows.num_windows),
        static_cast<long long>(windows.min_nnz), windows.mean_nnz,
        static_cast<long long>(windows.max_nnz), windows.min_density,
        windows.mean_density, windows.max_density);
  }
  return 0;
}

int CmdCalibrate(const Args& args) {
  const bool force = args.GetInt("force", 0) != 0;
  const double budget =
      static_cast<double>(args.GetInt("budget-ms", 1000)) / 1e3;
  const obs::MachinePeaks peaks = obs::CalibrateMachinePeaks(force, budget);
  if (!peaks.valid()) {
    std::fprintf(stderr, "machine-peak calibration failed\n");
    return 1;
  }
  std::printf("cpu:       %s\n", peaks.cpu_model.c_str());
  std::printf("threads:   %d hardware, %d configured\n",
              peaks.hardware_threads, exec::ThreadCount());
  std::printf("fma peak:  %.2f GFLOP/s (single thread)\n", peaks.gflops_1t);
  std::printf("triad bw:  %.2f GB/s (single thread)\n", peaks.gbps_1t);
  std::printf("measured:  %s%s\n", peaks.created_utc.c_str(),
              peaks.from_cache ? " [from cache]" : "");
  std::printf("cache:     %s\n", obs::PeaksCachePath().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return Usage();
    args.options[argv[i] + 2] = argv[i + 1];
  }
  // Kernel thread count: flag wins over the STHSL_THREADS environment
  // variable (which the exec layer reads on first use).
  if (args.options.count("threads")) {
    exec::SetThreadCount(static_cast<int>(args.GetInt("threads", 0)));
  }
  // Observability flags: either one switches tracing on; the files are
  // written by the process-exit flush.
  const std::string trace_out = args.Get("trace-out", "");
  const std::string metrics_out = args.Get("metrics-out", "");
  if (!trace_out.empty() || !metrics_out.empty()) {
    obs::SetTraceEnabled(true);
    if (!trace_out.empty()) obs::SetTraceOutPath(trace_out);
    if (!metrics_out.empty()) obs::SetMetricsOutPath(metrics_out);
  }
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "train") return CmdTrain(args);
  if (args.command == "evaluate") return CmdEvaluate(args);
  if (args.command == "forecast") return CmdForecast(args);
  if (args.command == "export-bundle") return CmdExportBundle(args);
  if (args.command == "predict") return CmdPredict(args);
  if (args.command == "stats") return CmdStats(args);
  if (args.command == "calibrate") return CmdCalibrate(args);
  return Usage();
}
