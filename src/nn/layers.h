#ifndef STHSL_NN_LAYERS_H_
#define STHSL_NN_LAYERS_H_

#include <cstdint>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace sthsl {

/// Fully-connected layer: y = x W + b. Accepts (..., in_features) inputs;
/// leading dims are flattened into the batch.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool with_bias = true);

  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // (in, out)
  Tensor bias_;    // (out) or undefined
};

/// Stride-1 2-D convolution layer with same/valid padding.
class Conv2dLayer : public Module {
 public:
  /// `pad_h`/`pad_w` = -1 means "same" padding ((k-1)/2, odd kernels only).
  Conv2dLayer(int64_t in_channels, int64_t out_channels, int64_t kh,
              int64_t kw, Rng& rng, int64_t pad_h = -1, int64_t pad_w = -1,
              bool with_bias = true);

  /// input (N, Cin, H, W) -> (N, Cout, H', W').
  Tensor Forward(const Tensor& x) const;

 private:
  Tensor weight_;
  Tensor bias_;
  int64_t pad_h_;
  int64_t pad_w_;
};

/// Stride-1 1-D convolution layer.
class Conv1dLayer : public Module {
 public:
  Conv1dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel,
              Rng& rng, int64_t pad = -1, bool with_bias = true);

  /// input (N, Cin, L) -> (N, Cout, L').
  Tensor Forward(const Tensor& x) const;

 private:
  Tensor weight_;
  Tensor bias_;
  int64_t pad_;
};

/// Dropout layer; active only in training mode.
class DropoutLayer : public Module {
 public:
  DropoutLayer(float p, Rng& rng) : p_(p), rng_(rng.Fork()) {}

  Tensor Forward(const Tensor& x) const;

 private:
  float p_;
  mutable Rng rng_;
};

/// Layer normalization over the last dimension with learnable gain/bias.
class LayerNorm : public Module {
 public:
  LayerNorm(int64_t features, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gain_;
  Tensor bias_;
  float eps_;
};

/// Gated recurrent unit cell.
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  /// x (B, input), h (B, hidden) -> next hidden (B, hidden).
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  Linear input_proj_;   // x -> 3*hidden (r, z, n gates)
  Linear hidden_proj_;  // h -> 3*hidden
};

/// Unrolled GRU over a sequence.
class Gru : public Module {
 public:
  Gru(int64_t input_size, int64_t hidden_size, Rng& rng);

  /// x (B, T, input) -> hidden states (B, T, hidden). Initial state zero.
  Tensor Forward(const Tensor& x) const;

  /// Last hidden state only: (B, hidden).
  Tensor ForwardLast(const Tensor& x) const;

 private:
  GruCell cell_;
};

/// Scaled dot-product multi-head self-attention (no masking).
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, Rng& rng);

  /// x (B, T, dim) -> (B, T, dim).
  Tensor Forward(const Tensor& x) const;

 private:
  int64_t dim_;
  int64_t num_heads_;
  Linear query_proj_;
  Linear key_proj_;
  Linear value_proj_;
  Linear out_proj_;
};

}  // namespace sthsl

#endif  // STHSL_NN_LAYERS_H_
