#ifndef STHSL_NN_SERIALIZATION_H_
#define STHSL_NN_SERIALIZATION_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace sthsl {

/// Saves all named parameters of `module` to a binary checkpoint at `path`.
/// Format: magic + version header, then one record per parameter
/// (name, shape, float32 payload). Deterministic and platform-independent
/// for little-endian machines.
Status SaveCheckpoint(const Module& module, const std::string& path);

/// Loads a checkpoint produced by SaveCheckpoint into `module`. Every
/// parameter of `module` must be present in the file with a matching shape;
/// extra entries in the file are an error (strict loading catches
/// architecture drift early).
Status LoadCheckpoint(Module& module, const std::string& path);

}  // namespace sthsl

#endif  // STHSL_NN_SERIALIZATION_H_
