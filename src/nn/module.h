#ifndef STHSL_NN_MODULE_H_
#define STHSL_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace sthsl {

/// Base class for neural-network building blocks.
///
/// A Module owns trainable parameters and references child modules (which
/// are data members of the derived class, registered by pointer). It
/// provides recursive parameter collection for the optimizer and a
/// train/eval flag consumed by dropout-style layers.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children (depth-first).
  std::vector<Tensor> Parameters() const;

  /// Same traversal as Parameters(), but exposed on a non-const module for
  /// callers that rewrite parameter buffers in place (EMA swaps, snapshot
  /// restores, checkpoint loading). Mutating through handles obtained from
  /// the const accessor requires const_cast, which the repo lint forbids.
  std::vector<Tensor> MutableParameters();

  /// Named parameters, prefixed with the registration path (for debugging
  /// and checkpoints).
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Switches this module and all children between training and evaluation
  /// behaviour (affects dropout).
  void SetTraining(bool training);
  bool IsTraining() const { return training_; }

  /// Total number of scalar parameters (for the efficiency study).
  int64_t NumParameters() const;

 protected:
  /// Registers a leaf parameter; returns it for storage in the subclass.
  Tensor RegisterParameter(const std::string& name, Tensor param);

  /// Registers a child module (must outlive this module; typically a data
  /// member of the subclass).
  void RegisterModule(const std::string& name, Module* child);

 private:
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace sthsl

#endif  // STHSL_NN_MODULE_H_
