#include "nn/serialization.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <vector>

namespace sthsl {
namespace {

constexpr char kMagic[8] = {'S', 'T', 'H', 'S', 'L', 'C', 'K', '1'};

void WriteU64(std::ostream& os, uint64_t value) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xff);
  }
  os.write(reinterpret_cast<const char*>(bytes), 8);
}

bool ReadU64(std::istream& is, uint64_t* value) {
  unsigned char bytes[8];
  if (!is.read(reinterpret_cast<char*>(bytes), 8)) return false;
  *value = 0;
  for (int i = 0; i < 8; ++i) {
    *value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return true;
}

std::string ShapeString(const std::vector<int64_t>& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

int64_t NumelOfShape(const std::vector<int64_t>& shape) {
  int64_t numel = 1;
  for (int64_t extent : shape) numel *= extent;
  return numel;
}

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open checkpoint for writing: " + path);
  }
  file.write(kMagic, sizeof(kMagic));
  const auto named = module.NamedParameters();
  WriteU64(file, named.size());
  for (const auto& [name, param] : named) {
    WriteU64(file, name.size());
    file.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto& shape = param.Shape();
    WriteU64(file, shape.size());
    for (int64_t extent : shape) {
      WriteU64(file, static_cast<uint64_t>(extent));
    }
    const auto& data = param.Data();
    file.write(reinterpret_cast<const char*>(data.data()),
               static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  file.flush();
  if (!file.good()) return Status::IoError("checkpoint write failed: " + path);
  return Status::Ok();
}

Status LoadCheckpoint(Module& module, const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open checkpoint for reading: " + path);
  }
  // Every size field read below is bounds-checked against the bytes actually
  // present in the file before any allocation, so a truncated or corrupt
  // checkpoint yields an error Status instead of a bad_alloc/length_error
  // (or an attempt to read gigabytes from a garbage size field).
  file.seekg(0, std::ios::end);
  const std::streamoff file_size = file.tellg();
  file.seekg(0, std::ios::beg);
  if (file_size < 0) {
    return Status::IoError("cannot determine checkpoint size: " + path);
  }
  auto remaining = [&file, file_size]() -> uint64_t {
    const std::streamoff pos = file.tellg();
    if (pos < 0 || pos > file_size) return 0;
    return static_cast<uint64_t>(file_size - pos);
  };

  char magic[sizeof(kMagic)];
  if (!file.read(magic, sizeof(magic)) ||
      !std::equal(magic, magic + sizeof(magic), kMagic)) {
    return Status::InvalidArgument("not an ST-HSL checkpoint: " + path);
  }
  uint64_t count = 0;
  if (!ReadU64(file, &count)) {
    return Status::IoError("truncated checkpoint header: " + path);
  }
  // Each entry needs at least a name size, a rank and an empty name/shape.
  if (count > remaining() / 16) {
    return Status::IoError("corrupt checkpoint parameter count in " + path);
  }

  struct Entry {
    std::vector<int64_t> shape;
    std::vector<float> data;
  };
  std::map<std::string, Entry> entries;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_size = 0;
    if (!ReadU64(file, &name_size) || name_size > 4096 ||
        name_size > remaining()) {
      return Status::IoError("corrupt checkpoint entry in " + path);
    }
    std::string name(name_size, '\0');
    if (!file.read(name.data(), static_cast<std::streamsize>(name_size))) {
      return Status::IoError("truncated checkpoint name in " + path);
    }
    uint64_t rank = 0;
    if (!ReadU64(file, &rank) || rank > 16) {
      return Status::IoError("corrupt checkpoint shape in " + path);
    }
    Entry entry;
    uint64_t numel = 1;
    for (uint64_t d = 0; d < rank; ++d) {
      uint64_t extent = 0;
      if (!ReadU64(file, &extent)) {
        return Status::IoError("truncated checkpoint shape in " + path);
      }
      if (extent != 0 && numel > remaining() / extent) {
        return Status::IoError("corrupt checkpoint extent in " + path);
      }
      entry.shape.push_back(static_cast<int64_t>(extent));
      numel *= extent;
    }
    if (numel * sizeof(float) > remaining()) {
      return Status::IoError("truncated checkpoint payload in " + path);
    }
    entry.data.resize(numel);
    if (!file.read(reinterpret_cast<char*>(entry.data.data()),
                   static_cast<std::streamsize>(numel * sizeof(float)))) {
      return Status::IoError("truncated checkpoint payload in " + path);
    }
    entries.emplace(std::move(name), std::move(entry));
  }

  auto named = module.NamedParameters();
  if (named.size() != entries.size()) {
    return Status::FailedPrecondition(
        "checkpoint has " + std::to_string(entries.size()) +
        " parameters but module expects " + std::to_string(named.size()));
  }
  for (auto& [name, param] : named) {
    const auto it = entries.find(name);
    if (it == entries.end()) {
      return Status::NotFound("checkpoint missing parameter: " + name);
    }
    if (it->second.shape != param.Shape()) {
      return Status::FailedPrecondition(
          "shape mismatch for parameter '" + name + "': module expects " +
          ShapeString(param.Shape()) + " (" +
          std::to_string(NumelOfShape(param.Shape())) +
          " elements) but checkpoint " + path + " has " +
          ShapeString(it->second.shape) + " (" +
          std::to_string(NumelOfShape(it->second.shape)) + " elements)");
    }
    param.MutableData() = it->second.data;
  }
  return Status::Ok();
}

}  // namespace sthsl
