#include "nn/layers.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace sthsl {

// -- Linear ---------------------------------------------------------------------

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight", Tensor::XavierUniform({in_features, out_features}, rng,
                                      in_features, out_features));
  if (with_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}, true));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  STHSL_CHECK_GE(x.Dim(), 1);
  STHSL_CHECK_EQ(x.Size(-1), in_features_) << "Linear input feature mismatch";
  const auto in_shape = x.Shape();
  Tensor flat = x.Dim() == 2 ? x : Reshape(x, {-1, in_features_});
  Tensor out = MatMul(flat, weight_);
  if (bias_.Defined()) out = out + bias_;
  if (x.Dim() != 2) {
    std::vector<int64_t> out_shape(in_shape.begin(), in_shape.end() - 1);
    out_shape.push_back(out_features_);
    out = Reshape(out, std::move(out_shape));
  }
  return out;
}

// -- Conv layers ------------------------------------------------------------------

namespace {

int64_t SamePad(int64_t pad, int64_t kernel) {
  if (pad >= 0) return pad;
  STHSL_CHECK_EQ(kernel % 2, 1) << "same padding requires an odd kernel";
  return (kernel - 1) / 2;
}

}  // namespace

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kh, int64_t kw, Rng& rng, int64_t pad_h,
                         int64_t pad_w, bool with_bias)
    : pad_h_(SamePad(pad_h, kh)), pad_w_(SamePad(pad_w, kw)) {
  const int64_t fan_in = in_channels * kh * kw;
  const int64_t fan_out = out_channels * kh * kw;
  weight_ = RegisterParameter(
      "weight", Tensor::XavierUniform({out_channels, in_channels, kh, kw},
                                      rng, fan_in, fan_out));
  if (with_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_channels}, true));
  }
}

Tensor Conv2dLayer::Forward(const Tensor& x) const {
  return Conv2d(x, weight_, bias_, pad_h_, pad_w_);
}

Conv1dLayer::Conv1dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel, Rng& rng, int64_t pad,
                         bool with_bias)
    : pad_(SamePad(pad, kernel)) {
  const int64_t fan_in = in_channels * kernel;
  const int64_t fan_out = out_channels * kernel;
  weight_ = RegisterParameter(
      "weight", Tensor::XavierUniform({out_channels, in_channels, kernel},
                                      rng, fan_in, fan_out));
  if (with_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_channels}, true));
  }
}

Tensor Conv1dLayer::Forward(const Tensor& x) const {
  return Conv1d(x, weight_, bias_, pad_);
}

// -- Dropout --------------------------------------------------------------------

Tensor DropoutLayer::Forward(const Tensor& x) const {
  return Dropout(x, p_, rng_, IsTraining());
}

// -- LayerNorm ------------------------------------------------------------------

LayerNorm::LayerNorm(int64_t features, float eps) : eps_(eps) {
  gain_ = RegisterParameter("gain", Tensor::Ones({features}, true));
  bias_ = RegisterParameter("bias", Tensor::Zeros({features}, true));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  Tensor mean = Mean(x, {-1}, /*keepdim=*/true);
  Tensor centered = x - mean;
  Tensor var = Mean(Square(centered), {-1}, /*keepdim=*/true);
  Tensor normed = centered / Sqrt(var + eps_);
  return normed * gain_ + bias_;
}

// -- GRU ------------------------------------------------------------------------

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : hidden_size_(hidden_size),
      input_proj_(input_size, 3 * hidden_size, rng),
      hidden_proj_(hidden_size, 3 * hidden_size, rng, /*with_bias=*/false) {
  RegisterModule("input_proj", &input_proj_);
  RegisterModule("hidden_proj", &hidden_proj_);
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  Tensor xi = input_proj_.Forward(x);   // (B, 3H)
  Tensor hi = hidden_proj_.Forward(h);  // (B, 3H)
  const int64_t hsz = hidden_size_;
  Tensor reset = Sigmoid(Narrow(xi, 1, 0, hsz) + Narrow(hi, 1, 0, hsz));
  Tensor update = Sigmoid(Narrow(xi, 1, hsz, hsz) + Narrow(hi, 1, hsz, hsz));
  Tensor cand =
      Tanh(Narrow(xi, 1, 2 * hsz, hsz) + reset * Narrow(hi, 1, 2 * hsz, hsz));
  return update * h + (1.0f - update) * cand;
}

Gru::Gru(int64_t input_size, int64_t hidden_size, Rng& rng)
    : cell_(input_size, hidden_size, rng) {
  RegisterModule("cell", &cell_);
}

Tensor Gru::Forward(const Tensor& x) const {
  STHSL_CHECK_EQ(x.Dim(), 3) << "Gru expects (B, T, input)";
  const int64_t batch = x.Size(0);
  const int64_t steps = x.Size(1);
  Tensor h = Tensor::Zeros({batch, cell_.hidden_size()});
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(steps));
  for (int64_t t = 0; t < steps; ++t) {
    Tensor xt = Squeeze(Narrow(x, 1, t, 1), 1);  // (B, input)
    h = cell_.Forward(xt, h);
    outputs.push_back(h);
  }
  return Stack(outputs, 1);  // (B, T, hidden)
}

Tensor Gru::ForwardLast(const Tensor& x) const {
  STHSL_CHECK_EQ(x.Dim(), 3) << "Gru expects (B, T, input)";
  const int64_t batch = x.Size(0);
  const int64_t steps = x.Size(1);
  Tensor h = Tensor::Zeros({batch, cell_.hidden_size()});
  for (int64_t t = 0; t < steps; ++t) {
    Tensor xt = Squeeze(Narrow(x, 1, t, 1), 1);
    h = cell_.Forward(xt, h);
  }
  return h;
}

// -- Attention ------------------------------------------------------------------

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t num_heads,
                                               Rng& rng)
    : dim_(dim),
      num_heads_(num_heads),
      query_proj_(dim, dim, rng),
      key_proj_(dim, dim, rng),
      value_proj_(dim, dim, rng),
      out_proj_(dim, dim, rng) {
  STHSL_CHECK_EQ(dim % num_heads, 0) << "dim must be divisible by num_heads";
  RegisterModule("query_proj", &query_proj_);
  RegisterModule("key_proj", &key_proj_);
  RegisterModule("value_proj", &value_proj_);
  RegisterModule("out_proj", &out_proj_);
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x) const {
  STHSL_CHECK_EQ(x.Dim(), 3) << "attention expects (B, T, dim)";
  const int64_t batch = x.Size(0);
  const int64_t steps = x.Size(1);
  const int64_t head_dim = dim_ / num_heads_;

  auto split_heads = [&](const Tensor& t) {
    // (B, T, dim) -> (B*heads, T, head_dim)
    Tensor r = Reshape(t, {batch, steps, num_heads_, head_dim});
    r = Permute(r, {0, 2, 1, 3});
    return Reshape(r, {batch * num_heads_, steps, head_dim});
  };

  Tensor q = split_heads(query_proj_.Forward(x));
  Tensor k = split_heads(key_proj_.Forward(x));
  Tensor v = split_heads(value_proj_.Forward(x));

  Tensor scores = MatMul(q, Permute(k, {0, 2, 1}));  // (B*h, T, T)
  scores = scores * (1.0f / std::sqrt(static_cast<float>(head_dim)));
  Tensor attn = Softmax(scores, 2);
  Tensor mixed = MatMul(attn, v);  // (B*h, T, head_dim)

  Tensor merged = Reshape(mixed, {batch, num_heads_, steps, head_dim});
  merged = Permute(merged, {0, 2, 1, 3});
  merged = Reshape(merged, {batch, steps, dim_});
  return out_proj_.Forward(merged);
}

}  // namespace sthsl
