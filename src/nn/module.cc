#include "nn/module.h"

#include "util/check.h"

namespace sthsl {

Tensor Module::RegisterParameter(const std::string& name, Tensor param) {
  STHSL_CHECK(param.Defined()) << "registering undefined parameter " << name;
  STHSL_CHECK(param.RequiresGrad())
      << "parameter " << name << " must require grad";
  params_.emplace_back(name, param);
  return param;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  STHSL_CHECK(child != nullptr) << "registering null module " << name;
  children_.emplace_back(name, child);
}

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, p] : params_) out.push_back(p);
  for (const auto& [name, child] : children_) {
    auto child_params = child->Parameters();
    out.insert(out.end(), child_params.begin(), child_params.end());
  }
  return out;
}

std::vector<Tensor> Module::MutableParameters() { return Parameters(); }

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& [name, p] : params_) out.emplace_back(name, p);
  for (const auto& [child_name, child] : children_) {
    for (auto& [name, p] : child->NamedParameters()) {
      out.emplace_back(child_name + "." + name, p);
    }
  }
  return out;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& p : Parameters()) total += p.Numel();
  return total;
}

}  // namespace sthsl
