// Matrix-product kernels and the MatMul autograd op.

#include "tensor/debug_validator.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace sthsl {
namespace {

bool NeedsGrad(const Tensor& t) {
  return t.Defined() && (t.RequiresGrad() || t.GradFn() != nullptr);
}

// C(m,n) += A(m,k) * B(k,n). C must be pre-zeroed. Loop order (i, p, j)
// keeps both B and C accesses contiguous in the inner loop.
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C(m,k) += A(m,n) * B(k,n)^T  — rows of both operands are contiguous.
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t n,
            int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float* brow = b + p * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += arow[j] * brow[j];
      c[i * k + p] += acc;
    }
  }
}

// C(k,n) += A(m,k)^T * B(m,n).
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = c + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (DebugChecksEnabled()) {
    ValidateOpInput("matmul", "a", a);
    ValidateOpInput("matmul", "b", b);
  }
  const int64_t a_rank = a.Dim();
  const int64_t b_rank = b.Dim();
  STHSL_CHECK(a_rank >= 2 && b_rank >= 2 && a_rank <= 3 && b_rank <= 3)
      << "MatMul supports 2-D and 3-D operands, got ranks " << a_rank << ", "
      << b_rank;
  STHSL_CHECK(!(a_rank == 2 && b_rank == 3))
      << "MatMul (2-D x 3-D) is not supported";

  const int64_t m = a.Size(-2);
  const int64_t k = a.Size(-1);
  const int64_t k2 = b.Size(-2);
  const int64_t n = b.Size(-1);
  STHSL_CHECK_EQ(k, k2) << "MatMul inner-dim mismatch";

  const int64_t batch = a_rank == 3 ? a.Size(0) : 1;
  const bool b_batched = (b_rank == 3);
  if (b_batched) {
    STHSL_CHECK_EQ(a_rank, 3) << "batched rhs needs batched lhs";
    STHSL_CHECK_EQ(b.Size(0), batch) << "MatMul batch mismatch";
  }

  std::vector<float> out(static_cast<size_t>(batch * m * n), 0.0f);
  const float* av = a.Data().data();
  const float* bv = b.Data().data();
  for (int64_t s = 0; s < batch; ++s) {
    GemmNN(av + s * m * k, bv + (b_batched ? s * k * n : 0),
           out.data() + s * m * n, m, k, n);
  }

  std::vector<int64_t> out_shape =
      a_rank == 3 ? std::vector<int64_t>{batch, m, n}
                  : std::vector<int64_t>{m, n};

  Tensor a_captured = a;
  Tensor b_captured = b;
  return MakeResult(
      std::move(out_shape), std::move(out), "matmul", {a, b},
      [a_captured, b_captured, batch, m, k, n,
       b_batched](const Tensor& g) -> std::vector<Tensor> {
        const float* gv = g.Data().data();
        const float* av = a_captured.Data().data();
        const float* bv = b_captured.Data().data();
        Tensor ga;
        Tensor gb;
        if (NeedsGrad(a_captured)) {
          std::vector<float> da(static_cast<size_t>(batch * m * k), 0.0f);
          for (int64_t s = 0; s < batch; ++s) {
            // dA = dC * B^T
            GemmNT(gv + s * m * n, bv + (b_batched ? s * k * n : 0),
                   da.data() + s * m * k, m, n, k);
          }
          ga = Tensor::FromVector(a_captured.Shape(), std::move(da));
        }
        if (NeedsGrad(b_captured)) {
          std::vector<float> db(
              static_cast<size_t>((b_batched ? batch : 1) * k * n), 0.0f);
          for (int64_t s = 0; s < batch; ++s) {
            // dB = A^T * dC (accumulated over the batch when B is shared)
            GemmTN(av + s * m * k, gv + s * m * n,
                   db.data() + (b_batched ? s * k * n : 0), m, k, n);
          }
          gb = Tensor::FromVector(b_captured.Shape(), std::move(db));
        }
        return {ga, gb};
      });
}

}  // namespace sthsl
