// Matrix-product kernels and the MatMul autograd op.
//
// All three GEMM variants run cache-blocked through the simd microkernel
// layer: K is split into ascending KC-sized blocks, B (or the transposed
// operand) is packed into kc x 16 panels in exec scratch, and 6x16 register
// tiles of C are updated by simd::Kernels().gemm_tile. Every output element
// accumulates its K products as one ascending fused-multiply-add chain, so
// the result is bitwise independent of thread count, tile alignment, and
// the selected ISA variant (see the contract in simd/simd.h). Row chunks are
// dispatched through the exec layer exactly as before.

#include <algorithm>

#include "exec/exec.h"
#include "simd/simd.h"
#include "tensor/debug_validator.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace sthsl {
namespace {

bool NeedsGrad(const Tensor& t) {
  return t.Defined() && (t.RequiresGrad() || t.GradFn() != nullptr);
}

// Target fused-multiply-add count per parallel chunk; keeps op-launch
// overhead negligible for small problems (they run inline on the caller).
constexpr int64_t kGemmGrainFlops = int64_t{1} << 17;

int64_t RowGrain(int64_t flops_per_row) {
  if (flops_per_row < 1) flops_per_row = 1;
  return std::max<int64_t>(1, kGemmGrainFlops / flops_per_row);
}

// K-dimension cache block: 256 floats of a packed panel row group stay well
// inside L1/L2 alongside the 6x16 C tile.
constexpr int64_t kKC = 256;

constexpr int64_t kMR = simd::kGemmTileRows;
constexpr int64_t kNR = simd::kGemmTileCols;

// Blocked driver shared by all three variants. Computes, for output rows
// [i0, i1) of row-major C with `ncols` columns:
//   C(i, j) += sum_p X(i, p) * Y(p, j),   p = 0 .. kk-1 ascending
// pack_y(panel, p0, pc, j0, nr) must fill panel[p*kNR + jj] = Y(p0+p, j0+jj);
// pack_x(panel, r0, mr, p0, pc) must fill panel[r*pc + q] = X(r0+r, p0+q).
// When X's rows are already contiguous with stride kk and the whole K fits
// in one block, callers pass x_direct to skip the X packing entirely.
template <typename PackX, typename PackY>
void GemmBlocked(float* c, int64_t ncols, int64_t i0, int64_t i1, int64_t kk,
                 const float* x_direct, PackX pack_x, PackY pack_y) {
  if (i1 <= i0 || ncols <= 0 || kk <= 0) return;
  const auto& kernels = simd::Kernels();
  const bool direct = (x_direct != nullptr) && kk <= kKC;
  exec::ScratchLease scratch(static_cast<size_t>(kKC * kNR + kMR * kKC));
  float* y_panel = scratch.data();
  float* x_panel = scratch.data() + kKC * kNR;
  for (int64_t p0 = 0; p0 < kk; p0 += kKC) {
    const int64_t pc = std::min(kKC, kk - p0);
    for (int64_t j0 = 0; j0 < ncols; j0 += kNR) {
      const int64_t nr = std::min(kNR, ncols - j0);
      pack_y(y_panel, p0, pc, j0, nr);
      for (int64_t r0 = i0; r0 < i1; r0 += kMR) {
        const int64_t mr = std::min(kMR, i1 - r0);
        const float* xp;
        if (direct) {
          xp = x_direct + r0 * kk;
        } else {
          pack_x(x_panel, r0, mr, p0, pc);
          xp = x_panel;
        }
        kernels.gemm_tile(xp, y_panel, c + r0 * ncols + j0, ncols, mr, nr,
                          pc);
      }
    }
  }
}

// C(m,n) += A(m,k) * B(k,n) restricted to output rows [i0, i1). C must be
// pre-zeroed (or hold a running accumulation).
void GemmNNRows(const float* a, const float* b, float* c, int64_t k,
                int64_t n, int64_t i0, int64_t i1) {
  GemmBlocked(
      c, n, i0, i1, k, k <= kKC ? a : nullptr,
      [=](float* panel, int64_t r0, int64_t mr, int64_t p0, int64_t pc) {
        for (int64_t r = 0; r < mr; ++r) {
          const float* src = a + (r0 + r) * k + p0;
          std::copy(src, src + pc, panel + r * pc);
        }
      },
      [=](float* panel, int64_t p0, int64_t pc, int64_t j0, int64_t nr) {
        for (int64_t p = 0; p < pc; ++p) {
          const float* src = b + (p0 + p) * n + j0;
          std::copy(src, src + nr, panel + p * kNR);
        }
      });
}

// C(m,k) += A(m,n) * B(k,n)^T restricted to output rows [i0, i1): the
// inner dimension is n, and Y(p, j) = B(j0+j row, p-th column) needs a
// transpose pack.
void GemmNTRows(const float* a, const float* b, float* c, int64_t n,
                int64_t k, int64_t i0, int64_t i1) {
  GemmBlocked(
      c, k, i0, i1, n, n <= kKC ? a : nullptr,
      [=](float* panel, int64_t r0, int64_t mr, int64_t p0, int64_t pc) {
        for (int64_t r = 0; r < mr; ++r) {
          const float* src = a + (r0 + r) * n + p0;
          std::copy(src, src + pc, panel + r * pc);
        }
      },
      [=](float* panel, int64_t p0, int64_t pc, int64_t j0, int64_t nr) {
        for (int64_t j = 0; j < nr; ++j) {
          const float* src = b + (j0 + j) * n + p0;
          for (int64_t p = 0; p < pc; ++p) panel[p * kNR + j] = src[p];
        }
      });
}

// C(k,n) += A(m,k)^T * B(m,n) restricted to output rows [p0, p1). The
// inner dimension is m; X(p, i) = A(i, p) needs a transpose pack. Each
// output element accumulates over i in ascending order, so the result is
// bitwise independent of the row chunking.
void GemmTNRows(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n, int64_t p0, int64_t p1) {
  GemmBlocked(
      c, n, p0, p1, m, nullptr,
      [=](float* panel, int64_t r0, int64_t mr, int64_t q0, int64_t qc) {
        for (int64_t r = 0; r < mr; ++r) {
          const float* col = a + (r0 + r);
          for (int64_t q = 0; q < qc; ++q) {
            panel[r * qc + q] = col[(q0 + q) * k];
          }
        }
      },
      [=](float* panel, int64_t q0, int64_t qc, int64_t j0, int64_t nr) {
        for (int64_t q = 0; q < qc; ++q) {
          const float* src = b + (q0 + q) * n + j0;
          std::copy(src, src + nr, panel + q * kNR);
        }
      });
}

// Parallel batched GemmNN: collapses (batch, row) into one index space so
// small per-sample GEMMs still fill the pool.
void GemmNNBatched(const float* a, const float* b, float* c, int64_t batch,
                   int64_t m, int64_t k, int64_t n, bool b_batched) {
  exec::ParallelFor(
      0, batch * m, RowGrain(2 * k * n),
      [=](int64_t r0, int64_t r1) {
        int64_t r = r0;
        while (r < r1) {
          const int64_t s = r / m;
          const int64_t i0 = r % m;
          const int64_t i1 = std::min(m, i0 + (r1 - r));
          GemmNNRows(a + s * m * k, b + (b_batched ? s * k * n : 0),
                     c + s * m * n, k, n, i0, i1);
          r += i1 - i0;
        }
      },
      "exec/gemm_nn");
}

void GemmNTBatched(const float* a, const float* b, float* c, int64_t batch,
                   int64_t m, int64_t n, int64_t k, bool b_batched) {
  exec::ParallelFor(
      0, batch * m, RowGrain(2 * n * k),
      [=](int64_t r0, int64_t r1) {
        int64_t r = r0;
        while (r < r1) {
          const int64_t s = r / m;
          const int64_t i0 = r % m;
          const int64_t i1 = std::min(m, i0 + (r1 - r));
          GemmNTRows(a + s * m * n, b + (b_batched ? s * k * n : 0),
                     c + s * m * k, n, k, i0, i1);
          r += i1 - i0;
        }
      },
      "exec/gemm_nt");
}

// Parallel GemmTN over one batch sample: output rows (the k dimension) are
// disjoint per chunk. Batch samples accumulating into a *shared* C must be
// applied serially outside (ascending s) to keep the accumulation order.
void GemmTNParallel(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  exec::ParallelFor(
      0, k, RowGrain(2 * m * n),
      [=](int64_t p0, int64_t p1) { GemmTNRows(a, b, c, m, k, n, p0, p1); },
      "exec/gemm_tn");
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (DebugChecksEnabled()) {
    ValidateOpInput("matmul", "a", a);
    ValidateOpInput("matmul", "b", b);
  }
  const int64_t a_rank = a.Dim();
  const int64_t b_rank = b.Dim();
  STHSL_CHECK(a_rank >= 2 && b_rank >= 2 && a_rank <= 3 && b_rank <= 3)
      << "MatMul supports 2-D and 3-D operands, got ranks " << a_rank << ", "
      << b_rank;
  STHSL_CHECK(!(a_rank == 2 && b_rank == 3))
      << "MatMul (2-D x 3-D) is not supported";

  const int64_t m = a.Size(-2);
  const int64_t k = a.Size(-1);
  const int64_t k2 = b.Size(-2);
  const int64_t n = b.Size(-1);
  STHSL_CHECK_EQ(k, k2) << "MatMul inner-dim mismatch";

  const int64_t batch = a_rank == 3 ? a.Size(0) : 1;
  const bool b_batched = (b_rank == 3);
  if (b_batched) {
    STHSL_CHECK_EQ(a_rank, 3) << "batched rhs needs batched lhs";
    STHSL_CHECK_EQ(b.Size(0), batch) << "MatMul batch mismatch";
  }

  std::vector<float> out(static_cast<size_t>(batch * m * n), 0.0f);
  GemmNNBatched(a.Data().data(), b.Data().data(), out.data(), batch, m, k, n,
                b_batched);

  std::vector<int64_t> out_shape =
      a_rank == 3 ? std::vector<int64_t>{batch, m, n}
                  : std::vector<int64_t>{m, n};

  Tensor a_captured = a;
  Tensor b_captured = b;
  return MakeResult(
      std::move(out_shape), std::move(out), "matmul", {a, b},
      [a_captured, b_captured, batch, m, k, n,
       b_batched](const Tensor& g) -> std::vector<Tensor> {
        const float* gv = g.Data().data();
        const float* av = a_captured.Data().data();
        const float* bv = b_captured.Data().data();
        Tensor ga;
        Tensor gb;
        if (NeedsGrad(a_captured)) {
          std::vector<float> da(static_cast<size_t>(batch * m * k), 0.0f);
          // dA = dC * B^T
          GemmNTBatched(gv, bv, da.data(), batch, m, n, k, b_batched);
          ga = Tensor::FromVector(a_captured.Shape(), std::move(da));
        }
        if (NeedsGrad(b_captured)) {
          std::vector<float> db(
              static_cast<size_t>((b_batched ? batch : 1) * k * n), 0.0f);
          // dB = A^T * dC. When B is shared across the batch the samples
          // accumulate into one buffer, so they are applied in ascending
          // batch order (each sample's GEMM is row-parallel internally).
          for (int64_t s = 0; s < batch; ++s) {
            GemmTNParallel(av + s * m * k, gv + s * m * n,
                           db.data() + (b_batched ? s * k * n : 0), m, k, n);
          }
          gb = Tensor::FromVector(b_captured.Shape(), std::move(db));
        }
        return {ga, gb};
      });
}

}  // namespace sthsl
