// Matrix-product kernels and the MatMul autograd op.
//
// All three GEMM variants dispatch row-blocked through the exec layer:
// each chunk owns a disjoint range of output rows and runs the exact
// serial inner loops, so results are bitwise-identical at any thread
// count. The former `av == 0.0f` skip branches are gone — they broke
// vectorization of the dense inner loops and made timing data-dependent.

#include <algorithm>

#include "exec/exec.h"
#include "tensor/debug_validator.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace sthsl {
namespace {

bool NeedsGrad(const Tensor& t) {
  return t.Defined() && (t.RequiresGrad() || t.GradFn() != nullptr);
}

// Target fused-multiply-add count per parallel chunk; keeps op-launch
// overhead negligible for small problems (they run inline on the caller).
constexpr int64_t kGemmGrainFlops = int64_t{1} << 17;

int64_t RowGrain(int64_t flops_per_row) {
  if (flops_per_row < 1) flops_per_row = 1;
  return std::max<int64_t>(1, kGemmGrainFlops / flops_per_row);
}

// C(m,n) += A(m,k) * B(k,n) restricted to output rows [i0, i1). C must be
// pre-zeroed. Loop order (i, p, j) keeps both B and C accesses contiguous
// in the inner loop.
void GemmNNRows(const float* a, const float* b, float* c, int64_t k,
                int64_t n, int64_t i0, int64_t i1) {
  for (int64_t i = i0; i < i1; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      const float* brow = b + p * n;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C(m,k) += A(m,n) * B(k,n)^T restricted to output rows [i0, i1) — rows of
// both operands are contiguous.
void GemmNTRows(const float* a, const float* b, float* c, int64_t n,
                int64_t k, int64_t i0, int64_t i1) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float* brow = b + p * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += arow[j] * brow[j];
      c[i * k + p] += acc;
    }
  }
}

// C(k,n) += A(m,k)^T * B(m,n) restricted to output rows [p0, p1). Each
// output row accumulates over i in ascending order — the same per-element
// association as the serial (i, p, j) loop, so the result is bitwise
// independent of the row chunking.
void GemmTNRows(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n, int64_t p0, int64_t p1) {
  for (int64_t p = p0; p < p1; ++p) {
    float* crow = c + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = a[i * k + p];
      const float* brow = b + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Parallel batched GemmNN: collapses (batch, row) into one index space so
// small per-sample GEMMs still fill the pool.
void GemmNNBatched(const float* a, const float* b, float* c, int64_t batch,
                   int64_t m, int64_t k, int64_t n, bool b_batched) {
  exec::ParallelFor(
      0, batch * m, RowGrain(2 * k * n),
      [=](int64_t r0, int64_t r1) {
        int64_t r = r0;
        while (r < r1) {
          const int64_t s = r / m;
          const int64_t i0 = r % m;
          const int64_t i1 = std::min(m, i0 + (r1 - r));
          GemmNNRows(a + s * m * k, b + (b_batched ? s * k * n : 0),
                     c + s * m * n, k, n, i0, i1);
          r += i1 - i0;
        }
      },
      "exec/gemm_nn");
}

void GemmNTBatched(const float* a, const float* b, float* c, int64_t batch,
                   int64_t m, int64_t n, int64_t k, bool b_batched) {
  exec::ParallelFor(
      0, batch * m, RowGrain(2 * n * k),
      [=](int64_t r0, int64_t r1) {
        int64_t r = r0;
        while (r < r1) {
          const int64_t s = r / m;
          const int64_t i0 = r % m;
          const int64_t i1 = std::min(m, i0 + (r1 - r));
          GemmNTRows(a + s * m * n, b + (b_batched ? s * k * n : 0),
                     c + s * m * k, n, k, i0, i1);
          r += i1 - i0;
        }
      },
      "exec/gemm_nt");
}

// Parallel GemmTN over one batch sample: output rows (the k dimension) are
// disjoint per chunk. Batch samples accumulating into a *shared* C must be
// applied serially outside (ascending s) to keep the accumulation order.
void GemmTNParallel(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  exec::ParallelFor(
      0, k, RowGrain(2 * m * n),
      [=](int64_t p0, int64_t p1) { GemmTNRows(a, b, c, m, k, n, p0, p1); },
      "exec/gemm_tn");
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (DebugChecksEnabled()) {
    ValidateOpInput("matmul", "a", a);
    ValidateOpInput("matmul", "b", b);
  }
  const int64_t a_rank = a.Dim();
  const int64_t b_rank = b.Dim();
  STHSL_CHECK(a_rank >= 2 && b_rank >= 2 && a_rank <= 3 && b_rank <= 3)
      << "MatMul supports 2-D and 3-D operands, got ranks " << a_rank << ", "
      << b_rank;
  STHSL_CHECK(!(a_rank == 2 && b_rank == 3))
      << "MatMul (2-D x 3-D) is not supported";

  const int64_t m = a.Size(-2);
  const int64_t k = a.Size(-1);
  const int64_t k2 = b.Size(-2);
  const int64_t n = b.Size(-1);
  STHSL_CHECK_EQ(k, k2) << "MatMul inner-dim mismatch";

  const int64_t batch = a_rank == 3 ? a.Size(0) : 1;
  const bool b_batched = (b_rank == 3);
  if (b_batched) {
    STHSL_CHECK_EQ(a_rank, 3) << "batched rhs needs batched lhs";
    STHSL_CHECK_EQ(b.Size(0), batch) << "MatMul batch mismatch";
  }

  std::vector<float> out(static_cast<size_t>(batch * m * n), 0.0f);
  GemmNNBatched(a.Data().data(), b.Data().data(), out.data(), batch, m, k, n,
                b_batched);

  std::vector<int64_t> out_shape =
      a_rank == 3 ? std::vector<int64_t>{batch, m, n}
                  : std::vector<int64_t>{m, n};

  Tensor a_captured = a;
  Tensor b_captured = b;
  return MakeResult(
      std::move(out_shape), std::move(out), "matmul", {a, b},
      [a_captured, b_captured, batch, m, k, n,
       b_batched](const Tensor& g) -> std::vector<Tensor> {
        const float* gv = g.Data().data();
        const float* av = a_captured.Data().data();
        const float* bv = b_captured.Data().data();
        Tensor ga;
        Tensor gb;
        if (NeedsGrad(a_captured)) {
          std::vector<float> da(static_cast<size_t>(batch * m * k), 0.0f);
          // dA = dC * B^T
          GemmNTBatched(gv, bv, da.data(), batch, m, n, k, b_batched);
          ga = Tensor::FromVector(a_captured.Shape(), std::move(da));
        }
        if (NeedsGrad(b_captured)) {
          std::vector<float> db(
              static_cast<size_t>((b_batched ? batch : 1) * k * n), 0.0f);
          // dB = A^T * dC. When B is shared across the batch the samples
          // accumulate into one buffer, so they are applied in ascending
          // batch order (each sample's GEMM is row-parallel internally).
          for (int64_t s = 0; s < batch; ++s) {
            GemmTNParallel(av + s * m * k, gv + s * m * n,
                           db.data() + (b_batched ? s * k * n : 0), m, k, n);
          }
          gb = Tensor::FromVector(b_captured.Shape(), std::move(db));
        }
        return {ga, gb};
      });
}

}  // namespace sthsl
