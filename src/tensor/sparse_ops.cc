#include "tensor/sparse_ops.h"

#include <memory>
#include <utility>

#include "sparse/kernels.h"
#include "util/check.h"

namespace sthsl {
namespace {

bool NeedsGrad(const Tensor& t) {
  return t.Defined() && (t.RequiresGrad() || t.GradFn() != nullptr);
}

}  // namespace

sparse::SparseTensor ToSparse(const Tensor& t, sparse::ZeroPolicy policy) {
  STHSL_CHECK(t.Defined());
  return sparse::SparseTensor::FromDense(t.Data().data(), t.Shape(), policy);
}

Tensor SparseToDense(const sparse::SparseTensor& s) {
  STHSL_CHECK(s.Defined());
  return Tensor::FromVector(s.shape(), s.ToDense());
}

Tensor SparseValues(const Tensor& dense, const sparse::SparseTensor& pattern) {
  STHSL_CHECK(dense.Defined() && pattern.Defined());
  STHSL_CHECK(dense.Shape() == pattern.shape())
      << "SparseValues: pattern/dense shape mismatch";
  const sparse::SparseTensor coo = pattern.ToCoo();
  const int64_t nnz = coo.Nnz();
  std::vector<float> out(static_cast<size_t>(nnz));
  sparse::GatherFlatKernel(dense.Data().data(), coo.FlatIndices().data(), nnz,
                           out.data());
  Tensor dense_captured = dense;
  return MakeResult(
      {nnz}, std::move(out), "sparse_values", {dense},
      [dense_captured, coo, nnz](const Tensor& g) -> std::vector<Tensor> {
        std::vector<float> dg(
            static_cast<size_t>(dense_captured.Numel()), 0.0f);
        sparse::ScatterFlatKernel(g.Data().data(), coo.FlatIndices().data(),
                                  nnz, dg.data());
        return {Tensor::FromVector(dense_captured.Shape(), std::move(dg))};
      });
}

Tensor SpMM(const sparse::SparseTensor& pattern, const Tensor& values,
            const Tensor& b, bool transpose_a) {
  STHSL_CHECK(pattern.Defined() && pattern.layout() == sparse::Layout::kCsr)
      << "SpMM needs a CSR pattern";
  const int64_t m = pattern.shape()[0];
  const int64_t k = pattern.shape()[1];
  const int64_t nnz = pattern.Nnz();
  STHSL_CHECK(values.Defined() && values.Dim() == 1 && values.Numel() == nnz)
      << "SpMM: values must be a 1-D tensor of length nnz";
  STHSL_CHECK(b.Defined() && b.Dim() == 2);
  STHSL_CHECK_EQ(b.Size(0), transpose_a ? m : k) << "SpMM inner-dim mismatch";
  const int64_t n = b.Size(1);
  const int64_t out_rows = transpose_a ? k : m;

  // The transpose index serves the forward when transpose_a, and the
  // dense-side gradient of the non-transposed dispatch; build it once and
  // share it with the backward closure.
  auto transpose = std::make_shared<sparse::CsrTransposeIndex>();
  const bool b_grad = NeedsGrad(b);
  if (transpose_a || b_grad) *transpose = sparse::BuildCsrTranspose(pattern);

  std::vector<float> out(static_cast<size_t>(out_rows * n), 0.0f);
  if (transpose_a) {
    sparse::SpmmCsrDense(transpose->row_ptr->data(), transpose->cols->data(),
                         values.Data().data(), transpose->perm->data(), k,
                         b.Data().data(), n, out.data());
  } else {
    sparse::SpmmCsrDense(pattern.RowPtr().data(), pattern.Cols().data(),
                         values.Data().data(), nullptr, m, b.Data().data(), n,
                         out.data());
  }

  Tensor values_captured = values;
  Tensor b_captured = b;
  return MakeResult(
      {out_rows, n}, std::move(out), "spmm", {values, b},
      [pattern, transpose, values_captured, b_captured, transpose_a, m, k, n,
       nnz](const Tensor& g) -> std::vector<Tensor> {
        if (transpose->row_ptr == nullptr &&
            NeedsGrad(b_captured) != transpose_a) {
          // b started without grad but gained it between forward and
          // backward — not reachable through the public API, but keep the
          // index available rather than crash.
          *transpose = sparse::BuildCsrTranspose(pattern);
        }
        Tensor dvalues;
        Tensor db;
        if (NeedsGrad(values_captured)) {
          std::vector<float> dv(static_cast<size_t>(nnz), 0.0f);
          if (transpose_a) {
            sparse::SpmmValueGrad(transpose->row_ptr->data(),
                                  transpose->cols->data(), g.Data().data(),
                                  b_captured.Data().data(),
                                  transpose->perm->data(), k, n, dv.data());
          } else {
            sparse::SpmmValueGrad(pattern.RowPtr().data(),
                                  pattern.Cols().data(), g.Data().data(),
                                  b_captured.Data().data(), nullptr, m, n,
                                  dv.data());
          }
          dvalues = Tensor::FromVector({nnz}, std::move(dv));
        }
        if (NeedsGrad(b_captured)) {
          std::vector<float> dbv(
              static_cast<size_t>(b_captured.Numel()), 0.0f);
          if (transpose_a) {
            // out = A^T·b  =>  db = A·g.
            sparse::SpmmCsrDense(pattern.RowPtr().data(),
                                 pattern.Cols().data(),
                                 values_captured.Data().data(), nullptr, m,
                                 g.Data().data(), n, dbv.data());
          } else {
            // out = A·b  =>  db = A^T·g.
            sparse::SpmmCsrDense(transpose->row_ptr->data(),
                                 transpose->cols->data(),
                                 values_captured.Data().data(),
                                 transpose->perm->data(), k, g.Data().data(),
                                 n, dbv.data());
          }
          db = Tensor::FromVector(b_captured.Shape(), std::move(dbv));
        }
        return {dvalues, db};
      });
}

Tensor GatherRows(const Tensor& table, std::vector<int64_t> indices) {
  STHSL_CHECK(table.Defined() && table.Dim() == 2)
      << "GatherRows needs a 2-D table";
  const int64_t num = table.Size(0);
  const int64_t width = table.Size(1);
  for (int64_t idx : indices) {
    STHSL_CHECK(idx >= 0 && idx < num) << "GatherRows index out of range";
  }
  const int64_t count = static_cast<int64_t>(indices.size());
  auto idx = std::make_shared<const std::vector<int64_t>>(std::move(indices));
  std::vector<float> out(static_cast<size_t>(count * width));
  sparse::GatherRowsKernel(table.Data().data(), width, idx->data(), count,
                           out.data());
  Tensor table_captured = table;
  return MakeResult(
      {count, width}, std::move(out), "gather", {table},
      [table_captured, idx, count, width](const Tensor& g)
          -> std::vector<Tensor> {
        std::vector<float> dt(
            static_cast<size_t>(table_captured.Numel()), 0.0f);
        sparse::ScatterAddRowsKernel(g.Data().data(), width, idx->data(),
                                     count, dt.data());
        return {Tensor::FromVector(table_captured.Shape(), std::move(dt))};
      });
}

}  // namespace sthsl
