#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "tensor/debug_validator.h"
#include "tensor/fusion.h"
#include "tensor/kernel_cost.h"
#include "util/check.h"
#include "util/obs/obs.h"

namespace sthsl {
namespace {

thread_local bool g_grad_enabled = true;

}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool GradRecordingEnabled() { return g_grad_enabled; }

int64_t NumelOf(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t s : shape) {
    STHSL_CHECK_GE(s, 0);
    n *= s;
  }
  return n;
}

std::vector<int64_t> StridesOf(const std::vector<int64_t>& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

std::vector<int64_t> BroadcastShapes(const std::vector<int64_t>& a,
                                     const std::vector<int64_t>& b) {
  const size_t rank = std::max(a.size(), b.size());
  std::vector<int64_t> out(rank, 1);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t sa = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const int64_t sb = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    STHSL_CHECK(sa == sb || sa == 1 || sb == 1)
        << "incompatible broadcast: dim " << i << " sizes " << sa << " vs "
        << sb;
    out[i] = std::max(sa, sb);
  }
  return out;
}

TensorImpl::~TensorImpl() {
  if (obs::TraceEnabled()) {
    obs::OnTensorFree(static_cast<int64_t>(data.size()) * 4);
  }
}

// -- Factories ----------------------------------------------------------------

Tensor Tensor::FromImpl(std::shared_ptr<TensorImpl> impl) {
  if (obs::TraceEnabled() && impl != nullptr) {
    obs::OnTensorAlloc(static_cast<int64_t>(impl->data.size()) * 4);
  }
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

Tensor Tensor::Zeros(std::vector<int64_t> shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->data.assign(static_cast<size_t>(NumelOf(shape)), 0.0f);
  impl->shape = std::move(shape);
  impl->requires_grad = requires_grad;
  return FromImpl(std::move(impl));
}

Tensor Tensor::Ones(std::vector<int64_t> shape, bool requires_grad) {
  return Full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value,
                    bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->data.assign(static_cast<size_t>(NumelOf(shape)), value);
  impl->shape = std::move(shape);
  impl->requires_grad = requires_grad;
  return FromImpl(std::move(impl));
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> values, bool requires_grad) {
  STHSL_CHECK_EQ(NumelOf(shape), static_cast<int64_t>(values.size()))
      << "FromVector size mismatch";
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  return FromImpl(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector({}, {value}, requires_grad);
}

Tensor Tensor::Rand(std::vector<int64_t> shape, Rng& rng, float lo, float hi,
                    bool requires_grad) {
  const int64_t n = NumelOf(shape);
  std::vector<float> values(static_cast<size_t>(n));
  for (auto& v : values) v = static_cast<float>(rng.Uniform(lo, hi));
  return FromVector(std::move(shape), std::move(values), requires_grad);
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float stddev,
                     bool requires_grad) {
  const int64_t n = NumelOf(shape);
  std::vector<float> values(static_cast<size_t>(n));
  for (auto& v : values) v = static_cast<float>(rng.Normal(0.0, stddev));
  return FromVector(std::move(shape), std::move(values), requires_grad);
}

Tensor Tensor::XavierUniform(std::vector<int64_t> shape, Rng& rng,
                             int64_t fan_in, int64_t fan_out,
                             bool requires_grad) {
  STHSL_CHECK_GT(fan_in + fan_out, 0);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Rand(std::move(shape), rng, -bound, bound, requires_grad);
}

// -- Introspection --------------------------------------------------------------

const std::vector<int64_t>& Tensor::Shape() const {
  STHSL_CHECK(Defined());
  return impl_->shape;
}

int64_t Tensor::Dim() const { return static_cast<int64_t>(Shape().size()); }

int64_t Tensor::Size(int64_t d) const {
  const auto& shape = Shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  if (d < 0) d += rank;
  STHSL_CHECK(d >= 0 && d < rank) << "Size dim out of range";
  return shape[static_cast<size_t>(d)];
}

int64_t Tensor::Numel() const { return NumelOf(Shape()); }

bool Tensor::RequiresGrad() const {
  return Defined() && impl_->requires_grad;
}

Tensor& Tensor::SetRequiresGrad(bool value) {
  STHSL_CHECK(Defined());
  STHSL_CHECK(impl_->grad_fn == nullptr)
      << "SetRequiresGrad is only valid on leaf tensors";
  impl_->requires_grad = value;
  return *this;
}

const std::vector<float>& Tensor::Data() const {
  STHSL_CHECK(Defined());
  MaterializePending(*impl_);
  return impl_->data;
}

std::vector<float>& Tensor::MutableData() {
  STHSL_CHECK(Defined());
  MaterializePending(*impl_);
  return impl_->data;
}

const std::vector<float>& Tensor::Grad() const {
  STHSL_CHECK(Defined());
  return impl_->grad;
}

std::vector<float>& Tensor::MutableGrad() {
  STHSL_CHECK(Defined());
  MaterializePending(*impl_);
  if (impl_->grad.empty()) impl_->grad.assign(impl_->data.size(), 0.0f);
  return impl_->grad;
}

void Tensor::ZeroGrad() {
  STHSL_CHECK(Defined());
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

float Tensor::Item() const {
  STHSL_CHECK_EQ(Numel(), 1) << "Item() requires a 1-element tensor";
  MaterializePending(*impl_);
  return impl_->data[0];
}

float Tensor::At(int64_t flat_index) const {
  STHSL_CHECK(Defined());
  MaterializePending(*impl_);
  STHSL_CHECK(flat_index >= 0 &&
              flat_index < static_cast<int64_t>(impl_->data.size()))
      << "flat index out of range: " << flat_index;
  return impl_->data[static_cast<size_t>(flat_index)];
}

float Tensor::At(const std::vector<int64_t>& index) const {
  MaterializePending(*impl_);
  const auto& shape = Shape();
  STHSL_CHECK_EQ(index.size(), shape.size());
  const auto strides = StridesOf(shape);
  int64_t flat = 0;
  for (size_t i = 0; i < index.size(); ++i) {
    STHSL_CHECK(index[i] >= 0 && index[i] < shape[i])
        << "index out of range at dim " << i;
    flat += index[i] * strides[i];
  }
  return impl_->data[static_cast<size_t>(flat)];
}

std::shared_ptr<GradNode> Tensor::GradFn() const {
  return Defined() ? impl_->grad_fn : nullptr;
}

Tensor Tensor::Detach() const {
  STHSL_CHECK(Defined());
  MaterializePending(*impl_);
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;  // copy values; no autograd linkage
  impl->requires_grad = false;
  return FromImpl(std::move(impl));
}

Tensor Tensor::Clone() const { return Detach(); }

// -- Backward -------------------------------------------------------------------

namespace {

void AccumulateGrad(const std::shared_ptr<TensorImpl>& impl,
                    const Tensor& grad) {
  MaterializePending(*impl);
  if (DebugChecksEnabled()) ValidateGradAccumulation(*impl, grad);
  STHSL_CHECK_EQ(static_cast<int64_t>(impl->data.size()), grad.Numel())
      << "gradient shape mismatch in accumulation";
  if (impl->grad.empty()) impl->grad.assign(impl->data.size(), 0.0f);
  const auto& g = grad.Data();
  for (size_t i = 0; i < g.size(); ++i) impl->grad[i] += g[i];
}

// Post-order DFS over the autograd DAG (iterative to avoid deep recursion).
void TopoSort(const std::shared_ptr<TensorImpl>& root,
              std::vector<std::shared_ptr<TensorImpl>>& order) {
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<std::shared_ptr<TensorImpl>, size_t>> stack;
  if (!root->grad_fn) return;
  stack.emplace_back(root, 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    const auto& fn = node->grad_fn;
    bool descended = false;
    while (fn && next_child < fn->inputs.size()) {
      const auto child = fn->inputs[next_child++].Impl();
      if (child && child->grad_fn && !visited.count(child.get())) {
        visited.insert(child.get());
        stack.emplace_back(child, 0);
        descended = true;
        break;
      }
    }
    if (!descended) {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::Backward(const Tensor& seed) const {
  STHSL_CHECK(Defined());
  STHSL_CHECK(impl_->requires_grad || impl_->grad_fn)
      << "Backward on a tensor that is not part of an autograd graph";
  // Evaluate a pending loss before the pass starts, so its forward cost is
  // attributed as forward work rather than inside the backward guard below.
  MaterializePending(*impl_);

  Tensor initial = seed;
  if (!initial.Defined()) {
    STHSL_CHECK_EQ(Numel(), 1)
        << "Backward without seed requires a scalar output";
    initial = Tensor::Ones(impl_->shape);
  }
  STHSL_CHECK_EQ(initial.Numel(), Numel()) << "seed shape mismatch";

  // Suspends forward-op attribution for the duration of the pass; per-node
  // backward timing below takes over.
  obs::BackwardPassGuard obs_backward_guard;

  AccumulateGrad(impl_, initial);

  std::vector<std::shared_ptr<TensorImpl>> order;
  TopoSort(impl_, order);

  NoGradGuard no_grad;
  // `order` is post-order (children first); process in reverse so each
  // node's output gradient is complete before its backward runs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const auto& node = *it;
    const auto& fn = node->grad_fn;
    if (!fn) continue;
    if (DebugChecksEnabled()) {
      STHSL_CHECK(!fn->backward_consumed)
          << "debug validator: double Backward through op '" << fn->op_name
          << "': this graph was already consumed (its intermediate gradients "
             "were freed) by a previous backward pass";
    }
    STHSL_CHECK(!node->grad.empty())
        << "node in topo order missing accumulated gradient: " << fn->op_name;
    Tensor grad_out = Tensor::FromVector(node->shape, node->grad);
    const bool obs_on = obs::TraceEnabled();
    const double obs_start_us = obs_on ? obs::TraceNowMicros() : 0.0;
    std::vector<Tensor> input_grads = fn->backward(grad_out);
    if (obs_on) {
      obs::RecordBackwardOp(fn->op_name, obs_start_us,
                            BackwardOpFlops(fn->op_name, fn->inputs,
                                            node->shape),
                            BackwardOpBytes(fn->inputs, node->shape));
    }
    fn->backward_consumed = true;
    STHSL_CHECK_EQ(input_grads.size(), fn->inputs.size())
        << "backward of " << fn->op_name
        << " returned wrong number of gradients";
    for (size_t i = 0; i < fn->inputs.size(); ++i) {
      const auto input_impl = fn->inputs[i].Impl();
      if (!input_impl) continue;
      const bool needs_grad = input_impl->requires_grad || input_impl->grad_fn;
      if (!needs_grad) continue;
      STHSL_CHECK(input_grads[i].Defined())
          << "backward of " << fn->op_name
          << " returned undefined grad for input " << i
          << " which requires grad";
      if (DebugChecksEnabled()) {
        ValidateBackwardGradient(fn->op_name, i, input_grads[i],
                                 input_impl->shape);
      }
      AccumulateGrad(input_impl, input_grads[i]);
    }
    // Free intermediate gradient buffers and the tape edge eagerly: after a
    // node has propagated, only leaves still need their grads.
    node->grad.clear();
    node->grad.shrink_to_fit();
  }
}

std::string Tensor::ToString() const {
  if (!Defined()) return "Tensor(undefined)";
  MaterializePending(*impl_);
  std::ostringstream os;
  os << "Tensor(shape=[";
  for (size_t i = 0; i < impl_->shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << impl_->shape[i];
  }
  os << "], data=[";
  const size_t preview = std::min<size_t>(impl_->data.size(), 8);
  for (size_t i = 0; i < preview; ++i) {
    if (i > 0) os << ", ";
    os << impl_->data[i];
  }
  if (impl_->data.size() > preview) os << ", ...";
  os << "])";
  return os.str();
}

Tensor MakeResult(std::vector<int64_t> shape, std::vector<float> data,
                  std::string op_name, std::vector<Tensor> inputs,
                  std::function<std::vector<Tensor>(const Tensor&)> backward) {
  // Per-op profiler hook: attribute the wall time since the previous op
  // boundary on this thread (the kernel compute that just produced `data`)
  // and the bytes touched. Ops running inside a Backward pass are skipped
  // here — they are accounted to the owning op's backward column instead.
  if (obs::TraceEnabled() && !obs::InBackwardPass()) {
    int64_t bytes = static_cast<int64_t>(data.size()) * 4;
    for (const auto& input : inputs) {
      if (input.Defined()) bytes += input.Numel() * 4;
    }
    obs::RecordForwardOp(op_name, bytes, ForwardOpFlops(op_name, inputs, shape));
  }
  STHSL_CHECK_EQ(NumelOf(shape), static_cast<int64_t>(data.size()))
      << "MakeResult size mismatch in op " << op_name;
  if (DebugChecksEnabled()) {
    ValidateForwardResult(op_name, shape, data, inputs);
  }
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);

  bool any_requires = false;
  for (const auto& input : inputs) {
    if (input.Defined() &&
        (input.RequiresGrad() || input.GradFn() != nullptr)) {
      any_requires = true;
      break;
    }
  }
  if (GradRecordingEnabled() && any_requires) {
    auto node = std::make_shared<GradNode>();
    node->op_name = std::move(op_name);
    node->inputs = std::move(inputs);
    node->backward = std::move(backward);
    impl->grad_fn = std::move(node);
    impl->requires_grad = true;
  }
  return Tensor::FromImpl(std::move(impl));
}

}  // namespace sthsl
