#ifndef STHSL_TENSOR_KERNEL_COST_H_
#define STHSL_TENSOR_KERNEL_COST_H_

// Analytic FLOP and byte-traffic models for the tensor kernels, keyed by the
// autograd op name passed to MakeResult. The models are exact counts of the
// floating-point operations the serial reference loops perform (one
// transcendental call counts as one operation), so they are reproducible on
// any machine and independent of thread count — the observability layer
// divides them by measured wall time to get achieved GFLOP/s and by the byte
// model to get arithmetic intensity (see docs/performance.md, "Roofline
// methodology").
//
// Per-op forward models:
//   matmul        2·batch·m·k·n           (multiply + add per cell)
//   conv2d        batch·cout·cin·kh·kw·oh·ow·2   (bias fill is a write)
//   softmax       5·numel                 (max-cmp, sub, exp, add, div)
//   add/sub/mul/div and every elementwise unary    1·numel(out)
//   sum_all / sum_dims                    numel(input) adds
//   spmm          2·nnz·n                 (multiply + add per stored entry
//                                          per output column; nnz is the
//                                          length of the values input)
//   gather / sparse_values                0 (pure data movement)
//   reshape/permute/narrow/cat/index_select        0 (pure data movement)
// Backward models (assume every input needs its gradient):
//   matmul        4·batch·m·k·n           (dA = dC·Bᵀ plus dB = Aᵀ·dC)
//   conv2d        2·fwd  (+ batch·cout·oh·ow bias-grad adds when biased)
//   softmax       4·numel                 (dot: mul+add; scale: sub+mul)
//   binary elementwise   2·numel(out)     (one product per input grad)
//   unary elementwise    2·numel          (gv · df)
//   spmm          4·nnz·n                 (dvals row-dots plus db scatter)
//   gather        numel(out) adds         (scatter-add into the table grad)
//   reductions / movement ops / sparse_values      0
// Unmodeled op names return 0, never a guess.

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sthsl {

/// Modeled floating-point operations of one forward call of `op_name` with
/// the given inputs producing `out_shape`. Zero for unmodeled ops.
int64_t ForwardOpFlops(const std::string& op_name,
                       const std::vector<Tensor>& inputs,
                       const std::vector<int64_t>& out_shape);

/// Modeled floating-point operations of one backward call of `op_name`
/// (gradient of an output shaped `out_shape` w.r.t. every input).
int64_t BackwardOpFlops(const std::string& op_name,
                        const std::vector<Tensor>& inputs,
                        const std::vector<int64_t>& out_shape);

/// Modeled bytes moved by one backward call: reads the output gradient,
/// reads every input, writes one gradient per input —
/// 4 · (numel(out) + 2 · Σ numel(input)).
int64_t BackwardOpBytes(const std::vector<Tensor>& inputs,
                        const std::vector<int64_t>& out_shape);

}  // namespace sthsl

#endif  // STHSL_TENSOR_KERNEL_COST_H_
