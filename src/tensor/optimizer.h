#ifndef STHSL_TENSOR_OPTIMIZER_H_
#define STHSL_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace sthsl {

/// Base class of gradient-descent optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored on the params.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  const std::vector<Tensor>& Params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD with optional momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and L2 weight decay, matching the
/// paper's training setup (Adam, lr = 1e-3).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  /// Adjusts the learning rate (for schedules).
  void SetLr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace sthsl

#endif  // STHSL_TENSOR_OPTIMIZER_H_
