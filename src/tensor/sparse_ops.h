#ifndef STHSL_TENSOR_SPARSE_OPS_H_
#define STHSL_TENSOR_SPARSE_OPS_H_

#include <cstdint>
#include <vector>

#include "sparse/sparse_tensor.h"
#include "tensor/tensor.h"

namespace sthsl {

/// Autograd-integrated sparse operations (docs/sparse.md).
///
/// The sparse layer stores structure; these ops connect it to the autograd
/// tape. The contract for the sparse-side gradient is *fixed-pattern*: a
/// sparse operand's gradient is materialized only at its stored
/// coordinates, and the coordinate pattern itself is never extended or
/// pruned by training. Dense-side gradients flow as usual. Both SpMM
/// dispatch orders visit stored entries in exactly the order the dense
/// GEMM visits all entries, so a sparse forward/backward is
/// bitwise-identical to the dense (masked) reference whenever every
/// skipped product is exactly +0 (finite data; holds for every workload in
/// this repo and is asserted by tests/sparse_test.cc).

/// Dense -> sparse conversion (COO, detached from the autograd tape).
sparse::SparseTensor ToSparse(
    const Tensor& t,
    sparse::ZeroPolicy policy = sparse::ZeroPolicy::kDropZeros);

/// Sparse -> dense materialization (detached leaf tensor).
Tensor SparseToDense(const sparse::SparseTensor& s);

/// Gathers the values of `dense` at `pattern`'s stored coordinates into a
/// 1-D tensor of length nnz (entry order = the pattern's storage order).
/// This is the autograd bridge for learnable sparse operands: the backward
/// scatters the incoming gradient to the stored coordinates only — the
/// fixed-pattern gradient semantics above. Op name: "sparse_values".
Tensor SparseValues(const Tensor& dense, const sparse::SparseTensor& pattern);

/// SpMM: A · B (or A^T · B with `transpose_a`) where A is `pattern` (CSR,
/// shape (m, k)) with values taken from the 1-D tensor `values` (length
/// nnz, pattern storage order) and B is dense (k, n) ((m, n) when
/// transposed). Gradients flow to both `values` (fixed-pattern) and `b`.
/// Op name: "spmm" (nnz-aware cost model in tensor/kernel_cost.cc).
Tensor SpMM(const sparse::SparseTensor& pattern, const Tensor& values,
            const Tensor& b, bool transpose_a = false);

/// Sparse embedding lookup: out(count, width) with row i = table[idx[i]].
/// The backward scatter-adds into the table gradient with a fixed
/// accumulation order for repeated indices. Op name: "gather".
Tensor GatherRows(const Tensor& table, std::vector<int64_t> indices);

}  // namespace sthsl

#endif  // STHSL_TENSOR_SPARSE_OPS_H_
