#ifndef STHSL_TENSOR_OPS_H_
#define STHSL_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace sthsl {

// ---------------------------------------------------------------------------
// Elementwise binary operations (NumPy-style broadcasting on both arguments).
// ---------------------------------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }
inline Tensor operator+(const Tensor& a, float s) { return AddScalar(a, s); }
inline Tensor operator+(float s, const Tensor& a) { return AddScalar(a, s); }
inline Tensor operator-(const Tensor& a, float s) { return AddScalar(a, -s); }
inline Tensor operator*(const Tensor& a, float s) { return MulScalar(a, s); }
inline Tensor operator*(float s, const Tensor& a) { return MulScalar(a, s); }
inline Tensor operator/(const Tensor& a, float s) {
  return MulScalar(a, 1.0f / s);
}

// ---------------------------------------------------------------------------
// Elementwise unary operations.
// ---------------------------------------------------------------------------

Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural logarithm; input is clamped at 1e-12 for numerical safety.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
/// Elementwise power with a scalar exponent.
Tensor PowScalar(const Tensor& a, float exponent);
Tensor Square(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.01f);
/// max(a, floor) elementwise; gradient passes where a > floor.
Tensor ClampMin(const Tensor& a, float floor);

inline Tensor operator-(const Tensor& a) { return Neg(a); }
inline Tensor operator-(float s, const Tensor& a) {
  return AddScalar(Neg(a), s);
}

/// Inverted dropout: zeroes entries with probability `p` and scales the rest
/// by 1/(1-p). Identity when `training` is false or p == 0.
Tensor Dropout(const Tensor& a, float p, Rng& rng, bool training);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// Matrix product. Supports (m,k)x(k,n), batched (b,m,k)x(b,k,n) and
/// broadcast (b,m,k)x(k,n).
Tensor MatMul(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

/// Sum of all elements (scalar result).
Tensor Sum(const Tensor& a);
/// Sum over the given dims. `keepdim` keeps reduced dims with size 1.
Tensor Sum(const Tensor& a, std::vector<int64_t> dims, bool keepdim = false);
/// Mean of all elements (scalar result).
Tensor Mean(const Tensor& a);
Tensor Mean(const Tensor& a, std::vector<int64_t> dims, bool keepdim = false);
/// Detached maximum along `dim` (no gradient; used e.g. for softmax shift).
Tensor MaxValues(const Tensor& a, int64_t dim, bool keepdim = true);

// ---------------------------------------------------------------------------
// Shape manipulation.
// ---------------------------------------------------------------------------

/// Reinterprets the element order with a new shape. At most one dim may be -1
/// (inferred).
Tensor Reshape(const Tensor& a, std::vector<int64_t> shape);
/// Reorders axes; materializes a contiguous copy.
Tensor Permute(const Tensor& a, std::vector<int64_t> dims);
Tensor Transpose(const Tensor& a, int64_t dim0, int64_t dim1);
Tensor Unsqueeze(const Tensor& a, int64_t dim);
Tensor Squeeze(const Tensor& a, int64_t dim);
/// Contiguous slab `[start, start+length)` along `dim`.
Tensor Narrow(const Tensor& a, int64_t dim, int64_t start, int64_t length);
/// Concatenation along `dim`.
Tensor Cat(const std::vector<Tensor>& tensors, int64_t dim);
/// Stacks equally-shaped tensors along a new leading `dim`.
Tensor Stack(const std::vector<Tensor>& tensors, int64_t dim);
/// Selects rows (general dim) by index; indices may repeat.
Tensor IndexSelect(const Tensor& a, int64_t dim,
                   const std::vector<int64_t>& indices);
/// Materialized broadcast of `a` to `shape`.
Tensor BroadcastTo(const Tensor& a, std::vector<int64_t> shape);

// ---------------------------------------------------------------------------
// Neural-network primitives.
// ---------------------------------------------------------------------------

/// Softmax along `dim` (numerically stabilized).
Tensor Softmax(const Tensor& a, int64_t dim);

/// 2-D convolution, stride 1. input (N, Cin, H, W); weight (Cout, Cin, KH,
/// KW); optional bias (Cout). Zero padding of `pad_h`/`pad_w` on each side.
Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t pad_h, int64_t pad_w);

/// 1-D convolution, stride 1. input (N, Cin, L); weight (Cout, Cin, K);
/// optional bias (Cout). Zero padding of `pad` on each side.
Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t pad);

// ---------------------------------------------------------------------------
// Losses and similarity helpers.
// ---------------------------------------------------------------------------

/// Mean squared error (scalar).
Tensor MseLoss(const Tensor& pred, const Tensor& target);
/// Sum of squared errors, the paper's Eq. 10 first term (scalar).
Tensor SquaredErrorSum(const Tensor& pred, const Tensor& target);
/// L2-normalizes along the last dimension (rows become unit vectors).
Tensor L2NormalizeRows(const Tensor& a, float eps = 1e-8f);

}  // namespace sthsl

#endif  // STHSL_TENSOR_OPS_H_
