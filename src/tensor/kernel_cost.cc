#include "tensor/kernel_cost.h"

namespace sthsl {
namespace {

int64_t Product(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t s : shape) n *= s;
  return n;
}

bool IsBinaryElementwise(const std::string& name) {
  return name == "add" || name == "sub" || name == "mul" || name == "div";
}

bool IsUnaryElementwise(const std::string& name) {
  return name == "add_scalar" || name == "mul_scalar" || name == "neg" ||
         name == "exp" || name == "log" || name == "sqrt" || name == "abs" ||
         name == "pow_scalar" || name == "square" || name == "sigmoid" ||
         name == "tanh" || name == "relu" || name == "leaky_relu" ||
         name == "clamp_min";
}

bool IsReduction(const std::string& name) {
  return name == "sum_all" || name == "sum_dims";
}

// batch·m·k·n of a MatMul call, from the lhs and the output shape: the lhs
// carries (m, k) in its trailing dims, the output carries n and the batch.
int64_t MatMulCells(const std::vector<Tensor>& inputs,
                    const std::vector<int64_t>& out_shape) {
  if (inputs.empty() || !inputs[0].Defined() || inputs[0].Dim() < 2 ||
      out_shape.size() < 2) {
    return 0;
  }
  const int64_t m = inputs[0].Size(-2);
  const int64_t k = inputs[0].Size(-1);
  const int64_t n = out_shape[out_shape.size() - 1];
  const int64_t batch = out_shape.size() == 3 ? out_shape[0] : 1;
  return batch * m * k * n;
}

// batch·cout·cin·kh·kw·oh·ow of a Conv2d call, from the weight (Cout, Cin,
// KH, KW) and the output (N, Cout, OH, OW).
int64_t ConvCells(const std::vector<Tensor>& inputs,
                  const std::vector<int64_t>& out_shape) {
  if (inputs.size() < 2 || !inputs[1].Defined() || inputs[1].Dim() != 4 ||
      out_shape.size() != 4) {
    return 0;
  }
  const Tensor& weight = inputs[1];
  const int64_t batch = out_shape[0];
  const int64_t oh = out_shape[2];
  const int64_t ow = out_shape[3];
  return batch * weight.Numel() * oh * ow;
}

// nnz·n of a SpMM call: inputs are {values (nnz,), b (·, n)} and the model
// counts only the stored entries — never the dense-equivalent m·k·n.
int64_t SpmmCells(const std::vector<Tensor>& inputs,
                  const std::vector<int64_t>& out_shape) {
  if (inputs.empty() || !inputs[0].Defined() || out_shape.size() != 2) {
    return 0;
  }
  return inputs[0].Numel() * out_shape[1];
}

// Step count K of a "fused_elemwise<K>" chain op, or 0 for other names.
int64_t FusedChainSteps(const std::string& name) {
  constexpr const char kPrefix[] = "fused_elemwise";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.compare(0, kPrefixLen, kPrefix) != 0 || name.size() == kPrefixLen) {
    return 0;
  }
  int64_t k = 0;
  for (size_t i = kPrefixLen; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    k = k * 10 + (name[i] - '0');
  }
  return k;
}

int64_t SumInputNumels(const std::vector<Tensor>& inputs) {
  int64_t n = 0;
  for (const auto& input : inputs) {
    if (input.Defined()) n += input.Numel();
  }
  return n;
}

}  // namespace

int64_t ForwardOpFlops(const std::string& op_name,
                       const std::vector<Tensor>& inputs,
                       const std::vector<int64_t>& out_shape) {
  const int64_t out_numel = Product(out_shape);
  if (op_name == "matmul") return 2 * MatMulCells(inputs, out_shape);
  if (op_name == "conv2d") return 2 * ConvCells(inputs, out_shape);
  if (op_name == "spmm") return 2 * SpmmCells(inputs, out_shape);
  if (op_name == "softmax") return 5 * out_numel;
  if (IsBinaryElementwise(op_name) || IsUnaryElementwise(op_name)) {
    return out_numel;
  }
  if (const int64_t k = FusedChainSteps(op_name)) return k * out_numel;
  if (IsReduction(op_name)) return SumInputNumels(inputs);
  return 0;
}

int64_t BackwardOpFlops(const std::string& op_name,
                        const std::vector<Tensor>& inputs,
                        const std::vector<int64_t>& out_shape) {
  const int64_t out_numel = Product(out_shape);
  if (op_name == "matmul") return 4 * MatMulCells(inputs, out_shape);
  if (op_name == "spmm") return 4 * SpmmCells(inputs, out_shape);
  if (op_name == "gather") return out_numel;
  if (op_name == "conv2d") {
    int64_t flops = 4 * ConvCells(inputs, out_shape);
    // Bias gradient: one add per output cell into the per-channel sums.
    if (inputs.size() > 2 && inputs[2].Defined()) flops += out_numel;
    return flops;
  }
  if (op_name == "softmax") return 4 * out_numel;
  if (IsBinaryElementwise(op_name) || IsUnaryElementwise(op_name)) {
    return 2 * out_numel;
  }
  // Fused chains recompute the K forward steps, then run K backward steps.
  if (const int64_t k = FusedChainSteps(op_name)) return 2 * k * out_numel;
  return 0;
}

int64_t BackwardOpBytes(const std::vector<Tensor>& inputs,
                        const std::vector<int64_t>& out_shape) {
  return 4 * (Product(out_shape) + 2 * SumInputNumels(inputs));
}

}  // namespace sthsl
