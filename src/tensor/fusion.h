#ifndef STHSL_TENSOR_FUSION_H_
#define STHSL_TENSOR_FUSION_H_

// Eager elementwise-chain fusion.
//
// Same-shape elementwise ops (add/sub/mul/div, scalar variants, and the
// unary activations) do not evaluate immediately: they return a *pending*
// tensor whose TensorImpl carries a FusedChain — a materialized root tensor
// plus up to kMaxFusedSteps ops to apply to it. Chaining another fusable op
// onto a pending tensor extends the chain instead of materializing it, so a
// z-score → add-bias → activation → dropout-mask pipeline becomes ONE loop
// nest over the data with zero intermediate tensor buffers. Any access to
// the values (Data, Item, At, Backward, ...) materializes the chain in a
// single pass over the simd microkernels.
//
// Autograd: a pending tensor's GradNode is "fused_elemwise<K>" with inputs
// [root, rhs...] (the rhs operands of the binary steps, in step order). Its
// backward recomputes the forward values per element — scalar code, bitwise
// equal to the vectorized forward because every fused op is a lane-exact
// IEEE operation or scalar libm call (see simd/simd.h) — then applies the
// exact local-derivative formulas of the unfused ops in reverse. The
// gradient each input receives is the same product sequence the unfused op
// chain would produce, so fusion changes no result bitwise: not gradients,
// not optimizer updates, not checkpoint bytes.
//
// Pending chains created while fusing an op onto a still-pending input share
// the root and copy the steps; the shorter prefix tensor stays pending and,
// if nothing else reads it, is simply never evaluated.
//
// Fusion is disabled under STHSL_DEBUG_CHECKS (the validator wants to see
// every intermediate) and via STHSL_FUSION=0.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sthsl {

/// Ops a chain step can apply. Binary ops consume a same-shape rhs tensor;
/// scalar ops carry an immediate operand.
enum class FusedOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kAddScalar,
  kMulScalar,
  kNeg,
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kSquare,
  kPowScalar,
  kSigmoid,
  kTanh,
  kRelu,
  kLeakyRelu,
  kClampMin,
};

/// Returns true for the ops that take a same-shape rhs tensor.
bool FusedOpIsBinary(FusedOp op);

struct FusedStep {
  FusedOp op;
  float scalar = 0.0f;  // kAddScalar/kMulScalar/kPowScalar/kLeakyRelu/kClampMin
  Tensor rhs;           // defined for binary ops only; always materialized
};

/// Chain length cap: long enough for the model's activation pipelines,
/// short enough that backward's per-element value array stays on the stack.
inline constexpr int64_t kMaxFusedSteps = 8;

struct FusedChain {
  Tensor root;  // materialized; the chain applies steps[0..] to its values
  std::vector<FusedStep> steps;
};

/// True when new elementwise ops should build pending chains. Off under
/// STHSL_DEBUG_CHECKS and STHSL_FUSION=0.
bool FusionEnabled();

/// Test hook: 1 forces fusion on, 0 forces it off, -1 restores the default.
void SetFusionEnabledForTesting(int mode);

/// Builds (or extends) a pending chain applying `op` to `a`. Returns an
/// undefined Tensor when fusion is disabled or `a` is not eligible — the
/// caller must then take the eager path.
Tensor TryFuseUnary(FusedOp op, const Tensor& a, float scalar = 0.0f);

/// Same for a binary op with rhs `b`; requires identical shapes (broadcasts
/// take the eager path).
Tensor TryFuseBinary(FusedOp op, const Tensor& a, const Tensor& b);

/// Evaluates `impl`'s pending chain into impl.data and clears it. No-op if
/// the impl is not pending. Called by the Tensor accessors.
void MaterializePending(TensorImpl& impl);

}  // namespace sthsl

#endif  // STHSL_TENSOR_FUSION_H_
