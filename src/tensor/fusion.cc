#include "tensor/fusion.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>

#include "exec/exec.h"
#include "simd/simd.h"
#include "tensor/debug_validator.h"
#include "util/check.h"
#include "util/obs/obs.h"

namespace sthsl {
namespace {

// Same elementwise grain as ops.cc (see docs/performance.md).
constexpr int64_t kFusedGrain = 16384;

std::atomic<int> g_fusion_override{-1};

bool NeedsGrad(const Tensor& t) {
  return t.Defined() && (t.RequiresGrad() || t.GradFn() != nullptr);
}

void EnsureMaterialized(const Tensor& t) {
  const auto impl = t.Impl();
  if (impl != nullptr && impl->pending != nullptr) MaterializePending(*impl);
}

// Scalar forward of one step — the formulas are copied verbatim from the
// unfused ops.cc lambdas, and the vectorized ApplyStep path below is
// lane-exact against them (IEEE ops via the simd kernels, scalar libm for
// transcendentals), so backward's recompute matches the materialized
// forward bitwise.
inline float EvalStep(const FusedStep& s, float x, float y) {
  switch (s.op) {
    case FusedOp::kAdd:
      return x + y;
    case FusedOp::kSub:
      return x - y;
    case FusedOp::kMul:
      return x * y;
    case FusedOp::kDiv:
      return x / y;
    case FusedOp::kAddScalar:
      return x + s.scalar;
    case FusedOp::kMulScalar:
      return x * s.scalar;
    case FusedOp::kNeg:
      return -x;
    case FusedOp::kExp:
      return std::exp(x);
    case FusedOp::kLog:
      return std::log(std::max(x, 1e-12f));
    case FusedOp::kSqrt:
      return std::sqrt(x);
    case FusedOp::kAbs:
      return std::fabs(x);
    case FusedOp::kSquare:
      return x * x;
    case FusedOp::kPowScalar:
      return std::pow(x, s.scalar);
    case FusedOp::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case FusedOp::kTanh:
      return std::tanh(x);
    case FusedOp::kRelu:
      return x > 0.0f ? x : 0.0f;
    case FusedOp::kLeakyRelu:
      return x > 0.0f ? x : s.scalar * x;
    case FusedOp::kClampMin:
      return x > s.scalar ? x : s.scalar;
  }
  return 0.0f;
}

// Local derivative w.r.t. the chained value x, given x (input to the step)
// and fx (its output) — verbatim from the ops.cc dx/df lambdas.
inline float EvalStepDx(const FusedStep& s, float x, float fx, float y) {
  switch (s.op) {
    case FusedOp::kAdd:
    case FusedOp::kSub:
    case FusedOp::kAddScalar:
      return 1.0f;
    case FusedOp::kMul:
      return y;
    case FusedOp::kDiv:
      return 1.0f / y;
    case FusedOp::kMulScalar:
      return s.scalar;
    case FusedOp::kNeg:
      return -1.0f;
    case FusedOp::kExp:
      return fx;
    case FusedOp::kLog:
      return 1.0f / std::max(x, 1e-12f);
    case FusedOp::kSqrt:
      return 0.5f / std::max(fx, 1e-12f);
    case FusedOp::kAbs:
      return x >= 0.0f ? 1.0f : -1.0f;
    case FusedOp::kSquare:
      return 2.0f * x;
    case FusedOp::kPowScalar:
      return s.scalar * std::pow(x, s.scalar - 1.0f);
    case FusedOp::kSigmoid:
      return fx * (1.0f - fx);
    case FusedOp::kTanh:
      return 1.0f - fx * fx;
    case FusedOp::kRelu:
      return x > 0.0f ? 1.0f : 0.0f;
    case FusedOp::kLeakyRelu:
      return x > 0.0f ? 1.0f : s.scalar;
    case FusedOp::kClampMin:
      return x > s.scalar ? 1.0f : 0.0f;
  }
  return 0.0f;
}

// Local derivative w.r.t. the rhs of a binary step.
inline float EvalStepDy(const FusedStep& s, float x, float y) {
  switch (s.op) {
    case FusedOp::kAdd:
      return 1.0f;
    case FusedOp::kSub:
      return -1.0f;
    case FusedOp::kMul:
      return x;
    case FusedOp::kDiv:
      return -x / (y * y);
    default:
      return 0.0f;
  }
}

// Applies one step in place over a contiguous strip, through the simd
// kernels where one exists (all lane-exact), scalar libm otherwise.
void ApplyStep(const FusedStep& s, float* buf, const float* rhs, int64_t n) {
  const auto& ks = simd::Kernels();
  switch (s.op) {
    case FusedOp::kAdd:
      ks.add(n, buf, rhs, buf);
      return;
    case FusedOp::kSub:
      ks.sub(n, buf, rhs, buf);
      return;
    case FusedOp::kMul:
      ks.mul(n, buf, rhs, buf);
      return;
    case FusedOp::kDiv:
      ks.div(n, buf, rhs, buf);
      return;
    case FusedOp::kAddScalar:
      ks.add_scalar(n, buf, s.scalar, buf);
      return;
    case FusedOp::kMulScalar:
      ks.mul_scalar(n, buf, s.scalar, buf);
      return;
    case FusedOp::kSquare:
      ks.mul(n, buf, buf, buf);
      return;
    case FusedOp::kRelu:
      ks.relu(n, buf, buf);
      return;
    case FusedOp::kLeakyRelu:
      ks.leaky_relu(n, buf, s.scalar, buf);
      return;
    case FusedOp::kClampMin:
      ks.clamp_min(n, buf, s.scalar, buf);
      return;
    default:
      for (int64_t i = 0; i < n; ++i) buf[i] = EvalStep(s, buf[i], 0.0f);
      return;
  }
}

std::string FusedOpName(size_t nsteps) {
  return "fused_elemwise" + std::to_string(nsteps);
}

// Backward for a fused chain: per element, recompute the forward values
// from the root, then fold the gradient through the steps in reverse. The
// multiplication sequence (g · df_K) · df_{K-1} · ... is exactly what the
// unfused op-by-op backward performs, so fusion leaves gradients bitwise
// unchanged.
std::vector<Tensor> FusedBackward(const std::shared_ptr<FusedChain>& chain,
                                  const Tensor& g) {
  const Tensor& root = chain->root;
  const auto& steps = chain->steps;
  const int64_t nsteps = static_cast<int64_t>(steps.size());
  const int64_t n = root.Numel();
  const float* gv = g.Data().data();
  const float* rv = root.Data().data();

  const bool need_root = NeedsGrad(root);
  std::vector<float> root_g;
  if (need_root) root_g.resize(static_cast<size_t>(n));

  std::vector<const float*> rhs_ptr(steps.size(), nullptr);
  std::vector<std::vector<float>> rhs_g(steps.size());
  for (size_t k = 0; k < steps.size(); ++k) {
    if (!FusedOpIsBinary(steps[k].op)) continue;
    rhs_ptr[k] = steps[k].rhs.Data().data();
    if (NeedsGrad(steps[k].rhs)) rhs_g[k].resize(static_cast<size_t>(n));
  }

  exec::ParallelFor(
      0, n, kFusedGrain,
      [&](int64_t lo, int64_t hi) {
        float v[kMaxFusedSteps + 1];
        for (int64_t i = lo; i < hi; ++i) {
          v[0] = rv[i];
          for (int64_t k = 0; k < nsteps; ++k) {
            const float y = rhs_ptr[k] != nullptr ? rhs_ptr[k][i] : 0.0f;
            v[k + 1] = EvalStep(steps[static_cast<size_t>(k)], v[k], y);
          }
          float gcur = gv[i];
          for (int64_t k = nsteps - 1; k >= 0; --k) {
            const FusedStep& s = steps[static_cast<size_t>(k)];
            const float y = rhs_ptr[k] != nullptr ? rhs_ptr[k][i] : 0.0f;
            if (!rhs_g[static_cast<size_t>(k)].empty()) {
              rhs_g[static_cast<size_t>(k)][static_cast<size_t>(i)] =
                  gcur * EvalStepDy(s, v[k], y);
            }
            gcur = gcur * EvalStepDx(s, v[k], v[k + 1], y);
          }
          if (need_root) root_g[static_cast<size_t>(i)] = gcur;
        }
      },
      "exec/fused_elemwise_bwd");

  std::vector<Tensor> grads;
  grads.push_back(need_root ? Tensor::FromVector(root.Shape(),
                                                 std::move(root_g))
                            : Tensor());
  for (size_t k = 0; k < steps.size(); ++k) {
    if (!FusedOpIsBinary(steps[k].op)) continue;
    grads.push_back(rhs_g[k].empty()
                        ? Tensor()
                        : Tensor::FromVector(steps[k].rhs.Shape(),
                                             std::move(rhs_g[k])));
  }
  return grads;
}

// Wraps chain + steps into a pending tensor, wiring the autograd node
// (inputs = [root, rhs...]) exactly the way MakeResult does for eager ops.
Tensor MakePendingTensor(std::shared_ptr<FusedChain> chain) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = chain->root.Shape();
  impl->pending = chain;

  std::vector<Tensor> inputs;
  inputs.push_back(chain->root);
  for (const auto& s : chain->steps) {
    if (FusedOpIsBinary(s.op)) inputs.push_back(s.rhs);
  }
  bool any_requires = false;
  for (const auto& input : inputs) {
    if (NeedsGrad(input)) {
      any_requires = true;
      break;
    }
  }
  if (GradRecordingEnabled() && any_requires) {
    auto node = std::make_shared<GradNode>();
    node->op_name = FusedOpName(chain->steps.size());
    node->inputs = std::move(inputs);
    node->backward = [chain](const Tensor& g) {
      return FusedBackward(chain, g);
    };
    impl->grad_fn = std::move(node);
    impl->requires_grad = true;
  }
  return Tensor::FromImpl(std::move(impl));
}

// Starts a new chain from `a`, or copies and extends `a`'s pending chain
// when there is still room (the shorter pending prefix stays lazy — if
// nothing else reads it, it is never evaluated).
//
// Chains never extend through a tensor that participates in the gradient
// graph: if they did, every consumer of that intermediate would fold the
// prefix derivative into its own contribution (g1·f' + g2·f'), while the
// unfused graph sums all consumer gradients at the intermediate first and
// applies its local derivative once ((g1+g2)·f') — not bitwise-identical
// in float arithmetic. Splitting at autograd boundaries keeps the fused
// gradient graph topologically identical to the eager one, so deep chains
// form where gradients do not flow (inference, masks, constants) and
// grad-carrying ops become single-step fused loops.
std::shared_ptr<FusedChain> ChainFrom(const Tensor& a) {
  auto chain = std::make_shared<FusedChain>();
  const auto impl = a.Impl();
  const bool in_grad_graph = GradRecordingEnabled() && NeedsGrad(a);
  if (impl->pending != nullptr && !in_grad_graph &&
      static_cast<int64_t>(impl->pending->steps.size()) < kMaxFusedSteps) {
    chain->root = impl->pending->root;
    chain->steps = impl->pending->steps;
  } else {
    EnsureMaterialized(a);
    chain->root = a;
  }
  return chain;
}

}  // namespace

bool FusedOpIsBinary(FusedOp op) {
  return op == FusedOp::kAdd || op == FusedOp::kSub || op == FusedOp::kMul ||
         op == FusedOp::kDiv;
}

bool FusionEnabled() {
  const int forced = g_fusion_override.load(std::memory_order_acquire);
  if (forced != -1) return forced == 1;
  if (DebugChecksEnabled()) return false;
  static const bool env_off = [] {
    const char* e = std::getenv("STHSL_FUSION");
    return e != nullptr && std::string(e) == "0";
  }();
  return !env_off;
}

void SetFusionEnabledForTesting(int mode) {
  g_fusion_override.store(mode, std::memory_order_release);
}

Tensor TryFuseUnary(FusedOp op, const Tensor& a, float scalar) {
  if (!a.Defined() || !FusionEnabled()) return Tensor();
  auto chain = ChainFrom(a);
  chain->steps.push_back(FusedStep{op, scalar, Tensor()});
  return MakePendingTensor(std::move(chain));
}

Tensor TryFuseBinary(FusedOp op, const Tensor& a, const Tensor& b) {
  if (!a.Defined() || !b.Defined() || !FusionEnabled()) return Tensor();
  if (a.Shape() != b.Shape()) return Tensor();
  auto chain = ChainFrom(a);
  EnsureMaterialized(b);
  chain->steps.push_back(FusedStep{op, 0.0f, b});
  return MakePendingTensor(std::move(chain));
}

void MaterializePending(TensorImpl& impl) {
  if (impl.pending == nullptr) return;
  const std::shared_ptr<FusedChain> chain = std::move(impl.pending);
  impl.pending = nullptr;

  const bool obs_on = obs::TraceEnabled();
  const double obs_start_us = obs_on ? obs::TraceNowMicros() : 0.0;

  const auto& root_data = chain->root.Data();
  const int64_t n = static_cast<int64_t>(root_data.size());
  impl.data.resize(static_cast<size_t>(n));
  float* out = impl.data.data();
  const float* rv = root_data.data();
  const auto& steps = chain->steps;

  std::vector<const float*> rhs_ptr(steps.size(), nullptr);
  int64_t binary_steps = 0;
  for (size_t k = 0; k < steps.size(); ++k) {
    if (!FusedOpIsBinary(steps[k].op)) continue;
    rhs_ptr[k] = steps[k].rhs.Data().data();
    ++binary_steps;
  }

  // One pass per chunk: seed with the root values, then apply every step in
  // place — no intermediate tensors exist at any point.
  exec::ParallelFor(
      0, n, kFusedGrain,
      [&](int64_t lo, int64_t hi) {
        std::copy(rv + lo, rv + hi, out + lo);
        for (size_t k = 0; k < steps.size(); ++k) {
          const float* rhs =
              rhs_ptr[k] != nullptr ? rhs_ptr[k] + lo : nullptr;
          ApplyStep(steps[k], out + lo, rhs, hi - lo);
        }
      },
      "exec/fused_elemwise");

  if (obs_on) {
    // Reads root + each rhs once, writes the output once.
    const int64_t bytes = 4 * n * (2 + binary_steps);
    const int64_t flops = static_cast<int64_t>(steps.size()) * n;
    const std::string name = FusedOpName(steps.size());
    obs::OnTensorAlloc(4 * n);
    obs::RecordKernelSample(name.c_str(),
                            obs::TraceNowMicros() - obs_start_us, bytes,
                            flops);
    if (!obs::InBackwardPass()) obs::RecordForwardOp(name, bytes, flops);
  }
}

}  // namespace sthsl
