#ifndef STHSL_TENSOR_DEBUG_VALIDATOR_H_
#define STHSL_TENSOR_DEBUG_VALIDATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sthsl {

/// Runtime autograd/numerics validator.
///
/// When enabled, every forward op (via MakeResult), every backward gradient
/// (via Tensor::Backward), gradient accumulation, and every optimizer step
/// are checked for:
///   - NaN/Inf values in activations and gradients,
///   - buffer/shape inconsistencies (data size vs shape, grad vs parameter),
///   - gradient accumulation onto tensors that never asked for gradients,
///   - a second Backward() through a graph already consumed (freed) by a
///     previous backward pass.
/// Failures abort through STHSL_CHECK, reporting the originating op name and
/// the shapes involved.
///
/// Enablement: set the STHSL_DEBUG_CHECKS environment variable to anything
/// but "0" before process start, or call SetDebugChecks(true) at runtime.
/// When disabled, every hook costs a single predictable branch.

namespace debug_validator_internal {
/// Backing flag; read through DebugChecksEnabled(). Initialized from the
/// STHSL_DEBUG_CHECKS environment variable during static initialization.
extern bool g_enabled;
}  // namespace debug_validator_internal

/// True when runtime debug validation is active.
inline bool DebugChecksEnabled() { return debug_validator_internal::g_enabled; }

/// Enables or disables validation at runtime, overriding the environment
/// variable. Returns the previous state (handy for scoped save/restore in
/// tests).
bool SetDebugChecks(bool enabled);

/// Renders a shape as "[2, 3, 4]" for diagnostics.
std::string ShapeToString(const std::vector<int64_t>& shape);

/// Validates a freshly computed forward result before it is wrapped into a
/// Tensor: `data` must match `shape`, and every value must be finite. Aborts
/// naming `op_name` and the input shapes otherwise.
void ValidateForwardResult(const std::string& op_name,
                           const std::vector<int64_t>& shape,
                           const std::vector<float>& data,
                           const std::vector<Tensor>& inputs);

/// Validates a tensor entering an op kernel (catches NaN/Inf injected into
/// leaf buffers, e.g. corrupted datasets, before it spreads). `arg_name`
/// identifies the operand in the failure message.
void ValidateOpInput(const char* op_name, const char* arg_name,
                     const Tensor& input);

/// Validates one input-gradient produced by `op_name`'s backward function:
/// it must match the input's shape exactly and contain only finite values.
void ValidateBackwardGradient(const std::string& op_name, size_t input_index,
                              const Tensor& grad,
                              const std::vector<int64_t>& input_shape);

/// Validates a gradient about to be accumulated into `target`: the target
/// must participate in the autograd graph (requires_grad or grad_fn) and the
/// gradient buffer must be shape-consistent.
void ValidateGradAccumulation(const TensorImpl& target, const Tensor& grad);

/// Validates parameters and their gradients at the top of an optimizer step:
/// finite parameter data, finite gradients, and grad buffers sized like the
/// parameter they update.
void ValidateOptimizerStep(const char* optimizer_name,
                           const std::vector<Tensor>& params);

}  // namespace sthsl

#endif  // STHSL_TENSOR_DEBUG_VALIDATOR_H_
