#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "exec/exec.h"
#include "simd/simd.h"
#include "tensor/debug_validator.h"
#include "tensor/fusion.h"
#include "util/check.h"

namespace sthsl {
namespace {

bool NeedsGrad(const Tensor& t) {
  return t.Defined() && (t.RequiresGrad() || t.GradFn() != nullptr);
}

// Minimum elements per parallel chunk for elementwise / gather kernels;
// smaller tensors run inline on the caller (see docs/performance.md).
constexpr int64_t kElemGrain = 16384;

// Fixed chunk size for the global-sum reduction. This is a *determinism*
// constant, not a tuning knob: Sum(all) partials are per-chunk, so changing
// it changes the (documented) floating-point association.
constexpr int64_t kSumAllGrain = 32768;

// Strides of `shape` left-padded to `rank` dims, with 0 for broadcast dims.
std::vector<int64_t> BroadcastStrides(const std::vector<int64_t>& shape,
                                      const std::vector<int64_t>& out_shape) {
  const size_t rank = out_shape.size();
  const auto strides = StridesOf(shape);
  std::vector<int64_t> padded(rank, 0);
  const size_t offset = rank - shape.size();
  for (size_t i = 0; i < shape.size(); ++i) {
    padded[offset + i] = (shape[i] == 1 && out_shape[offset + i] != 1)
                             ? 0
                             : strides[i];
  }
  return padded;
}

// Sums `grad` (shaped like `out_shape`) down to `target_shape` (the inverse
// of broadcasting). Runs under NoGradGuard during backward.
Tensor ReduceGradTo(const Tensor& grad, const std::vector<int64_t>& target) {
  if (grad.Shape() == target) return grad;
  const auto& gshape = grad.Shape();
  const size_t rank = gshape.size();
  const size_t offset = rank - target.size();
  std::vector<int64_t> dims;
  for (size_t i = 0; i < rank; ++i) {
    if (i < offset) {
      dims.push_back(static_cast<int64_t>(i));
    } else if (target[i - offset] == 1 && gshape[i] != 1) {
      dims.push_back(static_cast<int64_t>(i));
    }
  }
  Tensor reduced = dims.empty() ? grad : Sum(grad, dims, /*keepdim=*/true);
  return Reshape(reduced, target);
}

// Generic broadcasting binary op. `fwd` computes the output value; `dx`/`dy`
// compute the local partial derivatives given (x, y).
template <typename Fwd, typename Dx, typename Dy>
Tensor BroadcastBinary(const char* name, const Tensor& a, const Tensor& b,
                       Fwd fwd, Dx dx, Dy dy) {
  const auto out_shape = BroadcastShapes(a.Shape(), b.Shape());
  const int64_t n = NumelOf(out_shape);
  std::vector<float> out(static_cast<size_t>(n));
  const auto& av = a.Data();
  const auto& bv = b.Data();

  if (a.Shape() == b.Shape()) {
    exec::ParallelFor(
        0, n, kElemGrain,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) out[i] = fwd(av[i], bv[i]);
        },
        "exec/elementwise");
  } else {
    const auto sa = BroadcastStrides(a.Shape(), out_shape);
    const auto sb = BroadcastStrides(b.Shape(), out_shape);
    const auto so = StridesOf(out_shape);
    const size_t rank = out_shape.size();
    exec::ParallelFor(
        0, n, kElemGrain,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            int64_t rem = i;
            int64_t ia = 0;
            int64_t ib = 0;
            for (size_t d = 0; d < rank; ++d) {
              const int64_t coord = rem / so[d];
              rem -= coord * so[d];
              ia += coord * sa[d];
              ib += coord * sb[d];
            }
            out[i] =
                fwd(av[static_cast<size_t>(ia)], bv[static_cast<size_t>(ib)]);
          }
        },
        "exec/elementwise");
  }

  Tensor a_captured = a;
  Tensor b_captured = b;
  return MakeResult(
      out_shape, std::move(out), name, {a, b},
      [a_captured, b_captured, dx, dy](const Tensor& g) -> std::vector<Tensor> {
        const auto out_shape =
            BroadcastShapes(a_captured.Shape(), b_captured.Shape());
        const int64_t n = NumelOf(out_shape);
        const auto& gv = g.Data();
        const auto& av = a_captured.Data();
        const auto& bv = b_captured.Data();
        Tensor ga;
        Tensor gb;
        const bool need_a = NeedsGrad(a_captured);
        const bool need_b = NeedsGrad(b_captured);

        std::vector<float> ga_full;
        std::vector<float> gb_full;
        if (need_a) ga_full.resize(static_cast<size_t>(n));
        if (need_b) gb_full.resize(static_cast<size_t>(n));

        if (a_captured.Shape() == b_captured.Shape()) {
          exec::ParallelFor(
              0, n, kElemGrain,
              [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  if (need_a) ga_full[i] = gv[i] * dx(av[i], bv[i]);
                  if (need_b) gb_full[i] = gv[i] * dy(av[i], bv[i]);
                }
              },
              "exec/elementwise");
        } else {
          const auto sa = BroadcastStrides(a_captured.Shape(), out_shape);
          const auto sb = BroadcastStrides(b_captured.Shape(), out_shape);
          const auto so = StridesOf(out_shape);
          const size_t rank = out_shape.size();
          exec::ParallelFor(
              0, n, kElemGrain,
              [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  int64_t rem = i;
                  int64_t ia = 0;
                  int64_t ib = 0;
                  for (size_t d = 0; d < rank; ++d) {
                    const int64_t coord = rem / so[d];
                    rem -= coord * so[d];
                    ia += coord * sa[d];
                    ib += coord * sb[d];
                  }
                  const float x = av[static_cast<size_t>(ia)];
                  const float y = bv[static_cast<size_t>(ib)];
                  if (need_a) ga_full[i] = gv[i] * dx(x, y);
                  if (need_b) gb_full[i] = gv[i] * dy(x, y);
                }
              },
              "exec/elementwise");
        }
        if (need_a) {
          ga = ReduceGradTo(Tensor::FromVector(out_shape, std::move(ga_full)),
                            a_captured.Shape());
        }
        if (need_b) {
          gb = ReduceGradTo(Tensor::FromVector(out_shape, std::move(gb_full)),
                            b_captured.Shape());
        }
        return {ga, gb};
      });
}

// Generic elementwise unary op with local derivative `df(x, fx)`.
template <typename Fwd, typename Df>
Tensor UnaryOp(const char* name, const Tensor& a, Fwd fwd, Df df) {
  const int64_t n = a.Numel();
  std::vector<float> out(static_cast<size_t>(n));
  const auto& av = a.Data();
  exec::ParallelFor(
      0, n, kElemGrain,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) out[i] = fwd(av[i]);
      },
      "exec/elementwise");

  Tensor a_captured = a;
  Tensor fx = Tensor::FromVector(a.Shape(), out);  // detached copy of outputs
  return MakeResult(
      a.Shape(), std::move(out), name, {a},
      [a_captured, fx, df](const Tensor& g) -> std::vector<Tensor> {
        const int64_t n = a_captured.Numel();
        const auto& gv = g.Data();
        const auto& av = a_captured.Data();
        const auto& fv = fx.Data();
        std::vector<float> ga(static_cast<size_t>(n));
        exec::ParallelFor(
            0, n, kElemGrain,
            [&](int64_t lo, int64_t hi) {
              for (int64_t i = lo; i < hi; ++i) {
                ga[i] = gv[i] * df(av[i], fv[i]);
              }
            },
            "exec/elementwise");
        return {Tensor::FromVector(a_captured.Shape(), std::move(ga))};
      });
}

}  // namespace

// -- Binary -------------------------------------------------------------------
//
// Each elementwise op first offers itself to the fusion layer: same-shape
// chains build a pending FusedChain (one loop nest, no intermediates — see
// tensor/fusion.h) and only fall through to the eager kernels below when
// fusion is off or the shapes broadcast.

Tensor Add(const Tensor& a, const Tensor& b) {
  if (Tensor f = TryFuseBinary(FusedOp::kAdd, a, b); f.Defined()) return f;
  return BroadcastBinary(
      "add", a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  if (Tensor f = TryFuseBinary(FusedOp::kSub, a, b); f.Defined()) return f;
  return BroadcastBinary(
      "sub", a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  if (Tensor f = TryFuseBinary(FusedOp::kMul, a, b); f.Defined()) return f;
  return BroadcastBinary(
      "mul", a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  if (DebugChecksEnabled()) {
    ValidateOpInput("div", "a", a);
    ValidateOpInput("div", "b", b);
  }
  if (Tensor f = TryFuseBinary(FusedOp::kDiv, a, b); f.Defined()) return f;
  return BroadcastBinary(
      "div", a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  if (Tensor f = TryFuseUnary(FusedOp::kAddScalar, a, s); f.Defined()) return f;
  return UnaryOp(
      "add_scalar", a, [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& a, float s) {
  if (Tensor f = TryFuseUnary(FusedOp::kMulScalar, a, s); f.Defined()) return f;
  return UnaryOp(
      "mul_scalar", a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

// -- Unary --------------------------------------------------------------------

Tensor Neg(const Tensor& a) {
  if (Tensor f = TryFuseUnary(FusedOp::kNeg, a); f.Defined()) return f;
  return UnaryOp(
      "neg", a, [](float x) { return -x; },
      [](float, float) { return -1.0f; });
}

Tensor Exp(const Tensor& a) {
  if (Tensor f = TryFuseUnary(FusedOp::kExp, a); f.Defined()) return f;
  return UnaryOp(
      "exp", a, [](float x) { return std::exp(x); },
      [](float, float fx) { return fx; });
}

Tensor Log(const Tensor& a) {
  if (DebugChecksEnabled()) ValidateOpInput("log", "a", a);
  if (Tensor f = TryFuseUnary(FusedOp::kLog, a); f.Defined()) return f;
  return UnaryOp(
      "log", a, [](float x) { return std::log(std::max(x, 1e-12f)); },
      [](float x, float) { return 1.0f / std::max(x, 1e-12f); });
}

Tensor Sqrt(const Tensor& a) {
  if (DebugChecksEnabled()) ValidateOpInput("sqrt", "a", a);
  if (Tensor f = TryFuseUnary(FusedOp::kSqrt, a); f.Defined()) return f;
  return UnaryOp(
      "sqrt", a, [](float x) { return std::sqrt(x); },
      [](float, float fx) { return 0.5f / std::max(fx, 1e-12f); });
}

Tensor Abs(const Tensor& a) {
  if (Tensor f = TryFuseUnary(FusedOp::kAbs, a); f.Defined()) return f;
  return UnaryOp(
      "abs", a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; });
}

Tensor PowScalar(const Tensor& a, float exponent) {
  if (Tensor f = TryFuseUnary(FusedOp::kPowScalar, a, exponent); f.Defined()) {
    return f;
  }
  return UnaryOp(
      "pow_scalar", a,
      [exponent](float x) { return std::pow(x, exponent); },
      [exponent](float x, float) {
        return exponent * std::pow(x, exponent - 1.0f);
      });
}

Tensor Square(const Tensor& a) {
  if (Tensor f = TryFuseUnary(FusedOp::kSquare, a); f.Defined()) return f;
  return UnaryOp(
      "square", a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor Sigmoid(const Tensor& a) {
  if (Tensor f = TryFuseUnary(FusedOp::kSigmoid, a); f.Defined()) return f;
  return UnaryOp(
      "sigmoid", a,
      [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float fx) { return fx * (1.0f - fx); });
}

Tensor Tanh(const Tensor& a) {
  if (Tensor f = TryFuseUnary(FusedOp::kTanh, a); f.Defined()) return f;
  return UnaryOp(
      "tanh", a, [](float x) { return std::tanh(x); },
      [](float, float fx) { return 1.0f - fx * fx; });
}

Tensor Relu(const Tensor& a) {
  if (Tensor f = TryFuseUnary(FusedOp::kRelu, a); f.Defined()) return f;
  return UnaryOp(
      "relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  if (Tensor f = TryFuseUnary(FusedOp::kLeakyRelu, a, negative_slope);
      f.Defined()) {
    return f;
  }
  return UnaryOp(
      "leaky_relu", a,
      [negative_slope](float x) {
        return x > 0.0f ? x : negative_slope * x;
      },
      [negative_slope](float x, float) {
        return x > 0.0f ? 1.0f : negative_slope;
      });
}

Tensor ClampMin(const Tensor& a, float floor) {
  if (Tensor f = TryFuseUnary(FusedOp::kClampMin, a, floor); f.Defined()) {
    return f;
  }
  return UnaryOp(
      "clamp_min", a,
      [floor](float x) { return x > floor ? x : floor; },
      [floor](float x, float) { return x > floor ? 1.0f : 0.0f; });
}

Tensor Dropout(const Tensor& a, float p, Rng& rng, bool training) {
  STHSL_CHECK(p >= 0.0f && p < 1.0f) << "invalid dropout probability " << p;
  if (!training || p == 0.0f) return a;
  const int64_t n = a.Numel();
  const float scale = 1.0f / (1.0f - p);
  std::vector<float> mask(static_cast<size_t>(n));
  for (auto& m : mask) m = rng.Bernoulli(p) ? 0.0f : scale;
  Tensor mask_tensor = Tensor::FromVector(a.Shape(), std::move(mask));
  return Mul(a, mask_tensor);
}

// -- Reductions -----------------------------------------------------------------

Tensor Sum(const Tensor& a) {
  const float* av = a.Data().data();
  // Per-chunk double partials combined in ascending chunk order: the result
  // depends on kSumAllGrain but not on the thread count, and tensors that
  // fit a single chunk reduce exactly like the plain serial loop.
  const double acc = exec::ParallelReduceDouble(
      0, a.Numel(), kSumAllGrain,
      [av](int64_t lo, int64_t hi) {
        double part = 0.0;
        for (int64_t i = lo; i < hi; ++i) part += av[i];
        return part;
      },
      "exec/sum_all");
  Tensor a_captured = a;
  return MakeResult(
      {}, {static_cast<float>(acc)}, "sum_all", {a},
      [a_captured](const Tensor& g) -> std::vector<Tensor> {
        return {Tensor::Full(a_captured.Shape(), g.Item())};
      });
}

Tensor Sum(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  const auto& shape = a.Shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  std::vector<bool> reduce(static_cast<size_t>(rank), false);
  for (int64_t d : dims) {
    if (d < 0) d += rank;
    STHSL_CHECK(d >= 0 && d < rank) << "Sum dim out of range";
    reduce[static_cast<size_t>(d)] = true;
  }

  std::vector<int64_t> keep_shape(shape);
  for (size_t i = 0; i < keep_shape.size(); ++i) {
    if (reduce[i]) keep_shape[i] = 1;
  }
  std::vector<int64_t> out_shape;
  for (size_t i = 0; i < keep_shape.size(); ++i) {
    if (!reduce[i]) {
      out_shape.push_back(shape[i]);
    } else if (keepdim) {
      out_shape.push_back(1);
    }
  }

  const auto in_strides = StridesOf(shape);
  const auto keep_strides = StridesOf(keep_shape);
  const int64_t out_n = NumelOf(keep_shape);
  std::vector<float> out(static_cast<size_t>(out_n), 0.0f);
  const float* av = a.Data().data();

  // Gather formulation: each output element owns its accumulator and sums
  // its reduced coordinates in ascending input order — the exact addition
  // sequence of a serial scatter pass — so chunking the *output* range
  // keeps the result bitwise-identical at any thread count.
  std::vector<int64_t> red_stride;
  std::vector<int64_t> red_extent;
  int64_t red_count = 1;
  for (int64_t d = 0; d < rank; ++d) {
    if (reduce[static_cast<size_t>(d)]) {
      red_stride.push_back(in_strides[static_cast<size_t>(d)]);
      red_extent.push_back(shape[static_cast<size_t>(d)]);
      red_count *= shape[static_cast<size_t>(d)];
    }
  }
  const size_t red_rank = red_stride.size();

  exec::ParallelFor(
      0, out_n,
      std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, red_count)),
      [&](int64_t lo, int64_t hi) {
        std::vector<int64_t> coord(red_rank, 0);
        for (int64_t oi = lo; oi < hi; ++oi) {
          // Base input offset of this output element: reduced dims have
          // keep extent 1, so they decompose to coordinate 0 here.
          int64_t rem = oi;
          int64_t base = 0;
          for (int64_t d = 0; d < rank; ++d) {
            const int64_t c = rem / keep_strides[static_cast<size_t>(d)];
            rem -= c * keep_strides[static_cast<size_t>(d)];
            base += c * in_strides[static_cast<size_t>(d)];
          }
          float acc = 0.0f;
          std::fill(coord.begin(), coord.end(), 0);
          int64_t off = 0;
          for (int64_t r = 0; r < red_count; ++r) {
            acc += av[base + off];
            for (size_t d = red_rank; d-- > 0;) {
              off += red_stride[d];
              if (++coord[d] < red_extent[d]) break;
              off -= red_stride[d] * red_extent[d];
              coord[d] = 0;
            }
          }
          out[static_cast<size_t>(oi)] = acc;
        }
      },
      "exec/sum_dims");

  Tensor a_captured = a;
  return MakeResult(
      out_shape, std::move(out), "sum_dims", {a},
      [a_captured, keep_shape](const Tensor& g) -> std::vector<Tensor> {
        Tensor reshaped = Reshape(g, keep_shape);
        return {BroadcastTo(reshaped, a_captured.Shape())};
      });
}

Tensor Mean(const Tensor& a) {
  const int64_t n = a.Numel();
  STHSL_CHECK_GT(n, 0);
  return MulScalar(Sum(a), 1.0f / static_cast<float>(n));
}

Tensor Mean(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  const auto& shape = a.Shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  int64_t count = 1;
  for (int64_t d : dims) {
    if (d < 0) d += rank;
    count *= shape[static_cast<size_t>(d)];
  }
  STHSL_CHECK_GT(count, 0);
  return MulScalar(Sum(a, std::move(dims), keepdim),
                   1.0f / static_cast<float>(count));
}

Tensor MaxValues(const Tensor& a, int64_t dim, bool keepdim) {
  const auto& shape = a.Shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  if (dim < 0) dim += rank;
  STHSL_CHECK(dim >= 0 && dim < rank) << "MaxValues dim out of range";

  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= shape[static_cast<size_t>(d)];
  for (int64_t d = dim + 1; d < rank; ++d) {
    inner *= shape[static_cast<size_t>(d)];
  }
  const int64_t extent = shape[static_cast<size_t>(dim)];
  STHSL_CHECK_GT(extent, 0);

  std::vector<float> out(static_cast<size_t>(outer * inner));
  const auto& av = a.Data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      float best = av[static_cast<size_t>(o * extent * inner + i)];
      for (int64_t e = 1; e < extent; ++e) {
        best = std::max(
            best, av[static_cast<size_t>((o * extent + e) * inner + i)]);
      }
      out[static_cast<size_t>(o * inner + i)] = best;
    }
  }
  std::vector<int64_t> out_shape(shape);
  if (keepdim) {
    out_shape[static_cast<size_t>(dim)] = 1;
  } else {
    out_shape.erase(out_shape.begin() + dim);
  }
  return Tensor::FromVector(std::move(out_shape), std::move(out));
}

// -- Shape ----------------------------------------------------------------------

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  int64_t inferred_dim = -1;
  int64_t known = 1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      STHSL_CHECK_EQ(inferred_dim, -1) << "at most one -1 dim in Reshape";
      inferred_dim = static_cast<int64_t>(i);
    } else {
      known *= shape[i];
    }
  }
  if (inferred_dim >= 0) {
    STHSL_CHECK(known != 0 && a.Numel() % known == 0)
        << "cannot infer Reshape dim";
    shape[static_cast<size_t>(inferred_dim)] = a.Numel() / known;
  }
  STHSL_CHECK_EQ(NumelOf(shape), a.Numel()) << "Reshape numel mismatch";

  Tensor a_captured = a;
  std::vector<float> data = a.Data();
  return MakeResult(
      std::move(shape), std::move(data), "reshape", {a},
      [a_captured](const Tensor& g) -> std::vector<Tensor> {
        return {Reshape(g, a_captured.Shape())};
      });
}

Tensor Permute(const Tensor& a, std::vector<int64_t> dims) {
  const auto& shape = a.Shape();
  const size_t rank = shape.size();
  STHSL_CHECK_EQ(dims.size(), rank) << "Permute rank mismatch";
  std::vector<bool> seen(rank, false);
  std::vector<int64_t> out_shape(rank);
  for (size_t i = 0; i < rank; ++i) {
    int64_t d = dims[i];
    if (d < 0) d += static_cast<int64_t>(rank);
    STHSL_CHECK(d >= 0 && d < static_cast<int64_t>(rank) &&
                !seen[static_cast<size_t>(d)])
        << "invalid Permute dims";
    seen[static_cast<size_t>(d)] = true;
    dims[i] = d;
    out_shape[i] = shape[static_cast<size_t>(d)];
  }

  const auto in_strides = StridesOf(shape);
  const auto out_strides = StridesOf(out_shape);
  const int64_t n = a.Numel();
  std::vector<float> out(static_cast<size_t>(n));
  const auto& av = a.Data();
  exec::ParallelFor(
      0, n, kElemGrain,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          int64_t rem = i;
          int64_t src = 0;
          for (size_t d = 0; d < rank; ++d) {
            const int64_t coord = rem / out_strides[d];
            rem -= coord * out_strides[d];
            src += coord * in_strides[static_cast<size_t>(dims[d])];
          }
          out[static_cast<size_t>(i)] = av[static_cast<size_t>(src)];
        }
      },
      "exec/permute");

  std::vector<int64_t> inverse(rank);
  for (size_t i = 0; i < rank; ++i) {
    inverse[static_cast<size_t>(dims[i])] = static_cast<int64_t>(i);
  }
  return MakeResult(
      std::move(out_shape), std::move(out), "permute", {a},
      [inverse](const Tensor& g) -> std::vector<Tensor> {
        return {Permute(g, inverse)};
      });
}

Tensor Transpose(const Tensor& a, int64_t dim0, int64_t dim1) {
  const int64_t rank = a.Dim();
  if (dim0 < 0) dim0 += rank;
  if (dim1 < 0) dim1 += rank;
  std::vector<int64_t> dims(static_cast<size_t>(rank));
  for (int64_t i = 0; i < rank; ++i) dims[static_cast<size_t>(i)] = i;
  std::swap(dims[static_cast<size_t>(dim0)], dims[static_cast<size_t>(dim1)]);
  return Permute(a, std::move(dims));
}

Tensor Unsqueeze(const Tensor& a, int64_t dim) {
  auto shape = a.Shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  if (dim < 0) dim += rank + 1;
  STHSL_CHECK(dim >= 0 && dim <= rank) << "Unsqueeze dim out of range";
  shape.insert(shape.begin() + dim, 1);
  return Reshape(a, std::move(shape));
}

Tensor Squeeze(const Tensor& a, int64_t dim) {
  auto shape = a.Shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  if (dim < 0) dim += rank;
  STHSL_CHECK(dim >= 0 && dim < rank) << "Squeeze dim out of range";
  STHSL_CHECK_EQ(shape[static_cast<size_t>(dim)], 1)
      << "Squeeze on non-unit dim";
  shape.erase(shape.begin() + dim);
  return Reshape(a, std::move(shape));
}

Tensor Narrow(const Tensor& a, int64_t dim, int64_t start, int64_t length) {
  const auto& shape = a.Shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  if (dim < 0) dim += rank;
  STHSL_CHECK(dim >= 0 && dim < rank) << "Narrow dim out of range";
  const int64_t extent = shape[static_cast<size_t>(dim)];
  STHSL_CHECK(start >= 0 && length >= 0 && start + length <= extent)
      << "Narrow range [" << start << ", " << start + length
      << ") out of bounds for extent " << extent;

  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= shape[static_cast<size_t>(d)];
  for (int64_t d = dim + 1; d < rank; ++d) {
    inner *= shape[static_cast<size_t>(d)];
  }

  std::vector<int64_t> out_shape(shape);
  out_shape[static_cast<size_t>(dim)] = length;
  std::vector<float> out(static_cast<size_t>(outer * length * inner));
  const auto& av = a.Data();
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = av.data() + (o * extent + start) * inner;
    float* dst = out.data() + o * length * inner;
    std::copy(src, src + length * inner, dst);
  }

  Tensor a_captured = a;
  return MakeResult(
      std::move(out_shape), std::move(out), "narrow", {a},
      [a_captured, dim, start, length, outer, inner,
       extent](const Tensor& g) -> std::vector<Tensor> {
        std::vector<float> ga(
            static_cast<size_t>(a_captured.Numel()), 0.0f);
        const auto& gv = g.Data();
        for (int64_t o = 0; o < outer; ++o) {
          const float* src = gv.data() + o * length * inner;
          float* dst = ga.data() + (o * extent + start) * inner;
          std::copy(src, src + length * inner, dst);
        }
        return {Tensor::FromVector(a_captured.Shape(), std::move(ga))};
      });
}

Tensor Cat(const std::vector<Tensor>& tensors, int64_t dim) {
  STHSL_CHECK(!tensors.empty()) << "Cat of zero tensors";
  const auto& first_shape = tensors[0].Shape();
  const int64_t rank = static_cast<int64_t>(first_shape.size());
  if (dim < 0) dim += rank;
  STHSL_CHECK(dim >= 0 && dim < rank) << "Cat dim out of range";

  int64_t total = 0;
  for (const auto& t : tensors) {
    STHSL_CHECK_EQ(t.Dim(), rank) << "Cat rank mismatch";
    for (int64_t d = 0; d < rank; ++d) {
      if (d != dim) {
        STHSL_CHECK_EQ(t.Size(d), first_shape[static_cast<size_t>(d)])
            << "Cat non-cat dim mismatch at dim " << d;
      }
    }
    total += t.Size(dim);
  }

  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t d = 0; d < dim; ++d) {
    outer *= first_shape[static_cast<size_t>(d)];
  }
  for (int64_t d = dim + 1; d < rank; ++d) {
    inner *= first_shape[static_cast<size_t>(d)];
  }

  std::vector<int64_t> out_shape(first_shape);
  out_shape[static_cast<size_t>(dim)] = total;
  std::vector<float> out(static_cast<size_t>(outer * total * inner));
  int64_t cursor = 0;
  for (const auto& t : tensors) {
    const int64_t extent = t.Size(dim);
    const auto& tv = t.Data();
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = tv.data() + o * extent * inner;
      float* dst = out.data() + (o * total + cursor) * inner;
      std::copy(src, src + extent * inner, dst);
    }
    cursor += extent;
  }

  std::vector<int64_t> extents;
  extents.reserve(tensors.size());
  for (const auto& t : tensors) extents.push_back(t.Size(dim));

  return MakeResult(
      std::move(out_shape), std::move(out), "cat", tensors,
      [dim, extents](const Tensor& g) -> std::vector<Tensor> {
        std::vector<Tensor> grads;
        grads.reserve(extents.size());
        int64_t cursor = 0;
        for (int64_t extent : extents) {
          grads.push_back(Narrow(g, dim, cursor, extent));
          cursor += extent;
        }
        return grads;
      });
}

Tensor Stack(const std::vector<Tensor>& tensors, int64_t dim) {
  STHSL_CHECK(!tensors.empty()) << "Stack of zero tensors";
  std::vector<Tensor> expanded;
  expanded.reserve(tensors.size());
  for (const auto& t : tensors) expanded.push_back(Unsqueeze(t, dim));
  return Cat(expanded, dim);
}

Tensor IndexSelect(const Tensor& a, int64_t dim,
                   const std::vector<int64_t>& indices) {
  const auto& shape = a.Shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  if (dim < 0) dim += rank;
  STHSL_CHECK(dim >= 0 && dim < rank) << "IndexSelect dim out of range";
  const int64_t extent = shape[static_cast<size_t>(dim)];

  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= shape[static_cast<size_t>(d)];
  for (int64_t d = dim + 1; d < rank; ++d) {
    inner *= shape[static_cast<size_t>(d)];
  }

  const int64_t count = static_cast<int64_t>(indices.size());
  std::vector<int64_t> out_shape(shape);
  out_shape[static_cast<size_t>(dim)] = count;
  std::vector<float> out(static_cast<size_t>(outer * count * inner));
  const auto& av = a.Data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t j = 0; j < count; ++j) {
      const int64_t idx = indices[static_cast<size_t>(j)];
      STHSL_CHECK(idx >= 0 && idx < extent)
          << "IndexSelect index out of range: " << idx;
      const float* src = av.data() + (o * extent + idx) * inner;
      float* dst = out.data() + (o * count + j) * inner;
      std::copy(src, src + inner, dst);
    }
  }

  Tensor a_captured = a;
  std::vector<int64_t> idx_copy = indices;
  return MakeResult(
      std::move(out_shape), std::move(out), "index_select", {a},
      [a_captured, dim, idx_copy, outer, inner,
       extent](const Tensor& g) -> std::vector<Tensor> {
        std::vector<float> ga(static_cast<size_t>(a_captured.Numel()), 0.0f);
        const auto& gv = g.Data();
        const int64_t count = static_cast<int64_t>(idx_copy.size());
        for (int64_t o = 0; o < outer; ++o) {
          for (int64_t j = 0; j < count; ++j) {
            const int64_t idx = idx_copy[static_cast<size_t>(j)];
            const float* src = gv.data() + (o * count + j) * inner;
            float* dst = ga.data() + (o * extent + idx) * inner;
            for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
          }
        }
        return {Tensor::FromVector(a_captured.Shape(), std::move(ga))};
      });
}

Tensor BroadcastTo(const Tensor& a, std::vector<int64_t> shape) {
  if (a.Shape() == shape) return a;
  // Multiplying by ones of the target shape routes through the broadcasting
  // machinery (including gradient reduction on the way back).
  return Mul(a, Tensor::Ones(shape));
}

// -- Softmax --------------------------------------------------------------------

Tensor Softmax(const Tensor& a, int64_t dim) {
  const auto& shape = a.Shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  if (dim < 0) dim += rank;
  STHSL_CHECK(dim >= 0 && dim < rank) << "Softmax dim out of range";

  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t d = 0; d < dim; ++d) outer *= shape[static_cast<size_t>(d)];
  for (int64_t d = dim + 1; d < rank; ++d) {
    inner *= shape[static_cast<size_t>(d)];
  }
  const int64_t extent = shape[static_cast<size_t>(dim)];

  std::vector<float> out(static_cast<size_t>(a.Numel()));
  const auto& av = a.Data();
  // Each (outer, inner) lane is independent; parallel chunks own disjoint
  // lanes, so any thread count reproduces the serial result bitwise.
  const int64_t lane_grain =
      std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, extent));
  exec::ParallelFor(
      0, outer * inner, lane_grain,
      [&](int64_t lo, int64_t hi) {
        if (inner == 1) {
          // Contiguous lanes (the common last-dim case): canonical reduce_max
          // / reduce_sum and a vectorized normalize. exp stays scalar libm
          // per the simd.h transcendental rule.
          const auto& ks = simd::Kernels();
          for (int64_t o = lo; o < hi; ++o) {
            const float* row = av.data() + o * extent;
            float* out_row = out.data() + o * extent;
            const float max_val = ks.reduce_max(extent, row);
            for (int64_t e = 0; e < extent; ++e) {
              out_row[e] = std::exp(row[e] - max_val);
            }
            const float denom = ks.reduce_sum(extent, out_row);
            ks.div_scalar(extent, out_row, denom, out_row);
          }
          return;
        }
        for (int64_t l = lo; l < hi; ++l) {
          const int64_t o = l / inner;
          const int64_t i = l % inner;
          float max_val = -std::numeric_limits<float>::infinity();
          for (int64_t e = 0; e < extent; ++e) {
            max_val = std::max(
                max_val,
                av[static_cast<size_t>((o * extent + e) * inner + i)]);
          }
          float denom = 0.0f;
          for (int64_t e = 0; e < extent; ++e) {
            const size_t idx =
                static_cast<size_t>((o * extent + e) * inner + i);
            out[idx] = std::exp(av[idx] - max_val);
            denom += out[idx];
          }
          for (int64_t e = 0; e < extent; ++e) {
            out[static_cast<size_t>((o * extent + e) * inner + i)] /= denom;
          }
        }
      },
      "exec/softmax");

  Tensor y = Tensor::FromVector(shape, out);  // detached copy for backward
  return MakeResult(
      shape, std::move(out), "softmax", {a},
      [y, outer, inner, extent,
       lane_grain](const Tensor& g) -> std::vector<Tensor> {
        const auto& yv = y.Data();
        const auto& gv = g.Data();
        std::vector<float> ga(yv.size());
        exec::ParallelFor(
            0, outer * inner, lane_grain,
            [&](int64_t lo, int64_t hi) {
              if (inner == 1) {
                // dx = y * (g - dot): canonical dot, then two vector strips
                // (g - dot written as g + (-dot), exact for all operands).
                const auto& ks = simd::Kernels();
                for (int64_t o = lo; o < hi; ++o) {
                  const float* g_row = gv.data() + o * extent;
                  const float* y_row = yv.data() + o * extent;
                  float* ga_row = ga.data() + o * extent;
                  const float dot = ks.dot(extent, g_row, y_row);
                  ks.add_scalar(extent, g_row, -dot, ga_row);
                  ks.mul(extent, y_row, ga_row, ga_row);
                }
                return;
              }
              for (int64_t l = lo; l < hi; ++l) {
                const int64_t o = l / inner;
                const int64_t i = l % inner;
                float dot = 0.0f;
                for (int64_t e = 0; e < extent; ++e) {
                  const size_t idx =
                      static_cast<size_t>((o * extent + e) * inner + i);
                  dot += gv[idx] * yv[idx];
                }
                for (int64_t e = 0; e < extent; ++e) {
                  const size_t idx =
                      static_cast<size_t>((o * extent + e) * inner + i);
                  ga[idx] = yv[idx] * (gv[idx] - dot);
                }
              }
            },
            "exec/softmax");
        return {Tensor::FromVector(y.Shape(), std::move(ga))};
      });
}

// -- Losses ---------------------------------------------------------------------

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  return Mean(Square(Sub(pred, target)));
}

Tensor SquaredErrorSum(const Tensor& pred, const Tensor& target) {
  return Sum(Square(Sub(pred, target)));
}

Tensor L2NormalizeRows(const Tensor& a, float eps) {
  Tensor norm = Sqrt(Sum(Square(a), {-1}, /*keepdim=*/true));
  return Div(a, AddScalar(norm, eps));
}

}  // namespace sthsl
