#include "tensor/debug_validator.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace sthsl {
namespace debug_validator_internal {

namespace {

bool EnabledFromEnv() {
  const char* value = std::getenv("STHSL_DEBUG_CHECKS");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

}  // namespace

bool g_enabled = EnabledFromEnv();

}  // namespace debug_validator_internal

namespace {

/// Index of the first non-finite value in `data`, or -1 if all are finite.
int64_t FirstNonFinite(const std::vector<float>& data) {
  for (size_t i = 0; i < data.size(); ++i) {
    if (!std::isfinite(data[i])) return static_cast<int64_t>(i);
  }
  return -1;
}

std::string DescribeValue(float v) {
  if (std::isnan(v)) return "NaN";
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string InputShapes(const std::vector<Tensor>& inputs) {
  std::ostringstream os;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (i > 0) os << ", ";
    os << (inputs[i].Defined() ? ShapeToString(inputs[i].Shape())
                               : std::string("<undefined>"));
  }
  return os.str();
}

}  // namespace

bool SetDebugChecks(bool enabled) {
  const bool previous = debug_validator_internal::g_enabled;
  debug_validator_internal::g_enabled = enabled;
  return previous;
}

std::string ShapeToString(const std::vector<int64_t>& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

void ValidateForwardResult(const std::string& op_name,
                           const std::vector<int64_t>& shape,
                           const std::vector<float>& data,
                           const std::vector<Tensor>& inputs) {
  STHSL_CHECK_EQ(NumelOf(shape), static_cast<int64_t>(data.size()))
      << "debug validator: forward op '" << op_name
      << "' produced a buffer inconsistent with its shape "
      << ShapeToString(shape);
  const int64_t bad = FirstNonFinite(data);
  STHSL_CHECK(bad < 0) << "debug validator: forward op '" << op_name
                       << "' produced "
                       << DescribeValue(data[static_cast<size_t>(bad)])
                       << " at flat index " << bad << " of output shape "
                       << ShapeToString(shape) << " (input shapes: "
                       << InputShapes(inputs) << ")";
}

void ValidateOpInput(const char* op_name, const char* arg_name,
                     const Tensor& input) {
  if (!input.Defined()) return;
  const int64_t bad = FirstNonFinite(input.Data());
  STHSL_CHECK(bad < 0) << "debug validator: op '" << op_name << "' received "
                       << DescribeValue(input.Data()[static_cast<size_t>(bad)])
                       << " in operand '" << arg_name << "' at flat index "
                       << bad << ", shape " << ShapeToString(input.Shape());
}

void ValidateBackwardGradient(const std::string& op_name, size_t input_index,
                              const Tensor& grad,
                              const std::vector<int64_t>& input_shape) {
  STHSL_CHECK(grad.Shape() == input_shape)
      << "debug validator: backward of '" << op_name
      << "' returned a gradient of shape " << ShapeToString(grad.Shape())
      << " for input " << input_index << " of shape "
      << ShapeToString(input_shape);
  const int64_t bad = FirstNonFinite(grad.Data());
  STHSL_CHECK(bad < 0) << "debug validator: backward of '" << op_name
                       << "' produced "
                       << DescribeValue(grad.Data()[static_cast<size_t>(bad)])
                       << " at flat index " << bad << " of the gradient for "
                       << "input " << input_index << ", shape "
                       << ShapeToString(input_shape);
}

void ValidateGradAccumulation(const TensorImpl& target, const Tensor& grad) {
  STHSL_CHECK(target.requires_grad || target.grad_fn != nullptr)
      << "debug validator: accumulating a gradient onto a tensor of shape "
      << ShapeToString(target.shape)
      << " that is not marked as requiring grad and has no grad_fn";
  STHSL_CHECK_EQ(static_cast<int64_t>(target.data.size()), grad.Numel())
      << "debug validator: gradient of shape " << ShapeToString(grad.Shape())
      << " accumulated onto a tensor of shape " << ShapeToString(target.shape);
}

void ValidateOptimizerStep(const char* optimizer_name,
                           const std::vector<Tensor>& params) {
  for (size_t i = 0; i < params.size(); ++i) {
    const Tensor& p = params[i];
    const auto& grad = p.Grad();
    if (grad.empty()) continue;  // parameter did not participate this step
    STHSL_CHECK_EQ(grad.size(), p.Data().size())
        << "debug validator: " << optimizer_name << " parameter " << i
        << " of shape " << ShapeToString(p.Shape())
        << " has a mis-sized gradient buffer";
    int64_t bad = FirstNonFinite(grad);
    STHSL_CHECK(bad < 0) << "debug validator: " << optimizer_name
                         << " step sees "
                         << DescribeValue(grad[static_cast<size_t>(bad)])
                         << " in the gradient of parameter " << i
                         << ", shape " << ShapeToString(p.Shape());
    bad = FirstNonFinite(p.Data());
    STHSL_CHECK(bad < 0) << "debug validator: " << optimizer_name
                         << " step sees "
                         << DescribeValue(p.Data()[static_cast<size_t>(bad)])
                         << " in parameter " << i << ", shape "
                         << ShapeToString(p.Shape());
  }
}

}  // namespace sthsl
