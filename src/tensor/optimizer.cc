#include "tensor/optimizer.h"

#include <cmath>

#include "exec/exec.h"
#include "simd/simd.h"
#include "tensor/debug_validator.h"
#include "util/check.h"
#include "util/obs/obs.h"

namespace sthsl {
namespace {

// Minimum parameter elements per parallel chunk; each element's update is
// independent, so chunking never changes the result. Small tensors (the
// common case for biases) run inline.
constexpr int64_t kOptimGrain = 8192;

// Analytic per-element update costs (see docs/performance.md). The optimizer
// loops never pass through MakeResult, so their profiler samples are
// recorded explicitly at the end of each Step.
//   SGD+momentum: g+wd·x, µ·v+g, x−=lr·v            → 6 flops, 5 floats moved
//   plain SGD:    x −= lr·(g+wd·x)                   → 4 flops, 3 floats moved
//   Adam: wd, m/v EMAs, bias correction, update     → 16 flops, 7 floats moved
constexpr int64_t kSgdMomentumFlopsPerElem = 6;
constexpr int64_t kSgdMomentumBytesPerElem = 5 * 4;
constexpr int64_t kSgdPlainFlopsPerElem = 4;
constexpr int64_t kSgdPlainBytesPerElem = 3 * 4;
constexpr int64_t kAdamFlopsPerElem = 16;
constexpr int64_t kAdamBytesPerElem = 7 * 4;

}  // namespace

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    STHSL_CHECK(p.Defined() && p.RequiresGrad())
        << "optimizer parameters must be defined leaf tensors with "
           "requires_grad";
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
}

void Sgd::Step() {
  if (DebugChecksEnabled()) ValidateOptimizerStep("Sgd", params_);
  const bool obs_on = obs::TraceEnabled();
  const double obs_start_us = obs_on ? obs::TraceNowMicros() : 0.0;
  int64_t momentum_elems = 0;
  int64_t plain_elems = 0;
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto& g = p.Grad();
    if (g.empty()) continue;  // parameter did not participate this step
    auto& data = p.MutableData();
    if (momentum_ > 0.0f) {
      momentum_elems += static_cast<int64_t>(data.size());
      auto& vel = velocity_[i];
      if (vel.empty()) vel.assign(data.size(), 0.0f);
      exec::ParallelFor(
          0, static_cast<int64_t>(data.size()), kOptimGrain,
          [&](int64_t lo, int64_t hi) {
            simd::Kernels().sgd_momentum_step(hi - lo, data.data() + lo,
                                              vel.data() + lo, g.data() + lo,
                                              lr_, momentum_, weight_decay_);
          },
          "exec/sgd_step");
    } else {
      plain_elems += static_cast<int64_t>(data.size());
      exec::ParallelFor(
          0, static_cast<int64_t>(data.size()), kOptimGrain,
          [&](int64_t lo, int64_t hi) {
            simd::Kernels().sgd_step(hi - lo, data.data() + lo, g.data() + lo,
                                     lr_, weight_decay_);
          },
          "exec/sgd_step");
    }
  }
  if (obs_on) {
    obs::RecordKernelSample(
        "sgd_step", obs::TraceNowMicros() - obs_start_us,
        momentum_elems * kSgdMomentumBytesPerElem +
            plain_elems * kSgdPlainBytesPerElem,
        momentum_elems * kSgdMomentumFlopsPerElem +
            plain_elems * kSgdPlainFlopsPerElem);
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::Step() {
  if (DebugChecksEnabled()) ValidateOptimizerStep("Adam", params_);
  const bool obs_on = obs::TraceEnabled();
  const double obs_start_us = obs_on ? obs::TraceNowMicros() : 0.0;
  int64_t updated_elems = 0;
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto& g = p.Grad();
    if (g.empty()) continue;
    auto& data = p.MutableData();
    auto& m = m_[i];
    auto& v = v_[i];
    if (m.empty()) {
      m.assign(data.size(), 0.0f);
      v.assign(data.size(), 0.0f);
    }
    updated_elems += static_cast<int64_t>(data.size());
    exec::ParallelFor(
        0, static_cast<int64_t>(data.size()), kOptimGrain,
        [&](int64_t lo, int64_t hi) {
          simd::Kernels().adam_step(hi - lo, data.data() + lo, m.data() + lo,
                                    v.data() + lo, g.data() + lo, lr_, beta1_,
                                    beta2_, eps_, weight_decay_, bc1, bc2);
        },
        "exec/adam_step");
  }
  if (obs_on) {
    obs::RecordKernelSample("adam_step", obs::TraceNowMicros() - obs_start_us,
                            updated_elems * kAdamBytesPerElem,
                            updated_elems * kAdamFlopsPerElem);
  }
}

}  // namespace sthsl
