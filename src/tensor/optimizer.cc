#include "tensor/optimizer.h"

#include <cmath>

#include "tensor/debug_validator.h"
#include "util/check.h"

namespace sthsl {

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    STHSL_CHECK(p.Defined() && p.RequiresGrad())
        << "optimizer parameters must be defined leaf tensors with "
           "requires_grad";
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
}

void Sgd::Step() {
  if (DebugChecksEnabled()) ValidateOptimizerStep("Sgd", params_);
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto& g = p.Grad();
    if (g.empty()) continue;  // parameter did not participate this step
    auto& data = p.MutableData();
    if (momentum_ > 0.0f) {
      auto& vel = velocity_[i];
      if (vel.empty()) vel.assign(data.size(), 0.0f);
      for (size_t j = 0; j < data.size(); ++j) {
        const float grad = g[j] + weight_decay_ * data[j];
        vel[j] = momentum_ * vel[j] + grad;
        data[j] -= lr_ * vel[j];
      }
    } else {
      for (size_t j = 0; j < data.size(); ++j) {
        data[j] -= lr_ * (g[j] + weight_decay_ * data[j]);
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::Step() {
  if (DebugChecksEnabled()) ValidateOptimizerStep("Adam", params_);
  ++step_count_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto& g = p.Grad();
    if (g.empty()) continue;
    auto& data = p.MutableData();
    auto& m = m_[i];
    auto& v = v_[i];
    if (m.empty()) {
      m.assign(data.size(), 0.0f);
      v.assign(data.size(), 0.0f);
    }
    for (size_t j = 0; j < data.size(); ++j) {
      const float grad = g[j] + weight_decay_ * data[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      data[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace sthsl
