#ifndef STHSL_TENSOR_TENSOR_H_
#define STHSL_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace sthsl {

class Tensor;
struct GradNode;
struct FusedChain;

/// Shared state of a Tensor: a contiguous row-major float32 buffer plus the
/// autograd bookkeeping. Copies of a Tensor alias the same impl.
struct TensorImpl {
  std::vector<int64_t> shape;
  std::vector<float> data;

  /// Non-null for a *pending* tensor: `data` is empty and the values are an
  /// unevaluated elementwise chain (see tensor/fusion.h). Every value
  /// accessor materializes the chain first, so pending state never escapes
  /// this layer.
  std::shared_ptr<FusedChain> pending;

  /// True for leaf tensors the user asked gradients for, and for any tensor
  /// produced from such a leaf while gradient recording is enabled.
  bool requires_grad = false;

  /// Gradient buffer, same shape as `data`; filled by Tensor::Backward().
  std::vector<float> grad;

  /// Non-null for non-leaf tensors: records how to backpropagate.
  std::shared_ptr<GradNode> grad_fn;

  /// Reports the value buffer to the observability layer's tensor-memory
  /// accounting (no-op when tracing is disabled).
  ~TensorImpl();
};

/// One node of the reverse-mode autograd tape. `backward` receives the
/// gradient of the loss w.r.t. this node's output and returns gradients
/// w.r.t. each entry of `inputs` (empty tensors allowed for inputs that do
/// not require grad).
struct GradNode {
  std::string op_name;
  std::vector<Tensor> inputs;
  std::function<std::vector<Tensor>(const Tensor& grad_out)> backward;

  /// Set once a Backward() pass has propagated through this node. The graph
  /// frees intermediate gradient buffers eagerly, so a second pass would
  /// silently double-accumulate into leaves; the debug validator uses this
  /// flag to reject double-backward on a consumed graph.
  bool backward_consumed = false;
};

/// RAII guard that disables gradient recording within its scope (used inside
/// backward functions, evaluation loops and optimizers).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Returns true when operations should record autograd nodes.
bool GradRecordingEnabled();

/// N-dimensional float32 tensor with reverse-mode automatic differentiation.
///
/// Data is always contiguous row-major; shape-changing views (Reshape) are
/// cheap, axis reorderings (Permute/Transpose) materialize a copy. A Tensor
/// is a cheap shared handle: copying it aliases storage and autograd state.
class Tensor {
 public:
  /// Empty (null) tensor; Defined() is false.
  Tensor() = default;

  // -- Factory functions ----------------------------------------------------

  static Tensor Zeros(std::vector<int64_t> shape, bool requires_grad = false);
  static Tensor Ones(std::vector<int64_t> shape, bool requires_grad = false);
  static Tensor Full(std::vector<int64_t> shape, float value,
                     bool requires_grad = false);
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values,
                           bool requires_grad = false);
  /// Scalar (0-d) tensor.
  static Tensor Scalar(float value, bool requires_grad = false);
  /// Uniform in [lo, hi).
  static Tensor Rand(std::vector<int64_t> shape, Rng& rng, float lo = 0.0f,
                     float hi = 1.0f, bool requires_grad = false);
  /// Standard normal entries scaled by `stddev`.
  static Tensor Randn(std::vector<int64_t> shape, Rng& rng,
                      float stddev = 1.0f, bool requires_grad = false);
  /// Xavier/Glorot uniform init for a parameter with the given fan-in/out.
  static Tensor XavierUniform(std::vector<int64_t> shape, Rng& rng,
                              int64_t fan_in, int64_t fan_out,
                              bool requires_grad = true);

  // -- Introspection --------------------------------------------------------

  bool Defined() const { return impl_ != nullptr; }
  const std::vector<int64_t>& Shape() const;
  int64_t Dim() const;
  /// Size along dimension `d`; negative `d` counts from the end.
  int64_t Size(int64_t d) const;
  int64_t Numel() const;
  bool RequiresGrad() const;
  /// Marks a leaf tensor as requiring grad.
  Tensor& SetRequiresGrad(bool value);

  /// Direct access to the contiguous value buffer.
  const std::vector<float>& Data() const;
  std::vector<float>& MutableData();
  /// Gradient buffer (empty until Backward has touched this tensor).
  const std::vector<float>& Grad() const;
  std::vector<float>& MutableGrad();
  /// Clears the gradient buffer.
  void ZeroGrad();

  /// Scalar value of a 1-element tensor.
  float Item() const;
  /// Value at a flat (row-major) offset.
  float At(int64_t flat_index) const;
  /// Value at a multi-dimensional index.
  float At(const std::vector<int64_t>& index) const;

  std::shared_ptr<TensorImpl> Impl() const { return impl_; }
  std::shared_ptr<GradNode> GradFn() const;

  /// Returns a copy detached from the autograd graph (shares no grad state).
  Tensor Detach() const;

  /// Deep copy of values (detached, fresh buffer).
  Tensor Clone() const;

  /// Runs backpropagation from this tensor. If the tensor is not scalar a
  /// `seed` gradient of the same shape must be provided.
  void Backward(const Tensor& seed = Tensor()) const;

  /// Debug string: shape plus the first few values.
  std::string ToString() const;

  /// Wraps an existing impl (internal use by ops).
  static Tensor FromImpl(std::shared_ptr<TensorImpl> impl);

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Total element count of `shape`.
int64_t NumelOf(const std::vector<int64_t>& shape);

/// Row-major strides of `shape`.
std::vector<int64_t> StridesOf(const std::vector<int64_t>& shape);

/// NumPy-style broadcast of two shapes; aborts if incompatible.
std::vector<int64_t> BroadcastShapes(const std::vector<int64_t>& a,
                                     const std::vector<int64_t>& b);

/// Helper for ops: builds a result tensor that records `node` when gradient
/// recording is on and any input requires grad.
Tensor MakeResult(std::vector<int64_t> shape, std::vector<float> data,
                  std::string op_name, std::vector<Tensor> inputs,
                  std::function<std::vector<Tensor>(const Tensor&)> backward);

}  // namespace sthsl

#endif  // STHSL_TENSOR_TENSOR_H_
