// Direct (stride-1) 1-D and 2-D convolution kernels with autograd.
//
// Execution: forward and the input-gradient pass parallelize over the batch
// dimension (each sample's planes are owned by exactly one chunk, so any
// thread count reproduces the serial result bitwise). The weight- and
// bias-gradient passes reduce over the batch: they accumulate per-chunk
// partials — with chunk boundaries that depend only on the batch size, not
// the thread count — into a reusable scratch buffer leased from the exec
// layer, then combine the partials in ascending chunk order. The scratch
// arena replaces the per-call workspace allocations these passes needed.
//
// Inner loops run on the simd microkernels: forward and the input gradient
// are per-row axpy, the weight gradient is a canonical dot per output row
// (summed in ascending row order), and the bias gradient is a canonical
// reduce_sum — all bitwise-identical across ISA variants per the simd.h
// contract. The former `wv == 0.0f` skip branches are gone: they made
// timing data-dependent and would have broken the fixed accumulation order.

#include <algorithm>
#include <cstring>

#include "exec/exec.h"
#include "simd/simd.h"
#include "tensor/debug_validator.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace sthsl {
namespace {

bool NeedsGrad(const Tensor& t) {
  return t.Defined() && (t.RequiresGrad() || t.GradFn() != nullptr);
}

// Target multiply-add count per parallel chunk (see docs/performance.md).
constexpr int64_t kConvGrainFlops = int64_t{1} << 17;

int64_t BatchGrain(int64_t flops_per_sample) {
  if (flops_per_sample < 1) flops_per_sample = 1;
  return std::max<int64_t>(1, kConvGrainFlops / flops_per_sample);
}

}  // namespace

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t pad_h, int64_t pad_w) {
  if (DebugChecksEnabled()) {
    ValidateOpInput("conv2d", "input", input);
    ValidateOpInput("conv2d", "weight", weight);
    ValidateOpInput("conv2d", "bias", bias);
  }
  STHSL_CHECK_EQ(input.Dim(), 4) << "Conv2d input must be (N, Cin, H, W)";
  STHSL_CHECK_EQ(weight.Dim(), 4) << "Conv2d weight must be (Cout, Cin, KH, KW)";
  const int64_t batch = input.Size(0);
  const int64_t cin = input.Size(1);
  const int64_t height = input.Size(2);
  const int64_t width = input.Size(3);
  const int64_t cout = weight.Size(0);
  STHSL_CHECK_EQ(weight.Size(1), cin) << "Conv2d channel mismatch";
  const int64_t kh = weight.Size(2);
  const int64_t kw = weight.Size(3);
  const int64_t out_h = height + 2 * pad_h - kh + 1;
  const int64_t out_w = width + 2 * pad_w - kw + 1;
  STHSL_CHECK(out_h > 0 && out_w > 0) << "Conv2d kernel larger than input";
  if (bias.Defined()) {
    STHSL_CHECK_EQ(bias.Numel(), cout) << "Conv2d bias size mismatch";
  }

  const int64_t sample_flops = cout * cin * kh * kw * out_h * out_w * 2;
  std::vector<float> out(static_cast<size_t>(batch * cout * out_h * out_w),
                         0.0f);
  {
    const float* x = input.Data().data();
    const float* w = weight.Data().data();
    const float* bias_data = bias.Defined() ? bias.Data().data() : nullptr;
    float* out_data = out.data();
    exec::ParallelFor(
        0, batch, BatchGrain(sample_flops),
        [=](int64_t s0, int64_t s1) {
          const auto& ks = simd::Kernels();
          for (int64_t s = s0; s < s1; ++s) {
            for (int64_t co = 0; co < cout; ++co) {
              float* out_plane = out_data + (s * cout + co) * out_h * out_w;
              if (bias_data != nullptr) {
                const float b = bias_data[co];
                for (int64_t i = 0; i < out_h * out_w; ++i) out_plane[i] = b;
              }
              for (int64_t ci = 0; ci < cin; ++ci) {
                const float* in_plane = x + (s * cin + ci) * height * width;
                const float* w_plane = w + (co * cin + ci) * kh * kw;
                for (int64_t dy = 0; dy < kh; ++dy) {
                  for (int64_t dx = 0; dx < kw; ++dx) {
                    const float wv = w_plane[dy * kw + dx];
                    // Output rows for which input row oy - pad_h + dy is in
                    // range.
                    const int64_t oy_lo = std::max<int64_t>(0, pad_h - dy);
                    const int64_t oy_hi =
                        std::min<int64_t>(out_h, height + pad_h - dy);
                    const int64_t ox_lo = std::max<int64_t>(0, pad_w - dx);
                    const int64_t ox_hi =
                        std::min<int64_t>(out_w, width + pad_w - dx);
                    for (int64_t oy = oy_lo; oy < oy_hi; ++oy) {
                      const int64_t iy = oy - pad_h + dy;
                      const float* in_row =
                          in_plane + iy * width - pad_w + dx;
                      float* out_row = out_plane + oy * out_w;
                      ks.axpy(ox_hi - ox_lo, wv, in_row + ox_lo,
                              out_row + ox_lo);
                    }
                  }
                }
              }
            }
          }
        },
        "exec/conv2d_fwd");
  }

  Tensor in_captured = input;
  Tensor w_captured = weight;
  Tensor b_captured = bias;
  std::vector<Tensor> inputs = {input, weight};
  if (bias.Defined()) inputs.push_back(bias);

  return MakeResult(
      {batch, cout, out_h, out_w}, std::move(out), "conv2d", inputs,
      [in_captured, w_captured, b_captured, batch, cin, cout, height, width,
       kh, kw, out_h, out_w, pad_h, pad_w,
       sample_flops](const Tensor& g) -> std::vector<Tensor> {
        const float* gv = g.Data().data();
        const float* x = in_captured.Data().data();
        const float* w = w_captured.Data().data();

        Tensor gi;
        Tensor gw;
        Tensor gb;

        if (NeedsGrad(in_captured)) {
          std::vector<float> dx_buf(
              static_cast<size_t>(in_captured.Numel()), 0.0f);
          float* dx_data = dx_buf.data();
          exec::ParallelFor(
              0, batch, BatchGrain(sample_flops),
              [=](int64_t s0, int64_t s1) {
                const auto& ks = simd::Kernels();
                for (int64_t s = s0; s < s1; ++s) {
                  for (int64_t co = 0; co < cout; ++co) {
                    const float* g_plane =
                        gv + (s * cout + co) * out_h * out_w;
                    for (int64_t ci = 0; ci < cin; ++ci) {
                      float* dx_plane =
                          dx_data + (s * cin + ci) * height * width;
                      const float* w_plane = w + (co * cin + ci) * kh * kw;
                      for (int64_t dy = 0; dy < kh; ++dy) {
                        for (int64_t dxk = 0; dxk < kw; ++dxk) {
                          const float wv = w_plane[dy * kw + dxk];
                          const int64_t oy_lo =
                              std::max<int64_t>(0, pad_h - dy);
                          const int64_t oy_hi =
                              std::min<int64_t>(out_h, height + pad_h - dy);
                          const int64_t ox_lo =
                              std::max<int64_t>(0, pad_w - dxk);
                          const int64_t ox_hi =
                              std::min<int64_t>(out_w, width + pad_w - dxk);
                          for (int64_t oy = oy_lo; oy < oy_hi; ++oy) {
                            const int64_t iy = oy - pad_h + dy;
                            float* dx_row =
                                dx_plane + iy * width - pad_w + dxk;
                            const float* g_row = g_plane + oy * out_w;
                            ks.axpy(ox_hi - ox_lo, wv, g_row + ox_lo,
                                    dx_row + ox_lo);
                          }
                        }
                      }
                    }
                  }
                }
              },
              "exec/conv2d_bwd_x");
          gi = Tensor::FromVector(in_captured.Shape(), std::move(dx_buf));
        }

        const bool need_w = NeedsGrad(w_captured);
        const bool need_b = b_captured.Defined() && NeedsGrad(b_captured);
        if (need_w || need_b) {
          const int64_t dw_size = need_w ? cout * cin * kh * kw : 0;
          const int64_t db_size = need_b ? cout : 0;
          const int64_t stride = dw_size + db_size;
          const int64_t grain = BatchGrain(sample_flops);
          const int64_t chunks = exec::FixedChunkCount(batch, grain);
          // Per-chunk partial gradients, leased from the exec layer's
          // reusable scratch arena instead of allocated per call.
          exec::ScratchLease scratch(static_cast<size_t>(chunks * stride));
          float* partials = scratch.data();
          exec::ParallelForFixedChunks(
              0, batch, grain,
              [=](int64_t c, int64_t s0, int64_t s1) {
                const auto& ks = simd::Kernels();
                float* dw_part = partials + c * stride;
                float* db_part = dw_part + dw_size;
                std::memset(dw_part, 0,
                            static_cast<size_t>(stride) * sizeof(float));
                for (int64_t s = s0; s < s1; ++s) {
                  for (int64_t co = 0; co < cout; ++co) {
                    const float* g_plane =
                        gv + (s * cout + co) * out_h * out_w;
                    if (need_w) {
                      for (int64_t ci = 0; ci < cin; ++ci) {
                        const float* in_plane =
                            x + (s * cin + ci) * height * width;
                        float* dw_plane = dw_part + (co * cin + ci) * kh * kw;
                        for (int64_t dy = 0; dy < kh; ++dy) {
                          for (int64_t dxk = 0; dxk < kw; ++dxk) {
                            const int64_t oy_lo =
                                std::max<int64_t>(0, pad_h - dy);
                            const int64_t oy_hi = std::min<int64_t>(
                                out_h, height + pad_h - dy);
                            const int64_t ox_lo =
                                std::max<int64_t>(0, pad_w - dxk);
                            const int64_t ox_hi =
                                std::min<int64_t>(out_w, width + pad_w - dxk);
                            // Canonical dot per output row, rows summed in
                            // ascending oy order.
                            float acc = 0.0f;
                            for (int64_t oy = oy_lo; oy < oy_hi; ++oy) {
                              const int64_t iy = oy - pad_h + dy;
                              const float* in_row =
                                  in_plane + iy * width - pad_w + dxk;
                              const float* g_row = g_plane + oy * out_w;
                              acc += ks.dot(ox_hi - ox_lo, in_row + ox_lo,
                                            g_row + ox_lo);
                            }
                            dw_plane[dy * kw + dxk] += acc;
                          }
                        }
                      }
                    }
                    if (need_b) {
                      db_part[co] += ks.reduce_sum(out_h * out_w, g_plane);
                    }
                  }
                }
              },
              "exec/conv2d_bwd_w");
          // Combine partials in ascending chunk order: deterministic at any
          // thread count, and identical to the serial loop when the batch
          // fits one chunk.
          if (need_w) {
            std::vector<float> dw_buf(static_cast<size_t>(dw_size), 0.0f);
            for (int64_t c = 0; c < chunks; ++c) {
              const float* dw_part = partials + c * stride;
              for (int64_t t = 0; t < dw_size; ++t) dw_buf[t] += dw_part[t];
            }
            gw = Tensor::FromVector(w_captured.Shape(), std::move(dw_buf));
          }
          if (need_b) {
            std::vector<float> db_buf(static_cast<size_t>(db_size), 0.0f);
            for (int64_t c = 0; c < chunks; ++c) {
              const float* db_part = partials + c * stride + dw_size;
              for (int64_t t = 0; t < db_size; ++t) db_buf[t] += db_part[t];
            }
            gb = Tensor::FromVector(b_captured.Shape(), std::move(db_buf));
          }
        }

        std::vector<Tensor> grads = {gi, gw};
        if (b_captured.Defined()) grads.push_back(gb);
        return grads;
      });
}

Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t pad) {
  STHSL_CHECK_EQ(input.Dim(), 3) << "Conv1d input must be (N, Cin, L)";
  STHSL_CHECK_EQ(weight.Dim(), 3) << "Conv1d weight must be (Cout, Cin, K)";
  // Reuse the 2-D kernel by viewing length as width with height 1.
  Tensor input4 = Reshape(input, {input.Size(0), input.Size(1), 1,
                                  input.Size(2)});
  Tensor weight4 = Reshape(weight, {weight.Size(0), weight.Size(1), 1,
                                    weight.Size(2)});
  Tensor out = Conv2d(input4, weight4, bias, /*pad_h=*/0, /*pad_w=*/pad);
  return Reshape(out, {out.Size(0), out.Size(1), out.Size(3)});
}

}  // namespace sthsl
