#include "baselines/classical.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace sthsl {
namespace {

/// Ordinary least squares via normal equations with Gaussian elimination and
/// a small ridge term for numerical stability. X is n x k (row-major).
std::vector<double> SolveLeastSquares(const std::vector<double>& x,
                                      const std::vector<double>& y,
                                      int64_t n, int64_t k) {
  STHSL_CHECK_EQ(static_cast<int64_t>(x.size()), n * k);
  STHSL_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  std::vector<double> xtx(static_cast<size_t>(k * k), 0.0);
  std::vector<double> xty(static_cast<size_t>(k), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t a = 0; a < k; ++a) {
      const double xa = x[static_cast<size_t>(i * k + a)];
      xty[static_cast<size_t>(a)] += xa * y[static_cast<size_t>(i)];
      for (int64_t b = 0; b < k; ++b) {
        xtx[static_cast<size_t>(a * k + b)] +=
            xa * x[static_cast<size_t>(i * k + b)];
      }
    }
  }
  for (int64_t a = 0; a < k; ++a) xtx[static_cast<size_t>(a * k + a)] += 1e-6;

  // Gaussian elimination with partial pivoting.
  std::vector<double> beta = xty;
  for (int64_t col = 0; col < k; ++col) {
    int64_t pivot = col;
    for (int64_t row = col + 1; row < k; ++row) {
      if (std::fabs(xtx[static_cast<size_t>(row * k + col)]) >
          std::fabs(xtx[static_cast<size_t>(pivot * k + col)])) {
        pivot = row;
      }
    }
    if (std::fabs(xtx[static_cast<size_t>(pivot * k + col)]) < 1e-12) {
      continue;  // singular direction; leave coefficient at current value
    }
    if (pivot != col) {
      for (int64_t b = 0; b < k; ++b) {
        std::swap(xtx[static_cast<size_t>(col * k + b)],
                  xtx[static_cast<size_t>(pivot * k + b)]);
      }
      std::swap(beta[static_cast<size_t>(col)],
                beta[static_cast<size_t>(pivot)]);
    }
    const double diag = xtx[static_cast<size_t>(col * k + col)];
    for (int64_t row = 0; row < k; ++row) {
      if (row == col) continue;
      const double factor =
          xtx[static_cast<size_t>(row * k + col)] / diag;
      if (factor == 0.0) continue;
      for (int64_t b = col; b < k; ++b) {
        xtx[static_cast<size_t>(row * k + b)] -=
            factor * xtx[static_cast<size_t>(col * k + b)];
      }
      beta[static_cast<size_t>(row)] -= factor * beta[static_cast<size_t>(col)];
    }
  }
  for (int64_t a = 0; a < k; ++a) {
    const double diag = xtx[static_cast<size_t>(a * k + a)];
    beta[static_cast<size_t>(a)] =
        std::fabs(diag) < 1e-12 ? 0.0 : beta[static_cast<size_t>(a)] / diag;
  }
  return beta;
}

std::vector<double> Difference(const std::vector<double>& series, int order) {
  std::vector<double> out = series;
  for (int iteration = 0; iteration < order; ++iteration) {
    if (out.size() < 2) return {};
    std::vector<double> next(out.size() - 1);
    for (size_t i = 1; i < out.size(); ++i) next[i - 1] = out[i] - out[i - 1];
    out = std::move(next);
  }
  return out;
}

}  // namespace

// -- HistoricalAverage --------------------------------------------------------------

void HistoricalAverage::Fit(const CrimeDataset& data, int64_t train_end) {
  num_regions_ = data.num_regions();
  num_categories_ = data.num_categories();
  buckets_ = day_of_week_ ? 7 : 1;
  means_.assign(
      static_cast<size_t>(buckets_ * num_regions_ * num_categories_), 0.0f);
  std::vector<int64_t> counts(
      static_cast<size_t>(buckets_ * num_regions_ * num_categories_), 0);
  for (int64_t t = 0; t < train_end; ++t) {
    const int64_t bucket = day_of_week_ ? t % 7 : 0;
    for (int64_t r = 0; r < num_regions_; ++r) {
      for (int64_t c = 0; c < num_categories_; ++c) {
        const size_t idx = static_cast<size_t>(
            (bucket * num_regions_ + r) * num_categories_ + c);
        means_[idx] += data.Count(r, t, c);
        ++counts[idx];
      }
    }
  }
  for (size_t i = 0; i < means_.size(); ++i) {
    if (counts[i] > 0) means_[i] /= static_cast<float>(counts[i]);
  }
}

Tensor HistoricalAverage::PredictDay(const CrimeDataset& data, int64_t t) {
  STHSL_CHECK(!means_.empty()) << "Fit must run before PredictDay";
  const int64_t bucket = day_of_week_ ? t % 7 : 0;
  std::vector<float> out(
      static_cast<size_t>(num_regions_ * num_categories_));
  for (int64_t r = 0; r < num_regions_; ++r) {
    for (int64_t c = 0; c < num_categories_; ++c) {
      out[static_cast<size_t>(r * num_categories_ + c)] =
          means_[static_cast<size_t>(
              (bucket * num_regions_ + r) * num_categories_ + c)];
    }
  }
  return Tensor::FromVector({num_regions_, num_categories_}, std::move(out));
}

// -- ARIMA -------------------------------------------------------------------------

void Arima::Fit(const CrimeDataset& data, int64_t train_end) {
  num_regions_ = data.num_regions();
  num_categories_ = data.num_categories();
  models_.assign(static_cast<size_t>(num_regions_ * num_categories_), {});

  for (int64_t r = 0; r < num_regions_; ++r) {
    for (int64_t c = 0; c < num_categories_; ++c) {
      std::vector<double> series(static_cast<size_t>(train_end));
      for (int64_t t = 0; t < train_end; ++t) {
        series[static_cast<size_t>(t)] = data.Count(r, t, c);
      }
      SeriesModel& model =
          models_[static_cast<size_t>(r * num_categories_ + c)];
      model.ar.assign(static_cast<size_t>(p_), 0.0);
      model.ma.assign(static_cast<size_t>(q_), 0.0);
      double max_value = 0.0;
      for (double v : series) max_value = std::max(max_value, v);
      model.max_forecast = 3.0 * max_value + 5.0;

      const std::vector<double> w = Difference(series, d_);
      const int64_t n = static_cast<int64_t>(w.size());
      const int long_order = p_ + q_ + 3;
      if (n < long_order + p_ + q_ + 4) {
        // Too short: fall back to the series mean in differenced space.
        double mean = 0.0;
        for (double v : w) mean += v;
        model.intercept = w.empty() ? 0.0 : mean / static_cast<double>(n);
        continue;
      }

      // Stage 1: long-AR fit to estimate innovations.
      std::vector<double> x1;
      std::vector<double> y1;
      for (int64_t t = long_order; t < n; ++t) {
        x1.push_back(1.0);
        for (int lag = 1; lag <= long_order; ++lag) {
          x1.push_back(w[static_cast<size_t>(t - lag)]);
        }
        y1.push_back(w[static_cast<size_t>(t)]);
      }
      const int64_t k1 = long_order + 1;
      const std::vector<double> phi_long = SolveLeastSquares(
          x1, y1, static_cast<int64_t>(y1.size()), k1);
      std::vector<double> residuals(static_cast<size_t>(n), 0.0);
      for (int64_t t = long_order; t < n; ++t) {
        double fitted = phi_long[0];
        for (int lag = 1; lag <= long_order; ++lag) {
          fitted += phi_long[static_cast<size_t>(lag)] *
                    w[static_cast<size_t>(t - lag)];
        }
        residuals[static_cast<size_t>(t)] = w[static_cast<size_t>(t)] - fitted;
      }

      // Stage 2: joint AR+MA regression on lagged values and residuals.
      const int64_t start = long_order + std::max(p_, q_);
      std::vector<double> x2;
      std::vector<double> y2;
      for (int64_t t = start; t < n; ++t) {
        x2.push_back(1.0);
        for (int lag = 1; lag <= p_; ++lag) {
          x2.push_back(w[static_cast<size_t>(t - lag)]);
        }
        for (int lag = 1; lag <= q_; ++lag) {
          x2.push_back(residuals[static_cast<size_t>(t - lag)]);
        }
        y2.push_back(w[static_cast<size_t>(t)]);
      }
      const int64_t k2 = 1 + p_ + q_;
      const std::vector<double> beta = SolveLeastSquares(
          x2, y2, static_cast<int64_t>(y2.size()), k2);
      model.intercept = beta[0];
      for (int lag = 0; lag < p_; ++lag) {
        model.ar[static_cast<size_t>(lag)] = beta[static_cast<size_t>(1 + lag)];
      }
      for (int lag = 0; lag < q_; ++lag) {
        model.ma[static_cast<size_t>(lag)] =
            beta[static_cast<size_t>(1 + p_ + lag)];
      }

      // Stability guard: if the fitted model does not beat an intercept-only
      // model in-sample, the estimate is unreliable (often explosive on
      // degenerate sparse series) — fall back to the mean of w.
      double mean_w = 0.0;
      for (double v : w) mean_w += v;
      mean_w /= static_cast<double>(n);
      double model_sse = 0.0;
      double mean_sse = 0.0;
      for (size_t i = 0; i < y2.size(); ++i) {
        double fitted = 0.0;
        for (int64_t j = 0; j < k2; ++j) {
          fitted += beta[static_cast<size_t>(j)] * x2[i * k2 + j];
        }
        model_sse += (y2[i] - fitted) * (y2[i] - fitted);
        mean_sse += (y2[i] - mean_w) * (y2[i] - mean_w);
      }
      if (!(model_sse < mean_sse)) {
        model.intercept = mean_w;
        model.ar.assign(static_cast<size_t>(p_), 0.0);
        model.ma.assign(static_cast<size_t>(q_), 0.0);
      }
    }
  }
}

Tensor Arima::PredictDay(const CrimeDataset& data, int64_t t) {
  STHSL_CHECK(!models_.empty()) << "Fit must run before PredictDay";
  std::vector<float> out(
      static_cast<size_t>(num_regions_ * num_categories_), 0.0f);
  for (int64_t r = 0; r < num_regions_; ++r) {
    for (int64_t c = 0; c < num_categories_; ++c) {
      const SeriesModel& model =
          models_[static_cast<size_t>(r * num_categories_ + c)];
      std::vector<double> series(static_cast<size_t>(t));
      for (int64_t s = 0; s < t; ++s) {
        series[static_cast<size_t>(s)] = data.Count(r, s, c);
      }
      const std::vector<double> w = Difference(series, d_);
      const int64_t n = static_cast<int64_t>(w.size());
      // Reconstruct innovations along the available history.
      std::vector<double> residuals(static_cast<size_t>(std::max<int64_t>(n, 0)),
                                    0.0);
      for (int64_t s = std::max(p_, q_); s < n; ++s) {
        double fitted = model.intercept;
        for (int lag = 1; lag <= p_; ++lag) {
          fitted += model.ar[static_cast<size_t>(lag - 1)] *
                    w[static_cast<size_t>(s - lag)];
        }
        for (int lag = 1; lag <= q_; ++lag) {
          fitted += model.ma[static_cast<size_t>(lag - 1)] *
                    residuals[static_cast<size_t>(s - lag)];
        }
        residuals[static_cast<size_t>(s)] = w[static_cast<size_t>(s)] - fitted;
      }
      double w_hat = model.intercept;
      for (int lag = 1; lag <= p_ && n - lag >= 0 && n >= lag; ++lag) {
        w_hat += model.ar[static_cast<size_t>(lag - 1)] *
                 w[static_cast<size_t>(n - lag)];
      }
      for (int lag = 1; lag <= q_ && n >= lag; ++lag) {
        w_hat += model.ma[static_cast<size_t>(lag - 1)] *
                 residuals[static_cast<size_t>(n - lag)];
      }
      double prediction = w_hat;
      if (d_ >= 1 && !series.empty()) {
        prediction += series.back();  // invert first-order differencing
      }
      // Clamp against explosive estimates from unstable AR roots.
      prediction =
          std::min(std::max(prediction, 0.0), model.max_forecast);
      out[static_cast<size_t>(r * num_categories_ + c)] =
          static_cast<float>(prediction);
    }
  }
  return Tensor::FromVector({num_regions_, num_categories_}, std::move(out));
}

// -- SVR ---------------------------------------------------------------------------

void Svr::Fit(const CrimeDataset& data, int64_t train_end) {
  num_categories_ = data.num_categories();
  const int64_t regions = data.num_regions();
  weights_.assign(static_cast<size_t>(num_categories_),
                  std::vector<double>(static_cast<size_t>(lags_ + 1), 0.0));
  Rng rng(seed_);

  for (int64_t c = 0; c < num_categories_; ++c) {
    auto& w = weights_[static_cast<size_t>(c)];
    const int64_t samples_per_epoch = regions * 4;
    int64_t step = 0;
    for (int epoch = 0; epoch < epochs_; ++epoch) {
      for (int64_t i = 0; i < samples_per_epoch; ++i) {
        const int64_t r = static_cast<int64_t>(rng.UniformInt(
            static_cast<uint64_t>(regions)));
        const int64_t t = lags_ + static_cast<int64_t>(rng.UniformInt(
                                      static_cast<uint64_t>(
                                          train_end - lags_)));
        double f = w[static_cast<size_t>(lags_)];  // bias
        for (int64_t lag = 0; lag < lags_; ++lag) {
          f += w[static_cast<size_t>(lag)] *
               data.Count(r, t - 1 - lag, c);
        }
        const double y = data.Count(r, t, c);
        const double err = f - y;
        ++step;
        const double lr = 0.01 / (1.0 + 1e-3 * static_cast<double>(step));
        // Subgradient of 0.5||w||^2/(C*n) + epsilon-insensitive loss.
        const double sign =
            err > epsilon_ ? 1.0 : (err < -epsilon_ ? -1.0 : 0.0);
        for (int64_t lag = 0; lag < lags_; ++lag) {
          const double grad =
              sign * data.Count(r, t - 1 - lag, c) +
              w[static_cast<size_t>(lag)] / (c_ * samples_per_epoch);
          w[static_cast<size_t>(lag)] -= lr * grad;
        }
        w[static_cast<size_t>(lags_)] -= lr * sign;
      }
    }
  }
}

Tensor Svr::PredictDay(const CrimeDataset& data, int64_t t) {
  STHSL_CHECK(!weights_.empty()) << "Fit must run before PredictDay";
  const int64_t regions = data.num_regions();
  std::vector<float> out(static_cast<size_t>(regions * num_categories_));
  for (int64_t r = 0; r < regions; ++r) {
    for (int64_t c = 0; c < num_categories_; ++c) {
      const auto& w = weights_[static_cast<size_t>(c)];
      double f = w[static_cast<size_t>(lags_)];
      for (int64_t lag = 0; lag < lags_; ++lag) {
        f += w[static_cast<size_t>(lag)] * data.Count(r, t - 1 - lag, c);
      }
      out[static_cast<size_t>(r * num_categories_ + c)] =
          static_cast<float>(std::max(f, 0.0));
    }
  }
  return Tensor::FromVector({regions, num_categories_}, std::move(out));
}

}  // namespace sthsl
