#ifndef STHSL_BASELINES_REGISTRY_H_
#define STHSL_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/deep_common.h"
#include "core/forecaster.h"
#include "core/sthsl_model.h"

namespace sthsl {

/// Names of all models of the paper's Table III, in the paper's row order
/// (ARIMA ... DMSTGCN, ST-HSL), plus the extra "HA" sanity baseline.
std::vector<std::string> AllModelNames();

/// Table V's efficiency-study subset, in the paper's order.
std::vector<std::string> EfficiencyStudyModelNames();

/// Instantiates a forecaster by Table III name. `baseline_config` drives the
/// baselines; `sthsl_config` drives "ST-HSL". Aborts on unknown names.
std::unique_ptr<Forecaster> MakeForecaster(const std::string& name,
                                           const BaselineConfig& baseline_config,
                                           const SthslConfig& sthsl_config);

/// Derives a matched pair of configurations (same window/epochs/seed/width)
/// for a fair comparison at the given training scale.
struct ComparisonConfig {
  BaselineConfig baseline;
  SthslConfig sthsl;
};
ComparisonConfig MakeComparisonConfig(int64_t window, int64_t epochs,
                                      int64_t steps_per_epoch, uint64_t seed);

}  // namespace sthsl

#endif  // STHSL_BASELINES_REGISTRY_H_
