#ifndef STHSL_BASELINES_ST_RESNET_H_
#define STHSL_BASELINES_ST_RESNET_H_

#include <memory>

#include "baselines/deep_common.h"
#include "nn/layers.h"

namespace sthsl {

/// ST-ResNet (Zhang et al., AAAI'17): grid-image convolutional network with
/// residual units over three temporal facets — closeness (recent days),
/// period (one week back) and trend (two weeks back) — fused by learned
/// per-facet weights.
class StResNetForecaster : public DeepForecasterBase {
 public:
  explicit StResNetForecaster(BaselineConfig config)
      : DeepForecasterBase("ST-ResNet", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

}  // namespace sthsl

#endif  // STHSL_BASELINES_ST_RESNET_H_
