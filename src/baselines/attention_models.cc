#include "baselines/attention_models.h"

#include "util/check.h"

namespace sthsl {

// ---------------------------------------------------------------------------
// GMAN
// ---------------------------------------------------------------------------

struct GmanForecaster::Net : Module {
  Net(int64_t cats, int64_t hidden, Rng& rng)
      : embed(cats, hidden, rng),
        temporal_attn(hidden, 2, rng),
        spatial_attn(hidden, 2, rng),
        gate_temporal(hidden, hidden, rng),
        gate_spatial(hidden, hidden, rng),
        head(hidden, cats, rng) {
    RegisterModule("embed", &embed);
    RegisterModule("temporal_attn", &temporal_attn);
    RegisterModule("spatial_attn", &spatial_attn);
    RegisterModule("gate_temporal", &gate_temporal);
    RegisterModule("gate_spatial", &gate_spatial);
    RegisterModule("head", &head);
  }

  Linear embed;
  MultiHeadSelfAttention temporal_attn;
  MultiHeadSelfAttention spatial_attn;
  Linear gate_temporal;
  Linear gate_spatial;
  Linear head;
};

void GmanForecaster::BuildNet(const CrimeDataset& data, int64_t train_end) {
  net_ = std::make_shared<Net>(num_categories_, config_.hidden, rng_);
}

Tensor GmanForecaster::ForwardCore(const Tensor& z, bool training) {
  Tensor x = net_->embed.Forward(z);  // (R, W, F)
  // Temporal attention: regions are the batch, the window is the sequence.
  Tensor ht = net_->temporal_attn.Forward(x);
  // Spatial attention: time steps are the batch, regions are the sequence.
  Tensor hs = Permute(net_->spatial_attn.Forward(Permute(x, {1, 0, 2})),
                      {1, 0, 2});
  // Gated fusion (GMAN's ST-block output).
  Tensor gate = Sigmoid(Add(net_->gate_temporal.Forward(ht),
                            net_->gate_spatial.Forward(hs)));
  Tensor fused = Add(Mul(gate, ht), Mul(1.0f - gate, hs));
  return net_->head.Forward(Mean(fused, {1}));
}

// ---------------------------------------------------------------------------
// STDN
// ---------------------------------------------------------------------------

struct StdnForecaster::Net : Module {
  Net(int64_t cats, int64_t hidden, Rng& rng)
      : local_conv(cats, hidden, 3, 3, rng),
        flow_gate(2 * cats, hidden, rng),
        gru(hidden, hidden, rng),
        attn_query(hidden, hidden, rng),
        head(hidden, cats, rng) {
    RegisterModule("local_conv", &local_conv);
    RegisterModule("flow_gate", &flow_gate);
    RegisterModule("gru", &gru);
    RegisterModule("attn_query", &attn_query);
    RegisterModule("head", &head);
  }

  Conv2dLayer local_conv;
  Linear flow_gate;
  Gru gru;
  Linear attn_query;
  Linear head;
};

void StdnForecaster::BuildNet(const CrimeDataset& data, int64_t train_end) {
  net_ = std::make_shared<Net>(num_categories_, config_.hidden, rng_);
}

Tensor StdnForecaster::ForwardCore(const Tensor& z, bool training) {
  const int64_t w = z.Size(1);
  const int64_t f = config_.hidden;
  // Per-day local spatial convolution over the grid.
  // (R, W, C) -> (W, C, I, J) images.
  Tensor images = Reshape(Permute(z, {1, 2, 0}),
                          {w, num_categories_, rows_, cols_});
  Tensor conv_out = LeakyRelu(net_->local_conv.Forward(images), 0.1f);
  // Back to (R, W, F): (W, F, R) -> permute.
  Tensor features =
      Permute(Reshape(conv_out, {w, f, num_regions_}), {2, 0, 1});

  // Flow gating: the day-over-day change modulates each day's features.
  Tensor prev = Cat({Narrow(z, 1, 0, 1), Narrow(z, 1, 0, w - 1)}, 1);
  Tensor gate = Sigmoid(net_->flow_gate.Forward(Cat({z, prev}, -1)));
  features = Mul(features, gate);

  // Recurrent encoding + attention pooling over the window (the
  // periodically-shifted attention, collapsed to a single shifted scale).
  Tensor states = net_->gru.Forward(features);           // (R, W, F)
  Tensor last = Squeeze(Narrow(states, 1, w - 1, 1), 1);  // (R, F)
  Tensor query = Unsqueeze(net_->attn_query.Forward(last), 1);  // (R, 1, F)
  Tensor scores = Softmax(Sum(Mul(states, query), {-1}), 1);    // (R, W)
  Tensor pooled = Sum(Mul(states, Unsqueeze(scores, -1)), {1});
  return net_->head.Forward(pooled);
}

// ---------------------------------------------------------------------------
// ST-MetaNet
// ---------------------------------------------------------------------------

struct StMetaNetForecaster::Net : Module {
  Net(int64_t regions, int64_t cats, int64_t hidden, int64_t meta_dim,
      Rng& rng)
      : embed(cats, hidden, rng),
        film(meta_dim, 2 * hidden, rng),
        gru(hidden, hidden, rng),
        head(hidden, cats, rng) {
    meta_embed = RegisterParameter(
        "meta_embed",
        Tensor::XavierUniform({regions, meta_dim}, rng, regions, meta_dim));
    RegisterModule("embed", &embed);
    RegisterModule("film", &film);
    RegisterModule("gru", &gru);
    RegisterModule("head", &head);
  }

  Tensor meta_embed;
  Linear embed;
  Linear film;  // meta-knowledge -> per-region (scale, shift)
  Gru gru;
  Linear head;
};

void StMetaNetForecaster::BuildNet(const CrimeDataset& data,
                                   int64_t train_end) {
  net_ = std::make_shared<Net>(num_regions_, num_categories_, config_.hidden,
                               config_.node_embed, rng_);
}

Tensor StMetaNetForecaster::ForwardCore(const Tensor& z, bool training) {
  const int64_t f = config_.hidden;
  Tensor x = net_->embed.Forward(z);  // (R, W, F)
  // Meta-generated FiLM parameters: each region gets its own modulation of
  // the shared encoder — the reduced form of meta-learned weights.
  Tensor film = net_->film.Forward(net_->meta_embed);  // (R, 2F)
  Tensor scale = Unsqueeze(Narrow(film, 1, 0, f), 1);  // (R, 1, F)
  Tensor shift = Unsqueeze(Narrow(film, 1, f, f), 1);
  x = Add(Mul(x, AddScalar(scale, 1.0f)), shift);
  return net_->head.Forward(net_->gru.ForwardLast(x));
}

// ---------------------------------------------------------------------------
// DeepCrime
// ---------------------------------------------------------------------------

struct DeepCrimeForecaster::Net : Module {
  Net(int64_t cats, int64_t hidden, Rng& rng)
      : embed(cats, hidden, rng),
        gru(hidden, hidden, rng),
        attn(hidden, hidden, rng),
        head(hidden, cats, rng) {
    attn_context = RegisterParameter(
        "attn_context", Tensor::XavierUniform({hidden, 1}, rng, hidden, 1));
    RegisterModule("embed", &embed);
    RegisterModule("gru", &gru);
    RegisterModule("attn", &attn);
    RegisterModule("head", &head);
  }

  Linear embed;
  Gru gru;
  Linear attn;
  Tensor attn_context;
  Linear head;
};

void DeepCrimeForecaster::BuildNet(const CrimeDataset& data,
                                   int64_t train_end) {
  net_ = std::make_shared<Net>(num_categories_, config_.hidden, rng_);
}

Tensor DeepCrimeForecaster::ForwardCore(const Tensor& z, bool training) {
  const int64_t w = z.Size(1);
  Tensor x = net_->embed.Forward(z);           // category-aware embedding
  Tensor states = net_->gru.Forward(x);        // (R, W, F)
  // Additive attention over time with a learned context vector.
  Tensor keys = Tanh(net_->attn.Forward(states));          // (R, W, F)
  Tensor flat = Reshape(keys, {num_regions_ * w, config_.hidden});
  Tensor scores = Reshape(MatMul(flat, net_->attn_context),
                          {num_regions_, w});
  Tensor weights = Softmax(scores, 1);
  Tensor pooled = Sum(Mul(states, Unsqueeze(weights, -1)), {1});
  return net_->head.Forward(pooled);
}

// ---------------------------------------------------------------------------
// STtrans
// ---------------------------------------------------------------------------

struct SttransForecaster::Net : Module {
  Net(int64_t cats, int64_t hidden, int64_t window, Rng& rng)
      : embed(cats, hidden, rng),
        temporal_attn1(hidden, 2, rng),
        temporal_attn2(hidden, 2, rng),
        spatial_attn(hidden, 2, rng),
        norm1(hidden),
        norm2(hidden),
        norm3(hidden),
        ffn1(hidden, hidden, rng),
        ffn2(hidden, hidden, rng),
        head(hidden, cats, rng) {
    position_embed = RegisterParameter(
        "position_embed",
        Tensor::XavierUniform({window, hidden}, rng, window, hidden));
    RegisterModule("embed", &embed);
    RegisterModule("temporal_attn1", &temporal_attn1);
    RegisterModule("temporal_attn2", &temporal_attn2);
    RegisterModule("spatial_attn", &spatial_attn);
    RegisterModule("norm1", &norm1);
    RegisterModule("norm2", &norm2);
    RegisterModule("norm3", &norm3);
    RegisterModule("ffn1", &ffn1);
    RegisterModule("ffn2", &ffn2);
    RegisterModule("head", &head);
  }

  Tensor position_embed;
  Linear embed;
  MultiHeadSelfAttention temporal_attn1;
  MultiHeadSelfAttention temporal_attn2;
  MultiHeadSelfAttention spatial_attn;
  LayerNorm norm1;
  LayerNorm norm2;
  LayerNorm norm3;
  Linear ffn1;
  Linear ffn2;
  Linear head;
};

void SttransForecaster::BuildNet(const CrimeDataset& data,
                                 int64_t train_end) {
  net_ = std::make_shared<Net>(num_categories_, config_.hidden,
                               train_config_.window, rng_);
}

Tensor SttransForecaster::ForwardCore(const Tensor& z, bool training) {
  const int64_t w = z.Size(1);
  Tensor x = Add(net_->embed.Forward(z), net_->position_embed);  // (R, W, F)
  // Two stacked temporal Transformer layers (attention + FFN + LayerNorm).
  x = net_->norm1.Forward(Add(x, net_->temporal_attn1.Forward(x)));
  Tensor ffn = net_->ffn2.Forward(Relu(net_->ffn1.Forward(x)));
  x = net_->norm2.Forward(Add(x, ffn));
  x = Add(x, net_->temporal_attn2.Forward(x));
  // Spatial Transformer stage at the last time step: regions as sequence.
  Tensor last = Unsqueeze(Squeeze(Narrow(x, 1, w - 1, 1), 1), 0);  // (1,R,F)
  Tensor spatial = Squeeze(
      net_->norm3.Forward(Add(last, net_->spatial_attn.Forward(last))), 0);
  return net_->head.Forward(spatial);
}

Module* GmanForecaster::RootModule() { return net_.get(); }
Module* StdnForecaster::RootModule() { return net_.get(); }
Module* StMetaNetForecaster::RootModule() { return net_.get(); }
Module* DeepCrimeForecaster::RootModule() { return net_.get(); }
Module* SttransForecaster::RootModule() { return net_.get(); }

}  // namespace sthsl
