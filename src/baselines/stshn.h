#ifndef STHSL_BASELINES_STSHN_H_
#define STHSL_BASELINES_STSHN_H_

#include <memory>

#include "baselines/deep_common.h"
#include "nn/layers.h"

namespace sthsl {

/// ST-SHN (Xia et al., IJCAI'21): spatial message passing over a
/// *stationary* region hypergraph (built once from historical similarity,
/// in contrast to ST-HSL's learnable structure) with two hypergraph
/// aggregation layers on top of a temporal convolution encoder.
class StshnForecaster : public DeepForecasterBase {
 public:
  explicit StshnForecaster(BaselineConfig config)
      : DeepForecasterBase("STSHN", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

}  // namespace sthsl

#endif  // STHSL_BASELINES_STSHN_H_
