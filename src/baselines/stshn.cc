#include "baselines/stshn.h"

#include "baselines/graph_utils.h"
#include "util/check.h"

namespace sthsl {

struct StshnForecaster::Net : Module {
  Net(int64_t cats, int64_t hidden, Tensor incidence_matrix, Rng& rng)
      : incidence(std::move(incidence_matrix)),
        embed(cats, hidden, rng),
        temporal(hidden, hidden, 3, rng),
        to_edge1(hidden, hidden, rng),
        to_node1(hidden, hidden, rng),
        to_edge2(hidden, hidden, rng),
        to_node2(hidden, hidden, rng),
        head(hidden, cats, rng) {
    RegisterModule("embed", &embed);
    RegisterModule("temporal", &temporal);
    RegisterModule("to_edge1", &to_edge1);
    RegisterModule("to_node1", &to_node1);
    RegisterModule("to_edge2", &to_edge2);
    RegisterModule("to_node2", &to_node2);
    RegisterModule("head", &head);
  }

  Tensor incidence;  // fixed (E, R), built from training-data similarity
  Linear embed;
  Conv1dLayer temporal;
  Linear to_edge1;
  Linear to_node1;
  Linear to_edge2;
  Linear to_node2;
  Linear head;
};

void StshnForecaster::BuildNet(const CrimeDataset& data, int64_t train_end) {
  Tensor incidence = StaticHypergraph(data, train_end,
                                      config_.num_hyperedges,
                                      config_.graph_knn);
  net_ = std::make_shared<Net>(num_categories_, config_.hidden,
                               std::move(incidence), rng_);
}

Tensor StshnForecaster::ForwardCore(const Tensor& z, bool training) {
  Tensor x = net_->embed.Forward(z);  // (R, W, F)
  // Temporal convolution encoder, then pool the window.
  Tensor seq = Permute(x, {0, 2, 1});
  x = Add(Permute(Tanh(net_->temporal.Forward(seq)), {0, 2, 1}), x);
  Tensor nodes = Mean(x, {1});  // (R, F)

  // Two rounds of hypergraph message passing on the stationary structure:
  // regions -> hyperedges -> regions, with residual connections.
  Tensor incidence_t = Transpose(net_->incidence, 0, 1);
  for (auto [to_edge, to_node] :
       {std::pair{&net_->to_edge1, &net_->to_node1},
        std::pair{&net_->to_edge2, &net_->to_node2}}) {
    Tensor edges = LeakyRelu(
        to_edge->Forward(MatMul(net_->incidence, nodes)), 0.1f);
    Tensor back = LeakyRelu(
        to_node->Forward(MatMul(incidence_t, edges)), 0.1f);
    nodes = Add(nodes, back);
  }
  return net_->head.Forward(nodes);
}

Module* StshnForecaster::RootModule() { return net_.get(); }

}  // namespace sthsl
