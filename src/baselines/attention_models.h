#ifndef STHSL_BASELINES_ATTENTION_MODELS_H_
#define STHSL_BASELINES_ATTENTION_MODELS_H_

#include <memory>

#include "baselines/deep_common.h"
#include "nn/layers.h"

namespace sthsl {

/// GMAN (Zheng et al., AAAI'20): parallel temporal self-attention (per
/// region, across the window) and spatial self-attention (per time step,
/// across regions) fused by a learned gate.
class GmanForecaster : public DeepForecasterBase {
 public:
  explicit GmanForecaster(BaselineConfig config)
      : DeepForecasterBase("GMAN", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

/// STDN (Yao et al., AAAI'19): per-day local spatial convolution with a flow
/// gating mechanism (day-over-day change gates the features) and
/// periodically shifted attention over the recurrent states.
class StdnForecaster : public DeepForecasterBase {
 public:
  explicit StdnForecaster(BaselineConfig config)
      : DeepForecasterBase("STDN", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

/// ST-MetaNet (Pan et al., KDD'19): region meta-knowledge embeddings
/// generate per-region FiLM modulation of the sequence encoder (the
/// meta-learned weights idea at reduced scale).
class StMetaNetForecaster : public DeepForecasterBase {
 public:
  explicit StMetaNetForecaster(BaselineConfig config)
      : DeepForecasterBase("ST-MetaNet", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

/// DeepCrime (Huang et al., CIKM'18): category-aware recurrent encoder with
/// attention pooling over time — the representative attentive crime
/// predictor.
class DeepCrimeForecaster : public DeepForecasterBase {
 public:
  explicit DeepCrimeForecaster(BaselineConfig config)
      : DeepForecasterBase("DeepCrime", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

/// STtrans (Wu et al., WWW'20): two stacked Transformer stages — temporal
/// self-attention per region followed by spatial self-attention across
/// regions — for sparse spatial event forecasting.
class SttransForecaster : public DeepForecasterBase {
 public:
  explicit SttransForecaster(BaselineConfig config)
      : DeepForecasterBase("STtrans", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

}  // namespace sthsl

#endif  // STHSL_BASELINES_ATTENTION_MODELS_H_
