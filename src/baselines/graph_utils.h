#ifndef STHSL_BASELINES_GRAPH_UTILS_H_
#define STHSL_BASELINES_GRAPH_UTILS_H_

#include <cstdint>

#include "data/crime_dataset.h"
#include "tensor/tensor.h"

namespace sthsl {

/// Row-normalized 4-neighbour grid adjacency with self-loops, shape (R, R).
/// The standard predefined graph of DCRNN/STGCN-style baselines.
Tensor GridAdjacency(int64_t rows, int64_t cols);

/// Row-normalized k-nearest-neighbour similarity graph built from cosine
/// similarity of region crime histories over days [0, train_end). Used by
/// baselines that consume a data-driven static graph.
Tensor SimilarityAdjacency(const CrimeDataset& data, int64_t train_end,
                           int64_t k);

/// Static hypergraph incidence (num_edges, R) for ST-SHN: each hyperedge
/// connects the `k` regions most similar to a seed region (seeds spread over
/// the similarity ranking). Rows are normalized to sum to 1.
Tensor StaticHypergraph(const CrimeDataset& data, int64_t train_end,
                        int64_t num_edges, int64_t k);

}  // namespace sthsl

#endif  // STHSL_BASELINES_GRAPH_UTILS_H_
