#ifndef STHSL_BASELINES_GRAPH_MODELS_H_
#define STHSL_BASELINES_GRAPH_MODELS_H_

#include <memory>
#include <vector>

#include "baselines/deep_common.h"
#include "nn/layers.h"

namespace sthsl {

/// DCRNN (Li et al., ICLR'18): diffusion convolution over a predefined grid
/// graph feeding a recurrent (GRU) temporal encoder. This implementation
/// keeps the defining idea — 2-hop diffusion of inputs and 1-hop diffusion
/// of the hidden state on a fixed graph inside the recurrence — with a
/// single-step decoder.
class DcrnnForecaster : public DeepForecasterBase {
 public:
  explicit DcrnnForecaster(BaselineConfig config)
      : DeepForecasterBase("DCRNN", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

/// STGCN (Yu et al., IJCAI'18): sandwich blocks of gated temporal
/// convolution / spectral-style graph convolution / temporal convolution on
/// a predefined grid graph.
class StgcnForecaster : public DeepForecasterBase {
 public:
  explicit StgcnForecaster(BaselineConfig config)
      : DeepForecasterBase("STGCN", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

/// Graph WaveNet (Wu et al., IJCAI'19): self-adaptive adjacency matrix
/// (softmax(relu(E1 E2^T))) combined with a stack of temporal convolutions
/// and skip connections.
class GwnForecaster : public DeepForecasterBase {
 public:
  explicit GwnForecaster(BaselineConfig config)
      : DeepForecasterBase("GWN", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

/// AGCRN (Bai et al., NeurIPS'20): recurrent network whose per-step input is
/// augmented by adaptive graph convolution derived from learned node
/// embeddings (no predefined graph).
class AgcrnForecaster : public DeepForecasterBase {
 public:
  explicit AgcrnForecaster(BaselineConfig config)
      : DeepForecasterBase("AGCRN", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

/// MTGNN (Wu et al., KDD'20): uni-directional learned graph structure
/// (difference of two node-embedding products) with inception-style temporal
/// convolutions and mix-hop graph propagation.
class MtgnnForecaster : public DeepForecasterBase {
 public:
  explicit MtgnnForecaster(BaselineConfig config)
      : DeepForecasterBase("MTGNN", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

/// DMSTGCN (Han et al., KDD'21): dynamic, time-aware adjacency built from
/// node embeddings modulated by a day-of-week embedding, followed by graph
/// and temporal convolutions.
class DmstgcnForecaster : public DeepForecasterBase {
 public:
  explicit DmstgcnForecaster(BaselineConfig config)
      : DeepForecasterBase("DMSTGCN", config) {}

 protected:
  void BuildNet(const CrimeDataset& data, int64_t train_end) override;
  Tensor ForwardCore(const Tensor& z, bool training) override;
  Module* RootModule() override;

 private:
  struct Net;
  std::shared_ptr<Net> net_;
};

}  // namespace sthsl

#endif  // STHSL_BASELINES_GRAPH_MODELS_H_
