#include "baselines/registry.h"

#include "baselines/attention_models.h"
#include "baselines/classical.h"
#include "baselines/graph_models.h"
#include "baselines/st_resnet.h"
#include "baselines/stshn.h"
#include "util/check.h"

namespace sthsl {

std::vector<std::string> AllModelNames() {
  return {"HA",        "ARIMA",      "SVM",   "ST-ResNet", "DCRNN",
          "STGCN",     "GWN",        "STtrans", "DeepCrime", "STDN",
          "ST-MetaNet", "GMAN",      "AGCRN", "MTGNN",     "STSHN",
          "DMSTGCN",   "ST-HSL"};
}

std::vector<std::string> EfficiencyStudyModelNames() {
  return {"STGCN", "DMSTGCN", "STtrans", "GMAN",  "ST-MetaNet",
          "DeepCrime", "STSHN", "DCRNN", "STDN", "ST-HSL"};
}

std::unique_ptr<Forecaster> MakeForecaster(
    const std::string& name, const BaselineConfig& baseline_config,
    const SthslConfig& sthsl_config) {
  if (name == "HA") return std::make_unique<HistoricalAverage>();
  if (name == "ARIMA") return std::make_unique<Arima>();
  if (name == "SVM") return std::make_unique<Svr>();
  if (name == "ST-ResNet") {
    return std::make_unique<StResNetForecaster>(baseline_config);
  }
  if (name == "DCRNN") {
    return std::make_unique<DcrnnForecaster>(baseline_config);
  }
  if (name == "STGCN") {
    return std::make_unique<StgcnForecaster>(baseline_config);
  }
  if (name == "GWN") return std::make_unique<GwnForecaster>(baseline_config);
  if (name == "STtrans") {
    return std::make_unique<SttransForecaster>(baseline_config);
  }
  if (name == "DeepCrime") {
    return std::make_unique<DeepCrimeForecaster>(baseline_config);
  }
  if (name == "STDN") {
    return std::make_unique<StdnForecaster>(baseline_config);
  }
  if (name == "ST-MetaNet") {
    return std::make_unique<StMetaNetForecaster>(baseline_config);
  }
  if (name == "GMAN") {
    return std::make_unique<GmanForecaster>(baseline_config);
  }
  if (name == "AGCRN") {
    return std::make_unique<AgcrnForecaster>(baseline_config);
  }
  if (name == "MTGNN") {
    return std::make_unique<MtgnnForecaster>(baseline_config);
  }
  if (name == "STSHN") {
    return std::make_unique<StshnForecaster>(baseline_config);
  }
  if (name == "DMSTGCN") {
    return std::make_unique<DmstgcnForecaster>(baseline_config);
  }
  if (name == "ST-HSL") {
    return std::make_unique<SthslForecaster>(sthsl_config);
  }
  STHSL_CHECK(false) << "unknown model name: " << name;
  return nullptr;
}

ComparisonConfig MakeComparisonConfig(int64_t window, int64_t epochs,
                                      int64_t steps_per_epoch,
                                      uint64_t seed) {
  ComparisonConfig config;
  config.baseline.hidden = 16;
  config.baseline.train.window = window;
  config.baseline.train.epochs = epochs;
  config.baseline.train.max_steps_per_epoch = steps_per_epoch;
  config.baseline.train.seed = seed;

  config.sthsl.dim = 16;
  config.sthsl.num_hyperedges = 32;
  config.sthsl.train = config.baseline.train;
  return config;
}

}  // namespace sthsl
