#ifndef STHSL_BASELINES_CLASSICAL_H_
#define STHSL_BASELINES_CLASSICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/forecaster.h"

namespace sthsl {

/// Historical average: predicts the training-window mean per (region,
/// category), optionally day-of-week conditioned. The sanity floor every
/// learned model must beat.
class HistoricalAverage : public Forecaster {
 public:
  explicit HistoricalAverage(bool day_of_week = true)
      : day_of_week_(day_of_week) {}

  std::string Name() const override { return "HA"; }
  void Fit(const CrimeDataset& data, int64_t train_end) override;
  Tensor PredictDay(const CrimeDataset& data, int64_t t) override;

 private:
  bool day_of_week_;
  int64_t num_regions_ = 0;
  int64_t num_categories_ = 0;
  // (7 or 1) x R x C mean table.
  std::vector<float> means_;
  int64_t buckets_ = 1;
};

/// ARIMA(p, d, q) fitted independently per (region, category) series using
/// the Hannan-Rissanen two-stage procedure: a long-AR fit produces residual
/// estimates, then AR and MA coefficients are obtained jointly by ordinary
/// least squares. This is the classical-statistics baseline of Table III.
class Arima : public Forecaster {
 public:
  Arima(int p = 3, int d = 1, int q = 1) : p_(p), d_(d), q_(q) {}

  std::string Name() const override { return "ARIMA"; }
  void Fit(const CrimeDataset& data, int64_t train_end) override;
  Tensor PredictDay(const CrimeDataset& data, int64_t t) override;

 private:
  struct SeriesModel {
    std::vector<double> ar;  // p coefficients
    std::vector<double> ma;  // q coefficients
    double intercept = 0.0;
    // Forecast clamp derived from the training range; guards against
    // explosive coefficient estimates on degenerate series.
    double max_forecast = 0.0;
  };

  int p_;
  int d_;
  int q_;
  int64_t num_regions_ = 0;
  int64_t num_categories_ = 0;
  std::vector<SeriesModel> models_;  // R * C
};

/// Linear support-vector regression on lagged features with the
/// epsilon-insensitive loss, trained by stochastic subgradient descent.
/// One model per category, shared across regions (regions are samples).
class Svr : public Forecaster {
 public:
  Svr(int64_t lags = 7, float epsilon = 0.1f, float c = 1.0f,
      int epochs = 40, uint64_t seed = 3)
      : lags_(lags), epsilon_(epsilon), c_(c), epochs_(epochs), seed_(seed) {}

  std::string Name() const override { return "SVM"; }
  void Fit(const CrimeDataset& data, int64_t train_end) override;
  Tensor PredictDay(const CrimeDataset& data, int64_t t) override;

 private:
  int64_t lags_;
  float epsilon_;
  float c_;
  int epochs_;
  uint64_t seed_;
  int64_t num_categories_ = 0;
  // Per category: lags_ weights + bias.
  std::vector<std::vector<double>> weights_;
};

}  // namespace sthsl

#endif  // STHSL_BASELINES_CLASSICAL_H_
