#ifndef STHSL_BASELINES_DEEP_COMMON_H_
#define STHSL_BASELINES_DEEP_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/neural_forecaster.h"
#include "data/crime_dataset.h"
#include "tensor/ops.h"
#include "util/obs/obs.h"

namespace sthsl {

/// Architecture knobs shared by the deep baselines. Kept deliberately small
/// so the whole Table III sweep stays affordable on one CPU core.
struct BaselineConfig {
  int64_t hidden = 16;       // latent feature width
  int64_t node_embed = 8;    // node-embedding width of adaptive-graph models
  int64_t graph_knn = 8;     // k of data-driven similarity graphs
  int64_t num_hyperedges = 32;  // ST-SHN hyperedge count
  TrainConfig train;
};

/// Base of every deep baseline: captures Z-score moments and grid geometry
/// at Prepare time, lazily builds the network, and de-normalizes outputs.
/// Subclasses implement BuildNet() and ForwardCore() on normalized input.
class DeepForecasterBase : public NeuralForecaster {
 public:
  DeepForecasterBase(std::string name, BaselineConfig config)
      : NeuralForecaster(config.train),
        name_(std::move(name)),
        config_(config) {}

  std::string Name() const override { return name_; }

 protected:
  void Prepare(const CrimeDataset& data, int64_t train_end) final {
    rows_ = data.rows();
    cols_ = data.cols();
    num_regions_ = data.num_regions();
    num_categories_ = data.num_categories();
    data.SliceDays(0, train_end).ComputeMoments(&mean_, &stddev_);
    BuildNet(data, train_end);
  }

  Tensor Forward(const Tensor& window, bool training) final {
    STHSL_TRACE_SCOPE("baseline/forward");
    Tensor z = (window - mean_) * (1.0f / stddev_);
    Tensor out = ForwardCore(z, training);  // (R, C) in normalized space
    return AddScalar(MulScalar(out, stddev_), mean_);
  }

  /// Builds all modules; called once, after geometry/moments are known.
  virtual void BuildNet(const CrimeDataset& data, int64_t train_end) = 0;

  /// Normalized window (R, W, C) -> normalized prediction (R, C).
  virtual Tensor ForwardCore(const Tensor& z, bool training) = 0;

  std::string name_;
  BaselineConfig config_;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t num_regions_ = 0;
  int64_t num_categories_ = 0;
  float mean_ = 0.0f;
  float stddev_ = 1.0f;
};

/// Mixes region features through an (R, R) operator: x may be (R, F) or
/// (R, W, F); the leading region dimension is multiplied by `adj`.
inline Tensor GraphMix(const Tensor& adj, const Tensor& x) {
  if (x.Dim() == 2) return MatMul(adj, x);
  const int64_t r = x.Size(0);
  const int64_t w = x.Size(1);
  const int64_t f = x.Size(2);
  return Reshape(MatMul(adj, Reshape(x, {r, w * f})), {r, w, f});
}

}  // namespace sthsl

#endif  // STHSL_BASELINES_DEEP_COMMON_H_
