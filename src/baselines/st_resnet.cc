#include "baselines/st_resnet.h"

#include "util/check.h"

namespace sthsl {

struct StResNetForecaster::Net : Module {
  Net(int64_t cats, int64_t hidden, int64_t closeness, Rng& rng)
      : close_in(closeness * cats, hidden, 3, 3, rng),
        period_in(cats, hidden, 3, 3, rng),
        trend_in(cats, hidden, 3, 3, rng),
        res1(hidden, hidden, 3, 3, rng),
        res2(hidden, hidden, 3, 3, rng),
        out(hidden, cats, 1, 1, rng) {
    facet_weights = RegisterParameter(
        "facet_weights", Tensor::Full({3}, 1.0f, /*requires_grad=*/true));
    RegisterModule("close_in", &close_in);
    RegisterModule("period_in", &period_in);
    RegisterModule("trend_in", &trend_in);
    RegisterModule("res1", &res1);
    RegisterModule("res2", &res2);
    RegisterModule("out", &out);
  }

  Tensor facet_weights;  // learned fusion of closeness/period/trend
  Conv2dLayer close_in;
  Conv2dLayer period_in;
  Conv2dLayer trend_in;
  Conv2dLayer res1;
  Conv2dLayer res2;
  Conv2dLayer out;
};

namespace {
constexpr int64_t kCloseness = 3;  // days of the closeness facet
}  // namespace

void StResNetForecaster::BuildNet(const CrimeDataset& data,
                                  int64_t train_end) {
  STHSL_CHECK_GE(train_config_.window, 14)
      << "ST-ResNet needs a window of at least 14 days for its trend facet";
  net_ = std::make_shared<Net>(num_categories_, config_.hidden, kCloseness,
                               rng_);
}

Tensor StResNetForecaster::ForwardCore(const Tensor& z, bool training) {
  const int64_t w = z.Size(1);

  // Facet images (1, C*k, I, J) cut from the window: the last `kCloseness`
  // days, the day one week back, and the day two weeks back.
  auto facet_image = [&](int64_t start, int64_t days) {
    Tensor slab = Narrow(z, 1, start, days);  // (R, days, C)
    return Reshape(Permute(slab, {1, 2, 0}),
                   {1, days * num_categories_, rows_, cols_});
  };

  Tensor close = facet_image(w - kCloseness, kCloseness);
  Tensor period = facet_image(w - 7, 1);
  Tensor trend = facet_image(w - 14, 1);

  auto branch = [&](Conv2dLayer& input_conv, const Tensor& image) {
    Tensor x = LeakyRelu(input_conv.Forward(image), 0.1f);
    // Two residual units.
    x = Add(net_->res1.Forward(Relu(x)), x);
    x = Add(net_->res2.Forward(Relu(x)), x);
    return x;  // (1, F, I, J)
  };

  Tensor fused = Add(
      Add(Mul(branch(net_->close_in, close),
              Narrow(net_->facet_weights, 0, 0, 1)),
          Mul(branch(net_->period_in, period),
              Narrow(net_->facet_weights, 0, 1, 1))),
      Mul(branch(net_->trend_in, trend),
          Narrow(net_->facet_weights, 0, 2, 1)));

  Tensor out = net_->out.Forward(fused);  // (1, C, I, J)
  return Permute(Reshape(out, {num_categories_, num_regions_}), {1, 0});
}

Module* StResNetForecaster::RootModule() { return net_.get(); }

}  // namespace sthsl
