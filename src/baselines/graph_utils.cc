#include "baselines/graph_utils.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace sthsl {
namespace {

// Cosine similarity matrix (R x R) of region histories over [0, train_end).
std::vector<double> RegionSimilarity(const CrimeDataset& data,
                                     int64_t train_end) {
  const int64_t regions = data.num_regions();
  const int64_t cats = data.num_categories();
  const int64_t dim = train_end * cats;
  std::vector<double> features(static_cast<size_t>(regions * dim));
  for (int64_t r = 0; r < regions; ++r) {
    for (int64_t t = 0; t < train_end; ++t) {
      for (int64_t c = 0; c < cats; ++c) {
        features[static_cast<size_t>(r * dim + t * cats + c)] =
            data.Count(r, t, c);
      }
    }
  }
  std::vector<double> norms(static_cast<size_t>(regions), 0.0);
  for (int64_t r = 0; r < regions; ++r) {
    double acc = 0.0;
    for (int64_t i = 0; i < dim; ++i) {
      const double v = features[static_cast<size_t>(r * dim + i)];
      acc += v * v;
    }
    norms[static_cast<size_t>(r)] = std::sqrt(std::max(acc, 1e-12));
  }
  std::vector<double> sim(static_cast<size_t>(regions * regions), 0.0);
  for (int64_t a = 0; a < regions; ++a) {
    for (int64_t b = a; b < regions; ++b) {
      double dot = 0.0;
      for (int64_t i = 0; i < dim; ++i) {
        dot += features[static_cast<size_t>(a * dim + i)] *
               features[static_cast<size_t>(b * dim + i)];
      }
      const double value =
          dot / (norms[static_cast<size_t>(a)] * norms[static_cast<size_t>(b)]);
      sim[static_cast<size_t>(a * regions + b)] = value;
      sim[static_cast<size_t>(b * regions + a)] = value;
    }
  }
  return sim;
}

void RowNormalize(std::vector<float>& matrix, int64_t rows, int64_t cols) {
  for (int64_t r = 0; r < rows; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      sum += matrix[static_cast<size_t>(r * cols + c)];
    }
    if (sum <= 0.0f) continue;
    for (int64_t c = 0; c < cols; ++c) {
      matrix[static_cast<size_t>(r * cols + c)] /= sum;
    }
  }
}

}  // namespace

Tensor GridAdjacency(int64_t rows, int64_t cols) {
  STHSL_CHECK(rows > 0 && cols > 0);
  const int64_t regions = rows * cols;
  std::vector<float> adj(static_cast<size_t>(regions * regions), 0.0f);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      const int64_t r = i * cols + j;
      adj[static_cast<size_t>(r * regions + r)] = 1.0f;  // self-loop
      const int64_t di[] = {-1, 1, 0, 0};
      const int64_t dj[] = {0, 0, -1, 1};
      for (int n = 0; n < 4; ++n) {
        const int64_t ni = i + di[n];
        const int64_t nj = j + dj[n];
        if (ni < 0 || ni >= rows || nj < 0 || nj >= cols) continue;
        adj[static_cast<size_t>(r * regions + ni * cols + nj)] = 1.0f;
      }
    }
  }
  RowNormalize(adj, regions, regions);
  return Tensor::FromVector({regions, regions}, std::move(adj));
}

Tensor SimilarityAdjacency(const CrimeDataset& data, int64_t train_end,
                           int64_t k) {
  const int64_t regions = data.num_regions();
  STHSL_CHECK(k > 0 && k < regions);
  const std::vector<double> sim = RegionSimilarity(data, train_end);
  std::vector<float> adj(static_cast<size_t>(regions * regions), 0.0f);
  std::vector<int64_t> order(static_cast<size_t>(regions));
  for (int64_t r = 0; r < regions; ++r) {
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + k + 1, order.end(),
                      [&](int64_t a, int64_t b) {
                        return sim[static_cast<size_t>(r * regions + a)] >
                               sim[static_cast<size_t>(r * regions + b)];
                      });
    adj[static_cast<size_t>(r * regions + r)] = 1.0f;
    int64_t added = 0;
    for (int64_t i = 0; i < regions && added < k; ++i) {
      const int64_t neighbor = order[static_cast<size_t>(i)];
      if (neighbor == r) continue;
      adj[static_cast<size_t>(r * regions + neighbor)] = 1.0f;
      ++added;
    }
  }
  RowNormalize(adj, regions, regions);
  return Tensor::FromVector({regions, regions}, std::move(adj));
}

Tensor StaticHypergraph(const CrimeDataset& data, int64_t train_end,
                        int64_t num_edges, int64_t k) {
  const int64_t regions = data.num_regions();
  STHSL_CHECK(num_edges > 0 && k > 0 && k <= regions);
  const std::vector<double> sim = RegionSimilarity(data, train_end);
  std::vector<float> incidence(static_cast<size_t>(num_edges * regions),
                               0.0f);
  std::vector<int64_t> order(static_cast<size_t>(regions));
  for (int64_t e = 0; e < num_edges; ++e) {
    // Seeds sweep the region space so hyperedges cover different localities.
    const int64_t seed = (e * regions) / num_edges;
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](int64_t a, int64_t b) {
                        return sim[static_cast<size_t>(seed * regions + a)] >
                               sim[static_cast<size_t>(seed * regions + b)];
                      });
    for (int64_t i = 0; i < k; ++i) {
      incidence[static_cast<size_t>(e * regions + order[static_cast<size_t>(i)])] =
          1.0f;
    }
  }
  RowNormalize(incidence, num_edges, regions);
  return Tensor::FromVector({num_edges, regions}, std::move(incidence));
}

}  // namespace sthsl
