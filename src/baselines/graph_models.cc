#include "baselines/graph_models.h"

#include "baselines/graph_utils.h"
#include "util/check.h"

namespace sthsl {

// ---------------------------------------------------------------------------
// DCRNN
// ---------------------------------------------------------------------------

struct DcrnnForecaster::Net : Module {
  Net(int64_t regions, int64_t cats, int64_t hidden, Tensor adjacency,
      Rng& rng)
      : adj(std::move(adjacency)),
        cell(3 * cats, hidden, rng),
        head(hidden, cats, rng) {
    RegisterModule("cell", &cell);
    RegisterModule("head", &head);
  }

  Tensor adj;  // fixed, row-normalized (R, R)
  GruCell cell;
  Linear head;
};

void DcrnnForecaster::BuildNet(const CrimeDataset& data, int64_t train_end) {
  net_ = std::make_shared<Net>(num_regions_, num_categories_, config_.hidden,
                               GridAdjacency(rows_, cols_), rng_);
}

Tensor DcrnnForecaster::ForwardCore(const Tensor& z, bool training) {
  const int64_t w = z.Size(1);
  Tensor h = Tensor::Zeros({num_regions_, config_.hidden});
  for (int64_t t = 0; t < w; ++t) {
    Tensor xt = Squeeze(Narrow(z, 1, t, 1), 1);  // (R, C)
    // 2-hop diffusion of the step input over the predefined graph.
    Tensor x1 = MatMul(net_->adj, xt);
    Tensor x2 = MatMul(net_->adj, x1);
    Tensor diffused = Cat({xt, x1, x2}, 1);  // (R, 3C)
    // 1-hop diffusion of the hidden state inside the recurrence.
    h = net_->cell.Forward(diffused, MatMul(net_->adj, h));
  }
  return net_->head.Forward(h);
}

// ---------------------------------------------------------------------------
// STGCN
// ---------------------------------------------------------------------------

struct StgcnForecaster::Net : Module {
  Net(int64_t cats, int64_t hidden, Tensor adjacency, Rng& rng)
      : adj(std::move(adjacency)),
        embed(cats, hidden, rng),
        temporal1(hidden, hidden, 3, rng),
        temporal2(hidden, hidden, 3, rng),
        temporal3(hidden, hidden, 3, rng),
        temporal4(hidden, hidden, 3, rng),
        spatial1(hidden, hidden, rng),
        spatial2(hidden, hidden, rng),
        head(hidden, cats, rng) {
    RegisterModule("embed", &embed);
    RegisterModule("temporal1", &temporal1);
    RegisterModule("temporal2", &temporal2);
    RegisterModule("temporal3", &temporal3);
    RegisterModule("temporal4", &temporal4);
    RegisterModule("spatial1", &spatial1);
    RegisterModule("spatial2", &spatial2);
    RegisterModule("head", &head);
  }

  Tensor adj;
  Linear embed;
  Conv1dLayer temporal1;
  Conv1dLayer temporal2;
  Conv1dLayer temporal3;
  Conv1dLayer temporal4;
  Linear spatial1;
  Linear spatial2;
  Linear head;
};

void StgcnForecaster::BuildNet(const CrimeDataset& data, int64_t train_end) {
  net_ = std::make_shared<Net>(num_categories_, config_.hidden,
                               GridAdjacency(rows_, cols_), rng_);
}

Tensor StgcnForecaster::ForwardCore(const Tensor& z, bool training) {
  const int64_t f = config_.hidden;
  Tensor x = net_->embed.Forward(z);  // (R, W, F)

  auto temporal = [&](Conv1dLayer& conv, const Tensor& in) {
    // (R, W, F) -> (R, F, W) -> conv -> back, gated by LeakyReLU.
    Tensor seq = Permute(in, {0, 2, 1});
    Tensor out = LeakyRelu(conv.Forward(seq), 0.1f);
    return Permute(out, {0, 2, 1});
  };

  // Block 1: temporal - spatial - temporal (the STGCN sandwich).
  x = temporal(net_->temporal1, x);
  x = LeakyRelu(net_->spatial1.Forward(GraphMix(net_->adj, x)), 0.1f);
  x = temporal(net_->temporal2, x);
  // Block 2.
  x = temporal(net_->temporal3, x);
  x = LeakyRelu(net_->spatial2.Forward(GraphMix(net_->adj, x)), 0.1f);
  x = temporal(net_->temporal4, x);

  Tensor pooled = Mean(x, {1});  // (R, F)
  STHSL_CHECK_EQ(pooled.Size(1), f);
  return net_->head.Forward(pooled);
}

// ---------------------------------------------------------------------------
// Graph WaveNet
// ---------------------------------------------------------------------------

struct GwnForecaster::Net : Module {
  Net(int64_t regions, int64_t cats, int64_t hidden, int64_t embed_dim,
      Tensor grid_adj, Rng& rng)
      : adj(std::move(grid_adj)),
        embed(cats, hidden, rng),
        temporal1(hidden, hidden, 3, rng),
        temporal2(hidden, hidden, 3, rng),
        gcn1(2 * hidden, hidden, rng),
        gcn2(2 * hidden, hidden, rng),
        skip1(hidden, hidden, rng),
        skip2(hidden, hidden, rng),
        head(hidden, cats, rng) {
    source_embed = RegisterParameter(
        "source_embed",
        Tensor::XavierUniform({regions, embed_dim}, rng, regions, embed_dim));
    target_embed = RegisterParameter(
        "target_embed",
        Tensor::XavierUniform({regions, embed_dim}, rng, regions, embed_dim));
    RegisterModule("embed", &embed);
    RegisterModule("temporal1", &temporal1);
    RegisterModule("temporal2", &temporal2);
    RegisterModule("gcn1", &gcn1);
    RegisterModule("gcn2", &gcn2);
    RegisterModule("skip1", &skip1);
    RegisterModule("skip2", &skip2);
    RegisterModule("head", &head);
  }

  Tensor AdaptiveAdjacency() const {
    return Softmax(Relu(MatMul(source_embed, Transpose(target_embed, 0, 1))),
                   1);
  }

  Tensor adj;  // predefined support
  Tensor source_embed;
  Tensor target_embed;
  Linear embed;
  Conv1dLayer temporal1;
  Conv1dLayer temporal2;
  Linear gcn1;
  Linear gcn2;
  Linear skip1;
  Linear skip2;
  Linear head;
};

void GwnForecaster::BuildNet(const CrimeDataset& data, int64_t train_end) {
  net_ = std::make_shared<Net>(num_regions_, num_categories_, config_.hidden,
                               config_.node_embed,
                               GridAdjacency(rows_, cols_), rng_);
}

Tensor GwnForecaster::ForwardCore(const Tensor& z, bool training) {
  Tensor adaptive = net_->AdaptiveAdjacency();
  Tensor x = net_->embed.Forward(z);  // (R, W, F)
  Tensor skip = Tensor();

  auto layer = [&](Conv1dLayer& temporal, Linear& gcn, Linear& skip_proj,
                   const Tensor& in) {
    Tensor seq = Permute(in, {0, 2, 1});
    Tensor t_out = Permute(Tanh(temporal.Forward(seq)), {0, 2, 1});
    // Dual-support graph convolution: predefined + adaptive adjacency.
    Tensor mixed =
        Cat({GraphMix(net_->adj, t_out), GraphMix(adaptive, t_out)}, -1);
    Tensor g_out = LeakyRelu(gcn.Forward(mixed), 0.1f);
    Tensor s = skip_proj.Forward(Mean(g_out, {1}));  // (R, F)
    skip = skip.Defined() ? Add(skip, s) : s;
    return Add(g_out, in);  // residual
  };

  x = layer(net_->temporal1, net_->gcn1, net_->skip1, x);
  x = layer(net_->temporal2, net_->gcn2, net_->skip2, x);
  return net_->head.Forward(Relu(skip));
}

// ---------------------------------------------------------------------------
// AGCRN
// ---------------------------------------------------------------------------

struct AgcrnForecaster::Net : Module {
  Net(int64_t regions, int64_t cats, int64_t hidden, int64_t embed_dim,
      Rng& rng)
      : cell(2 * cats, hidden, rng), head(hidden, cats, rng) {
    node_embed = RegisterParameter(
        "node_embed",
        Tensor::XavierUniform({regions, embed_dim}, rng, regions, embed_dim));
    RegisterModule("cell", &cell);
    RegisterModule("head", &head);
  }

  Tensor AdaptiveAdjacency() const {
    return Softmax(Relu(MatMul(node_embed, Transpose(node_embed, 0, 1))), 1);
  }

  Tensor node_embed;
  GruCell cell;
  Linear head;
};

void AgcrnForecaster::BuildNet(const CrimeDataset& data, int64_t train_end) {
  net_ = std::make_shared<Net>(num_regions_, num_categories_, config_.hidden,
                               config_.node_embed, rng_);
}

Tensor AgcrnForecaster::ForwardCore(const Tensor& z, bool training) {
  const int64_t w = z.Size(1);
  Tensor adaptive = net_->AdaptiveAdjacency();
  Tensor h = Tensor::Zeros({num_regions_, config_.hidden});
  for (int64_t t = 0; t < w; ++t) {
    Tensor xt = Squeeze(Narrow(z, 1, t, 1), 1);
    Tensor mixed = Cat({xt, MatMul(adaptive, xt)}, 1);  // adaptive graph conv
    h = net_->cell.Forward(mixed, h);
  }
  return net_->head.Forward(h);
}

// ---------------------------------------------------------------------------
// MTGNN
// ---------------------------------------------------------------------------

struct MtgnnForecaster::Net : Module {
  Net(int64_t regions, int64_t cats, int64_t hidden, int64_t embed_dim,
      Rng& rng)
      : embed(cats, hidden, rng),
        inception3(hidden, hidden, 3, rng),
        inception5(hidden, hidden, 5, rng),
        mixhop1(2 * hidden, hidden, rng),
        mixhop2(2 * hidden, hidden, rng),
        head(hidden, cats, rng) {
    embed1 = RegisterParameter(
        "embed1",
        Tensor::XavierUniform({regions, embed_dim}, rng, regions, embed_dim));
    embed2 = RegisterParameter(
        "embed2",
        Tensor::XavierUniform({regions, embed_dim}, rng, regions, embed_dim));
    RegisterModule("embed", &embed);
    RegisterModule("inception3", &inception3);
    RegisterModule("inception5", &inception5);
    RegisterModule("mixhop1", &mixhop1);
    RegisterModule("mixhop2", &mixhop2);
    RegisterModule("head", &head);
  }

  // Uni-directional learned structure: relu(tanh(M1 M2^T - M2 M1^T)).
  Tensor LearnedAdjacency() const {
    Tensor m12 = MatMul(embed1, Transpose(embed2, 0, 1));
    Tensor m21 = MatMul(embed2, Transpose(embed1, 0, 1));
    return Softmax(Relu(Tanh(Sub(m12, m21))), 1);
  }

  Tensor embed1;
  Tensor embed2;
  Linear embed;
  Conv1dLayer inception3;
  Conv1dLayer inception5;
  Linear mixhop1;
  Linear mixhop2;
  Linear head;
};

void MtgnnForecaster::BuildNet(const CrimeDataset& data, int64_t train_end) {
  net_ = std::make_shared<Net>(num_regions_, num_categories_, config_.hidden,
                               config_.node_embed, rng_);
}

Tensor MtgnnForecaster::ForwardCore(const Tensor& z, bool training) {
  Tensor adj = net_->LearnedAdjacency();
  Tensor x = net_->embed.Forward(z);  // (R, W, F)

  // Inception temporal convolution: parallel kernel sizes 3 and 5.
  Tensor seq = Permute(x, {0, 2, 1});
  Tensor t_out = Add(net_->inception3.Forward(seq),
                     net_->inception5.Forward(seq));
  x = Add(Permute(Tanh(t_out), {0, 2, 1}), x);

  // Two mix-hop graph propagation layers: combine 0-hop and 1-hop signals.
  for (Linear* hop : {&net_->mixhop1, &net_->mixhop2}) {
    Tensor mixed = Cat({x, GraphMix(adj, x)}, -1);
    x = Add(LeakyRelu(hop->Forward(mixed), 0.1f), x);
  }
  return net_->head.Forward(Mean(x, {1}));
}

// ---------------------------------------------------------------------------
// DMSTGCN
// ---------------------------------------------------------------------------

struct DmstgcnForecaster::Net : Module {
  Net(int64_t regions, int64_t cats, int64_t hidden, int64_t embed_dim,
      Rng& rng)
      : embed(cats, hidden, rng),
        temporal(hidden, hidden, 3, rng),
        gcn(hidden, hidden, rng),
        head(hidden, cats, rng) {
    source_embed = RegisterParameter(
        "source_embed",
        Tensor::XavierUniform({regions, embed_dim}, rng, regions, embed_dim));
    target_embed = RegisterParameter(
        "target_embed",
        Tensor::XavierUniform({regions, embed_dim}, rng, regions, embed_dim));
    dow_embed = RegisterParameter(
        "dow_embed", Tensor::XavierUniform({7, embed_dim}, rng, 7, embed_dim));
    RegisterModule("embed", &embed);
    RegisterModule("temporal", &temporal);
    RegisterModule("gcn", &gcn);
    RegisterModule("head", &head);
  }

  // Time-aware adjacency: node embeddings modulated by the day-of-week
  // factor before the product (the dynamic facet of DMSTGCN).
  Tensor DynamicAdjacency(int64_t day_of_week) const {
    Tensor dow = Narrow(dow_embed, 0, day_of_week, 1);  // (1, E)
    Tensor modulated = Mul(source_embed, dow);          // broadcast (R, E)
    return Softmax(Relu(MatMul(modulated, Transpose(target_embed, 0, 1))), 1);
  }

  Tensor source_embed;
  Tensor target_embed;
  Tensor dow_embed;
  Linear embed;
  Conv1dLayer temporal;
  Linear gcn;
  Linear head;
};

void DmstgcnForecaster::BuildNet(const CrimeDataset& data,
                                 int64_t train_end) {
  net_ = std::make_shared<Net>(num_regions_, num_categories_, config_.hidden,
                               config_.node_embed, rng_);
}

Tensor DmstgcnForecaster::ForwardCore(const Tensor& z, bool training) {
  const int64_t dow = current_target_day_ >= 0 ? current_target_day_ % 7 : 0;
  Tensor adj = net_->DynamicAdjacency(dow);
  Tensor x = net_->embed.Forward(z);
  Tensor seq = Permute(x, {0, 2, 1});
  x = Add(Permute(Tanh(net_->temporal.Forward(seq)), {0, 2, 1}), x);
  x = Add(LeakyRelu(net_->gcn.Forward(GraphMix(adj, x)), 0.1f), x);
  return net_->head.Forward(Mean(x, {1}));
}

Module* DcrnnForecaster::RootModule() { return net_.get(); }
Module* StgcnForecaster::RootModule() { return net_.get(); }
Module* GwnForecaster::RootModule() { return net_.get(); }
Module* AgcrnForecaster::RootModule() { return net_.get(); }
Module* MtgnnForecaster::RootModule() { return net_.get(); }
Module* DmstgcnForecaster::RootModule() { return net_.get(); }

}  // namespace sthsl
