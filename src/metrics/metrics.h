#ifndef STHSL_METRICS_METRICS_H_
#define STHSL_METRICS_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sthsl {

/// One evaluation figure: MAE and MAPE over the evaluated entries.
///
/// Following the released evaluation protocol of the paper (and of ST-SHN,
/// its companion baseline), both metrics are computed over entries whose
/// ground-truth count is positive: sparse crime tensors are dominated by
/// zeros, and unmasked means would mostly measure the zero class.
struct EvalResult {
  double mae = 0.0;
  double mape = 0.0;
  /// Root-mean-squared error over the same masked entries (extension
  /// beyond the paper's two metrics; penalizes large misses).
  double rmse = 0.0;
  int64_t evaluated_entries = 0;
};

/// Accumulates prediction errors day by day across the test span and reports
/// MAE/MAPE per category, per region subset, or overall.
class CrimeMetrics {
 public:
  CrimeMetrics(int64_t num_regions, int64_t num_categories);

  /// Adds one evaluated day. `pred` and `truth` are (R, C) matrices.
  void AddDay(const Tensor& pred, const Tensor& truth);

  /// Metrics for one category over all regions.
  EvalResult Category(int64_t c) const;

  /// Metrics for one category restricted to `regions`.
  EvalResult CategoryForRegions(int64_t c,
                                const std::vector<int64_t>& regions) const;

  /// Metrics over all categories and regions.
  EvalResult Overall() const;

  /// Per-region MAPE for one category (used by the Fig. 4 error maps);
  /// regions with no positive-truth entries report -1.
  std::vector<double> RegionMape(int64_t c) const;

  /// Hot-spot hit rate@k: fraction of evaluated days on which at least one
  /// of the k regions with the highest predicted total actually had one of
  /// the k highest true totals (a deployment-oriented extension: does the
  /// model point patrols at the right places?). Requires that AddDay was
  /// called with `track_hotspots` left enabled.
  double HitRateAtK(int64_t k) const;

  int64_t days_added() const { return days_added_; }

 private:
  struct Cell {
    double abs_err_sum = 0.0;
    double ape_sum = 0.0;
    double sq_err_sum = 0.0;
    int64_t positive_entries = 0;
  };

  struct DayRanking {
    std::vector<int64_t> predicted_order;  // regions by predicted total desc
    std::vector<int64_t> actual_order;     // regions by true total desc
  };

  EvalResult Aggregate(const std::vector<const Cell*>& cells) const;

  int64_t num_regions_;
  int64_t num_categories_;
  int64_t days_added_ = 0;
  std::vector<Cell> cells_;  // (R * C)
  std::vector<DayRanking> day_rankings_;
};

}  // namespace sthsl

#endif  // STHSL_METRICS_METRICS_H_
