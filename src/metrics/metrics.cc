#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace sthsl {

CrimeMetrics::CrimeMetrics(int64_t num_regions, int64_t num_categories)
    : num_regions_(num_regions), num_categories_(num_categories) {
  STHSL_CHECK_GT(num_regions, 0);
  STHSL_CHECK_GT(num_categories, 0);
  cells_.resize(static_cast<size_t>(num_regions * num_categories));
}

void CrimeMetrics::AddDay(const Tensor& pred, const Tensor& truth) {
  STHSL_CHECK_EQ(pred.Dim(), 2);
  STHSL_CHECK_EQ(pred.Size(0), num_regions_);
  STHSL_CHECK_EQ(pred.Size(1), num_categories_);
  STHSL_CHECK(truth.Shape() == pred.Shape()) << "pred/truth shape mismatch";
  const auto& pv = pred.Data();
  const auto& tv = truth.Data();
  std::vector<double> predicted_totals(static_cast<size_t>(num_regions_),
                                       0.0);
  std::vector<double> actual_totals(static_cast<size_t>(num_regions_), 0.0);
  for (int64_t r = 0; r < num_regions_; ++r) {
    for (int64_t c = 0; c < num_categories_; ++c) {
      const size_t i = static_cast<size_t>(r * num_categories_ + c);
      predicted_totals[static_cast<size_t>(r)] += pv[i];
      actual_totals[static_cast<size_t>(r)] += tv[i];
      const float actual = tv[i];
      if (actual <= 0.0f) continue;
      const double abs_err = std::fabs(static_cast<double>(pv[i]) - actual);
      auto& cell = cells_[i];
      cell.abs_err_sum += abs_err;
      cell.ape_sum += abs_err / actual;
      cell.sq_err_sum += abs_err * abs_err;
      ++cell.positive_entries;
    }
  }

  DayRanking ranking;
  ranking.predicted_order.resize(static_cast<size_t>(num_regions_));
  ranking.actual_order.resize(static_cast<size_t>(num_regions_));
  std::iota(ranking.predicted_order.begin(), ranking.predicted_order.end(),
            0);
  std::iota(ranking.actual_order.begin(), ranking.actual_order.end(), 0);
  std::sort(ranking.predicted_order.begin(), ranking.predicted_order.end(),
            [&](int64_t a, int64_t b) {
              return predicted_totals[static_cast<size_t>(a)] >
                     predicted_totals[static_cast<size_t>(b)];
            });
  std::sort(ranking.actual_order.begin(), ranking.actual_order.end(),
            [&](int64_t a, int64_t b) {
              return actual_totals[static_cast<size_t>(a)] >
                     actual_totals[static_cast<size_t>(b)];
            });
  day_rankings_.push_back(std::move(ranking));
  ++days_added_;
}

double CrimeMetrics::HitRateAtK(int64_t k) const {
  STHSL_CHECK(k > 0 && k <= num_regions_);
  if (day_rankings_.empty()) return 0.0;
  int64_t hits = 0;
  for (const auto& ranking : day_rankings_) {
    std::vector<bool> actual_top(static_cast<size_t>(num_regions_), false);
    for (int64_t i = 0; i < k; ++i) {
      actual_top[static_cast<size_t>(
          ranking.actual_order[static_cast<size_t>(i)])] = true;
    }
    bool hit = false;
    for (int64_t i = 0; i < k && !hit; ++i) {
      hit = actual_top[static_cast<size_t>(
          ranking.predicted_order[static_cast<size_t>(i)])];
    }
    hits += hit;
  }
  return static_cast<double>(hits) /
         static_cast<double>(day_rankings_.size());
}

EvalResult CrimeMetrics::Aggregate(
    const std::vector<const Cell*>& cells) const {
  EvalResult result;
  double abs_sum = 0.0;
  double ape_sum = 0.0;
  double sq_sum = 0.0;
  int64_t entries = 0;
  for (const Cell* cell : cells) {
    abs_sum += cell->abs_err_sum;
    ape_sum += cell->ape_sum;
    sq_sum += cell->sq_err_sum;
    entries += cell->positive_entries;
  }
  result.evaluated_entries = entries;
  if (entries > 0) {
    result.mae = abs_sum / static_cast<double>(entries);
    result.mape = ape_sum / static_cast<double>(entries);
    result.rmse = std::sqrt(sq_sum / static_cast<double>(entries));
  }
  return result;
}

EvalResult CrimeMetrics::Category(int64_t c) const {
  STHSL_CHECK(c >= 0 && c < num_categories_);
  std::vector<const Cell*> cells;
  cells.reserve(static_cast<size_t>(num_regions_));
  for (int64_t r = 0; r < num_regions_; ++r) {
    cells.push_back(&cells_[static_cast<size_t>(r * num_categories_ + c)]);
  }
  return Aggregate(cells);
}

EvalResult CrimeMetrics::CategoryForRegions(
    int64_t c, const std::vector<int64_t>& regions) const {
  STHSL_CHECK(c >= 0 && c < num_categories_);
  std::vector<const Cell*> cells;
  cells.reserve(regions.size());
  for (int64_t r : regions) {
    STHSL_CHECK(r >= 0 && r < num_regions_);
    cells.push_back(&cells_[static_cast<size_t>(r * num_categories_ + c)]);
  }
  return Aggregate(cells);
}

EvalResult CrimeMetrics::Overall() const {
  std::vector<const Cell*> cells;
  cells.reserve(cells_.size());
  for (const auto& cell : cells_) cells.push_back(&cell);
  return Aggregate(cells);
}

std::vector<double> CrimeMetrics::RegionMape(int64_t c) const {
  STHSL_CHECK(c >= 0 && c < num_categories_);
  std::vector<double> out(static_cast<size_t>(num_regions_), -1.0);
  for (int64_t r = 0; r < num_regions_; ++r) {
    const auto& cell = cells_[static_cast<size_t>(r * num_categories_ + c)];
    if (cell.positive_entries > 0) {
      out[static_cast<size_t>(r)] =
          cell.ape_sum / static_cast<double>(cell.positive_entries);
    }
  }
  return out;
}

}  // namespace sthsl
