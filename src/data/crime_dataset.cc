#include "data/crime_dataset.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/csv.h"

namespace sthsl {

CrimeDataset::CrimeDataset(std::string city_name, int64_t rows, int64_t cols,
                           std::vector<std::string> category_names,
                           Tensor counts)
    : city_name_(std::move(city_name)),
      rows_(rows),
      cols_(cols),
      category_names_(std::move(category_names)),
      counts_(std::move(counts)) {
  STHSL_CHECK(counts_.Defined());
  STHSL_CHECK_EQ(counts_.Dim(), 3) << "counts must be (R, T, C)";
  STHSL_CHECK_EQ(counts_.Size(0), rows_ * cols_) << "region count mismatch";
  STHSL_CHECK_EQ(counts_.Size(2),
                 static_cast<int64_t>(category_names_.size()))
      << "category count mismatch";
  days_ = counts_.Size(1);
  cats_ = counts_.Size(2);
  const auto& data = counts_.Data();
  for (float v : data) {
    if (v != 0.0f) ++nnz_;
  }
  if (!data.empty() && Density() <= SparseStorageThreshold()) {
    sparse_mode_ = true;
    sparse_counts_ = sparse::SparseTensor::FromDense(
        data.data(), counts_.Shape());
    counts_ = Tensor();  // release the dense buffer; counts() rebuilds it
  }
}

const Tensor& CrimeDataset::counts() const {
  if (sparse_mode_ && !counts_.Defined()) {
    counts_ = Tensor::FromVector(sparse_counts_.shape(),
                                 sparse_counts_.ToDense());
  }
  return counts_;
}

double CrimeDataset::Density() const {
  const int64_t numel = num_regions() * days_ * cats_;
  if (numel == 0) return 0.0;
  return static_cast<double>(nnz_) / static_cast<double>(numel);
}

double CrimeDataset::SparseStorageThreshold() {
  // Re-read on every call (it only runs once per dataset construction), so
  // tests can flip storage modes within one process.
  const char* env = std::getenv("STHSL_DATA_SPARSE_THRESHOLD");
  if (env == nullptr || env[0] == '\0') return 0.25;
  return std::min(1.0, std::max(0.0, std::atof(env)));
}

void CrimeDataset::ForEachNonzero(
    const std::function<void(int64_t, int64_t, int64_t, float)>& fn) const {
  if (sparse_mode_) {
    const auto& flat = sparse_counts_.FlatIndices();
    const auto& vals = sparse_counts_.Values();
    for (size_t e = 0; e < flat.size(); ++e) {
      const int64_t f = flat[e];
      const int64_t r = f / (days_ * cats_);
      const int64_t rem = f % (days_ * cats_);
      fn(r, rem / cats_, rem % cats_, vals[e]);
    }
    return;
  }
  const auto& data = counts_.Data();
  const int64_t regions = num_regions();
  for (int64_t r = 0; r < regions; ++r) {
    for (int64_t t = 0; t < days_; ++t) {
      for (int64_t c = 0; c < cats_; ++c) {
        const float v = data[static_cast<size_t>((r * days_ + t) * cats_ + c)];
        if (v != 0.0f) fn(r, t, c, v);
      }
    }
  }
}

float CrimeDataset::Count(int64_t r, int64_t t, int64_t c) const {
  STHSL_CHECK(r >= 0 && r < num_regions() && t >= 0 && t < days_ && c >= 0 &&
              c < cats_);
  if (sparse_mode_) {
    const auto& flat = sparse_counts_.FlatIndices();
    const int64_t f = (r * days_ + t) * cats_ + c;
    auto it = std::lower_bound(flat.begin(), flat.end(), f);
    if (it == flat.end() || *it != f) return 0.0f;
    return sparse_counts_.Values()[static_cast<size_t>(it - flat.begin())];
  }
  return counts_.At({r, t, c});
}

double CrimeDataset::CategoryTotal(int64_t c) const {
  STHSL_CHECK(c >= 0 && c < cats_);
  // Nonzero cells arrive in ascending (r, t, c) order — the same order the
  // dense loop visits them — and skipping exact zeros leaves a double
  // accumulation unchanged, so both storage modes produce the same total.
  double total = 0.0;
  ForEachNonzero([&](int64_t, int64_t, int64_t cc, float v) {
    if (cc == c) total += v;
  });
  return total;
}

double CrimeDataset::DensityDegree(int64_t r) const {
  STHSL_CHECK(r >= 0 && r < num_regions());
  std::vector<char> active(static_cast<size_t>(days_), 0);
  ForEachNonzero([&](int64_t rr, int64_t t, int64_t, float v) {
    if (rr == r && v > 0.0f) active[static_cast<size_t>(t)] = 1;
  });
  int64_t active_days = 0;
  for (char a : active) active_days += a;
  return static_cast<double>(active_days) / static_cast<double>(days_);
}

double CrimeDataset::DensityDegree(int64_t r, int64_t c) const {
  STHSL_CHECK(r >= 0 && r < num_regions());
  STHSL_CHECK(c >= 0 && c < cats_);
  int64_t active_days = 0;
  ForEachNonzero([&](int64_t rr, int64_t, int64_t cc, float v) {
    if (rr == r && cc == c && v > 0.0f) ++active_days;
  });
  return static_cast<double>(active_days) / static_cast<double>(days_);
}

void CrimeDataset::ComputeMoments(float* mean, float* stddev) const {
  const int64_t numel = num_regions() * days_ * cats_;
  STHSL_CHECK_GT(numel, 0);
  if (!sparse_mode_ || counts_.Defined()) {
    const auto& data = counts().Data();
    double sum = 0.0;
    for (float v : data) sum += v;
    const double mu = sum / static_cast<double>(numel);
    double var = 0.0;
    for (float v : data) var += (v - mu) * (v - mu);
    var /= static_cast<double>(numel);
    *mean = static_cast<float>(mu);
    *stddev = static_cast<float>(std::sqrt(std::max(var, 1e-12)));
    return;
  }
  // Sparse walk, bit-exact against the dense loop above: skipping zero
  // addends leaves the sum unchanged, and the variance pass replays every
  // cell in flat order — each zero cell contributes (0 - mu)² == mu·mu, one
  // sequential add per cell, exactly like the dense loop.
  const auto& flat = sparse_counts_.FlatIndices();
  const auto& vals = sparse_counts_.Values();
  double sum = 0.0;
  for (float v : vals) sum += v;
  const double mu = sum / static_cast<double>(numel);
  const double zero_sq = mu * mu;
  double var = 0.0;
  int64_t next = 0;
  for (size_t e = 0; e < flat.size(); ++e) {
    for (int64_t i = next; i < flat[e]; ++i) var += zero_sq;
    var += (vals[e] - mu) * (vals[e] - mu);
    next = flat[e] + 1;
  }
  for (int64_t i = next; i < numel; ++i) var += zero_sq;
  var /= static_cast<double>(numel);
  *mean = static_cast<float>(mu);
  *stddev = static_cast<float>(std::sqrt(std::max(var, 1e-12)));
}

CrimeDataset CrimeDataset::SliceDays(int64_t start, int64_t length) const {
  STHSL_CHECK(start >= 0 && length >= 0 && start + length <= days_);
  if (sparse_mode_) {
    // Scatter the surviving entries into a dense slice; the constructor
    // re-engages sparse storage if the slice is below threshold.
    std::vector<float> out(
        static_cast<size_t>(num_regions() * length * cats_), 0.0f);
    ForEachNonzero([&](int64_t r, int64_t t, int64_t c, float v) {
      if (t < start || t >= start + length) return;
      out[static_cast<size_t>((r * length + (t - start)) * cats_ + c)] = v;
    });
    return CrimeDataset(
        city_name_, rows_, cols_, category_names_,
        Tensor::FromVector({num_regions(), length, cats_}, std::move(out)));
  }
  NoGradGuard no_grad;
  Tensor sliced = Narrow(counts_, 1, start, length);
  return CrimeDataset(city_name_, rows_, cols_, category_names_,
                      sliced.Detach());
}

Tensor CrimeDataset::WindowInput(int64_t t_end, int64_t window) const {
  STHSL_CHECK(t_end - window >= 0 && t_end <= days_)
      << "window [" << t_end - window << ", " << t_end << ") out of range";
  if (sparse_mode_) {
    const int64_t start = t_end - window;
    std::vector<float> out(
        static_cast<size_t>(num_regions() * window * cats_), 0.0f);
    ForEachNonzero([&](int64_t r, int64_t t, int64_t c, float v) {
      if (t < start || t >= t_end) return;
      out[static_cast<size_t>((r * window + (t - start)) * cats_ + c)] = v;
    });
    return Tensor::FromVector({num_regions(), window, cats_}, std::move(out));
  }
  NoGradGuard no_grad;
  return Narrow(counts_, 1, t_end - window, window).Detach();
}

int64_t CrimeDataset::WindowNnz(int64_t t_end, int64_t window) const {
  STHSL_CHECK(t_end - window >= 0 && t_end <= days_)
      << "window [" << t_end - window << ", " << t_end << ") out of range";
  const int64_t start = t_end - window;
  int64_t nnz = 0;
  ForEachNonzero([&](int64_t, int64_t t, int64_t, float) {
    if (t >= start && t < t_end) ++nnz;
  });
  return nnz;
}

double CrimeDataset::WindowDensity(int64_t t_end, int64_t window) const {
  const int64_t cells = num_regions() * window * cats_;
  if (cells == 0) return 0.0;
  return static_cast<double>(WindowNnz(t_end, window)) /
         static_cast<double>(cells);
}

Tensor CrimeDataset::TargetDay(int64_t t) const {
  STHSL_CHECK(t >= 0 && t < days_);
  if (sparse_mode_) {
    std::vector<float> out(static_cast<size_t>(num_regions() * cats_), 0.0f);
    ForEachNonzero([&](int64_t r, int64_t tt, int64_t c, float v) {
      if (tt == t) out[static_cast<size_t>(r * cats_ + c)] = v;
    });
    return Tensor::FromVector({num_regions(), cats_}, std::move(out));
  }
  NoGradGuard no_grad;
  Tensor day = Narrow(counts_, 1, t, 1);
  return Reshape(day, {num_regions(), num_categories()}).Detach();
}

Status CrimeDataset::SaveCsv(const std::string& path) const {
  CsvTable table;
  table.header = {"city", "rows", "cols", "region", "day", "category",
                  "category_name", "count"};
  const int64_t regions = num_regions();
  // A sentinel row records the full extent so zero-tail days round-trip.
  // It is written FIRST so that a genuine count at the same cell (written
  // below) overwrites it on load.
  table.rows.push_back({city_name_, std::to_string(rows_),
                        std::to_string(cols_), std::to_string(regions - 1),
                        std::to_string(days_ - 1), std::to_string(cats_ - 1),
                        category_names_[static_cast<size_t>(cats_ - 1)], "0"});
  // Both storage modes enumerate nonzeros in (r, t, c) order, so the file
  // bytes are independent of the storage mode.
  ForEachNonzero([&](int64_t r, int64_t t, int64_t c, float v) {
    table.rows.push_back({city_name_, std::to_string(rows_),
                          std::to_string(cols_), std::to_string(r),
                          std::to_string(t), std::to_string(c),
                          category_names_[static_cast<size_t>(c)],
                          std::to_string(static_cast<int64_t>(v))});
  });
  return WriteCsv(path, table);
}

Result<CrimeDataset> CrimeDataset::LoadCsv(const std::string& path) {
  auto table_or = ReadCsv(path);
  if (!table_or.ok()) return table_or.status();
  const CsvTable& table = table_or.value();
  if (table.header.size() != 8) {
    return Status::InvalidArgument("unexpected crime csv header in " + path);
  }
  if (table.rows.empty()) {
    return Status::InvalidArgument("empty crime csv " + path);
  }

  std::string city;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t max_day = 0;
  int64_t max_cat = 0;
  for (const auto& row : table.rows) {
    if (row.size() != 8) {
      return Status::InvalidArgument("malformed crime csv row in " + path);
    }
    city = row[0];
    rows = std::atoll(row[1].c_str());
    cols = std::atoll(row[2].c_str());
    max_day = std::max<int64_t>(max_day, std::atoll(row[4].c_str()));
    max_cat = std::max<int64_t>(max_cat, std::atoll(row[5].c_str()));
  }
  const int64_t regions = rows * cols;
  const int64_t days = max_day + 1;
  const int64_t cats = max_cat + 1;
  if (regions <= 0 || days <= 0 || cats <= 0) {
    return Status::InvalidArgument("invalid dimensions in crime csv " + path);
  }

  std::vector<std::string> category_names(static_cast<size_t>(cats));
  std::vector<float> data(static_cast<size_t>(regions * days * cats), 0.0f);
  for (const auto& row : table.rows) {
    const int64_t r = std::atoll(row[3].c_str());
    const int64_t t = std::atoll(row[4].c_str());
    const int64_t c = std::atoll(row[5].c_str());
    if (r < 0 || r >= regions || t < 0 || t >= days || c < 0 || c >= cats) {
      return Status::OutOfRange("index out of range in crime csv " + path);
    }
    category_names[static_cast<size_t>(c)] = row[6];
    data[static_cast<size_t>((r * days + t) * cats + c)] =
        static_cast<float>(std::atof(row[7].c_str()));
  }
  for (auto& name : category_names) {
    if (name.empty()) name = "unknown";
  }
  Tensor counts = Tensor::FromVector({regions, days, cats}, std::move(data));
  return CrimeDataset(city, rows, cols, std::move(category_names),
                      std::move(counts));
}

DatasetSplit SplitDataset(const CrimeDataset& data, int64_t validation_days) {
  const int64_t days = data.num_days();
  const int64_t test_days = days / 8;
  const int64_t train_span = days - test_days;
  STHSL_CHECK_GT(train_span, validation_days)
      << "dataset too short for the requested validation window";
  DatasetSplit split;
  split.train = data.SliceDays(0, train_span - validation_days);
  split.validation =
      data.SliceDays(train_span - validation_days, validation_days);
  split.test = data.SliceDays(train_span, test_days);
  split.train_days = train_span - validation_days;
  split.validation_days = validation_days;
  split.test_days = test_days;
  return split;
}

}  // namespace sthsl
