#include "data/crime_dataset.h"

#include <cmath>
#include <cstdlib>

#include "tensor/ops.h"
#include "util/check.h"
#include "util/csv.h"

namespace sthsl {

CrimeDataset::CrimeDataset(std::string city_name, int64_t rows, int64_t cols,
                           std::vector<std::string> category_names,
                           Tensor counts)
    : city_name_(std::move(city_name)),
      rows_(rows),
      cols_(cols),
      category_names_(std::move(category_names)),
      counts_(std::move(counts)) {
  STHSL_CHECK(counts_.Defined());
  STHSL_CHECK_EQ(counts_.Dim(), 3) << "counts must be (R, T, C)";
  STHSL_CHECK_EQ(counts_.Size(0), rows_ * cols_) << "region count mismatch";
  STHSL_CHECK_EQ(counts_.Size(2),
                 static_cast<int64_t>(category_names_.size()))
      << "category count mismatch";
}

int64_t CrimeDataset::num_days() const { return counts_.Size(1); }
int64_t CrimeDataset::num_categories() const { return counts_.Size(2); }

float CrimeDataset::Count(int64_t r, int64_t t, int64_t c) const {
  return counts_.At({r, t, c});
}

double CrimeDataset::CategoryTotal(int64_t c) const {
  const int64_t regions = num_regions();
  const int64_t days = num_days();
  const int64_t cats = num_categories();
  STHSL_CHECK(c >= 0 && c < cats);
  const auto& data = counts_.Data();
  double total = 0.0;
  for (int64_t r = 0; r < regions; ++r) {
    for (int64_t t = 0; t < days; ++t) {
      total += data[static_cast<size_t>((r * days + t) * cats + c)];
    }
  }
  return total;
}

double CrimeDataset::DensityDegree(int64_t r) const {
  const int64_t days = num_days();
  const int64_t cats = num_categories();
  STHSL_CHECK(r >= 0 && r < num_regions());
  const auto& data = counts_.Data();
  int64_t active_days = 0;
  for (int64_t t = 0; t < days; ++t) {
    for (int64_t c = 0; c < cats; ++c) {
      if (data[static_cast<size_t>((r * days + t) * cats + c)] > 0.0f) {
        ++active_days;
        break;
      }
    }
  }
  return static_cast<double>(active_days) / static_cast<double>(days);
}

double CrimeDataset::DensityDegree(int64_t r, int64_t c) const {
  const int64_t days = num_days();
  const int64_t cats = num_categories();
  STHSL_CHECK(r >= 0 && r < num_regions());
  STHSL_CHECK(c >= 0 && c < cats);
  const auto& data = counts_.Data();
  int64_t active_days = 0;
  for (int64_t t = 0; t < days; ++t) {
    if (data[static_cast<size_t>((r * days + t) * cats + c)] > 0.0f) {
      ++active_days;
    }
  }
  return static_cast<double>(active_days) / static_cast<double>(days);
}

void CrimeDataset::ComputeMoments(float* mean, float* stddev) const {
  const auto& data = counts_.Data();
  STHSL_CHECK(!data.empty());
  double sum = 0.0;
  for (float v : data) sum += v;
  const double mu = sum / static_cast<double>(data.size());
  double var = 0.0;
  for (float v : data) var += (v - mu) * (v - mu);
  var /= static_cast<double>(data.size());
  *mean = static_cast<float>(mu);
  *stddev = static_cast<float>(std::sqrt(std::max(var, 1e-12)));
}

CrimeDataset CrimeDataset::SliceDays(int64_t start, int64_t length) const {
  NoGradGuard no_grad;
  Tensor sliced = Narrow(counts_, 1, start, length);
  return CrimeDataset(city_name_, rows_, cols_, category_names_,
                      sliced.Detach());
}

Tensor CrimeDataset::WindowInput(int64_t t_end, int64_t window) const {
  STHSL_CHECK(t_end - window >= 0 && t_end <= num_days())
      << "window [" << t_end - window << ", " << t_end << ") out of range";
  NoGradGuard no_grad;
  return Narrow(counts_, 1, t_end - window, window).Detach();
}

Tensor CrimeDataset::TargetDay(int64_t t) const {
  STHSL_CHECK(t >= 0 && t < num_days());
  NoGradGuard no_grad;
  Tensor day = Narrow(counts_, 1, t, 1);
  return Reshape(day, {num_regions(), num_categories()}).Detach();
}

Status CrimeDataset::SaveCsv(const std::string& path) const {
  CsvTable table;
  table.header = {"city", "rows", "cols", "region", "day", "category",
                  "category_name", "count"};
  const int64_t regions = num_regions();
  const int64_t days = num_days();
  const int64_t cats = num_categories();
  const auto& data = counts_.Data();
  // A sentinel row records the full extent so zero-tail days round-trip.
  // It is written FIRST so that a genuine count at the same cell (written
  // below) overwrites it on load.
  table.rows.push_back({city_name_, std::to_string(rows_),
                        std::to_string(cols_), std::to_string(regions - 1),
                        std::to_string(days - 1), std::to_string(cats - 1),
                        category_names_[static_cast<size_t>(cats - 1)], "0"});
  for (int64_t r = 0; r < regions; ++r) {
    for (int64_t t = 0; t < days; ++t) {
      for (int64_t c = 0; c < cats; ++c) {
        const float v = data[static_cast<size_t>((r * days + t) * cats + c)];
        if (v == 0.0f) continue;  // sparse storage
        table.rows.push_back({city_name_, std::to_string(rows_),
                              std::to_string(cols_), std::to_string(r),
                              std::to_string(t), std::to_string(c),
                              category_names_[static_cast<size_t>(c)],
                              std::to_string(static_cast<int64_t>(v))});
      }
    }
  }
  return WriteCsv(path, table);
}

Result<CrimeDataset> CrimeDataset::LoadCsv(const std::string& path) {
  auto table_or = ReadCsv(path);
  if (!table_or.ok()) return table_or.status();
  const CsvTable& table = table_or.value();
  if (table.header.size() != 8) {
    return Status::InvalidArgument("unexpected crime csv header in " + path);
  }
  if (table.rows.empty()) {
    return Status::InvalidArgument("empty crime csv " + path);
  }

  std::string city;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t max_day = 0;
  int64_t max_cat = 0;
  for (const auto& row : table.rows) {
    if (row.size() != 8) {
      return Status::InvalidArgument("malformed crime csv row in " + path);
    }
    city = row[0];
    rows = std::atoll(row[1].c_str());
    cols = std::atoll(row[2].c_str());
    max_day = std::max<int64_t>(max_day, std::atoll(row[4].c_str()));
    max_cat = std::max<int64_t>(max_cat, std::atoll(row[5].c_str()));
  }
  const int64_t regions = rows * cols;
  const int64_t days = max_day + 1;
  const int64_t cats = max_cat + 1;
  if (regions <= 0 || days <= 0 || cats <= 0) {
    return Status::InvalidArgument("invalid dimensions in crime csv " + path);
  }

  std::vector<std::string> category_names(static_cast<size_t>(cats));
  std::vector<float> data(static_cast<size_t>(regions * days * cats), 0.0f);
  for (const auto& row : table.rows) {
    const int64_t r = std::atoll(row[3].c_str());
    const int64_t t = std::atoll(row[4].c_str());
    const int64_t c = std::atoll(row[5].c_str());
    if (r < 0 || r >= regions || t < 0 || t >= days || c < 0 || c >= cats) {
      return Status::OutOfRange("index out of range in crime csv " + path);
    }
    category_names[static_cast<size_t>(c)] = row[6];
    data[static_cast<size_t>((r * days + t) * cats + c)] =
        static_cast<float>(std::atof(row[7].c_str()));
  }
  for (auto& name : category_names) {
    if (name.empty()) name = "unknown";
  }
  Tensor counts = Tensor::FromVector({regions, days, cats}, std::move(data));
  return CrimeDataset(city, rows, cols, std::move(category_names),
                      std::move(counts));
}

DatasetSplit SplitDataset(const CrimeDataset& data, int64_t validation_days) {
  const int64_t days = data.num_days();
  const int64_t test_days = days / 8;
  const int64_t train_span = days - test_days;
  STHSL_CHECK_GT(train_span, validation_days)
      << "dataset too short for the requested validation window";
  DatasetSplit split;
  split.train = data.SliceDays(0, train_span - validation_days);
  split.validation =
      data.SliceDays(train_span - validation_days, validation_days);
  split.test = data.SliceDays(train_span, test_days);
  split.train_days = train_span - validation_days;
  split.validation_days = validation_days;
  split.test_days = test_days;
  return split;
}

}  // namespace sthsl
