#ifndef STHSL_DATA_INCIDENTS_H_
#define STHSL_DATA_INCIDENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/crime_dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace sthsl {

/// One raw crime report, as collected by urban sensing platforms and
/// described in the paper's preliminaries:
/// <crime type, timestamp, longitude, latitude>.
struct IncidentRecord {
  std::string category;
  /// Seconds since an arbitrary epoch (only day boundaries matter).
  int64_t timestamp_seconds = 0;
  double longitude = 0.0;
  double latitude = 0.0;
};

/// Geographic bounding box and grid resolution of the map segmentation.
struct GridSpec {
  double min_longitude = 0.0;
  double max_longitude = 1.0;
  double min_latitude = 0.0;
  double max_latitude = 1.0;
  /// Grid cells along latitude (rows) and longitude (columns). The paper
  /// applies a 3km x 3km segmentation yielding 256 (NYC) / 168 (Chicago)
  /// regions; with a fixed bounding box that is equivalent to choosing
  /// rows x cols here.
  int64_t rows = 16;
  int64_t cols = 16;
};

/// Result of rasterization: the dataset plus ingestion statistics.
struct RasterizeResult {
  CrimeDataset dataset;
  int64_t accepted = 0;
  /// Records outside the bounding box or the day span.
  int64_t dropped_out_of_bounds = 0;
  /// Records whose category was not in the requested list.
  int64_t dropped_unknown_category = 0;
};

/// Maps raw incident records onto the (region, day, category) grid — the
/// paper's preprocessing. `categories` fixes the category order of the
/// resulting tensor; records of other categories are dropped and counted.
/// `epoch_seconds` defines day 0; `num_days` fixes the temporal extent.
Result<RasterizeResult> RasterizeIncidents(
    const std::vector<IncidentRecord>& records, const GridSpec& grid,
    const std::vector<std::string>& categories, int64_t epoch_seconds,
    int64_t num_days, const std::string& city_name);

/// Reads incident records from a CSV with header
/// `category,timestamp,longitude,latitude`.
Result<std::vector<IncidentRecord>> LoadIncidentsCsv(const std::string& path);

/// Writes incident records to CSV (inverse of LoadIncidentsCsv).
Status SaveIncidentsCsv(const std::string& path,
                        const std::vector<IncidentRecord>& records);

/// Converts a gridded dataset back into synthetic point records (one record
/// per counted case, jittered uniformly within its cell/day). This closes
/// the loop for tests and lets every example run on "raw" incident data.
std::vector<IncidentRecord> SynthesizeIncidents(const CrimeDataset& data,
                                                const GridSpec& grid,
                                                int64_t epoch_seconds,
                                                Rng& rng);

}  // namespace sthsl

#endif  // STHSL_DATA_INCIDENTS_H_
