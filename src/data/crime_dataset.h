#ifndef STHSL_DATA_CRIME_DATASET_H_
#define STHSL_DATA_CRIME_DATASET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sparse/sparse_tensor.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace sthsl {

/// A citywide crime dataset: the paper's three-way tensor X in R^{R x T x C}
/// over a grid-partitioned urban space (R = rows x cols regions), T daily
/// time slots and C crime categories.
class CrimeDataset {
 public:
  CrimeDataset() = default;
  /// `counts` must have shape (rows*cols, days, categories).
  CrimeDataset(std::string city_name, int64_t rows, int64_t cols,
               std::vector<std::string> category_names, Tensor counts);

  const std::string& city_name() const { return city_name_; }

  /// Seed of the synthetic generator that produced this dataset, recorded
  /// by GenerateCrimeData for run-ledger provenance; -1 when unknown (CSV
  /// round-trips do not persist it).
  int64_t generator_seed() const { return generator_seed_; }
  void set_generator_seed(int64_t seed) { generator_seed_ = seed; }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t num_regions() const { return rows_ * cols_; }
  int64_t num_days() const { return days_; }
  int64_t num_categories() const { return cats_; }
  const std::vector<std::string>& category_names() const {
    return category_names_;
  }

  /// The full (R, T, C) tensor (detached; no autograd). In sparse storage
  /// mode the dense tensor is materialized (and cached) on first use; the
  /// first call is not thread-safe in that mode.
  const Tensor& counts() const;

  /// True when the counts are held in COO sparse storage — engaged at
  /// construction whenever the fill fraction is at or below
  /// SparseStorageThreshold(). Every accessor below works identically (and
  /// value-exactly) in both modes; see docs/sparse.md.
  bool sparse_storage() const { return sparse_mode_; }

  /// Nonzero cells of the full (R, T, C) tensor.
  int64_t Nnz() const { return nnz_; }

  /// Fill fraction nnz / (R·T·C).
  double Density() const;

  /// Nonzero cells of the input window covering days [t_end - window,
  /// t_end) — the per-window sparsity statistic behind the paper's Fig. 1
  /// discussion (most region-day-category cells are empty).
  int64_t WindowNnz(int64_t t_end, int64_t window) const;

  /// Fill fraction of the same window: WindowNnz / (R·window·C).
  double WindowDensity(int64_t t_end, int64_t window) const;

  /// Density threshold at or below which freshly constructed datasets keep
  /// COO storage instead of the dense tensor. Reads the environment
  /// variable STHSL_DATA_SPARSE_THRESHOLD at each construction (default
  /// 0.25, clamped to [0, 1]); set it to 0 to force dense storage, to 1 to
  /// force sparse.
  static double SparseStorageThreshold();

  /// Crime count at region r, day t, category c.
  float Count(int64_t r, int64_t t, int64_t c) const;

  /// Total reported cases of category `c` (the paper's Table II statistic).
  double CategoryTotal(int64_t c) const;

  /// Density degree of region r: fraction of days with at least one crime of
  /// any category (the paper's Fig. 1 / RQ3 statistic).
  double DensityDegree(int64_t r) const;

  /// Density degree restricted to one category.
  double DensityDegree(int64_t r, int64_t c) const;

  /// Mean and standard deviation over the whole tensor (Eq. 1 Z-score).
  void ComputeMoments(float* mean, float* stddev) const;

  /// Sub-dataset covering days [start, start+length).
  CrimeDataset SliceDays(int64_t start, int64_t length) const;

  /// Input window: days [t_end - window, t_end) as an (R, window, C) tensor.
  Tensor WindowInput(int64_t t_end, int64_t window) const;

  /// Ground truth of day t as an (R, C) matrix (the paper's X_{T+1}).
  Tensor TargetDay(int64_t t) const;

  /// Persists as CSV rows (region, day, category, count); loads it back.
  Status SaveCsv(const std::string& path) const;
  static Result<CrimeDataset> LoadCsv(const std::string& path);

 private:
  /// Visits every nonzero cell in ascending (r, t, c) order — the shared
  /// iteration both storage modes expose, so derived statistics accumulate
  /// in exactly the same order either way.
  void ForEachNonzero(
      const std::function<void(int64_t r, int64_t t, int64_t c, float v)>& fn)
      const;

  std::string city_name_;
  int64_t generator_seed_ = -1;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t days_ = 0;
  int64_t cats_ = 0;
  std::vector<std::string> category_names_;
  /// Dense (R, T, C) storage; in sparse mode this is the lazily
  /// materialized cache (undefined until counts() is first called).
  mutable Tensor counts_;
  sparse::SparseTensor sparse_counts_;  // COO, defined iff sparse_mode_
  bool sparse_mode_ = false;
  int64_t nnz_ = 0;
};

/// Chronological train/validation/test split. Following the paper: the test
/// set is the final 1/8 of days (train:test = 7:1) and validation is the
/// last `validation_days` of the training span.
struct DatasetSplit {
  CrimeDataset train;       // training days excluding validation
  CrimeDataset validation;  // last `validation_days` of the training span
  CrimeDataset test;
  int64_t train_days = 0;
  int64_t validation_days = 0;
  int64_t test_days = 0;
};

DatasetSplit SplitDataset(const CrimeDataset& data,
                          int64_t validation_days = 30);

}  // namespace sthsl

#endif  // STHSL_DATA_CRIME_DATASET_H_
