#include "data/incidents.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "util/check.h"
#include "util/csv.h"

namespace sthsl {
namespace {

constexpr int64_t kSecondsPerDay = 24 * 60 * 60;

}  // namespace

Result<RasterizeResult> RasterizeIncidents(
    const std::vector<IncidentRecord>& records, const GridSpec& grid,
    const std::vector<std::string>& categories, int64_t epoch_seconds,
    int64_t num_days, const std::string& city_name) {
  if (grid.rows <= 0 || grid.cols <= 0) {
    return Status::InvalidArgument("grid must have positive extents");
  }
  if (grid.max_longitude <= grid.min_longitude ||
      grid.max_latitude <= grid.min_latitude) {
    return Status::InvalidArgument("degenerate bounding box");
  }
  if (categories.empty() || num_days <= 0) {
    return Status::InvalidArgument("need categories and a positive day span");
  }

  std::unordered_map<std::string, int64_t> category_index;
  for (size_t i = 0; i < categories.size(); ++i) {
    category_index[categories[i]] = static_cast<int64_t>(i);
  }

  const int64_t regions = grid.rows * grid.cols;
  const int64_t cats = static_cast<int64_t>(categories.size());
  std::vector<float> counts(static_cast<size_t>(regions * num_days * cats),
                            0.0f);
  const double lon_span = grid.max_longitude - grid.min_longitude;
  const double lat_span = grid.max_latitude - grid.min_latitude;

  RasterizeResult result;
  for (const auto& record : records) {
    const auto it = category_index.find(record.category);
    if (it == category_index.end()) {
      ++result.dropped_unknown_category;
      continue;
    }
    const int64_t day = (record.timestamp_seconds - epoch_seconds) /
                        kSecondsPerDay;
    if (record.timestamp_seconds < epoch_seconds || day >= num_days) {
      ++result.dropped_out_of_bounds;
      continue;
    }
    // Cell indices; the max edge is mapped into the last cell.
    const double lon_frac =
        (record.longitude - grid.min_longitude) / lon_span;
    const double lat_frac = (record.latitude - grid.min_latitude) / lat_span;
    if (lon_frac < 0.0 || lon_frac > 1.0 || lat_frac < 0.0 ||
        lat_frac > 1.0) {
      ++result.dropped_out_of_bounds;
      continue;
    }
    const int64_t col = std::min(
        static_cast<int64_t>(lon_frac * static_cast<double>(grid.cols)),
        grid.cols - 1);
    const int64_t row = std::min(
        static_cast<int64_t>(lat_frac * static_cast<double>(grid.rows)),
        grid.rows - 1);
    const int64_t region = row * grid.cols + col;
    counts[static_cast<size_t>((region * num_days + day) * cats +
                               it->second)] += 1.0f;
    ++result.accepted;
  }

  Tensor tensor =
      Tensor::FromVector({regions, num_days, cats}, std::move(counts));
  result.dataset = CrimeDataset(city_name, grid.rows, grid.cols, categories,
                                std::move(tensor));
  return result;
}

Result<std::vector<IncidentRecord>> LoadIncidentsCsv(
    const std::string& path) {
  auto table_or = ReadCsv(path);
  if (!table_or.ok()) return table_or.status();
  const CsvTable& table = table_or.value();
  if (table.header.size() != 4 || table.header[0] != "category") {
    return Status::InvalidArgument("unexpected incidents csv header in " +
                                   path);
  }
  std::vector<IncidentRecord> records;
  records.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    if (row.size() != 4) {
      return Status::InvalidArgument("malformed incidents row in " + path);
    }
    IncidentRecord record;
    record.category = row[0];
    record.timestamp_seconds = std::atoll(row[1].c_str());
    record.longitude = std::atof(row[2].c_str());
    record.latitude = std::atof(row[3].c_str());
    records.push_back(std::move(record));
  }
  return records;
}

Status SaveIncidentsCsv(const std::string& path,
                        const std::vector<IncidentRecord>& records) {
  CsvTable table;
  table.header = {"category", "timestamp", "longitude", "latitude"};
  table.rows.reserve(records.size());
  for (const auto& record : records) {
    table.rows.push_back({record.category,
                          std::to_string(record.timestamp_seconds),
                          std::to_string(record.longitude),
                          std::to_string(record.latitude)});
  }
  return WriteCsv(path, table);
}

std::vector<IncidentRecord> SynthesizeIncidents(const CrimeDataset& data,
                                                const GridSpec& grid,
                                                int64_t epoch_seconds,
                                                Rng& rng) {
  STHSL_CHECK_EQ(grid.rows, data.rows());
  STHSL_CHECK_EQ(grid.cols, data.cols());
  std::vector<IncidentRecord> records;
  const double lon_cell =
      (grid.max_longitude - grid.min_longitude) / grid.cols;
  const double lat_cell = (grid.max_latitude - grid.min_latitude) / grid.rows;
  for (int64_t r = 0; r < data.num_regions(); ++r) {
    const int64_t row = r / data.cols();
    const int64_t col = r % data.cols();
    for (int64_t t = 0; t < data.num_days(); ++t) {
      for (int64_t c = 0; c < data.num_categories(); ++c) {
        const int count = static_cast<int>(data.Count(r, t, c));
        for (int i = 0; i < count; ++i) {
          IncidentRecord record;
          record.category =
              data.category_names()[static_cast<size_t>(c)];
          record.timestamp_seconds =
              epoch_seconds + t * kSecondsPerDay +
              static_cast<int64_t>(rng.UniformInt(kSecondsPerDay));
          record.longitude = grid.min_longitude +
                             (col + rng.Uniform()) * lon_cell;
          record.latitude =
              grid.min_latitude + (row + rng.Uniform()) * lat_cell;
          records.push_back(std::move(record));
        }
      }
    }
  }
  rng.Shuffle(records);  // raw feeds are not grid-ordered
  return records;
}

}  // namespace sthsl
