#ifndef STHSL_DATA_GENERATOR_H_
#define STHSL_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/crime_dataset.h"

namespace sthsl {

/// Configuration of the synthetic urban-crime generator.
///
/// The generator is the repository's substitute for the (unavailable) real
/// NYC/Chicago incident feeds. It plants exactly the phenomena the paper's
/// model exploits:
///   * power-law region popularity  -> skewed distribution (paper Fig. 2);
///   * Poisson emission at low rates -> sparse supervision (paper Fig. 1);
///   * shared functional zones       -> global cross-region dependency that
///     is invisible to purely local spatial encoders (hyperedges should
///     rediscover the zones);
///   * weekly/annual seasonality and zone-level AR(1) bursts -> temporal
///     structure for the temporal convolutions;
///   * zone-mediated category affinities -> cross-category correlations.
struct CrimeGenConfig {
  std::string city_name = "SynthCity";
  int64_t rows = 8;
  int64_t cols = 8;
  int64_t days = 365;
  std::vector<std::string> category_names = {"Burglary", "Larceny", "Robbery",
                                             "Assault"};
  /// Target total reported cases per category over the whole span; the
  /// generator rescales base rates to hit these in expectation.
  std::vector<double> category_totals = {8000, 21000, 8400, 10100};

  /// Pareto tail index of region popularity; smaller = heavier tail.
  double popularity_alpha = 1.1;
  /// Number of latent functional zones (residential, nightlife, ...).
  int num_zones = 6;
  /// Spatial bandwidth of zone influence, in grid cells.
  double zone_bandwidth = 2.0;
  /// Gamma shape of zone-category affinity; smaller = more specialized zones.
  double affinity_shape = 0.7;
  /// Relative amplitude of the weekly cycle.
  double weekly_amplitude = 0.35;
  /// Relative amplitude of the annual cycle.
  double annual_amplitude = 0.25;
  /// Linear trend over the span (fractional change first->last day).
  double trend = 0.3;
  /// AR(1) coefficient of the per-zone daily log-intensity fluctuation.
  /// Together with `zone_noise` this plants slow "crime wave" regimes that
  /// window-aware models can track but marginal statistics cannot.
  double zone_ar1 = 0.93;
  /// Innovation stddev of the zone fluctuation (stationary log-stddev is
  /// zone_noise / sqrt(1 - zone_ar1^2), about 0.8 at the defaults).
  double zone_noise = 0.3;

  uint64_t seed = 42;
};

/// NYC-Crimes preset: 16x16 = 256 regions, 730 days (Jan 2014 - Dec 2015),
/// categories and case totals from the paper's Table II.
CrimeGenConfig NycPreset();

/// Chicago-Crimes preset: 12x14 = 168 regions, 730 days (Jan 2016 - Dec
/// 2017), categories and case totals from the paper's Table II.
CrimeGenConfig ChicagoPreset();

/// Scaled-down variants for fast tests/benches: same structure, smaller grid
/// and span, totals scaled to preserve per-region-day density.
CrimeGenConfig NycSmallPreset();
CrimeGenConfig ChicagoSmallPreset();

/// Generates a synthetic dataset from `config` (deterministic in the seed).
CrimeDataset GenerateCrimeData(const CrimeGenConfig& config);

}  // namespace sthsl

#endif  // STHSL_DATA_GENERATOR_H_
