#ifndef STHSL_DATA_STATS_H_
#define STHSL_DATA_STATS_H_

#include <cstdint>
#include <vector>

#include "data/crime_dataset.h"

namespace sthsl {

/// Histogram of region density degrees (the paper's Fig. 1): bucket i counts
/// regions with density in (i*bin_width, (i+1)*bin_width], except bucket 0
/// which also includes exactly-zero regions.
std::vector<int64_t> DensityHistogram(const CrimeDataset& data,
                                      double bin_width = 0.25);

/// Per-region total cases of category `c` over days [start, start+length),
/// sorted descending (the paper's Fig. 2 skew plot).
std::vector<double> SortedRegionCounts(const CrimeDataset& data, int64_t c,
                                       int64_t start, int64_t length);

/// Region ids whose density degree lies in (lo, hi] (the paper's RQ3
/// sparsity groups, e.g. (0, 0.25] and (0.25, 0.5]).
std::vector<int64_t> RegionsInDensityRange(const CrimeDataset& data,
                                           double lo, double hi);

/// Gini coefficient of the per-region totals of category `c` — a scalar
/// measure of how skewed the spatial distribution is (1 = all crime in one
/// region). Used by tests to assert the generator plants the Fig. 2 skew.
double SpatialGini(const CrimeDataset& data, int64_t c);

/// Per-window sparsity summary: nnz / fill-fraction statistics over every
/// length-`window` input window the dataset can serve (the Fig. 1 sparsity
/// picture at the granularity the model actually consumes; drives the
/// dense-vs-sparse dispatch guidance in docs/sparse.md).
struct WindowDensitySummary {
  int64_t window = 0;
  int64_t num_windows = 0;
  int64_t min_nnz = 0;
  int64_t max_nnz = 0;
  double mean_nnz = 0.0;
  double min_density = 0.0;
  double max_density = 0.0;
  double mean_density = 0.0;
};

WindowDensitySummary SummarizeWindowDensity(const CrimeDataset& data,
                                            int64_t window);

}  // namespace sthsl

#endif  // STHSL_DATA_STATS_H_
