#include "data/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sthsl {

std::vector<int64_t> DensityHistogram(const CrimeDataset& data,
                                      double bin_width) {
  STHSL_CHECK_GT(bin_width, 0.0);
  const int num_bins =
      static_cast<int>(std::ceil(1.0 / bin_width - 1e-9));
  std::vector<int64_t> histogram(static_cast<size_t>(num_bins), 0);
  for (int64_t r = 0; r < data.num_regions(); ++r) {
    const double density = data.DensityDegree(r);
    int bin = density <= 0.0
                  ? 0
                  : static_cast<int>(std::ceil(density / bin_width)) - 1;
    bin = std::min(bin, num_bins - 1);
    ++histogram[static_cast<size_t>(bin)];
  }
  return histogram;
}

std::vector<double> SortedRegionCounts(const CrimeDataset& data, int64_t c,
                                       int64_t start, int64_t length) {
  STHSL_CHECK(start >= 0 && start + length <= data.num_days());
  std::vector<double> totals(static_cast<size_t>(data.num_regions()), 0.0);
  for (int64_t r = 0; r < data.num_regions(); ++r) {
    for (int64_t t = start; t < start + length; ++t) {
      totals[static_cast<size_t>(r)] += data.Count(r, t, c);
    }
  }
  std::sort(totals.begin(), totals.end(), std::greater<double>());
  return totals;
}

std::vector<int64_t> RegionsInDensityRange(const CrimeDataset& data,
                                           double lo, double hi) {
  std::vector<int64_t> regions;
  for (int64_t r = 0; r < data.num_regions(); ++r) {
    const double density = data.DensityDegree(r);
    if (density > lo && density <= hi) regions.push_back(r);
  }
  return regions;
}

double SpatialGini(const CrimeDataset& data, int64_t c) {
  std::vector<double> totals(static_cast<size_t>(data.num_regions()), 0.0);
  double sum = 0.0;
  for (int64_t r = 0; r < data.num_regions(); ++r) {
    for (int64_t t = 0; t < data.num_days(); ++t) {
      totals[static_cast<size_t>(r)] += data.Count(r, t, c);
    }
    sum += totals[static_cast<size_t>(r)];
  }
  if (sum <= 0.0) return 0.0;
  std::sort(totals.begin(), totals.end());
  const double n = static_cast<double>(totals.size());
  double weighted = 0.0;
  for (size_t i = 0; i < totals.size(); ++i) {
    weighted += (2.0 * (static_cast<double>(i) + 1.0) - n - 1.0) * totals[i];
  }
  return weighted / (n * sum);
}

WindowDensitySummary SummarizeWindowDensity(const CrimeDataset& data,
                                            int64_t window) {
  STHSL_CHECK_GT(window, 0);
  STHSL_CHECK_LE(window, data.num_days());
  WindowDensitySummary summary;
  summary.window = window;
  const int64_t cells =
      data.num_regions() * window * data.num_categories();
  double nnz_sum = 0.0;
  for (int64_t t_end = window; t_end <= data.num_days(); ++t_end) {
    const int64_t nnz = data.WindowNnz(t_end, window);
    if (summary.num_windows == 0) {
      summary.min_nnz = summary.max_nnz = nnz;
    } else {
      summary.min_nnz = std::min(summary.min_nnz, nnz);
      summary.max_nnz = std::max(summary.max_nnz, nnz);
    }
    nnz_sum += static_cast<double>(nnz);
    ++summary.num_windows;
  }
  if (summary.num_windows == 0 || cells == 0) return summary;
  summary.mean_nnz = nnz_sum / static_cast<double>(summary.num_windows);
  const double inv_cells = 1.0 / static_cast<double>(cells);
  summary.min_density = static_cast<double>(summary.min_nnz) * inv_cells;
  summary.max_density = static_cast<double>(summary.max_nnz) * inv_cells;
  summary.mean_density = summary.mean_nnz * inv_cells;
  return summary;
}

}  // namespace sthsl
