#include "data/generator.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace sthsl {

CrimeGenConfig NycPreset() {
  CrimeGenConfig config;
  config.city_name = "NYC";
  config.rows = 16;
  config.cols = 16;
  config.days = 730;
  config.category_names = {"Burglary", "Larceny", "Robbery", "Assault"};
  config.category_totals = {31799, 85899, 33453, 40429};  // paper Table II
  config.num_zones = 8;
  config.seed = 20140101;
  return config;
}

CrimeGenConfig ChicagoPreset() {
  CrimeGenConfig config;
  config.city_name = "CHI";
  config.rows = 12;
  config.cols = 14;
  config.days = 730;
  config.category_names = {"Theft", "Battery", "Assault", "Damage"};
  config.category_totals = {124630, 99389, 37972, 59886};  // paper Table II
  config.num_zones = 7;
  config.seed = 20160101;
  return config;
}

namespace {

CrimeGenConfig Shrink(CrimeGenConfig config, int64_t rows, int64_t cols,
                      int64_t days) {
  // Preserve per-region-per-day intensity so sparsity patterns carry over.
  const double scale =
      (static_cast<double>(rows * cols) / (config.rows * config.cols)) *
      (static_cast<double>(days) / config.days);
  for (auto& total : config.category_totals) total *= scale;
  config.rows = rows;
  config.cols = cols;
  config.days = days;
  config.num_zones = 6;
  return config;
}

}  // namespace

CrimeGenConfig NycSmallPreset() {
  CrimeGenConfig config = Shrink(NycPreset(), 8, 8, 304);
  config.city_name = "NYC-small";
  return config;
}

CrimeGenConfig ChicagoSmallPreset() {
  CrimeGenConfig config = Shrink(ChicagoPreset(), 6, 7, 304);
  config.city_name = "CHI-small";
  return config;
}

CrimeDataset GenerateCrimeData(const CrimeGenConfig& config) {
  STHSL_CHECK_GT(config.rows, 0);
  STHSL_CHECK_GT(config.cols, 0);
  STHSL_CHECK_GT(config.days, 0);
  STHSL_CHECK_GT(config.num_zones, 0);
  STHSL_CHECK_EQ(config.category_names.size(), config.category_totals.size())
      << "one target total per category";

  const int64_t regions = config.rows * config.cols;
  const int64_t days = config.days;
  const int64_t cats = static_cast<int64_t>(config.category_names.size());
  const int zones = config.num_zones;

  Rng rng(config.seed);

  // 1. Functional-zone centers and per-region zone membership weights.
  std::vector<double> center_row(zones);
  std::vector<double> center_col(zones);
  for (int k = 0; k < zones; ++k) {
    center_row[k] = rng.Uniform(0.0, static_cast<double>(config.rows));
    center_col[k] = rng.Uniform(0.0, static_cast<double>(config.cols));
  }
  const double inv_two_bw2 =
      1.0 / (2.0 * config.zone_bandwidth * config.zone_bandwidth);
  std::vector<double> membership(static_cast<size_t>(regions) * zones);
  for (int64_t r = 0; r < regions; ++r) {
    const double row = static_cast<double>(r / config.cols) + 0.5;
    const double col = static_cast<double>(r % config.cols) + 0.5;
    for (int k = 0; k < zones; ++k) {
      const double dr = row - center_row[k];
      const double dc = col - center_col[k];
      membership[static_cast<size_t>(r) * zones + k] =
          std::exp(-(dr * dr + dc * dc) * inv_two_bw2);
    }
  }

  // 2. Heavy-tailed region popularity (plants the Fig. 2 skew).
  std::vector<double> popularity(static_cast<size_t>(regions));
  for (auto& p : popularity) p = rng.Pareto(1.0, config.popularity_alpha);

  // 3. Zone-category affinities (plants cross-category / cross-region
  //    structure mediated by shared urban function).
  std::vector<double> affinity(static_cast<size_t>(zones) * cats);
  for (auto& a : affinity) a = rng.Gamma(config.affinity_shape, 1.0);

  // 4. Base rate per (region, category), rescaled to the target totals.
  std::vector<double> base(static_cast<size_t>(regions) * cats, 0.0);
  for (int64_t c = 0; c < cats; ++c) {
    double column_sum = 0.0;
    for (int64_t r = 0; r < regions; ++r) {
      double mix = 0.0;
      for (int k = 0; k < zones; ++k) {
        mix += membership[static_cast<size_t>(r) * zones + k] *
               affinity[static_cast<size_t>(k) * cats + c];
      }
      const double rate = popularity[static_cast<size_t>(r)] * (mix + 1e-4);
      base[static_cast<size_t>(r) * cats + c] = rate;
      column_sum += rate;
    }
    const double target_per_day =
        config.category_totals[static_cast<size_t>(c)] /
        static_cast<double>(days);
    const double scale = target_per_day / std::max(column_sum, 1e-12);
    for (int64_t r = 0; r < regions; ++r) {
      base[static_cast<size_t>(r) * cats + c] *= scale;
    }
  }

  // 5. Temporal factors: per-category weekly/annual phases + zone AR(1).
  std::vector<double> weekly_phase(static_cast<size_t>(cats));
  std::vector<double> annual_phase(static_cast<size_t>(cats));
  for (int64_t c = 0; c < cats; ++c) {
    weekly_phase[static_cast<size_t>(c)] = rng.Uniform(0.0, 2.0 * M_PI);
    annual_phase[static_cast<size_t>(c)] = rng.Uniform(0.0, 2.0 * M_PI);
  }
  std::vector<double> zone_log(static_cast<size_t>(zones), 0.0);
  const double ar_stationary_scale =
      std::sqrt(1.0 - config.zone_ar1 * config.zone_ar1);
  const double stationary_sigma =
      config.zone_noise / std::max(ar_stationary_scale, 1e-6);
  // Mean-one correction for the lognormal zone factor keeps realized totals
  // calibrated to the configured targets regardless of burst strength.
  const double log_mean_correction =
      0.5 * stationary_sigma * stationary_sigma;
  for (auto& z : zone_log) z = rng.Normal(0.0, stationary_sigma);

  std::vector<float> counts(static_cast<size_t>(regions * days * cats), 0.0f);
  std::vector<double> season(static_cast<size_t>(cats));
  std::vector<double> zone_factor(static_cast<size_t>(zones));
  for (int64_t t = 0; t < days; ++t) {
    // Advance the shared zone fluctuation (one AR(1) step per day).
    for (int k = 0; k < zones; ++k) {
      zone_log[static_cast<size_t>(k)] =
          config.zone_ar1 * zone_log[static_cast<size_t>(k)] +
          rng.Normal(0.0, config.zone_noise);
      zone_factor[static_cast<size_t>(k)] =
          std::exp(zone_log[static_cast<size_t>(k)] - log_mean_correction);
    }
    const double trend_factor =
        1.0 + config.trend * (static_cast<double>(t) / days - 0.5);
    for (int64_t c = 0; c < cats; ++c) {
      const double weekly =
          1.0 + config.weekly_amplitude *
                    std::sin(2.0 * M_PI * t / 7.0 +
                             weekly_phase[static_cast<size_t>(c)]);
      const double annual =
          1.0 + config.annual_amplitude *
                    std::sin(2.0 * M_PI * t / 365.0 +
                             annual_phase[static_cast<size_t>(c)]);
      season[static_cast<size_t>(c)] = weekly * annual * trend_factor;
    }
    for (int64_t r = 0; r < regions; ++r) {
      // Zone fluctuation seen by this region (membership-weighted mean).
      double zmix = 0.0;
      double wsum = 0.0;
      for (int k = 0; k < zones; ++k) {
        const double w = membership[static_cast<size_t>(r) * zones + k];
        zmix += w * zone_factor[static_cast<size_t>(k)];
        wsum += w;
      }
      const double zone_mult = wsum > 1e-12 ? zmix / wsum : 1.0;
      for (int64_t c = 0; c < cats; ++c) {
        const double rate = base[static_cast<size_t>(r) * cats + c] *
                            season[static_cast<size_t>(c)] * zone_mult;
        const int sample = rng.Poisson(rate);
        counts[static_cast<size_t>((r * days + t) * cats + c)] =
            static_cast<float>(sample);
      }
    }
  }

  Tensor tensor = Tensor::FromVector({regions, days, cats}, std::move(counts));
  CrimeDataset data(config.city_name, config.rows, config.cols,
                    config.category_names, std::move(tensor));
  data.set_generator_seed(static_cast<int64_t>(config.seed));
  return data;
}

}  // namespace sthsl
