#include "exec/exec.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/obs/metrics.h"
#include "util/obs/obs.h"

namespace sthsl::exec {
namespace {

constexpr int kMaxThreads = 512;

// Pool utilization telemetry (PoolStats / PublishPoolStats). Busy time is
// attributed per worker slot — fixed when the worker thread starts — with
// launching callers aggregated into one cell, since callers participate in
// their own regions. Always on: per chunk this costs two monotonic clock
// reads and a few relaxed atomic adds, negligible against grain-sized work.
struct Telemetry {
  Telemetry() {
    for (auto& cell : worker_busy_ns) cell.store(0, std::memory_order_relaxed);
    for (auto& cell : worker_start_us) {
      cell.store(0, std::memory_order_relaxed);
    }
  }

  std::atomic<int64_t> regions_launched{0};
  std::atomic<int64_t> chunks_executed{0};
  std::atomic<int64_t> caller_busy_ns{0};
  std::atomic<int64_t> max_queue_depth{0};
  // High-water worker-slot count (slots restart at 0 after ShutdownPool and
  // keep their cumulative busy time).
  std::atomic<int> workers_started{0};
  std::atomic<int64_t> worker_busy_ns[kMaxThreads];
  // TraceNowMicros() reading when the slot's current thread started, for the
  // idle = uptime - busy estimate.
  std::atomic<int64_t> worker_start_us[kMaxThreads];
};

Telemetry& T() {
  static Telemetry* telemetry = new Telemetry();
  return *telemetry;
}

// Worker slot of the calling thread; -1 for non-pool threads (callers).
thread_local int t_worker_slot = -1;

// Thread count: 0 means "not resolved yet"; resolved lazily from
// STHSL_THREADS (then hardware concurrency) on first read so tests and
// tools can SetThreadCount before any kernel runs.
std::atomic<int> g_thread_count{0};

int ResolveThreadCountFromEnv() {
  if (const char* env = std::getenv("STHSL_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return parsed > kMaxThreads ? kMaxThreads : static_cast<int>(parsed);
    }
  }
  return HardwareThreadCount();
}

// True while this thread executes a chunk of a parallel region; nested
// ParallelFor calls see it and run serially inline.
thread_local bool t_in_parallel_region = false;

class RegionGuard {
 public:
  RegionGuard() { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = false; }

  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
};

// One parallel launch: a fixed chunk grid plus claim/completion state.
// Chunks are claimed under the pool mutex (they are coarse by
// construction), executed without it, and completion is signalled through
// `remaining` + the owning launch's condition variable.
struct Region {
  exec_internal::ChunkFn fn = nullptr;
  const void* ctx = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk_size = 1;
  int64_t num_chunks = 0;
  int64_t next_chunk = 0;  // guarded by the pool mutex
  std::atomic<int64_t> remaining{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  std::mutex done_mu;
  std::condition_variable done_cv;
  obs::ParallelRegionToken token;
  // Summed chunk-execution time across every thread that ran a chunk of
  // this region; feeds the per-tag parallel-efficiency columns.
  std::atomic<int64_t> busy_ns{0};
};

struct Pool {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::thread> workers;
  std::deque<std::shared_ptr<Region>> active;
  bool stopping = false;
};

// Leaked on purpose (like the obs state): workers may still be parked when
// ordinary static destructors run; the atexit hook joins them first.
Pool& P() {
  static Pool* pool = new Pool();
  return *pool;
}

void ExecuteChunk(Region& region, int64_t chunk) {
  const int64_t b = region.begin + chunk * region.chunk_size;
  int64_t e = b + region.chunk_size;
  if (e > region.end) e = region.end;
  if (!region.failed.load(std::memory_order_relaxed)) {
    const double slice_start = obs::TraceNowMicros();
    {
      RegionGuard in_region;
      try {
        region.fn(region.ctx, chunk, b, e);
      } catch (...) {
        region.failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(region.error_mu);
        if (!region.error) region.error = std::current_exception();
      }
    }
    const double slice_us = obs::TraceNowMicros() - slice_start;
    if (region.token.active) {
      obs::RecordParallelSlice(region.token, slice_start, slice_us);
    }
    const int64_t slice_ns = static_cast<int64_t>(slice_us * 1e3);
    region.busy_ns.fetch_add(slice_ns, std::memory_order_relaxed);
    Telemetry& telemetry = T();
    telemetry.chunks_executed.fetch_add(1, std::memory_order_relaxed);
    if (t_worker_slot >= 0) {
      telemetry.worker_busy_ns[t_worker_slot].fetch_add(
          slice_ns, std::memory_order_relaxed);
    } else {
      telemetry.caller_busy_ns.fetch_add(slice_ns, std::memory_order_relaxed);
    }
  }
  if (region.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(region.done_mu);
    region.done_cv.notify_all();
  }
}

void WorkerLoop(int slot) {
  t_worker_slot = slot;
  {
    Telemetry& telemetry = T();
    telemetry.worker_start_us[slot].store(
        static_cast<int64_t>(obs::TraceNowMicros()),
        std::memory_order_relaxed);
    int started = telemetry.workers_started.load(std::memory_order_relaxed);
    while (slot + 1 > started &&
           !telemetry.workers_started.compare_exchange_weak(
               started, slot + 1, std::memory_order_relaxed)) {
    }
  }
  Pool& pool = P();
  for (;;) {
    std::shared_ptr<Region> region;
    int64_t chunk = -1;
    {
      std::unique_lock<std::mutex> lock(pool.mu);
      pool.cv.wait(lock,
                   [&pool] { return pool.stopping || !pool.active.empty(); });
      if (pool.active.empty()) {
        if (pool.stopping) return;
        continue;
      }
      region = pool.active.front();
      if (region->next_chunk >= region->num_chunks) {
        pool.active.pop_front();
        continue;
      }
      chunk = region->next_chunk++;
    }
    ExecuteChunk(*region, chunk);
  }
}

void EnsureWorkersLocked(Pool& pool, int wanted) {
  static bool atexit_registered = [] {
    std::atexit([] { ShutdownPool(); });
    return true;
  }();
  (void)atexit_registered;
  while (static_cast<int>(pool.workers.size()) < wanted) {
    const int slot = static_cast<int>(pool.workers.size());
    pool.workers.emplace_back(WorkerLoop, slot);
  }
}

}  // namespace

int HardwareThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int ThreadCount() {
  int count = g_thread_count.load(std::memory_order_relaxed);
  if (count > 0) return count;
  const int resolved = ResolveThreadCountFromEnv();
  int expected = 0;
  if (g_thread_count.compare_exchange_strong(expected, resolved,
                                             std::memory_order_relaxed)) {
    return resolved;
  }
  return expected;
}

void SetThreadCount(int count) {
  if (count < 1) count = 1;
  if (count > kMaxThreads) count = kMaxThreads;
  g_thread_count.store(count, std::memory_order_relaxed);
}

bool InParallelRegion() { return t_in_parallel_region; }

void ShutdownPool() {
  Pool& pool = P();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    pool.stopping = true;
    workers.swap(pool.workers);
  }
  pool.cv.notify_all();
  for (std::thread& worker : workers) worker.join();
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    pool.stopping = false;
  }
}

int64_t FixedChunkCount(int64_t range, int64_t grain) {
  if (range <= 0) return 0;
  if (grain < 1) grain = 1;
  return (range + grain - 1) / grain;
}

PoolStats GetPoolStats() {
  PoolStats stats;
  stats.thread_count = ThreadCount();
  Pool& pool = P();
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    stats.queue_depth = static_cast<int>(pool.active.size());
  }
  Telemetry& telemetry = T();
  stats.workers_started =
      telemetry.workers_started.load(std::memory_order_relaxed);
  stats.regions_launched =
      telemetry.regions_launched.load(std::memory_order_relaxed);
  stats.chunks_executed =
      telemetry.chunks_executed.load(std::memory_order_relaxed);
  stats.max_queue_depth = static_cast<int>(
      telemetry.max_queue_depth.load(std::memory_order_relaxed));
  stats.caller_busy_us =
      static_cast<double>(
          telemetry.caller_busy_ns.load(std::memory_order_relaxed)) /
      1e3;
  const double now_us = obs::TraceNowMicros();
  stats.worker_busy_us.reserve(static_cast<size_t>(stats.workers_started));
  stats.worker_idle_us.reserve(static_cast<size_t>(stats.workers_started));
  for (int slot = 0; slot < stats.workers_started; ++slot) {
    const double busy =
        static_cast<double>(
            telemetry.worker_busy_ns[slot].load(std::memory_order_relaxed)) /
        1e3;
    const double start = static_cast<double>(
        telemetry.worker_start_us[slot].load(std::memory_order_relaxed));
    double idle = now_us - start - busy;
    if (idle < 0.0) idle = 0.0;
    stats.worker_busy_us.push_back(busy);
    stats.worker_idle_us.push_back(idle);
  }
  return stats;
}

void PublishPoolStats() {
  const PoolStats stats = GetPoolStats();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("exec/threads").Set(stats.thread_count);
  registry.GetGauge("exec/workers_started").Set(stats.workers_started);
  registry.GetGauge("exec/regions_launched")
      .Set(static_cast<double>(stats.regions_launched));
  registry.GetGauge("exec/chunks_executed")
      .Set(static_cast<double>(stats.chunks_executed));
  registry.GetGauge("exec/queue_depth").Set(stats.queue_depth);
  registry.GetGauge("exec/max_queue_depth").Set(stats.max_queue_depth);
  registry.GetGauge("exec/busy_us").Set(stats.total_busy_us());
  // Worker utilization: busy over uptime, averaged across started workers.
  // Callers are excluded — their idle time is application time, not pool
  // time.
  double busy = 0.0;
  double uptime = 0.0;
  for (size_t i = 0; i < stats.worker_busy_us.size(); ++i) {
    busy += stats.worker_busy_us[i];
    uptime += stats.worker_busy_us[i] + stats.worker_idle_us[i];
  }
  registry.GetGauge("exec/worker_utilization")
      .Set(uptime > 0.0 ? busy / uptime : 0.0);
}

namespace exec_internal {

int64_t ThreadChunkSize(int64_t range, int64_t grain) {
  if (grain < 1) grain = 1;
  int64_t chunks = (range + grain - 1) / grain;
  const int64_t threads = ThreadCount();
  if (chunks > threads) chunks = threads;
  if (chunks < 1) chunks = 1;
  return (range + chunks - 1) / chunks;
}

void Launch(int64_t begin, int64_t end, int64_t chunk_size,
            int64_t num_chunks, ChunkFn fn, const void* ctx,
            const char* tag) {
  auto region = std::make_shared<Region>();
  region->fn = fn;
  region->ctx = ctx;
  region->begin = begin;
  region->end = end;
  region->chunk_size = chunk_size;
  region->num_chunks = num_chunks;
  region->remaining.store(num_chunks, std::memory_order_relaxed);
  region->token = obs::BeginParallelRegion(tag);

  Pool& pool = P();
  Telemetry& telemetry = T();
  telemetry.regions_launched.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    EnsureWorkersLocked(pool, ThreadCount() - 1);
    pool.active.push_back(region);
    const auto depth = static_cast<int64_t>(pool.active.size());
    int64_t max_depth =
        telemetry.max_queue_depth.load(std::memory_order_relaxed);
    while (depth > max_depth &&
           !telemetry.max_queue_depth.compare_exchange_weak(
               max_depth, depth, std::memory_order_relaxed)) {
    }
  }
  pool.cv.notify_all();

  // The launching thread participates until every chunk is claimed …
  for (;;) {
    int64_t chunk = -1;
    {
      std::lock_guard<std::mutex> lock(pool.mu);
      if (region->next_chunk < region->num_chunks) {
        chunk = region->next_chunk++;
      } else {
        // All chunks claimed: retire the region so it cannot linger in the
        // queue when every chunk was executed by the caller.
        for (auto it = pool.active.begin(); it != pool.active.end(); ++it) {
          if (it->get() == region.get()) {
            pool.active.erase(it);
            break;
          }
        }
      }
    }
    if (chunk < 0) break;
    ExecuteChunk(*region, chunk);
  }
  // … then blocks until the last in-flight chunk finishes.
  {
    std::unique_lock<std::mutex> lock(region->done_mu);
    region->done_cv.wait(lock, [&region] {
      return region->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  obs::EndParallelRegion(
      region->token,
      static_cast<double>(region->busy_ns.load(std::memory_order_relaxed)) /
          1e3,
      num_chunks);
  if (region->failed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(region->error_mu);
    if (region->error) std::rethrow_exception(region->error);
  }
}

}  // namespace exec_internal

namespace {

// Per-thread scratch arena: a small free list of float buffers reused
// across ScratchLease lifetimes on the same thread. Capacity is retained so
// steady-state kernel calls (e.g. conv backward every training step)
// allocate nothing.
constexpr size_t kMaxPooledBuffers = 8;
thread_local std::vector<std::vector<float>*> t_scratch_pool;

struct ScratchPoolCleanup {
  ~ScratchPoolCleanup() {
    for (std::vector<float>* buffer : t_scratch_pool) delete buffer;
    t_scratch_pool.clear();
  }
};
thread_local ScratchPoolCleanup t_scratch_cleanup;

}  // namespace

ScratchLease::ScratchLease(size_t size) : size_(size) {
  (void)t_scratch_cleanup;
  if (!t_scratch_pool.empty()) {
    buffer_ = t_scratch_pool.back();
    t_scratch_pool.pop_back();
  } else {
    buffer_ = new std::vector<float>();
  }
  if (buffer_->size() < size) buffer_->resize(size);
}

ScratchLease::~ScratchLease() {
  if (t_scratch_pool.size() < kMaxPooledBuffers) {
    t_scratch_pool.push_back(buffer_);
  } else {
    delete buffer_;
  }
}

}  // namespace sthsl::exec
