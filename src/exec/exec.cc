#include "exec/exec.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/obs/obs.h"

namespace sthsl::exec {
namespace {

constexpr int kMaxThreads = 512;

// Thread count: 0 means "not resolved yet"; resolved lazily from
// STHSL_THREADS (then hardware concurrency) on first read so tests and
// tools can SetThreadCount before any kernel runs.
std::atomic<int> g_thread_count{0};

int ResolveThreadCountFromEnv() {
  if (const char* env = std::getenv("STHSL_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return parsed > kMaxThreads ? kMaxThreads : static_cast<int>(parsed);
    }
  }
  return HardwareThreadCount();
}

// True while this thread executes a chunk of a parallel region; nested
// ParallelFor calls see it and run serially inline.
thread_local bool t_in_parallel_region = false;

class RegionGuard {
 public:
  RegionGuard() { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = false; }

  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
};

// One parallel launch: a fixed chunk grid plus claim/completion state.
// Chunks are claimed under the pool mutex (they are coarse by
// construction), executed without it, and completion is signalled through
// `remaining` + the owning launch's condition variable.
struct Region {
  exec_internal::ChunkFn fn = nullptr;
  const void* ctx = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t chunk_size = 1;
  int64_t num_chunks = 0;
  int64_t next_chunk = 0;  // guarded by the pool mutex
  std::atomic<int64_t> remaining{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  std::mutex done_mu;
  std::condition_variable done_cv;
  obs::ParallelRegionToken token;
};

struct Pool {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::thread> workers;
  std::deque<std::shared_ptr<Region>> active;
  bool stopping = false;
};

// Leaked on purpose (like the obs state): workers may still be parked when
// ordinary static destructors run; the atexit hook joins them first.
Pool& P() {
  static Pool* pool = new Pool();
  return *pool;
}

void ExecuteChunk(Region& region, int64_t chunk) {
  const int64_t b = region.begin + chunk * region.chunk_size;
  int64_t e = b + region.chunk_size;
  if (e > region.end) e = region.end;
  if (!region.failed.load(std::memory_order_relaxed)) {
    const bool slice_traced = region.token.active;
    const double slice_start = slice_traced ? obs::TraceNowMicros() : 0.0;
    RegionGuard in_region;
    try {
      region.fn(region.ctx, chunk, b, e);
    } catch (...) {
      region.failed.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(region.error_mu);
      if (!region.error) region.error = std::current_exception();
    }
    if (slice_traced) {
      obs::RecordParallelSlice(region.token, slice_start,
                               obs::TraceNowMicros() - slice_start);
    }
  }
  if (region.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(region.done_mu);
    region.done_cv.notify_all();
  }
}

void WorkerLoop() {
  Pool& pool = P();
  for (;;) {
    std::shared_ptr<Region> region;
    int64_t chunk = -1;
    {
      std::unique_lock<std::mutex> lock(pool.mu);
      pool.cv.wait(lock,
                   [&pool] { return pool.stopping || !pool.active.empty(); });
      if (pool.active.empty()) {
        if (pool.stopping) return;
        continue;
      }
      region = pool.active.front();
      if (region->next_chunk >= region->num_chunks) {
        pool.active.pop_front();
        continue;
      }
      chunk = region->next_chunk++;
    }
    ExecuteChunk(*region, chunk);
  }
}

void EnsureWorkersLocked(Pool& pool, int wanted) {
  static bool atexit_registered = [] {
    std::atexit([] { ShutdownPool(); });
    return true;
  }();
  (void)atexit_registered;
  while (static_cast<int>(pool.workers.size()) < wanted) {
    pool.workers.emplace_back(WorkerLoop);
  }
}

}  // namespace

int HardwareThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int ThreadCount() {
  int count = g_thread_count.load(std::memory_order_relaxed);
  if (count > 0) return count;
  const int resolved = ResolveThreadCountFromEnv();
  int expected = 0;
  if (g_thread_count.compare_exchange_strong(expected, resolved,
                                             std::memory_order_relaxed)) {
    return resolved;
  }
  return expected;
}

void SetThreadCount(int count) {
  if (count < 1) count = 1;
  if (count > kMaxThreads) count = kMaxThreads;
  g_thread_count.store(count, std::memory_order_relaxed);
}

bool InParallelRegion() { return t_in_parallel_region; }

void ShutdownPool() {
  Pool& pool = P();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    pool.stopping = true;
    workers.swap(pool.workers);
  }
  pool.cv.notify_all();
  for (std::thread& worker : workers) worker.join();
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    pool.stopping = false;
  }
}

int64_t FixedChunkCount(int64_t range, int64_t grain) {
  if (range <= 0) return 0;
  if (grain < 1) grain = 1;
  return (range + grain - 1) / grain;
}

namespace exec_internal {

int64_t ThreadChunkSize(int64_t range, int64_t grain) {
  if (grain < 1) grain = 1;
  int64_t chunks = (range + grain - 1) / grain;
  const int64_t threads = ThreadCount();
  if (chunks > threads) chunks = threads;
  if (chunks < 1) chunks = 1;
  return (range + chunks - 1) / chunks;
}

void Launch(int64_t begin, int64_t end, int64_t chunk_size,
            int64_t num_chunks, ChunkFn fn, const void* ctx,
            const char* tag) {
  auto region = std::make_shared<Region>();
  region->fn = fn;
  region->ctx = ctx;
  region->begin = begin;
  region->end = end;
  region->chunk_size = chunk_size;
  region->num_chunks = num_chunks;
  region->remaining.store(num_chunks, std::memory_order_relaxed);
  region->token = obs::BeginParallelRegion(tag);

  Pool& pool = P();
  {
    std::lock_guard<std::mutex> lock(pool.mu);
    EnsureWorkersLocked(pool, ThreadCount() - 1);
    pool.active.push_back(region);
  }
  pool.cv.notify_all();

  // The launching thread participates until every chunk is claimed …
  for (;;) {
    int64_t chunk = -1;
    {
      std::lock_guard<std::mutex> lock(pool.mu);
      if (region->next_chunk < region->num_chunks) {
        chunk = region->next_chunk++;
      } else {
        // All chunks claimed: retire the region so it cannot linger in the
        // queue when every chunk was executed by the caller.
        for (auto it = pool.active.begin(); it != pool.active.end(); ++it) {
          if (it->get() == region.get()) {
            pool.active.erase(it);
            break;
          }
        }
      }
    }
    if (chunk < 0) break;
    ExecuteChunk(*region, chunk);
  }
  // … then blocks until the last in-flight chunk finishes.
  {
    std::unique_lock<std::mutex> lock(region->done_mu);
    region->done_cv.wait(lock, [&region] {
      return region->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  obs::EndParallelRegion(region->token);
  if (region->failed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(region->error_mu);
    if (region->error) std::rethrow_exception(region->error);
  }
}

}  // namespace exec_internal

namespace {

// Per-thread scratch arena: a small free list of float buffers reused
// across ScratchLease lifetimes on the same thread. Capacity is retained so
// steady-state kernel calls (e.g. conv backward every training step)
// allocate nothing.
constexpr size_t kMaxPooledBuffers = 8;
thread_local std::vector<std::vector<float>*> t_scratch_pool;

struct ScratchPoolCleanup {
  ~ScratchPoolCleanup() {
    for (std::vector<float>* buffer : t_scratch_pool) delete buffer;
    t_scratch_pool.clear();
  }
};
thread_local ScratchPoolCleanup t_scratch_cleanup;

}  // namespace

ScratchLease::ScratchLease(size_t size) : size_(size) {
  (void)t_scratch_cleanup;
  if (!t_scratch_pool.empty()) {
    buffer_ = t_scratch_pool.back();
    t_scratch_pool.pop_back();
  } else {
    buffer_ = new std::vector<float>();
  }
  if (buffer_->size() < size) buffer_->resize(size);
}

ScratchLease::~ScratchLease() {
  if (t_scratch_pool.size() < kMaxPooledBuffers) {
    t_scratch_pool.push_back(buffer_);
  } else {
    delete buffer_;
  }
}

}  // namespace sthsl::exec
