#ifndef STHSL_EXEC_EXEC_H_
#define STHSL_EXEC_EXEC_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace sthsl::exec {

/// Deterministic parallel execution layer.
///
/// A lazily-initialized shared thread pool plus ParallelFor / ParallelReduce
/// primitives used by every compute kernel in the stack (GEMM, conv,
/// elementwise, reductions, optimizers). The design contract is
/// *determinism first*:
///
///  - ParallelFor chunk boundaries depend only on the range size, the grain
///    and the configured thread count — never on scheduling. Each index is
///    executed by exactly one chunk, so kernels whose chunks own disjoint
///    output ranges produce bitwise-identical results at any thread count.
///  - ParallelForFixedChunks / ParallelReduceDouble chunk boundaries depend
///    only on the range size and the grain (NOT the thread count), and
///    reduction partials are combined in ascending chunk order, so
///    accumulating kernels (weight gradients, global sums) are also
///    bitwise-identical at any thread count.
///
/// Configuration: the STHSL_THREADS environment variable (read once at
/// first use) or SetThreadCount() at runtime; the default is the hardware
/// concurrency. With a thread count of 1, or for ranges at or below the
/// grain, work runs inline on the calling thread with near-zero overhead
/// (two branches, no allocation). Nested parallel regions fall back to
/// serial inline execution. See docs/performance.md.
///
/// Callables passed to the templates below must be const-invocable (any
/// non-`mutable` lambda is).

/// Number of hardware threads (std::thread::hardware_concurrency, min 1).
int HardwareThreadCount();

/// The configured thread count: SetThreadCount() override, else
/// STHSL_THREADS, else HardwareThreadCount(). Always >= 1.
int ThreadCount();

/// Overrides the thread count (values < 1 clamp to 1). The pool grows
/// lazily; shrinking only narrows future chunk distribution, idle workers
/// stay parked.
void SetThreadCount(int count);

/// True while the calling thread is executing a chunk of a parallel region.
/// ParallelFor checks this to run nested regions serially inline.
bool InParallelRegion();

/// Stops and joins every pool worker. The pool restarts lazily on the next
/// parallel launch; exposed for tests and registered atexit so workers
/// never outlive the process accounting (tsan-clean shutdown).
void ShutdownPool();

/// Number of chunks ParallelForFixedChunks splits `range` into: a pure
/// function of range and grain, independent of the thread count.
int64_t FixedChunkCount(int64_t range, int64_t grain);

/// Cumulative pool utilization telemetry since process start. Busy time is
/// measured per executed chunk (both pool workers and launching callers
/// participate in regions), so `busy / (uptime · workers)` approximates
/// worker utilization and per-tag efficiency comes from the obs layer's
/// scope profiles. Always on — the accounting is a handful of relaxed
/// atomic adds per chunk, independent of whether tracing is enabled.
struct PoolStats {
  /// Configured thread count (ThreadCount()).
  int thread_count = 1;
  /// Pool workers ever started (<= thread_count - 1; callers participate).
  int workers_started = 0;
  int64_t regions_launched = 0;
  int64_t chunks_executed = 0;
  /// Current and high-water region queue depth.
  int queue_depth = 0;
  int max_queue_depth = 0;
  /// Chunk-execution time summed over all threads, split by who ran it.
  double caller_busy_us = 0.0;
  /// Per-worker busy / idle micros (idle = time parked since the worker
  /// started minus its busy time); one entry per started worker.
  std::vector<double> worker_busy_us;
  std::vector<double> worker_idle_us;

  double total_busy_us() const {
    double total = caller_busy_us;
    for (double us : worker_busy_us) total += us;
    return total;
  }
};

/// Snapshot of the pool telemetry.
PoolStats GetPoolStats();

/// Publishes the current PoolStats into the obs metrics registry as
/// `exec/*` gauges (threads, workers, regions_launched, chunks_executed,
/// queue_depth, busy_us, utilization). Call before snapshotting the
/// registry (the serving tier does this on every /metrics scrape).
void PublishPoolStats();

namespace exec_internal {

using ChunkFn = void (*)(const void* ctx, int64_t chunk_index, int64_t begin,
                         int64_t end);

/// Runs chunks [begin + c*chunk_size, ...) for c in [0, num_chunks) across
/// the pool (caller participates), then returns; rethrows the first chunk
/// exception. Requires num_chunks >= 2.
void Launch(int64_t begin, int64_t end, int64_t chunk_size,
            int64_t num_chunks, ChunkFn fn, const void* ctx, const char* tag);

/// Chunk size for ParallelFor: splits `range` over min(ThreadCount(),
/// ceil(range/grain)) chunks. Depends on range, grain and the configured
/// thread count only.
int64_t ThreadChunkSize(int64_t range, int64_t grain);

}  // namespace exec_internal

/// Runs `fn(chunk_begin, chunk_end)` over [begin, end) split into at most
/// ThreadCount() contiguous chunks of at least `grain` indices. Chunks own
/// disjoint index ranges; `fn` must not write outside state derived from
/// its range. Small ranges (<= grain) run inline on the caller.
template <typename F>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, F&& fn,
                 const char* tag = "exec/parallel_for") {
  const int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  if (range <= grain || ThreadCount() <= 1 || InParallelRegion()) {
    fn(begin, end);
    return;
  }
  const int64_t chunk = exec_internal::ThreadChunkSize(range, grain);
  const int64_t chunks = (range + chunk - 1) / chunk;
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  using Fn = std::remove_reference_t<F>;
  exec_internal::Launch(
      begin, end, chunk, chunks,
      [](const void* ctx, int64_t, int64_t b, int64_t e) {
        (*static_cast<const Fn*>(ctx))(b, e);
      },
      &fn, tag);
}

/// Runs `fn(chunk_index, chunk_begin, chunk_end)` over [begin, end) split
/// into FixedChunkCount(range, grain) chunks of exactly `grain` indices
/// (last chunk may be short). Boundaries and indices are independent of the
/// thread count, so per-chunk partial results combined in ascending chunk
/// order are bitwise-reproducible at any thread count.
template <typename F>
void ParallelForFixedChunks(int64_t begin, int64_t end, int64_t grain,
                            F&& fn, const char* tag = "exec/fixed_chunks") {
  const int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t chunks = (range + grain - 1) / grain;
  if (chunks <= 1) {
    fn(int64_t{0}, begin, end);
    return;
  }
  if (ThreadCount() <= 1 || InParallelRegion()) {
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t b = begin + c * grain;
      const int64_t e = b + grain < end ? b + grain : end;
      fn(c, b, e);
    }
    return;
  }
  using Fn = std::remove_reference_t<F>;
  exec_internal::Launch(
      begin, end, grain, chunks,
      [](const void* ctx, int64_t c, int64_t b, int64_t e) {
        (*static_cast<const Fn*>(ctx))(c, b, e);
      },
      &fn, tag);
}

/// Deterministic parallel sum: `chunk_sum(chunk_begin, chunk_end)` returns
/// one double partial per fixed chunk; partials are added in ascending
/// chunk order. The result depends on range and grain but not on the
/// thread count. A single-chunk range degenerates to one inline call, i.e.
/// exactly the serial sum.
template <typename F>
double ParallelReduceDouble(int64_t begin, int64_t end, int64_t grain,
                            F&& chunk_sum, const char* tag = "exec/reduce") {
  const int64_t range = end - begin;
  if (range <= 0) return 0.0;
  if (grain < 1) grain = 1;
  const int64_t chunks = (range + grain - 1) / grain;
  if (chunks <= 1) return chunk_sum(begin, end);
  std::vector<double> partials(static_cast<size_t>(chunks), 0.0);
  auto runner = [&partials, &chunk_sum](int64_t c, int64_t b, int64_t e) {
    partials[static_cast<size_t>(c)] = chunk_sum(b, e);
  };
  ParallelForFixedChunks(begin, end, grain, runner, tag);
  double acc = 0.0;
  for (const double p : partials) acc += p;
  return acc;
}

/// Leases a reusable float buffer of at least `size` elements from the
/// calling thread's scratch arena (owned by the exec layer, reused across
/// calls, returned on destruction). Contents are unspecified — callers
/// zero what they use. Kernels lease workspace (e.g. per-chunk partial
/// gradient buffers in conv backward) here instead of allocating per call.
class ScratchLease {
 public:
  explicit ScratchLease(size_t size);
  ~ScratchLease();

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  float* data() { return buffer_->data(); }
  const float* data() const { return buffer_->data(); }
  size_t size() const { return size_; }

 private:
  std::vector<float>* buffer_;
  size_t size_;
};

}  // namespace sthsl::exec

#endif  // STHSL_EXEC_EXEC_H_
