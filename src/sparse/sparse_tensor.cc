#include "sparse/sparse_tensor.h"

#include <utility>

#include "util/check.h"
#include "util/obs/obs.h"

namespace sthsl::sparse {
namespace {

int64_t ProductOf(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t s : shape) n *= s;
  return n;
}

/// Wraps a buffer in a shared handle that participates in the observability
/// layer's tensor-memory accounting, mirroring TensorImpl: the sparsity
/// bench's "peak tensor bytes" therefore covers index and value storage,
/// not just dense float buffers.
template <typename T>
std::shared_ptr<const std::vector<T>> TrackStorage(std::vector<T> buffer) {
  const int64_t bytes =
      static_cast<int64_t>(buffer.size()) * static_cast<int64_t>(sizeof(T));
  if (obs::TraceEnabled()) obs::OnTensorAlloc(bytes);
  return std::shared_ptr<const std::vector<T>>(
      new std::vector<T>(std::move(buffer)), [bytes](const std::vector<T>* p) {
        if (obs::TraceEnabled()) obs::OnTensorFree(bytes);
        delete p;
      });
}

}  // namespace

SparseTensor SparseTensor::FromDense(const float* data,
                                     std::vector<int64_t> shape,
                                     ZeroPolicy policy) {
  STHSL_CHECK(!shape.empty()) << "sparse tensor needs a shape";
  const int64_t numel = ProductOf(shape);
  STHSL_CHECK_GE(numel, 0);
  std::vector<int64_t> indices;
  std::vector<float> values;
  for (int64_t i = 0; i < numel; ++i) {
    if (policy == ZeroPolicy::kDropZeros && data[i] == 0.0f) continue;
    indices.push_back(i);
    values.push_back(data[i]);
  }
  SparseTensor out;
  out.shape_ = std::move(shape);
  out.layout_ = Layout::kCoo;
  out.flat_indices_ = TrackStorage(std::move(indices));
  out.values_ = TrackStorage(std::move(values));
  return out;
}

Result<SparseTensor> SparseTensor::CooFromParts(
    std::vector<int64_t> shape, std::vector<int64_t> flat_indices,
    std::vector<float> values) {
  SparseTensor out;
  out.shape_ = std::move(shape);
  out.layout_ = Layout::kCoo;
  out.flat_indices_ = TrackStorage(std::move(flat_indices));
  out.values_ = TrackStorage(std::move(values));
  Status status = out.Validate();
  if (!status.ok()) return status;
  return out;
}

Result<SparseTensor> SparseTensor::CsrFromParts(std::vector<int64_t> shape,
                                                std::vector<int64_t> row_ptr,
                                                std::vector<int64_t> cols,
                                                std::vector<float> values) {
  SparseTensor out;
  out.shape_ = std::move(shape);
  out.layout_ = Layout::kCsr;
  out.row_ptr_ = TrackStorage(std::move(row_ptr));
  out.cols_ = TrackStorage(std::move(cols));
  out.values_ = TrackStorage(std::move(values));
  Status status = out.Validate();
  if (!status.ok()) return status;
  return out;
}

int64_t SparseTensor::Numel() const { return ProductOf(shape_); }

int64_t SparseTensor::Nnz() const {
  return values_ == nullptr ? 0 : static_cast<int64_t>(values_->size());
}

double SparseTensor::Density() const {
  const int64_t numel = Numel();
  if (numel <= 0) return 0.0;
  return static_cast<double>(Nnz()) / static_cast<double>(numel);
}

int64_t SparseTensor::StorageBytes() const {
  int64_t bytes = 0;
  if (flat_indices_) bytes += static_cast<int64_t>(flat_indices_->size()) * 8;
  if (row_ptr_) bytes += static_cast<int64_t>(row_ptr_->size()) * 8;
  if (cols_) bytes += static_cast<int64_t>(cols_->size()) * 8;
  if (values_) bytes += static_cast<int64_t>(values_->size()) * 4;
  return bytes;
}

SparseTensor SparseTensor::ToCoo() const {
  if (layout_ == Layout::kCoo) return *this;
  STHSL_CHECK(Defined());
  const int64_t ncols = shape_[1];
  const auto& row_ptr = *row_ptr_;
  const auto& cols = *cols_;
  std::vector<int64_t> flat(cols.size());
  for (int64_t r = 0; r + 1 < static_cast<int64_t>(row_ptr.size()); ++r) {
    for (int64_t e = row_ptr[static_cast<size_t>(r)];
         e < row_ptr[static_cast<size_t>(r + 1)]; ++e) {
      flat[static_cast<size_t>(e)] =
          r * ncols + cols[static_cast<size_t>(e)];
    }
  }
  SparseTensor out;
  out.shape_ = shape_;
  out.layout_ = Layout::kCoo;
  out.flat_indices_ = TrackStorage(std::move(flat));
  out.values_ = values_;  // shared, entry order is unchanged
  return out;
}

SparseTensor SparseTensor::ToCsr() const {
  if (layout_ == Layout::kCsr) return *this;
  STHSL_CHECK(Defined());
  STHSL_CHECK_EQ(static_cast<int64_t>(shape_.size()), 2)
      << "CSR is a 2-D layout";
  const int64_t nrows = shape_[0];
  const int64_t ncols = shape_[1];
  const auto& flat = *flat_indices_;
  std::vector<int64_t> row_ptr(static_cast<size_t>(nrows + 1), 0);
  std::vector<int64_t> cols(flat.size());
  // Flat indices are sorted, so entries are already grouped by ascending
  // row with ascending columns inside each row; one pass fills both arrays.
  for (size_t e = 0; e < flat.size(); ++e) {
    const int64_t r = flat[e] / ncols;
    cols[e] = flat[e] % ncols;
    ++row_ptr[static_cast<size_t>(r + 1)];
  }
  for (int64_t r = 0; r < nrows; ++r) {
    row_ptr[static_cast<size_t>(r + 1)] += row_ptr[static_cast<size_t>(r)];
  }
  SparseTensor out;
  out.shape_ = shape_;
  out.layout_ = Layout::kCsr;
  out.row_ptr_ = TrackStorage(std::move(row_ptr));
  out.cols_ = TrackStorage(std::move(cols));
  out.values_ = values_;  // shared, entry order is unchanged
  return out;
}

void SparseTensor::ToDenseInto(float* out) const {
  const int64_t numel = Numel();
  for (int64_t i = 0; i < numel; ++i) out[i] = 0.0f;
  const auto& values = *values_;
  if (layout_ == Layout::kCoo) {
    const auto& flat = *flat_indices_;
    for (size_t e = 0; e < flat.size(); ++e) {
      out[flat[e]] = values[e];
    }
    return;
  }
  const int64_t ncols = shape_[1];
  const auto& row_ptr = *row_ptr_;
  const auto& cols = *cols_;
  for (int64_t r = 0; r + 1 < static_cast<int64_t>(row_ptr.size()); ++r) {
    for (int64_t e = row_ptr[static_cast<size_t>(r)];
         e < row_ptr[static_cast<size_t>(r + 1)]; ++e) {
      out[r * ncols + cols[static_cast<size_t>(e)]] =
          values[static_cast<size_t>(e)];
    }
  }
}

std::vector<float> SparseTensor::ToDense() const {
  std::vector<float> out(static_cast<size_t>(Numel()));
  ToDenseInto(out.data());
  return out;
}

Status SparseTensor::Validate() const {
  if (shape_.empty()) return Status::InvalidArgument("sparse tensor: empty shape");
  for (int64_t s : shape_) {
    if (s < 0) return Status::InvalidArgument("sparse tensor: negative dim");
  }
  if (values_ == nullptr) {
    return Status::InvalidArgument("sparse tensor: missing values");
  }
  const int64_t nnz = Nnz();
  if (layout_ == Layout::kCoo) {
    if (flat_indices_ == nullptr ||
        static_cast<int64_t>(flat_indices_->size()) != nnz) {
      return Status::InvalidArgument(
          "sparse tensor: COO index/value size mismatch");
    }
    const auto& flat = *flat_indices_;
    const int64_t numel = Numel();
    for (int64_t e = 0; e < nnz; ++e) {
      const int64_t idx = flat[static_cast<size_t>(e)];
      if (idx < 0 || idx >= numel) {
        return Status::OutOfRange("sparse tensor: COO index out of range");
      }
      if (e > 0 && idx <= flat[static_cast<size_t>(e - 1)]) {
        return Status::InvalidArgument(
            "sparse tensor: COO indices must be strictly ascending "
            "(sorted, duplicate-free)");
      }
    }
    return Status::Ok();
  }
  if (shape_.size() != 2) {
    return Status::InvalidArgument("sparse tensor: CSR requires rank 2");
  }
  if (row_ptr_ == nullptr ||
      static_cast<int64_t>(row_ptr_->size()) != shape_[0] + 1) {
    return Status::InvalidArgument("sparse tensor: CSR row_ptr size");
  }
  if (cols_ == nullptr || static_cast<int64_t>(cols_->size()) != nnz) {
    return Status::InvalidArgument(
        "sparse tensor: CSR cols/value size mismatch");
  }
  const auto& row_ptr = *row_ptr_;
  const auto& cols = *cols_;
  if (row_ptr.front() != 0 || row_ptr.back() != nnz) {
    return Status::InvalidArgument("sparse tensor: CSR row_ptr endpoints");
  }
  for (size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      return Status::InvalidArgument("sparse tensor: CSR row_ptr not "
                                     "monotone");
    }
    for (int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const int64_t c = cols[static_cast<size_t>(e)];
      if (c < 0 || c >= shape_[1]) {
        return Status::OutOfRange("sparse tensor: CSR column out of range");
      }
      if (e > row_ptr[r] && c <= cols[static_cast<size_t>(e - 1)]) {
        return Status::InvalidArgument(
            "sparse tensor: CSR columns must be strictly ascending within "
            "each row");
      }
    }
  }
  return Status::Ok();
}

const std::vector<int64_t>& SparseTensor::FlatIndices() const {
  STHSL_CHECK(layout_ == Layout::kCoo) << "FlatIndices is a COO accessor";
  return *flat_indices_;
}

const std::vector<int64_t>& SparseTensor::RowPtr() const {
  STHSL_CHECK(layout_ == Layout::kCsr) << "RowPtr is a CSR accessor";
  return *row_ptr_;
}

const std::vector<int64_t>& SparseTensor::Cols() const {
  STHSL_CHECK(layout_ == Layout::kCsr) << "Cols is a CSR accessor";
  return *cols_;
}

const std::vector<float>& SparseTensor::Values() const { return *values_; }

CsrTransposeIndex BuildCsrTranspose(const SparseTensor& csr) {
  STHSL_CHECK(csr.layout() == Layout::kCsr);
  const int64_t nrows = csr.shape()[0];
  const int64_t ncols = csr.shape()[1];
  const auto& row_ptr = csr.RowPtr();
  const auto& cols = csr.Cols();
  const int64_t nnz = csr.Nnz();

  std::vector<int64_t> t_row_ptr(static_cast<size_t>(ncols + 1), 0);
  for (int64_t e = 0; e < nnz; ++e) {
    ++t_row_ptr[static_cast<size_t>(cols[static_cast<size_t>(e)] + 1)];
  }
  for (int64_t c = 0; c < ncols; ++c) {
    t_row_ptr[static_cast<size_t>(c + 1)] +=
        t_row_ptr[static_cast<size_t>(c)];
  }
  std::vector<int64_t> t_cols(static_cast<size_t>(nnz));
  std::vector<int64_t> perm(static_cast<size_t>(nnz));
  std::vector<int64_t> cursor(t_row_ptr.begin(), t_row_ptr.end() - 1);
  // Stable counting sort: scanning original rows in ascending order places
  // each transpose row's entries in ascending original-row order.
  for (int64_t r = 0; r < nrows; ++r) {
    for (int64_t e = row_ptr[static_cast<size_t>(r)];
         e < row_ptr[static_cast<size_t>(r + 1)]; ++e) {
      const int64_t c = cols[static_cast<size_t>(e)];
      const int64_t slot = cursor[static_cast<size_t>(c)]++;
      t_cols[static_cast<size_t>(slot)] = r;
      perm[static_cast<size_t>(slot)] = e;
    }
  }
  CsrTransposeIndex out;
  out.row_ptr = TrackStorage(std::move(t_row_ptr));
  out.cols = TrackStorage(std::move(t_cols));
  out.perm = TrackStorage(std::move(perm));
  return out;
}

}  // namespace sthsl::sparse
