#ifndef STHSL_SPARSE_KERNELS_H_
#define STHSL_SPARSE_KERNELS_H_

#include <cstdint>

namespace sthsl::sparse {

/// Raw sparse compute kernels, dispatched through sthsl::exec with
/// fixed-chunk boundaries (independent of the thread count) and disjoint
/// per-chunk output ranges, so every result below is bitwise-identical at
/// any thread count. The accumulation orders deliberately mirror the dense
/// GEMM loops in src/tensor/matmul.cc — per output element, stored entries
/// are visited in the same ascending order the dense kernel visits all
/// entries — which is what makes dense/sparse parity hold down to the bit
/// (see docs/sparse.md, "Determinism and parity").

/// out(m, n) = A(m, k) · B(k, n) with A in CSR form; `out` must be
/// zero-filled. When `perm` is non-null, entry e reads vals[perm[e]]
/// (transpose dispatch reads original values through the transpose
/// permutation). Row-parallel: each chunk owns disjoint output rows.
void SpmmCsrDense(const int64_t* row_ptr, const int64_t* cols,
                  const float* vals, const int64_t* perm, int64_t m,
                  const float* b, int64_t n, float* out);

/// Gradient of SpMM w.r.t. the stored values: for entry e in row i with
/// column p, dvals[perm ? perm[e] : e] = sum_j g(i, j) · b(p, j). Row-
/// parallel; each entry's dot runs in ascending j, matching the dense
/// GemmNT row-dot.
void SpmmValueGrad(const int64_t* row_ptr, const int64_t* cols,
                   const float* g, const float* b, const int64_t* perm,
                   int64_t m, int64_t n, float* dvals);

/// out(count, width): row i copies table[idx[i]]. Parallel over output
/// rows (disjoint).
void GatherRowsKernel(const float* table, int64_t width, const int64_t* idx,
                      int64_t count, float* out);

/// table_grad[idx[i]] += g[i] for i ascending. Parallel over *columns*
/// (disjoint slices) with a serial ascending-i loop inside, so repeated
/// indices accumulate in a fixed order at any thread count. `table_grad`
/// must be zero-filled by the caller.
void ScatterAddRowsKernel(const float* g, int64_t width, const int64_t* idx,
                          int64_t count, float* table_grad);

/// out[e] = dense[flat[e]] — coordinate gather. Entry-parallel (disjoint).
void GatherFlatKernel(const float* dense, const int64_t* flat, int64_t count,
                      float* out);

/// dense[flat[e]] = g[e] — coordinate scatter into a zero-filled buffer.
/// Flat coordinates are unique (validated), so writes are disjoint.
void ScatterFlatKernel(const float* g, const int64_t* flat, int64_t count,
                       float* dense);

}  // namespace sthsl::sparse

#endif  // STHSL_SPARSE_KERNELS_H_
