#ifndef STHSL_SPARSE_SPARSE_TENSOR_H_
#define STHSL_SPARSE_SPARSE_TENSOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/status.h"

namespace sthsl::sparse {

/// Sparse tensor layer (docs/sparse.md).
///
/// Sits between `exec` and `tensor` in the layer DAG: it stores coordinate
/// structure and raw float values with no dependency on the autograd Tensor
/// type; the autograd-integrated SpMM / gather ops live in
/// src/tensor/sparse_ops.h and include this header. The layout contract:
///
///  - COO: one sorted, duplicate-free flat row-major index per stored
///    entry. Works for any rank (the crime dataset stores its (R, T, C)
///    counts this way).
///  - CSR: 2-D only; `row_ptr` of size rows+1, column indices sorted
///    ascending within each row. The SpMM kernels consume this layout.
///
/// Copies are cheap shared handles; conversions share the value buffer (and
/// COO<->CSR share what index structure survives the layout change), so a
/// matrix held in both layouts stores its values once.

enum class Layout { kCoo, kCsr };

/// What dense->sparse conversion does with cells whose value is exactly
/// zero. `kDropZeros` (the default) stores only nonzeros; `kKeepExplicit`
/// stores every cell, preserving explicit zeros — used when the coordinate
/// *pattern* matters independently of the current values (fixed-pattern
/// gradients never drop a stored coordinate, see docs/sparse.md).
enum class ZeroPolicy { kDropZeros, kKeepExplicit };

class SparseTensor {
 public:
  SparseTensor() = default;

  /// Builds a COO tensor from a dense row-major buffer of `shape`.
  static SparseTensor FromDense(const float* data,
                                std::vector<int64_t> shape,
                                ZeroPolicy policy = ZeroPolicy::kDropZeros);

  /// Builds a COO tensor from explicit parts; fails (never aborts) when the
  /// indices are unsorted, duplicated, out of range, or sized differently
  /// from the values.
  static Result<SparseTensor> CooFromParts(std::vector<int64_t> shape,
                                           std::vector<int64_t> flat_indices,
                                           std::vector<float> values);

  /// Builds a CSR matrix from explicit parts; fails on a malformed row_ptr
  /// (wrong size, non-monotone, bad total) or unsorted/duplicated/escaping
  /// column indices.
  static Result<SparseTensor> CsrFromParts(std::vector<int64_t> shape,
                                           std::vector<int64_t> row_ptr,
                                           std::vector<int64_t> cols,
                                           std::vector<float> values);

  bool Defined() const { return !shape_.empty(); }
  Layout layout() const { return layout_; }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t Numel() const;
  int64_t Nnz() const;
  /// Stored entries / total cells, in [0, 1]; 0 for an empty tensor.
  double Density() const;
  /// Bytes of index + value storage this handle keeps alive (the number the
  /// sparsity bench compares against the 4·numel dense footprint).
  int64_t StorageBytes() const;

  /// Converts to the requested layout. CSR requires rank 2. Conversions out
  /// of a sorted source preserve entry order, so values are shared, never
  /// copied; converting to the current layout returns *this unchanged.
  SparseTensor ToCoo() const;
  SparseTensor ToCsr() const;

  /// Writes the dense row-major image (stored zeros included — they are
  /// simply written over the zero fill) into `out[0, Numel())`.
  void ToDenseInto(float* out) const;
  std::vector<float> ToDense() const;

  /// Re-checks every structural invariant (sorted, deduped, in-range,
  /// consistent sizes). Factories validate on construction; this is exposed
  /// for tests and for callers that mutated storage out-of-band.
  Status Validate() const;

  // Storage accessors. Flat indices / row_ptr+cols are layout-specific;
  // calling the wrong accessor aborts.
  const std::vector<int64_t>& FlatIndices() const;
  const std::vector<int64_t>& RowPtr() const;
  const std::vector<int64_t>& Cols() const;
  const std::vector<float>& Values() const;

 private:
  std::vector<int64_t> shape_;
  Layout layout_ = Layout::kCoo;
  std::shared_ptr<const std::vector<int64_t>> flat_indices_;  // COO
  std::shared_ptr<const std::vector<int64_t>> row_ptr_;       // CSR
  std::shared_ptr<const std::vector<int64_t>> cols_;          // CSR
  std::shared_ptr<const std::vector<float>> values_;
};

/// Transpose index of a 2-D CSR matrix: the CSR structure of A^T plus a
/// permutation mapping each transpose entry back to its original entry, so
/// kernels can read the original value buffer through `perm` and gradient
/// kernels can scatter to the original entry order. Built with a counting
/// sort, so within each transpose row the entries appear in ascending
/// original-row order — exactly the accumulation order of a dense
/// A^T·B GEMM (bitwise parity, see docs/sparse.md).
struct CsrTransposeIndex {
  std::shared_ptr<const std::vector<int64_t>> row_ptr;  // size cols(A)+1
  std::shared_ptr<const std::vector<int64_t>> cols;     // original row ids
  std::shared_ptr<const std::vector<int64_t>> perm;     // -> original entry
};

CsrTransposeIndex BuildCsrTranspose(const SparseTensor& csr);

}  // namespace sthsl::sparse

#endif  // STHSL_SPARSE_SPARSE_TENSOR_H_
