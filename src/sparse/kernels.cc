#include "sparse/kernels.h"

#include <algorithm>
#include <cmath>

#include "exec/exec.h"

namespace sthsl::sparse {
namespace {

// Target flop count per fixed chunk, matching the dense GEMM grain: keeps
// dispatch overhead negligible while letting sparse workloads fill the pool.
constexpr int64_t kSparseGrainFlops = int64_t{1} << 17;

// Fixed-chunk grain over `rows` given the average per-row flop cost. The
// chunk boundaries depend only on the range and this grain — never on the
// thread count — per the exec determinism contract.
int64_t RowGrain(int64_t nnz, int64_t rows, int64_t flops_per_entry) {
  if (rows < 1) return 1;
  const int64_t per_row =
      std::max<int64_t>(1, nnz / rows * std::max<int64_t>(1, flops_per_entry));
  return std::max<int64_t>(1, kSparseGrainFlops / per_row);
}

}  // namespace

void SpmmCsrDense(const int64_t* row_ptr, const int64_t* cols,
                  const float* vals, const int64_t* perm, int64_t m,
                  const float* b, int64_t n, float* out) {
  const int64_t nnz = row_ptr[m];
  exec::ParallelForFixedChunks(
      0, m, RowGrain(nnz, m, 2 * n),
      [=](int64_t, int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          float* crow = out + i * n;
          for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
            const float av = vals[perm != nullptr ? perm[e] : e];
            const float* brow = b + cols[e] * n;
            // Single-rounding fma, like the dense GEMM microkernels: with
            // fma(0, b, acc) == acc exactly, skipping the zero entries
            // leaves the result bitwise equal to the dense product.
            for (int64_t j = 0; j < n; ++j)
              crow[j] = std::fma(av, brow[j], crow[j]);
          }
        }
      },
      "exec/spmm");
}

void SpmmValueGrad(const int64_t* row_ptr, const int64_t* cols,
                   const float* g, const float* b, const int64_t* perm,
                   int64_t m, int64_t n, float* dvals) {
  const int64_t nnz = row_ptr[m];
  exec::ParallelForFixedChunks(
      0, m, RowGrain(nnz, m, 2 * n),
      [=](int64_t, int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const float* grow = g + i * n;
          for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
            const float* brow = b + cols[e] * n;
            float acc = 0.0f;
            for (int64_t j = 0; j < n; ++j)
              acc = std::fma(grow[j], brow[j], acc);
            dvals[perm != nullptr ? perm[e] : e] = acc;
          }
        }
      },
      "exec/spmm_vgrad");
}

void GatherRowsKernel(const float* table, int64_t width, const int64_t* idx,
                      int64_t count, float* out) {
  const int64_t grain = std::max<int64_t>(1, (int64_t{1} << 14) /
                                                 std::max<int64_t>(1, width));
  exec::ParallelForFixedChunks(
      0, count, grain,
      [=](int64_t, int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const float* src = table + idx[i] * width;
          float* dst = out + i * width;
          for (int64_t j = 0; j < width; ++j) dst[j] = src[j];
        }
      },
      "exec/gather_rows");
}

void ScatterAddRowsKernel(const float* g, int64_t width, const int64_t* idx,
                          int64_t count, float* table_grad) {
  const int64_t grain = std::max<int64_t>(1, (int64_t{1} << 14) /
                                                 std::max<int64_t>(1, count));
  // Column-parallel: each chunk owns a disjoint slice of the feature
  // dimension, and inside a chunk the duplicate-index accumulation runs in
  // ascending i — the serial order — at any thread count.
  exec::ParallelForFixedChunks(
      0, width, grain,
      [=](int64_t, int64_t j0, int64_t j1) {
        for (int64_t i = 0; i < count; ++i) {
          const float* src = g + i * width;
          float* dst = table_grad + idx[i] * width;
          for (int64_t j = j0; j < j1; ++j) dst[j] += src[j];
        }
      },
      "exec/scatter_add_rows");
}

void GatherFlatKernel(const float* dense, const int64_t* flat, int64_t count,
                      float* out) {
  exec::ParallelForFixedChunks(
      0, count, int64_t{1} << 14,
      [=](int64_t, int64_t e0, int64_t e1) {
        for (int64_t e = e0; e < e1; ++e) out[e] = dense[flat[e]];
      },
      "exec/gather_flat");
}

void ScatterFlatKernel(const float* g, const int64_t* flat, int64_t count,
                       float* dense) {
  exec::ParallelForFixedChunks(
      0, count, int64_t{1} << 14,
      [=](int64_t, int64_t e0, int64_t e1) {
        for (int64_t e = e0; e < e1; ++e) dense[flat[e]] = g[e];
      },
      "exec/scatter_flat");
}

}  // namespace sthsl::sparse
