#ifndef STHSL_SIMD_VARIANTS_H_
#define STHSL_SIMD_VARIANTS_H_

// Internal to src/simd: per-ISA variant factories consumed by dispatch.cc.
// Each returns nullptr when the variant is not compiled into this binary
// (wrong target architecture); CPU-support checks happen in the dispatcher.

#include "simd/simd.h"

namespace sthsl::simd {

const MicrokernelSet* Avx2KernelsOrNull();
const MicrokernelSet* NeonKernelsOrNull();

}  // namespace sthsl::simd

#endif  // STHSL_SIMD_VARIANTS_H_
