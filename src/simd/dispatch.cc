// Runtime kernel-set selection: detect CPU features once, honor the
// STHSL_SIMD override, fall back to portable with a warning when the
// requested variant is unavailable on this binary/CPU.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "simd/simd.h"
#include "simd/variants.h"
#include "util/obs/calibrate.h"
#include "util/timer.h"

namespace sthsl::simd {
namespace {

// A variant is *available* when it is compiled into this binary AND the
// executing CPU supports it; forcing an unsupported variant via STHSL_SIMD
// must degrade to portable, never SIGILL.
const MicrokernelSet* AvailableAvx2() {
  const CpuFeatures f = DetectCpuFeatures();
  if (!f.avx2 || !f.fma) return nullptr;
  return Avx2KernelsOrNull();
}

const MicrokernelSet* AvailableNeon() { return NeonKernelsOrNull(); }

const MicrokernelSet* SelectKernels() {
  const char* env = std::getenv("STHSL_SIMD");
  if (env != nullptr && env[0] != '\0') {
    const MicrokernelSet* forced = KernelsByName(env);
    if (forced != nullptr) return forced;
    std::fprintf(stderr,
                 "sthsl: STHSL_SIMD=%s is not available on this "
                 "binary/CPU; falling back to portable kernels\n",
                 env);
    return &PortableKernels();
  }
  if (const MicrokernelSet* s = AvailableAvx2()) return s;
  if (const MicrokernelSet* s = AvailableNeon()) return s;
  return &PortableKernels();
}

std::atomic<const MicrokernelSet*> g_test_override{nullptr};

}  // namespace

CpuFeatures DetectCpuFeatures() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#elif defined(__aarch64__)
  f.neon = true;
#endif
  return f;
}

std::string CpuFeatureString() {
  const CpuFeatures f = DetectCpuFeatures();
  std::string s;
  const auto append = [&s](const char* flag) {
    if (!s.empty()) s += ',';
    s += flag;
  };
  if (f.avx2) append("avx2");
  if (f.fma) append("fma");
  if (f.avx512f) append("avx512f");
  if (f.neon) append("neon");
  if (s.empty()) s = "scalar";
  return s;
}

const MicrokernelSet* KernelsByName(const std::string& name) {
  if (name == "portable") return &PortableKernels();
  if (name == "avx2") return AvailableAvx2();
  if (name == "neon") return AvailableNeon();
  return nullptr;
}

const MicrokernelSet& Kernels() {
  static const MicrokernelSet* selected = SelectKernels();
  const MicrokernelSet* forced = g_test_override.load(std::memory_order_acquire);
  return forced != nullptr ? *forced : *selected;
}

void SetKernelsForTesting(const MicrokernelSet* set) {
  g_test_override.store(set, std::memory_order_release);
}

double MeasureFmaThroughputGflops(double seconds_budget) {
  // One full register tile over a 256-deep panel: A (6 KiB) and B (16 KiB)
  // both stay L1/L2-resident, so the loop is bound by the FMA units, not
  // memory. Tiny operand values keep the accumulating C tile finite for
  // any realistic budget.
  constexpr int64_t kKc = 256;
  const std::vector<float> a(
      static_cast<size_t>(kGemmTileRows * kKc), 1e-3f);
  const std::vector<float> b(
      static_cast<size_t>(kKc * kGemmTileCols), 1e-3f);
  // Rotating C tiles: reusing one tile would chain successive calls
  // through its accumulator memory (store-to-load forwarding), which the
  // real GEMM driver — writing a different tile each call — does not do.
  constexpr int64_t kCTiles = 8;
  std::vector<float> c(
      static_cast<size_t>(kCTiles * kGemmTileRows * kGemmTileCols), 0.0f);
  const MicrokernelSet& ks = Kernels();
  // Best block rate, not the whole-budget average: scheduler noise and
  // ramp-up would otherwise drag the "peak" below what the GEMM driver
  // reaches under best-of benchmark timing, and the roofline's
  // percent-of-roof would exceed 100.
  constexpr int64_t kCallsPerBlock = 512;
  double best_block_seconds = 0.0;
  Timer budget_timer;
  do {
    Timer block_timer;
    for (int64_t call = 0; call < kCallsPerBlock; ++call) {
      float* c_tile = c.data() + (call % kCTiles) * kGemmTileRows *
                                     kGemmTileCols;
      ks.gemm_tile(a.data(), b.data(), c_tile, kGemmTileCols,
                   kGemmTileRows, kGemmTileCols, kKc);
    }
    const double block_seconds = block_timer.ElapsedSeconds();
    if (best_block_seconds == 0.0 || block_seconds < best_block_seconds) {
      best_block_seconds = block_seconds;
    }
  } while (budget_timer.ElapsedSeconds() < seconds_budget);
  volatile float sink = c[0];
  (void)sink;
  const double flops = static_cast<double>(kCallsPerBlock) * 2.0 *
                       kGemmTileRows * kGemmTileCols * kKc;
  return best_block_seconds > 0.0 ? flops / best_block_seconds / 1e9 : 0.0;
}

namespace {

// Hands the probe to the calibrator before main() runs; the target pointer
// in util/obs is zero-initialized, so cross-TU initialization order cannot
// bite. Binaries that link the simd layer (everything above util) calibrate
// against the vector peak; a util-only binary keeps the scalar fallback.
[[maybe_unused]] const bool g_fma_probe_registered = [] {
  obs::SetFmaProbe(&MeasureFmaThroughputGflops);
  return true;
}();

}  // namespace

}  // namespace sthsl::simd
