#ifndef STHSL_SIMD_SIMD_H_
#define STHSL_SIMD_SIMD_H_

// Runtime-dispatched SIMD microkernel layer.
//
// Every inner loop of the tensor tier (GEMM register tiles, conv axpy/dot,
// reductions, elementwise strips, optimizer updates) calls through the
// MicrokernelSet selected here once at startup: AVX2+FMA on x86-64, NEON on
// aarch64, and a portable scalar fallback everywhere. The STHSL_SIMD
// environment variable (avx2 | neon | portable) overrides the automatic
// choice for A/B comparisons and debugging; tests can swap sets at runtime
// with SetKernelsForTesting.
//
// Determinism contract (extends the sthsl::exec contract across ISAs): every
// variant of every kernel performs the *same floating-point operations in
// the same order per output element*, so portable and vectorized runs are
// bitwise-identical — down to checkpoint bytes — not merely close:
//
//  - Multiply-accumulate chains (gemm_tile, axpy, optimizer EMAs) use fused
//    multiply-add everywhere: std::fma in the portable kernels, the fused
//    vector instruction (vfmadd/vfma) in the SIMD kernels. One rounding per
//    element per step in all variants.
//  - Lane-parallel elementwise ops (+, -, *, /, max, sqrt, compare/select)
//    are IEEE-754 basic operations: a vector lane computes bit-for-bit what
//    the scalar op computes, so these vectorize freely.
//  - Reductions (dot, reduce_sum, reduce_max) accumulate into 8 fixed lanes
//    (element j goes to lane j mod 8), fold the lanes through one canonical
//    pairwise tree, then add the scalar-accumulated tail:
//        b0=l0+l4  b1=l1+l5  b2=l2+l6  b3=l3+l7
//        c0=b0+b2  c1=b1+b3
//        result = (c0 + c1) + tail
//    The portable kernel implements this tree explicitly; it is exactly the
//    lane fold the 256-bit (and paired 128-bit NEON) horizontal reduction
//    performs.
//  - Transcendentals (exp, log, tanh, pow) are never vectorized: all
//    variants call scalar libm so polynomial-approximation differences
//    between SIMD math libraries can't leak into checkpoints.
//
// The portable kernels in portable.cc are the executable specification;
// simd_test.cc pins every variant against them bitwise, including
// non-multiple-of-vector-width tails.
//
// Intrinsics headers (<immintrin.h>, <arm_neon.h>) are confined to this
// directory — the analyzer's det-intrinsics rule rejects them anywhere else.

#include <cstdint>
#include <string>

namespace sthsl::simd {

/// CPU features detected at startup (x86: cpuid via the compiler builtin;
/// aarch64: NEON is architecturally guaranteed).
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;  // detected and reported; no avx512 kernel set yet
  bool neon = false;
};

/// Detects the features of the executing CPU.
CpuFeatures DetectCpuFeatures();

/// Comma-separated detected feature flags, e.g. "avx2,fma" or "neon";
/// "scalar" when none. Stamped into bench provenance and /statusz.
std::string CpuFeatureString();

/// GEMM register-tile geometry shared by every variant: tiles are kMR rows
/// by kNR columns of C, with the packed B panel laid out kc x kNR.
inline constexpr int64_t kGemmTileRows = 6;
inline constexpr int64_t kGemmTileCols = 16;

/// One ISA variant of the microkernel layer. All buffers are float32; `n`
/// counts elements. Function pointers are never null.
struct MicrokernelSet {
  /// Variant name: "portable", "avx2" or "neon".
  const char* name;

  /// GEMM register tile: for each output element (i, j) with i < mr, j < nr,
  ///   c[i*ldc + j] = fma(a_panel[i*kc + p], b_panel[p*kGemmTileCols + j],
  ///                      c[i*ldc + j])    for p = 0 .. kc-1 ascending.
  /// Accumulates into c (callers pre-initialize). a_panel is mr x kc
  /// row-major; b_panel is kc x kGemmTileCols row-major (only the first nr
  /// columns of each row are read). Requires mr <= kGemmTileRows and
  /// nr <= kGemmTileCols.
  void (*gemm_tile)(const float* a_panel, const float* b_panel, float* c,
                    int64_t ldc, int64_t mr, int64_t nr, int64_t kc);

  /// y[i] = fma(a, x[i], y[i])
  void (*axpy)(int64_t n, float a, const float* x, float* y);

  /// Canonical 8-lane fma dot product (see the reduction contract above).
  float (*dot)(int64_t n, const float* x, const float* y);
  /// Canonical 8-lane sum.
  float (*reduce_sum)(int64_t n, const float* x);
  /// Canonical 8-lane max: lane = (lane > x) ? lane : x, folded through the
  /// canonical tree with the same select. Returns -inf for n == 0.
  float (*reduce_max)(int64_t n, const float* x);

  // Elementwise strips (out may alias x and/or y; same-index access only).
  void (*add)(int64_t n, const float* x, const float* y, float* out);
  void (*sub)(int64_t n, const float* x, const float* y, float* out);
  void (*mul)(int64_t n, const float* x, const float* y, float* out);
  void (*div)(int64_t n, const float* x, const float* y, float* out);
  /// out[i] = x[i] + s
  void (*add_scalar)(int64_t n, const float* x, float s, float* out);
  /// out[i] = x[i] * s
  void (*mul_scalar)(int64_t n, const float* x, float s, float* out);
  /// out[i] = x[i] / s  (true division — not multiplication by 1/s)
  void (*div_scalar)(int64_t n, const float* x, float s, float* out);
  /// out[i] = x[i] > 0 ? x[i] : 0
  void (*relu)(int64_t n, const float* x, float* out);
  /// out[i] = x[i] > 0 ? x[i] : slope * x[i]
  void (*leaky_relu)(int64_t n, const float* x, float slope, float* out);
  /// out[i] = x[i] > floor ? x[i] : floor
  void (*clamp_min)(int64_t n, const float* x, float floor, float* out);

  // Optimizer updates (canonical formulas; see portable.cc).
  /// grad = fma(wd, x, g); x = fma(-lr, grad, x)
  void (*sgd_step)(int64_t n, float* x, const float* g, float lr, float wd);
  /// grad = fma(wd, x, g); v = fma(momentum, v, grad); x = fma(-lr, v, x)
  void (*sgd_momentum_step)(int64_t n, float* x, float* v, const float* g,
                            float lr, float momentum, float wd);
  /// grad = fma(wd, x, g)
  /// m = fma(beta1, m, (1-beta1) * grad)
  /// v = fma(beta2, v, (1-beta2) * (grad * grad))
  /// x = x - (lr * (m / bc1)) / (sqrt(v / bc2) + eps)
  void (*adam_step)(int64_t n, float* x, float* m, float* v, const float* g,
                    float lr, float beta1, float beta2, float eps, float wd,
                    float bc1, float bc2);
};

/// The portable scalar reference set (always available on every target).
const MicrokernelSet& PortableKernels();

/// Looks up a variant by name ("portable", "avx2", "neon"). Returns nullptr
/// for unknown names and for variants not compiled into this binary.
const MicrokernelSet* KernelsByName(const std::string& name);

/// The microkernel set every kernel dispatches through. Selected once on
/// first use: STHSL_SIMD override if set (falling back to portable with a
/// stderr warning when the requested variant is unavailable), else the best
/// set the CPU supports. Stable for the life of the process unless a test
/// installs an override.
const MicrokernelSet& Kernels();

/// Test hook: forces Kernels() to return `set` until called with nullptr.
/// Call only from single-threaded test setup — swapping variants while
/// kernels are in flight is undefined.
void SetKernelsForTesting(const MicrokernelSet* set);

/// Single-thread FMA throughput in GFLOP/s, measured by driving the
/// dispatched gemm_tile microkernel on L1-resident packed panels for about
/// `seconds_budget` seconds. Registered with obs::SetFmaProbe at static
/// init so the roofline calibrator reports the peak the kernels can
/// actually reach on this machine (the calibrator's scalar fallback loop
/// is off by the vector width).
double MeasureFmaThroughputGflops(double seconds_budget);

}  // namespace sthsl::simd

#endif  // STHSL_SIMD_SIMD_H_
