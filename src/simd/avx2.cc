// AVX2+FMA microkernels. Compiled with -mavx2 -mfma -ffp-contract=off (see
// src/CMakeLists.txt); only ever executed after the dispatcher has confirmed
// the CPU supports both features.
//
// Bitwise equivalence with portable.cc rests on three facts: vfmadd performs
// the same single-rounding fma as std::fma; vector +,-,*,/,sqrt and the
// max/compare/blend selects are IEEE-754 lane operations identical to their
// scalar forms; and the horizontal folds below execute exactly the canonical
// 8-lane tree from the simd.h contract. Scalar tails use std::fma so the
// remainder elements see the same chain as in the portable kernels.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>
#include <limits>

#include "simd/variants.h"

namespace sthsl::simd {
namespace {

// Full 6x16 register tile: 12 ymm accumulators, two B loads shared across
// all six rows per k step. Each element's chain is the same ascending-p fma
// sequence the portable kernel runs.
void GemmTile6x16(const float* a_panel, const float* b_panel, float* c,
                  int64_t ldc, int64_t kc) {
  __m256 acc[6][2];
  for (int i = 0; i < 6; ++i) {
    acc[i][0] = _mm256_loadu_ps(c + i * ldc);
    acc[i][1] = _mm256_loadu_ps(c + i * ldc + 8);
  }
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b_panel + p * kGemmTileCols);
    const __m256 b1 = _mm256_loadu_ps(b_panel + p * kGemmTileCols + 8);
    for (int i = 0; i < 6; ++i) {
      const __m256 a = _mm256_broadcast_ss(a_panel + i * kc + p);
      acc[i][0] = _mm256_fmadd_ps(a, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(a, b1, acc[i][1]);
    }
  }
  for (int i = 0; i < 6; ++i) {
    _mm256_storeu_ps(c + i * ldc, acc[i][0]);
    _mm256_storeu_ps(c + i * ldc + 8, acc[i][1]);
  }
}

void GemmTileAvx2(const float* a_panel, const float* b_panel, float* c,
                  int64_t ldc, int64_t mr, int64_t nr, int64_t kc) {
  if (mr == kGemmTileRows && nr == kGemmTileCols) {
    GemmTile6x16(a_panel, b_panel, c, ldc, kc);
    return;
  }
  // Edge tiles: vectorize full 8-wide column groups per row, finish the
  // column remainder with scalar fma.
  const int64_t nr8 = nr & ~int64_t{7};
  for (int64_t i = 0; i < mr; ++i) {
    const float* arow = a_panel + i * kc;
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < nr8; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      for (int64_t p = 0; p < kc; ++p) {
        const __m256 a = _mm256_broadcast_ss(arow + p);
        const __m256 b = _mm256_loadu_ps(b_panel + p * kGemmTileCols + j);
        acc = _mm256_fmadd_ps(a, b, acc);
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    for (int64_t j = nr8; j < nr; ++j) {
      float acc = crow[j];
      for (int64_t p = 0; p < kc; ++p) {
        acc = std::fma(arow[p], b_panel[p * kGemmTileCols + j], acc);
      }
      crow[j] = acc;
    }
  }
}

void AxpyAvx2(int64_t n, float a, const float* x, float* y) {
  const __m256 av = _mm256_set1_ps(a);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 yv = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(av, xv, yv));
  }
  for (int64_t i = n8; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

// Canonical lane fold: b = lo + hi, c = [b0+b2, b1+b3], result = c0 + c1.
inline float FoldAdd(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 b = _mm_add_ps(lo, hi);
  const __m128 c = _mm_add_ps(b, _mm_movehl_ps(b, b));
  const __m128 s = _mm_add_ss(c, _mm_shuffle_ps(c, c, 0x1));
  return _mm_cvtss_f32(s);
}

float DotAvx2(int64_t n, const float* x, const float* y) {
  __m256 acc = _mm256_setzero_ps();
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i),
                          acc);
  }
  float tail = 0.0f;
  for (int64_t i = n8; i < n; ++i) tail = std::fma(x[i], y[i], tail);
  return FoldAdd(acc) + tail;
}

float ReduceSumAvx2(int64_t n, const float* x) {
  __m256 acc = _mm256_setzero_ps();
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + i));
  }
  float tail = 0.0f;
  for (int64_t i = n8; i < n; ++i) tail += x[i];
  return FoldAdd(acc) + tail;
}

inline float MaxSelect(float a, float b) { return a > b ? a : b; }

float ReduceMaxAvx2(int64_t n, const float* x) {
  const float ninf = -std::numeric_limits<float>::infinity();
  // vmaxps(a, b) is exactly the select (a > b) ? a : b per lane.
  __m256 acc = _mm256_set1_ps(ninf);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    acc = _mm256_max_ps(acc, _mm256_loadu_ps(x + i));
  }
  float tail = ninf;
  for (int64_t i = n8; i < n; ++i) tail = MaxSelect(tail, x[i]);
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  const __m128 b = _mm_max_ps(lo, hi);
  const __m128 c = _mm_max_ps(b, _mm_movehl_ps(b, b));
  const __m128 s = _mm_max_ss(c, _mm_shuffle_ps(c, c, 0x1));
  return MaxSelect(_mm_cvtss_f32(s), tail);
}

void AddAvx2(int64_t n, const float* x, const float* y, float* out) {
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (int64_t i = n8; i < n; ++i) out[i] = x[i] + y[i];
}

void SubAvx2(int64_t n, const float* x, const float* y, float* out) {
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_sub_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (int64_t i = n8; i < n; ++i) out[i] = x[i] - y[i];
}

void MulAvx2(int64_t n, const float* x, const float* y, float* out) {
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (int64_t i = n8; i < n; ++i) out[i] = x[i] * y[i];
}

void DivAvx2(int64_t n, const float* x, const float* y, float* out) {
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_div_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (int64_t i = n8; i < n; ++i) out[i] = x[i] / y[i];
}

void AddScalarAvx2(int64_t n, const float* x, float s, float* out) {
  const __m256 sv = _mm256_set1_ps(s);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(x + i), sv));
  }
  for (int64_t i = n8; i < n; ++i) out[i] = x[i] + s;
}

void MulScalarAvx2(int64_t n, const float* x, float s, float* out) {
  const __m256 sv = _mm256_set1_ps(s);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), sv));
  }
  for (int64_t i = n8; i < n; ++i) out[i] = x[i] * s;
}

void DivScalarAvx2(int64_t n, const float* x, float s, float* out) {
  const __m256 sv = _mm256_set1_ps(s);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_div_ps(_mm256_loadu_ps(x + i), sv));
  }
  for (int64_t i = n8; i < n; ++i) out[i] = x[i] / s;
}

void ReluAvx2(int64_t n, const float* x, float* out) {
  // vmaxps(x, 0) == (x > 0) ? x : 0, including -0 -> +0 and NaN -> 0.
  const __m256 zero = _mm256_setzero_ps();
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (int64_t i = n8; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void LeakyReluAvx2(int64_t n, const float* x, float slope, float* out) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 sv = _mm256_set1_ps(slope);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 neg = _mm256_mul_ps(sv, xv);
    const __m256 gt = _mm256_cmp_ps(xv, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(out + i, _mm256_blendv_ps(neg, xv, gt));
  }
  for (int64_t i = n8; i < n; ++i) {
    out[i] = x[i] > 0.0f ? x[i] : slope * x[i];
  }
}

void ClampMinAvx2(int64_t n, const float* x, float floor, float* out) {
  const __m256 fv = _mm256_set1_ps(floor);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_max_ps(_mm256_loadu_ps(x + i), fv));
  }
  for (int64_t i = n8; i < n; ++i) out[i] = x[i] > floor ? x[i] : floor;
}

void SgdStepAvx2(int64_t n, float* x, const float* g, float lr, float wd) {
  const __m256 wdv = _mm256_set1_ps(wd);
  const __m256 nlr = _mm256_set1_ps(-lr);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 grad = _mm256_fmadd_ps(wdv, xv, _mm256_loadu_ps(g + i));
    _mm256_storeu_ps(x + i, _mm256_fmadd_ps(nlr, grad, xv));
  }
  for (int64_t i = n8; i < n; ++i) {
    const float grad = std::fma(wd, x[i], g[i]);
    x[i] = std::fma(-lr, grad, x[i]);
  }
}

void SgdMomentumStepAvx2(int64_t n, float* x, float* v, const float* g,
                         float lr, float momentum, float wd) {
  const __m256 wdv = _mm256_set1_ps(wd);
  const __m256 mo = _mm256_set1_ps(momentum);
  const __m256 nlr = _mm256_set1_ps(-lr);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 grad = _mm256_fmadd_ps(wdv, xv, _mm256_loadu_ps(g + i));
    const __m256 vv = _mm256_fmadd_ps(mo, _mm256_loadu_ps(v + i), grad);
    _mm256_storeu_ps(v + i, vv);
    _mm256_storeu_ps(x + i, _mm256_fmadd_ps(nlr, vv, xv));
  }
  for (int64_t i = n8; i < n; ++i) {
    const float grad = std::fma(wd, x[i], g[i]);
    v[i] = std::fma(momentum, v[i], grad);
    x[i] = std::fma(-lr, v[i], x[i]);
  }
}

void AdamStepAvx2(int64_t n, float* x, float* m, float* v, const float* g,
                  float lr, float beta1, float beta2, float eps, float wd,
                  float bc1, float bc2) {
  const float om1 = 1.0f - beta1;
  const float om2 = 1.0f - beta2;
  const __m256 wdv = _mm256_set1_ps(wd);
  const __m256 b1v = _mm256_set1_ps(beta1);
  const __m256 b2v = _mm256_set1_ps(beta2);
  const __m256 om1v = _mm256_set1_ps(om1);
  const __m256 om2v = _mm256_set1_ps(om2);
  const __m256 bc1v = _mm256_set1_ps(bc1);
  const __m256 bc2v = _mm256_set1_ps(bc2);
  const __m256 lrv = _mm256_set1_ps(lr);
  const __m256 epsv = _mm256_set1_ps(eps);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 grad = _mm256_fmadd_ps(wdv, xv, _mm256_loadu_ps(g + i));
    const __m256 mv =
        _mm256_fmadd_ps(b1v, _mm256_loadu_ps(m + i), _mm256_mul_ps(om1v, grad));
    const __m256 vv =
        _mm256_fmadd_ps(b2v, _mm256_loadu_ps(v + i),
                        _mm256_mul_ps(om2v, _mm256_mul_ps(grad, grad)));
    _mm256_storeu_ps(m + i, mv);
    _mm256_storeu_ps(v + i, vv);
    const __m256 m_hat = _mm256_div_ps(mv, bc1v);
    const __m256 v_hat = _mm256_div_ps(vv, bc2v);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), epsv);
    const __m256 step = _mm256_div_ps(_mm256_mul_ps(lrv, m_hat), denom);
    _mm256_storeu_ps(x + i, _mm256_sub_ps(xv, step));
  }
  for (int64_t i = n8; i < n; ++i) {
    const float grad = std::fma(wd, x[i], g[i]);
    m[i] = std::fma(beta1, m[i], om1 * grad);
    v[i] = std::fma(beta2, v[i], om2 * (grad * grad));
    const float m_hat = m[i] / bc1;
    const float v_hat = v[i] / bc2;
    x[i] = x[i] - (lr * m_hat) / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace

const MicrokernelSet* Avx2KernelsOrNull() {
  static const MicrokernelSet set = {
      "avx2",
      GemmTileAvx2,
      AxpyAvx2,
      DotAvx2,
      ReduceSumAvx2,
      ReduceMaxAvx2,
      AddAvx2,
      SubAvx2,
      MulAvx2,
      DivAvx2,
      AddScalarAvx2,
      MulScalarAvx2,
      DivScalarAvx2,
      ReluAvx2,
      LeakyReluAvx2,
      ClampMinAvx2,
      SgdStepAvx2,
      SgdMomentumStepAvx2,
      AdamStepAvx2,
  };
  return &set;
}

}  // namespace sthsl::simd

#else  // !x86-64

#include "simd/variants.h"

namespace sthsl::simd {
const MicrokernelSet* Avx2KernelsOrNull() { return nullptr; }
}  // namespace sthsl::simd

#endif
