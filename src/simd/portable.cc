// Portable scalar microkernels — the executable specification every SIMD
// variant must match bitwise (see the determinism contract in simd.h).
//
// Multiply-accumulate chains use std::fma so each element sees exactly one
// rounding per step, the same as the fused vector instructions in the AVX2
// and NEON sets. Reductions accumulate into 8 explicit lanes and fold them
// through the canonical pairwise tree; the lane assignment (j mod 8) and the
// fold order are part of the contract, not an implementation detail.

#include <cmath>
#include <limits>

#include "simd/simd.h"

namespace sthsl::simd {
namespace {

void GemmTilePortable(const float* a_panel, const float* b_panel, float* c,
                      int64_t ldc, int64_t mr, int64_t nr, int64_t kc) {
  for (int64_t i = 0; i < mr; ++i) {
    const float* arow = a_panel + i * kc;
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < nr; ++j) {
      float acc = crow[j];
      for (int64_t p = 0; p < kc; ++p) {
        acc = std::fma(arow[p], b_panel[p * kGemmTileCols + j], acc);
      }
      crow[j] = acc;
    }
  }
}

void AxpyPortable(int64_t n, float a, const float* x, float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

// Canonical lane fold shared by the reductions below: the exact tree a
// 256-bit horizontal add performs (low/high 128-bit halves, then pairs).
inline float FoldLanes(const float lane[8], float tail) {
  const float b0 = lane[0] + lane[4];
  const float b1 = lane[1] + lane[5];
  const float b2 = lane[2] + lane[6];
  const float b3 = lane[3] + lane[7];
  const float c0 = b0 + b2;
  const float c1 = b1 + b3;
  return (c0 + c1) + tail;
}

float DotPortable(int64_t n, const float* x, const float* y) {
  float lane[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    for (int64_t k = 0; k < 8; ++k) {
      lane[k] = std::fma(x[i + k], y[i + k], lane[k]);
    }
  }
  float tail = 0.0f;
  for (int64_t i = n8; i < n; ++i) tail = std::fma(x[i], y[i], tail);
  return FoldLanes(lane, tail);
}

float ReduceSumPortable(int64_t n, const float* x) {
  float lane[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    for (int64_t k = 0; k < 8; ++k) lane[k] += x[i + k];
  }
  float tail = 0.0f;
  for (int64_t i = n8; i < n; ++i) tail += x[i];
  return FoldLanes(lane, tail);
}

// The select (a > b) ? a : b mirrors vmaxps(a, b) exactly: on equal operands
// (including +0/-0) and on unordered comparisons it returns b.
inline float MaxSelect(float a, float b) { return a > b ? a : b; }

float ReduceMaxPortable(int64_t n, const float* x) {
  const float ninf = -std::numeric_limits<float>::infinity();
  float lane[8] = {ninf, ninf, ninf, ninf, ninf, ninf, ninf, ninf};
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    for (int64_t k = 0; k < 8; ++k) lane[k] = MaxSelect(lane[k], x[i + k]);
  }
  float tail = ninf;
  for (int64_t i = n8; i < n; ++i) tail = MaxSelect(tail, x[i]);
  const float b0 = MaxSelect(lane[0], lane[4]);
  const float b1 = MaxSelect(lane[1], lane[5]);
  const float b2 = MaxSelect(lane[2], lane[6]);
  const float b3 = MaxSelect(lane[3], lane[7]);
  const float c0 = MaxSelect(b0, b2);
  const float c1 = MaxSelect(b1, b3);
  return MaxSelect(MaxSelect(c0, c1), tail);
}

void AddPortable(int64_t n, const float* x, const float* y, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] + y[i];
}

void SubPortable(int64_t n, const float* x, const float* y, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] - y[i];
}

void MulPortable(int64_t n, const float* x, const float* y, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] * y[i];
}

void DivPortable(int64_t n, const float* x, const float* y, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] / y[i];
}

void AddScalarPortable(int64_t n, const float* x, float s, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] + s;
}

void MulScalarPortable(int64_t n, const float* x, float s, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] * s;
}

void DivScalarPortable(int64_t n, const float* x, float s, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] / s;
}

void ReluPortable(int64_t n, const float* x, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void LeakyReluPortable(int64_t n, const float* x, float slope, float* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = x[i] > 0.0f ? x[i] : slope * x[i];
  }
}

void ClampMinPortable(int64_t n, const float* x, float floor, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = x[i] > floor ? x[i] : floor;
}

void SgdStepPortable(int64_t n, float* x, const float* g, float lr,
                     float wd) {
  for (int64_t i = 0; i < n; ++i) {
    const float grad = std::fma(wd, x[i], g[i]);
    x[i] = std::fma(-lr, grad, x[i]);
  }
}

void SgdMomentumStepPortable(int64_t n, float* x, float* v, const float* g,
                             float lr, float momentum, float wd) {
  for (int64_t i = 0; i < n; ++i) {
    const float grad = std::fma(wd, x[i], g[i]);
    v[i] = std::fma(momentum, v[i], grad);
    x[i] = std::fma(-lr, v[i], x[i]);
  }
}

void AdamStepPortable(int64_t n, float* x, float* m, float* v, const float* g,
                      float lr, float beta1, float beta2, float eps, float wd,
                      float bc1, float bc2) {
  const float om1 = 1.0f - beta1;
  const float om2 = 1.0f - beta2;
  for (int64_t i = 0; i < n; ++i) {
    const float grad = std::fma(wd, x[i], g[i]);
    m[i] = std::fma(beta1, m[i], om1 * grad);
    v[i] = std::fma(beta2, v[i], om2 * (grad * grad));
    const float m_hat = m[i] / bc1;
    const float v_hat = v[i] / bc2;
    x[i] = x[i] - (lr * m_hat) / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace

const MicrokernelSet& PortableKernels() {
  static const MicrokernelSet set = {
      "portable",
      GemmTilePortable,
      AxpyPortable,
      DotPortable,
      ReduceSumPortable,
      ReduceMaxPortable,
      AddPortable,
      SubPortable,
      MulPortable,
      DivPortable,
      AddScalarPortable,
      MulScalarPortable,
      DivScalarPortable,
      ReluPortable,
      LeakyReluPortable,
      ClampMinPortable,
      SgdStepPortable,
      SgdMomentumStepPortable,
      AdamStepPortable,
  };
  return set;
}

}  // namespace sthsl::simd
