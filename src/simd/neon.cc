// NEON (aarch64) microkernels. NEON is architecturally guaranteed on
// aarch64, so this variant needs no runtime feature check.
//
// The 8-lane reduction contract is implemented with paired float32x4
// registers: acc_lo holds lanes 0-3, acc_hi lanes 4-7, and the fold
// vaddq(acc_lo, acc_hi) computes exactly b0..b3 of the canonical tree.
// Selects use vcgtq + vbslq rather than vmaxq because Arm FMAX has
// different signed-zero and NaN semantics than the (a > b) ? a : b select
// the contract specifies.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>
#include <limits>

#include "simd/variants.h"

namespace sthsl::simd {
namespace {

inline float32x4_t SelectGt(float32x4_t a, float32x4_t b) {
  return vbslq_f32(vcgtq_f32(a, b), a, b);
}

void GemmTileNeon(const float* a_panel, const float* b_panel, float* c,
                  int64_t ldc, int64_t mr, int64_t nr, int64_t kc) {
  if (mr == kGemmTileRows && nr == kGemmTileCols) {
    // Full 6x16 tile: 24 quad accumulators, four B loads shared per k step.
    float32x4_t acc[6][4];
    for (int i = 0; i < 6; ++i) {
      for (int q = 0; q < 4; ++q) acc[i][q] = vld1q_f32(c + i * ldc + 4 * q);
    }
    for (int64_t p = 0; p < kc; ++p) {
      const float* brow = b_panel + p * kGemmTileCols;
      const float32x4_t b0 = vld1q_f32(brow);
      const float32x4_t b1 = vld1q_f32(brow + 4);
      const float32x4_t b2 = vld1q_f32(brow + 8);
      const float32x4_t b3 = vld1q_f32(brow + 12);
      for (int i = 0; i < 6; ++i) {
        const float a = a_panel[i * kc + p];
        acc[i][0] = vfmaq_n_f32(acc[i][0], b0, a);
        acc[i][1] = vfmaq_n_f32(acc[i][1], b1, a);
        acc[i][2] = vfmaq_n_f32(acc[i][2], b2, a);
        acc[i][3] = vfmaq_n_f32(acc[i][3], b3, a);
      }
    }
    for (int i = 0; i < 6; ++i) {
      for (int q = 0; q < 4; ++q) vst1q_f32(c + i * ldc + 4 * q, acc[i][q]);
    }
    return;
  }
  const int64_t nr4 = nr & ~int64_t{3};
  for (int64_t i = 0; i < mr; ++i) {
    const float* arow = a_panel + i * kc;
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < nr4; j += 4) {
      float32x4_t acc = vld1q_f32(crow + j);
      for (int64_t p = 0; p < kc; ++p) {
        acc = vfmaq_n_f32(acc, vld1q_f32(b_panel + p * kGemmTileCols + j),
                          arow[p]);
      }
      vst1q_f32(crow + j, acc);
    }
    for (int64_t j = nr4; j < nr; ++j) {
      float acc = crow[j];
      for (int64_t p = 0; p < kc; ++p) {
        acc = std::fma(arow[p], b_panel[p * kGemmTileCols + j], acc);
      }
      crow[j] = acc;
    }
  }
}

void AxpyNeon(int64_t n, float a, const float* x, float* y) {
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    vst1q_f32(y + i, vfmaq_n_f32(vld1q_f32(y + i), vld1q_f32(x + i), a));
  }
  for (int64_t i = n4; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

// Canonical fold from paired quads: b = lo + hi gives [b0,b1,b2,b3];
// [c0,c1] = [b0+b2, b1+b3]; result = (c0 + c1) + tail.
inline float FoldAdd(float32x4_t acc_lo, float32x4_t acc_hi, float tail) {
  const float32x4_t b = vaddq_f32(acc_lo, acc_hi);
  const float32x2_t c = vadd_f32(vget_low_f32(b), vget_high_f32(b));
  return (vget_lane_f32(c, 0) + vget_lane_f32(c, 1)) + tail;
}

float DotNeon(int64_t n, const float* x, const float* y) {
  float32x4_t acc_lo = vdupq_n_f32(0.0f);
  float32x4_t acc_hi = vdupq_n_f32(0.0f);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    acc_lo = vfmaq_f32(acc_lo, vld1q_f32(x + i), vld1q_f32(y + i));
    acc_hi = vfmaq_f32(acc_hi, vld1q_f32(x + i + 4), vld1q_f32(y + i + 4));
  }
  float tail = 0.0f;
  for (int64_t i = n8; i < n; ++i) tail = std::fma(x[i], y[i], tail);
  return FoldAdd(acc_lo, acc_hi, tail);
}

float ReduceSumNeon(int64_t n, const float* x) {
  float32x4_t acc_lo = vdupq_n_f32(0.0f);
  float32x4_t acc_hi = vdupq_n_f32(0.0f);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    acc_lo = vaddq_f32(acc_lo, vld1q_f32(x + i));
    acc_hi = vaddq_f32(acc_hi, vld1q_f32(x + i + 4));
  }
  float tail = 0.0f;
  for (int64_t i = n8; i < n; ++i) tail += x[i];
  return FoldAdd(acc_lo, acc_hi, tail);
}

inline float MaxSelect(float a, float b) { return a > b ? a : b; }

float ReduceMaxNeon(int64_t n, const float* x) {
  const float ninf = -std::numeric_limits<float>::infinity();
  float32x4_t acc_lo = vdupq_n_f32(ninf);
  float32x4_t acc_hi = vdupq_n_f32(ninf);
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = 0; i < n8; i += 8) {
    acc_lo = SelectGt(acc_lo, vld1q_f32(x + i));
    acc_hi = SelectGt(acc_hi, vld1q_f32(x + i + 4));
  }
  float tail = ninf;
  for (int64_t i = n8; i < n; ++i) tail = MaxSelect(tail, x[i]);
  const float32x4_t b = SelectGt(acc_lo, acc_hi);
  const float32x2_t blo = vget_low_f32(b);
  const float32x2_t bhi = vget_high_f32(b);
  const float c0 = MaxSelect(vget_lane_f32(blo, 0), vget_lane_f32(bhi, 0));
  const float c1 = MaxSelect(vget_lane_f32(blo, 1), vget_lane_f32(bhi, 1));
  return MaxSelect(MaxSelect(c0, c1), tail);
}

void AddNeon(int64_t n, const float* x, const float* y, float* out) {
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  }
  for (int64_t i = n4; i < n; ++i) out[i] = x[i] + y[i];
}

void SubNeon(int64_t n, const float* x, const float* y, float* out) {
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    vst1q_f32(out + i, vsubq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  }
  for (int64_t i = n4; i < n; ++i) out[i] = x[i] - y[i];
}

void MulNeon(int64_t n, const float* x, const float* y, float* out) {
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  }
  for (int64_t i = n4; i < n; ++i) out[i] = x[i] * y[i];
}

void DivNeon(int64_t n, const float* x, const float* y, float* out) {
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    vst1q_f32(out + i, vdivq_f32(vld1q_f32(x + i), vld1q_f32(y + i)));
  }
  for (int64_t i = n4; i < n; ++i) out[i] = x[i] / y[i];
}

void AddScalarNeon(int64_t n, const float* x, float s, float* out) {
  const float32x4_t sv = vdupq_n_f32(s);
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(x + i), sv));
  }
  for (int64_t i = n4; i < n; ++i) out[i] = x[i] + s;
}

void MulScalarNeon(int64_t n, const float* x, float s, float* out) {
  const float32x4_t sv = vdupq_n_f32(s);
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(x + i), sv));
  }
  for (int64_t i = n4; i < n; ++i) out[i] = x[i] * s;
}

void DivScalarNeon(int64_t n, const float* x, float s, float* out) {
  const float32x4_t sv = vdupq_n_f32(s);
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    vst1q_f32(out + i, vdivq_f32(vld1q_f32(x + i), sv));
  }
  for (int64_t i = n4; i < n; ++i) out[i] = x[i] / s;
}

void ReluNeon(int64_t n, const float* x, float* out) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    vst1q_f32(out + i, SelectGt(vld1q_f32(x + i), zero));
  }
  for (int64_t i = n4; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void LeakyReluNeon(int64_t n, const float* x, float slope, float* out) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    const float32x4_t xv = vld1q_f32(x + i);
    const float32x4_t neg = vmulq_n_f32(xv, slope);
    vst1q_f32(out + i, vbslq_f32(vcgtq_f32(xv, zero), xv, neg));
  }
  for (int64_t i = n4; i < n; ++i) {
    out[i] = x[i] > 0.0f ? x[i] : slope * x[i];
  }
}

void ClampMinNeon(int64_t n, const float* x, float floor, float* out) {
  const float32x4_t fv = vdupq_n_f32(floor);
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    vst1q_f32(out + i, SelectGt(vld1q_f32(x + i), fv));
  }
  for (int64_t i = n4; i < n; ++i) out[i] = x[i] > floor ? x[i] : floor;
}

void SgdStepNeon(int64_t n, float* x, const float* g, float lr, float wd) {
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    const float32x4_t xv = vld1q_f32(x + i);
    const float32x4_t grad = vfmaq_n_f32(vld1q_f32(g + i), xv, wd);
    vst1q_f32(x + i, vfmaq_n_f32(xv, grad, -lr));
  }
  for (int64_t i = n4; i < n; ++i) {
    const float grad = std::fma(wd, x[i], g[i]);
    x[i] = std::fma(-lr, grad, x[i]);
  }
}

void SgdMomentumStepNeon(int64_t n, float* x, float* v, const float* g,
                         float lr, float momentum, float wd) {
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    const float32x4_t xv = vld1q_f32(x + i);
    const float32x4_t grad = vfmaq_n_f32(vld1q_f32(g + i), xv, wd);
    const float32x4_t vv = vfmaq_n_f32(grad, vld1q_f32(v + i), momentum);
    vst1q_f32(v + i, vv);
    vst1q_f32(x + i, vfmaq_n_f32(xv, vv, -lr));
  }
  for (int64_t i = n4; i < n; ++i) {
    const float grad = std::fma(wd, x[i], g[i]);
    v[i] = std::fma(momentum, v[i], grad);
    x[i] = std::fma(-lr, v[i], x[i]);
  }
}

void AdamStepNeon(int64_t n, float* x, float* m, float* v, const float* g,
                  float lr, float beta1, float beta2, float eps, float wd,
                  float bc1, float bc2) {
  const float om1 = 1.0f - beta1;
  const float om2 = 1.0f - beta2;
  const float32x4_t bc1v = vdupq_n_f32(bc1);
  const float32x4_t bc2v = vdupq_n_f32(bc2);
  const float32x4_t epsv = vdupq_n_f32(eps);
  const int64_t n4 = n & ~int64_t{3};
  for (int64_t i = 0; i < n4; i += 4) {
    const float32x4_t xv = vld1q_f32(x + i);
    const float32x4_t grad = vfmaq_n_f32(vld1q_f32(g + i), xv, wd);
    const float32x4_t mv =
        vfmaq_n_f32(vmulq_n_f32(grad, om1), vld1q_f32(m + i), beta1);
    const float32x4_t vv = vfmaq_n_f32(
        vmulq_n_f32(vmulq_f32(grad, grad), om2), vld1q_f32(v + i), beta2);
    vst1q_f32(m + i, mv);
    vst1q_f32(v + i, vv);
    const float32x4_t m_hat = vdivq_f32(mv, bc1v);
    const float32x4_t v_hat = vdivq_f32(vv, bc2v);
    const float32x4_t denom = vaddq_f32(vsqrtq_f32(v_hat), epsv);
    const float32x4_t step = vdivq_f32(vmulq_n_f32(m_hat, lr), denom);
    vst1q_f32(x + i, vsubq_f32(xv, step));
  }
  for (int64_t i = n4; i < n; ++i) {
    const float grad = std::fma(wd, x[i], g[i]);
    m[i] = std::fma(beta1, m[i], om1 * grad);
    v[i] = std::fma(beta2, v[i], om2 * (grad * grad));
    const float m_hat = m[i] / bc1;
    const float v_hat = v[i] / bc2;
    x[i] = x[i] - (lr * m_hat) / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace

const MicrokernelSet* NeonKernelsOrNull() {
  static const MicrokernelSet set = {
      "neon",
      GemmTileNeon,
      AxpyNeon,
      DotNeon,
      ReduceSumNeon,
      ReduceMaxNeon,
      AddNeon,
      SubNeon,
      MulNeon,
      DivNeon,
      AddScalarNeon,
      MulScalarNeon,
      DivScalarNeon,
      ReluNeon,
      LeakyReluNeon,
      ClampMinNeon,
      SgdStepNeon,
      SgdMomentumStepNeon,
      AdamStepNeon,
  };
  return &set;
}

}  // namespace sthsl::simd

#else  // !aarch64

#include "simd/variants.h"

namespace sthsl::simd {
const MicrokernelSet* NeonKernelsOrNull() { return nullptr; }
}  // namespace sthsl::simd

#endif
