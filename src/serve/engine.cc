#include "serve/engine.h"

#include <cmath>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/obs/log_histogram.h"
#include "util/obs/metrics.h"
#include "util/timer.h"

namespace sthsl::serve {

InferenceEngine::InferenceEngine(LoadedBundle bundle, EngineConfig config)
    : bundle_(std::move(bundle)),
      cache_(config.cache_entries, config.cache_shards) {
  STHSL_CHECK(bundle_.model != nullptr) << "engine needs a loaded bundle";
  STHSL_CHECK(bundle_.model->SupportsWindowPredict())
      << bundle_.manifest.model << " cannot serve raw windows";
  Forecaster* model = bundle_.model.get();
  batcher_ = std::make_unique<MicroBatcher>(
      config.batcher, [model](const std::vector<Tensor>& windows) {
        auto& registry = obs::MetricsRegistry::Global();
        registry.GetCounter("serve/batches").Add(1);
        // LogHistogram: fixed memory however many batches the process
        // serves (the exact Histogram would grow one sample per batch).
        registry.GetLogHistogram("serve/batch_size")
            .Record(static_cast<double>(windows.size()));
        return model->PredictWindows(windows);
      });
}

InferenceEngine::~InferenceEngine() { Shutdown(); }

void InferenceEngine::Shutdown() { batcher_->Shutdown(); }

Result<InferenceEngine::Prediction> InferenceEngine::Predict(
    const Tensor& window) {
  Timer timer;
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("serve/requests").Add(1);

  const std::vector<int64_t> expected = bundle_.manifest.WindowShape();
  if (!window.Defined() || window.Shape() != expected) {
    registry.GetCounter("serve/errors").Add(1);
    std::string got = "none";
    if (window.Defined()) {
      got = "[";
      for (size_t i = 0; i < window.Shape().size(); ++i) {
        got += (i == 0 ? "" : ", ") + std::to_string(window.Shape()[i]);
      }
      got += "]";
    }
    return Status::InvalidArgument(
        "window shape " + got + " does not match the bundle's (R, W, C) = [" +
        std::to_string(expected[0]) + ", " + std::to_string(expected[1]) +
        ", " + std::to_string(expected[2]) + "]");
  }
  for (float value : window.Data()) {
    if (!std::isfinite(value)) {
      registry.GetCounter("serve/errors").Add(1);
      return Status::InvalidArgument("window contains non-finite values");
    }
  }

  Prediction result;
  Timer cache_timer;
  const bool cache_hit = cache_.Lookup(window, &result.values);
  result.cache_lookup_us = cache_timer.ElapsedMicros();
  if (cache_hit) {
    result.cache_hit = true;
    registry.GetCounter("serve/cache_hits").Add(1);
  } else {
    registry.GetCounter("serve/cache_misses").Add(1);
    MicroBatcher::Ticket ticket = batcher_->Submit(window).get();
    if (!ticket.value.Defined()) {
      registry.GetCounter("serve/errors").Add(1);
      return Status::Internal("engine is shutting down");
    }
    cache_.Insert(window, ticket.value);
    result.values = std::move(ticket.value);
    result.queue_wait_us = ticket.queue_wait_us;
    result.batch_assembly_us = ticket.batch_assembly_us;
    result.inference_us = ticket.inference_us;
    result.batch_size = ticket.batch_size;
  }
  result.latency_us = timer.ElapsedMicros();
  registry.GetLogHistogram("serve/latency_us").Record(result.latency_us);
  return result;
}

}  // namespace sthsl::serve
