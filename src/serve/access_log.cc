#include "serve/access_log.h"

#include <cinttypes>
#include <cstdlib>
#include <sstream>

#include "util/logging.h"
#include "util/obs/export.h"

namespace sthsl::serve {
namespace {

// %.3f keeps microsecond records readable (nanosecond precision) without
// locale surprises; all stage values are non-negative by construction.
void AppendMicros(std::string* out, double us) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  *out += buf;
}

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const int64_t parsed = std::atoll(value);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

AccessLog& AccessLog::Global() {
  static AccessLog* log = [] {
    auto* instance = new AccessLog();
    const char* path = std::getenv("STHSL_ACCESS_LOG");
    if (path != nullptr && path[0] != '\0') {
      instance->Configure(
          path, EnvInt64("STHSL_ACCESS_LOG_MAX_BYTES", int64_t{64} << 20),
          static_cast<double>(EnvInt64("STHSL_SLOW_REQUEST_US", 0)));
    }
    return instance;
  }();
  return *log;
}

void AccessLog::Configure(const std::string& path, int64_t max_bytes,
                          double slow_threshold_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  path_ = path;
  max_bytes_ = max_bytes;
  slow_threshold_us_ = slow_threshold_us;
  written_bytes_ = 0;
  if (path_.empty()) {
    enabled_ = false;
    return;
  }
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr) {
    STHSL_LOG(Error) << "access log: cannot open " << path_
                     << "; logging disabled";
    enabled_ = false;
    return;
  }
  // Appending to an existing file: count what is already there toward the
  // rotation budget.
  const long offset = std::ftell(file_);
  written_bytes_ = offset > 0 ? offset : 0;
  enabled_ = true;
}

void AccessLog::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  const std::string rotated = path_ + ".1";
  std::remove(rotated.c_str());
  if (std::rename(path_.c_str(), rotated.c_str()) != 0) {
    STHSL_LOG(Warning) << "access log: rotation rename failed for " << path_;
  }
  file_ = std::fopen(path_.c_str(), "w");
  written_bytes_ = 0;
  if (file_ == nullptr) {
    STHSL_LOG(Error) << "access log: cannot reopen " << path_
                     << " after rotation; logging disabled";
    enabled_ = false;
  }
}

void AccessLog::Write(const Record& record) {
  if (!enabled_ || record.context == nullptr) return;
  const RequestContext& context = *record.context;
  const bool slow =
      slow_threshold_us_ > 0.0 && record.total_us > slow_threshold_us_;

  std::string line;
  line.reserve(360);
  line += "{\"ts\":\"";
  line += internal_logging::FormatTimestampIso8601();
  line += "\",\"trace_id\":\"";
  line += context.trace_id;
  line += "\",\"span_id\":\"";
  line += context.span_id;
  line += "\",\"method\":\"";
  line += obs::JsonEscape(record.method);
  line += "\",\"path\":\"";
  line += obs::JsonEscape(record.path);
  line += "\",\"status\":";
  line += std::to_string(record.status);
  line += ",\"bytes\":";
  line += std::to_string(record.bytes);
  line += ",\"total_us\":";
  AppendMicros(&line, record.total_us);
  line += ",\"stages\":{";
  for (int i = 0; i < kNumStages; ++i) {
    if (i > 0) line += ',';
    line += '"';
    line += StageName(static_cast<Stage>(i));
    line += "\":";
    AppendMicros(&line, context.stage_us[static_cast<size_t>(i)]);
  }
  line += '}';
  if (record.batch_size >= 0) {
    line += ",\"cache_hit\":";
    line += record.cache_hit ? "true" : "false";
    line += ",\"batch_size\":";
    line += std::to_string(record.batch_size);
  }
  if (slow) line += ",\"slow\":true";
  line += "}\n";

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr) return;
    if (written_bytes_ + static_cast<int64_t>(line.size()) > max_bytes_ &&
        written_bytes_ > 0) {
      RotateLocked();
      if (file_ == nullptr) return;
    }
    std::fwrite(line.data(), 1, line.size(), file_);
    written_bytes_ += static_cast<int64_t>(line.size());
  }

  if (slow) {
    std::ostringstream breakdown;
    breakdown.precision(6);
    for (int i = 0; i < kNumStages; ++i) {
      if (i > 0) breakdown << ' ';
      breakdown << StageName(static_cast<Stage>(i)) << '='
                << context.stage_us[static_cast<size_t>(i)] << "us";
    }
    STHSL_LOG(Warning) << "slow request trace=" << context.trace_id << ' '
                       << record.method << ' ' << record.path
                       << " total=" << record.total_us << "us over threshold "
                       << slow_threshold_us_ << "us: " << breakdown.str();
  }
}

void AccessLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace sthsl::serve
