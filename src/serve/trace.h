#ifndef STHSL_SERVE_TRACE_H_
#define STHSL_SERVE_TRACE_H_

#include <array>
#include <cstdint>
#include <string>

namespace sthsl::serve {

/// Request-scoped tracing for the serving tier (see docs/observability.md,
/// "Request tracing & serving metrics").
///
/// Every request gets a RequestContext carrying a W3C trace id: accepted
/// from an incoming `traceparent` header when it is well-formed, generated
/// otherwise, and echoed back in the response so a client (sthsl_loadgen,
/// an upstream proxy) can join its own measurements against the server's
/// per-stage breakdown. The context accumulates one duration per pipeline
/// stage; the service publishes them into per-stage LogHistograms, the
/// chrome://tracing buffer ("serve" category) and the JSONL access log.

/// The fixed stages of the predict pipeline, in request order.
enum class Stage {
  kHeaderParse = 0,  // HTTP request line + header fields
  kBodyParse,        // JSON body → validated window tensor
  kCacheLookup,      // sharded LRU probe
  kQueueWait,        // submit → the micro-batcher dequeues the request
  kBatchAssembly,    // dequeue → batch handed to the model
  kInference,        // batched forward pass
  kSerialize,        // prediction → JSON response body
};
inline constexpr int kNumStages = 7;

/// Stable lowercase stage name ("header_parse", ...), used for metric
/// names, trace span names and access-log keys.
const char* StageName(Stage stage);

struct RequestContext {
  /// 32 lowercase hex chars, never all-zero.
  std::string trace_id;
  /// This request's own span id: 16 lowercase hex chars, never all-zero.
  std::string span_id;
  /// True when trace_id was accepted from the incoming traceparent header
  /// (as opposed to generated here).
  bool propagated = false;

  std::array<double, kNumStages> stage_us{};

  void AddStage(Stage stage, double us) {
    stage_us[static_cast<size_t>(stage)] += us;
  }
  double StageUs(Stage stage) const {
    return stage_us[static_cast<size_t>(stage)];
  }

  /// `00-<trace_id>-<span_id>-01`, the header value echoed to the client.
  std::string TraceparentHeader() const;
};

/// Parses a W3C traceparent value ("00-<32 hex>-<16 hex>-<2 hex>"). Returns
/// true and fills trace_id/parent_span_id on a well-formed header whose
/// trace id is not all zeros; malformed headers are rejected wholesale (the
/// caller generates fresh ids instead of trusting partial input).
bool ParseTraceparent(const std::string& header, std::string* trace_id,
                      std::string* parent_span_id);

/// Builds the context for one request: adopts `traceparent_header` when
/// valid (empty string = header absent), generates ids otherwise. Id
/// generation draws from a process-wide PRNG that SeedTraceIds can pin.
RequestContext MakeRequestContext(const std::string& traceparent_header);

/// Re-seeds the trace-id generator deterministically (tests). Ids from a
/// seeded generator form a reproducible sequence; the process default seed
/// comes from std::random_device.
void SeedTraceIds(uint64_t seed);

}  // namespace sthsl::serve

#endif  // STHSL_SERVE_TRACE_H_
