#ifndef STHSL_SERVE_ENGINE_H_
#define STHSL_SERVE_ENGINE_H_

#include <cstdint>
#include <memory>

#include "serve/batcher.h"
#include "serve/bundle.h"
#include "serve/cache.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace sthsl::serve {

struct EngineConfig {
  MicroBatcher::Config batcher;
  /// Total prediction-cache entries (0 disables the cache).
  int64_t cache_entries = 1024;
  int64_t cache_shards = 8;
};

/// The inference engine behind every endpoint: validates request windows
/// against the bundle geometry, answers repeats from the sharded LRU cache,
/// and funnels misses through the dynamic micro-batcher into batched
/// Forecaster::PredictWindows calls. Publishes serve/* metrics into the
/// process obs registry (see docs/serving.md).
class InferenceEngine {
 public:
  struct Prediction {
    Tensor values;  // (R, C) non-negative counts
    bool cache_hit = false;
    double latency_us = 0.0;
    /// Stage breakdown (microseconds) for request tracing. The batcher
    /// stages are zero — and batch_size is 0 — on cache hits.
    double cache_lookup_us = 0.0;
    double queue_wait_us = 0.0;
    double batch_assembly_us = 0.0;
    double inference_us = 0.0;
    int64_t batch_size = 0;
  };

  InferenceEngine(LoadedBundle bundle, EngineConfig config);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Blocking predict for one (R, W, C) window. InvalidArgument on a window
  /// whose shape does not match the bundle or that contains non-finite
  /// values; Internal when the engine is shutting down.
  Result<Prediction> Predict(const Tensor& window);

  const BundleManifest& manifest() const { return bundle_.manifest; }

  PredictionCache::Stats cache_stats() const { return cache_.GetStats(); }
  MicroBatcher::Stats batcher_stats() const { return batcher_->GetStats(); }

  /// Graceful drain: in-flight predictions finish, new ones fail fast.
  void Shutdown();

 private:
  LoadedBundle bundle_;
  PredictionCache cache_;
  std::unique_ptr<MicroBatcher> batcher_;
};

}  // namespace sthsl::serve

#endif  // STHSL_SERVE_ENGINE_H_
