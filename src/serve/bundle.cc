#include "serve/bundle.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "nn/serialization.h"
#include "util/json_mini.h"
#include "util/logging.h"

namespace sthsl::serve {
namespace {

using sthsl::json::JsonQuote;
using sthsl::json::JsonValue;

/// Shortest float32 rendering that round-trips exactly through strtod.
std::string JsonFloat(float value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(value));
  return buf;
}

const char* PredictionSourceName(PredictionSource source) {
  switch (source) {
    case PredictionSource::kGlobal: return "global";
    case PredictionSource::kLocal: return "local";
    case PredictionSource::kFusion: return "fusion";
  }
  return "global";
}

Status ParsePredictionSource(const std::string& name,
                             PredictionSource* out) {
  if (name == "global") {
    *out = PredictionSource::kGlobal;
  } else if (name == "local") {
    *out = PredictionSource::kLocal;
  } else if (name == "fusion") {
    *out = PredictionSource::kFusion;
  } else {
    return Status::InvalidArgument("manifest arch.prediction_source '" +
                                   name + "' is not global/local/fusion");
  }
  return Status::Ok();
}

std::string RenderManifest(const BundleManifest& m) {
  std::ostringstream out;
  const SthslConfig& c = m.config;
  out << "{\n"
      << "  \"bundle\": \"sthsl\",\n"
      << "  \"schema\": " << m.schema << ",\n"
      << "  \"model\": " << JsonQuote(m.model) << ",\n"
      << "  \"window\": " << c.train.window << ",\n"
      << "  \"arch\": {\n"
      << "    \"dim\": " << c.dim << ",\n"
      << "    \"num_hyperedges\": " << c.num_hyperedges << ",\n"
      << "    \"kernel_size\": " << c.kernel_size << ",\n"
      << "    \"global_temporal_layers\": " << c.global_temporal_layers
      << ",\n"
      << "    \"dropout\": " << JsonFloat(c.dropout) << ",\n"
      << "    \"leaky_slope\": " << JsonFloat(c.leaky_slope) << ",\n"
      << "    \"lambda1\": " << JsonFloat(c.lambda1) << ",\n"
      << "    \"lambda2\": " << JsonFloat(c.lambda2) << ",\n"
      << "    \"temperature\": " << JsonFloat(c.temperature) << ",\n"
      << "    \"use_local_encoder\": " << (c.use_local_encoder ? "true" : "false") << ",\n"
      << "    \"use_spatial_conv\": " << (c.use_spatial_conv ? "true" : "false") << ",\n"
      << "    \"use_temporal_conv\": " << (c.use_temporal_conv ? "true" : "false") << ",\n"
      << "    \"use_category_conv\": " << (c.use_category_conv ? "true" : "false") << ",\n"
      << "    \"use_hypergraph\": " << (c.use_hypergraph ? "true" : "false") << ",\n"
      << "    \"use_global_temporal\": " << (c.use_global_temporal ? "true" : "false") << ",\n"
      << "    \"use_infomax\": " << (c.use_infomax ? "true" : "false") << ",\n"
      << "    \"use_contrastive\": " << (c.use_contrastive ? "true" : "false") << ",\n"
      << "    \"prediction_source\": \""
      << PredictionSourceName(c.prediction_source) << "\"\n"
      << "  },\n"
      << "  \"dataset\": {\n"
      << "    \"city\": " << JsonQuote(m.city) << ",\n"
      << "    \"rows\": " << m.rows << ",\n"
      << "    \"cols\": " << m.cols << ",\n"
      << "    \"categories\": " << m.categories << ",\n"
      << "    \"category_names\": [";
  for (size_t i = 0; i < m.category_names.size(); ++i) {
    out << (i == 0 ? "" : ", ") << JsonQuote(m.category_names[i]);
  }
  out << "],\n"
      << "    \"generator_seed\": " << m.generator_seed << "\n"
      << "  },\n"
      << "  \"normalization\": {\n"
      << "    \"mean\": " << JsonFloat(m.mean) << ",\n"
      << "    \"stddev\": " << JsonFloat(m.stddev) << "\n"
      << "  },\n"
      << "  \"provenance\": {\n"
      << "    \"train_seed\": " << m.train_seed << ",\n"
      << "    \"git_hash\": " << JsonQuote(m.git_hash) << ",\n"
      << "    \"created_utc\": " << JsonQuote(m.created_utc) << ",\n"
      << "    \"tool\": " << JsonQuote(m.tool) << "\n"
      << "  },\n"
      << "  \"weights\": " << JsonQuote(m.weights_file) << "\n"
      << "}\n";
  return out.str();
}

// -- Manifest parsing helpers: every failure names the offending field. ------

Status MissingField(const std::string& field) {
  return Status::InvalidArgument("bundle manifest: missing or mistyped field '" +
                                 field + "'");
}

Status GetInt(const JsonValue& obj, const std::string& field, int64_t* out) {
  const JsonValue* v = obj.FindOfKind(field, JsonValue::Kind::kNumber);
  if (v == nullptr) return MissingField(field);
  *out = static_cast<int64_t>(v->number);
  return Status::Ok();
}

Status GetFloat(const JsonValue& obj, const std::string& field, float* out) {
  const JsonValue* v = obj.FindOfKind(field, JsonValue::Kind::kNumber);
  if (v == nullptr) return MissingField(field);
  *out = static_cast<float>(v->number);
  return Status::Ok();
}

Status GetBool(const JsonValue& obj, const std::string& field, bool* out) {
  const JsonValue* v = obj.FindOfKind(field, JsonValue::Kind::kBool);
  if (v == nullptr) return MissingField(field);
  *out = v->boolean;
  return Status::Ok();
}

Status GetString(const JsonValue& obj, const std::string& field,
                 std::string* out) {
  const JsonValue* v = obj.FindOfKind(field, JsonValue::Kind::kString);
  if (v == nullptr) return MissingField(field);
  *out = v->text;
  return Status::Ok();
}

#define SERVE_RETURN_IF_ERROR(expr)            \
  do {                                         \
    const ::sthsl::Status _s = (expr);         \
    if (!_s.ok()) return _s;                   \
  } while (0)

Status ParseManifestJson(const std::string& text, BundleManifest* m) {
  JsonValue root;
  std::string error;
  if (!sthsl::json::JsonParser(text).Parse(&root, &error)) {
    return Status::InvalidArgument("bundle manifest is not valid JSON: " +
                                   error);
  }
  if (!root.Is(JsonValue::Kind::kObject)) {
    return Status::InvalidArgument("bundle manifest root is not an object");
  }
  std::string kind;
  SERVE_RETURN_IF_ERROR(GetString(root, "bundle", &kind));
  if (kind != "sthsl") {
    return Status::InvalidArgument("bundle manifest kind '" + kind +
                                   "' is not 'sthsl'");
  }
  SERVE_RETURN_IF_ERROR(GetInt(root, "schema", &m->schema));
  if (m->schema != 1) {
    return Status::InvalidArgument("unsupported bundle schema " +
                                   std::to_string(m->schema) +
                                   " (this build reads schema 1)");
  }
  SERVE_RETURN_IF_ERROR(GetString(root, "model", &m->model));
  SERVE_RETURN_IF_ERROR(GetInt(root, "window", &m->config.train.window));
  SERVE_RETURN_IF_ERROR(GetString(root, "weights", &m->weights_file));

  const JsonValue* arch = root.FindOfKind("arch", JsonValue::Kind::kObject);
  if (arch == nullptr) return MissingField("arch");
  SthslConfig& c = m->config;
  SERVE_RETURN_IF_ERROR(GetInt(*arch, "dim", &c.dim));
  SERVE_RETURN_IF_ERROR(GetInt(*arch, "num_hyperedges", &c.num_hyperedges));
  SERVE_RETURN_IF_ERROR(GetInt(*arch, "kernel_size", &c.kernel_size));
  SERVE_RETURN_IF_ERROR(
      GetInt(*arch, "global_temporal_layers", &c.global_temporal_layers));
  SERVE_RETURN_IF_ERROR(GetFloat(*arch, "dropout", &c.dropout));
  SERVE_RETURN_IF_ERROR(GetFloat(*arch, "leaky_slope", &c.leaky_slope));
  SERVE_RETURN_IF_ERROR(GetFloat(*arch, "lambda1", &c.lambda1));
  SERVE_RETURN_IF_ERROR(GetFloat(*arch, "lambda2", &c.lambda2));
  SERVE_RETURN_IF_ERROR(GetFloat(*arch, "temperature", &c.temperature));
  SERVE_RETURN_IF_ERROR(
      GetBool(*arch, "use_local_encoder", &c.use_local_encoder));
  SERVE_RETURN_IF_ERROR(
      GetBool(*arch, "use_spatial_conv", &c.use_spatial_conv));
  SERVE_RETURN_IF_ERROR(
      GetBool(*arch, "use_temporal_conv", &c.use_temporal_conv));
  SERVE_RETURN_IF_ERROR(
      GetBool(*arch, "use_category_conv", &c.use_category_conv));
  SERVE_RETURN_IF_ERROR(GetBool(*arch, "use_hypergraph", &c.use_hypergraph));
  SERVE_RETURN_IF_ERROR(
      GetBool(*arch, "use_global_temporal", &c.use_global_temporal));
  SERVE_RETURN_IF_ERROR(GetBool(*arch, "use_infomax", &c.use_infomax));
  SERVE_RETURN_IF_ERROR(
      GetBool(*arch, "use_contrastive", &c.use_contrastive));
  std::string source;
  SERVE_RETURN_IF_ERROR(GetString(*arch, "prediction_source", &source));
  SERVE_RETURN_IF_ERROR(ParsePredictionSource(source, &c.prediction_source));

  const JsonValue* dataset =
      root.FindOfKind("dataset", JsonValue::Kind::kObject);
  if (dataset == nullptr) return MissingField("dataset");
  SERVE_RETURN_IF_ERROR(GetString(*dataset, "city", &m->city));
  SERVE_RETURN_IF_ERROR(GetInt(*dataset, "rows", &m->rows));
  SERVE_RETURN_IF_ERROR(GetInt(*dataset, "cols", &m->cols));
  SERVE_RETURN_IF_ERROR(GetInt(*dataset, "categories", &m->categories));
  SERVE_RETURN_IF_ERROR(
      GetInt(*dataset, "generator_seed", &m->generator_seed));
  const JsonValue* names =
      dataset->FindOfKind("category_names", JsonValue::Kind::kArray);
  if (names == nullptr) return MissingField("dataset.category_names");
  m->category_names.clear();
  for (const JsonValue& item : names->items) {
    if (!item.Is(JsonValue::Kind::kString)) {
      return MissingField("dataset.category_names");
    }
    m->category_names.push_back(item.text);
  }

  const JsonValue* norm =
      root.FindOfKind("normalization", JsonValue::Kind::kObject);
  if (norm == nullptr) return MissingField("normalization");
  SERVE_RETURN_IF_ERROR(GetFloat(*norm, "mean", &m->mean));
  SERVE_RETURN_IF_ERROR(GetFloat(*norm, "stddev", &m->stddev));

  const JsonValue* prov =
      root.FindOfKind("provenance", JsonValue::Kind::kObject);
  if (prov == nullptr) return MissingField("provenance");
  int64_t train_seed = 0;
  SERVE_RETURN_IF_ERROR(GetInt(*prov, "train_seed", &train_seed));
  m->train_seed = static_cast<uint64_t>(train_seed);
  SERVE_RETURN_IF_ERROR(GetString(*prov, "git_hash", &m->git_hash));
  SERVE_RETURN_IF_ERROR(GetString(*prov, "created_utc", &m->created_utc));
  SERVE_RETURN_IF_ERROR(GetString(*prov, "tool", &m->tool));

  // Cross-field consistency: a manifest that parses but cannot describe a
  // runnable network is rejected here rather than at first request.
  if (m->rows <= 0 || m->cols <= 0 || m->categories <= 0) {
    return Status::InvalidArgument(
        "bundle manifest: dataset rows/cols/categories must be positive");
  }
  if (m->config.train.window <= 0) {
    return Status::InvalidArgument("bundle manifest: window must be >= 1");
  }
  if (!m->category_names.empty() &&
      static_cast<int64_t>(m->category_names.size()) != m->categories) {
    return Status::InvalidArgument(
        "bundle manifest: category_names lists " +
        std::to_string(m->category_names.size()) + " names but categories=" +
        std::to_string(m->categories));
  }
  if (!(m->stddev > 0.0f)) {
    return Status::InvalidArgument(
        "bundle manifest: normalization.stddev must be > 0");
  }
  if (m->weights_file.empty() ||
      m->weights_file.find('/') != std::string::npos) {
    return Status::InvalidArgument(
        "bundle manifest: weights must name a file inside the bundle");
  }
  return Status::Ok();
}

#undef SERVE_RETURN_IF_ERROR

}  // namespace

Status WriteBundle(const SthslForecaster& model, const std::string& dir,
                   const BundleManifest& provenance) {
  const SthslNet* net = model.net();
  if (net == nullptr) {
    return Status::FailedPrecondition(
        "cannot export a bundle before the model is fitted/materialized");
  }
  BundleManifest manifest = provenance;
  manifest.schema = 1;
  manifest.model = model.Name();
  manifest.config = net->config();
  manifest.rows = net->grid_rows();
  manifest.cols = net->grid_cols();
  manifest.categories = net->num_categories();
  manifest.mean = net->mean();
  manifest.stddev = net->stddev();
  manifest.train_seed = model.train_config().seed;
  if (manifest.git_hash.empty()) manifest.git_hash = "unknown";
  if (manifest.created_utc.empty()) {
    manifest.created_utc = internal_logging::FormatTimestampIso8601();
  }
  if (manifest.weights_file.empty()) manifest.weights_file = "weights.bin";

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create bundle directory " + dir + ": " +
                           ec.message());
  }
  const Status weights =
      SaveCheckpoint(*net, dir + "/" + manifest.weights_file);
  if (!weights.ok()) return weights;

  const std::string manifest_path = dir + "/manifest.json";
  std::ofstream out(manifest_path);
  if (!out.is_open()) {
    return Status::IoError("cannot open " + manifest_path + " for writing");
  }
  out << RenderManifest(manifest);
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + manifest_path);
  return Status::Ok();
}

Result<BundleManifest> ReadManifest(const std::string& dir) {
  const std::string path = dir + "/manifest.json";
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open bundle manifest " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  BundleManifest manifest;
  const Status parsed = ParseManifestJson(text.str(), &manifest);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.message());
  }
  return manifest;
}

Result<LoadedBundle> LoadBundle(const std::string& dir) {
  Result<BundleManifest> manifest_or = ReadManifest(dir);
  if (!manifest_or.ok()) return manifest_or.status();
  LoadedBundle bundle;
  bundle.manifest = std::move(manifest_or).value();

  bundle.model = std::make_unique<SthslForecaster>(bundle.manifest.config,
                                                   bundle.manifest.model);
  bundle.model->MaterializeForInference(
      bundle.manifest.rows, bundle.manifest.cols, bundle.manifest.categories,
      bundle.manifest.mean, bundle.manifest.stddev);
  const Status loaded =
      LoadCheckpoint(*bundle.model->mutable_net(),
                     dir + "/" + bundle.manifest.weights_file);
  if (!loaded.ok()) {
    return Status::FailedPrecondition(
        "bundle weights do not match the manifest architecture: " +
        loaded.ToString());
  }
  return bundle;
}

}  // namespace sthsl::serve
