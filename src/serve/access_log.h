#ifndef STHSL_SERVE_ACCESS_LOG_H_
#define STHSL_SERVE_ACCESS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "serve/trace.h"

namespace sthsl::serve {

/// Structured JSONL access log for the serving tier: exactly one record per
/// completed HTTP response (including error responses), written as a single
/// JSON object per line:
///
///   {"ts":"2026-08-08T12:00:00.123Z","trace_id":"...","span_id":"...",
///    "method":"POST","path":"/predict","status":200,"bytes":412,
///    "total_us":184.2,"stages":{"header_parse":3.1,...},
///    "cache_hit":false,"batch_size":4}
///
/// Disabled by default; enabled by pointing STHSL_ACCESS_LOG at a file path
/// (or Configure in tests). When disabled, `enabled()` is a single inline
/// branch on a plain bool, so the request path pays nothing.
///
/// Rotation is size-based: once the file exceeds the max (default 64 MiB,
/// override via STHSL_ACCESS_LOG_MAX_BYTES), it is renamed to `<path>.1`
/// (replacing any previous `.1`) and a fresh file is opened — bounded disk
/// use, at most two generations.
///
/// Slow-request capture: requests whose total exceeds STHSL_SLOW_REQUEST_US
/// (or the Configure threshold) get `"slow":true` in their record and a
/// WARNING log line with the full per-stage breakdown.
class AccessLog {
 public:
  /// One record, assembled by the service/HTTP layer per response.
  struct Record {
    const RequestContext* context = nullptr;  // required
    std::string method;
    std::string path;
    int status = 0;
    int64_t bytes = 0;      // response body bytes
    double total_us = 0.0;  // wall time from first parsed byte to send
    // Predict-only detail; negative batch_size means "not applicable" and
    // the fields are omitted from the record.
    bool cache_hit = false;
    int64_t batch_size = -1;
  };

  /// Process-wide instance, configured once from the environment.
  static AccessLog& Global();

  /// Reconfigures the log (tests; also used by Global's env setup).
  /// An empty path disables logging. `slow_threshold_us <= 0` disables
  /// slow-request capture.
  void Configure(const std::string& path, int64_t max_bytes,
                 double slow_threshold_us);

  /// True when records are being written. Inline so the disabled path is a
  /// single branch with no call.
  bool enabled() const { return enabled_; }

  /// Appends one record (no-op when disabled). Thread-safe; handles
  /// rotation and slow-request capture internally.
  void Write(const Record& record);

  /// Flushes and closes the current file without disabling future writes
  /// (tests inspect the file between requests).
  void Flush();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

 private:
  AccessLog() = default;

  void RotateLocked();

  // `enabled_` is written only under mu_ (Configure) but read lock-free on
  // the hot path; a stale read merely skips/keeps one record during a
  // reconfigure race, which only tests exercise.
  bool enabled_ = false;

  mutable std::mutex mu_;
  std::string path_;             // guarded by mu_
  std::FILE* file_ = nullptr;    // guarded by mu_
  int64_t written_bytes_ = 0;    // guarded by mu_
  int64_t max_bytes_ = 0;        // guarded by mu_
  double slow_threshold_us_ = 0;  // guarded by mu_
};

}  // namespace sthsl::serve

#endif  // STHSL_SERVE_ACCESS_LOG_H_
