#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/access_log.h"
#include "util/logging.h"
#include "util/obs/obs.h"
#include "util/timer.h"

namespace sthsl::serve {
namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
// Receive timeout: short enough that idle keep-alive connections notice a
// drain promptly, long enough to stay off the CPU.
constexpr int kRecvTimeoutMs = 100;

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

/// Sends the whole buffer, riding out short writes. MSG_NOSIGNAL keeps a
/// peer that hung up from killing the process with SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Guarantees every completed response carries a trace context and echoes
/// a traceparent header. Handlers that attached a context (predict) keep
/// it; every other response — health, metrics, 404/405, parse failures —
/// gets one synthesized here, so the echo and the access-log record are
/// universal.
void FinalizeResponse(const HttpRequest& request, double header_parse_us,
                      HttpResponse* response) {
  if (response->trace.trace_id.empty()) {
    const auto it = request.headers.find("traceparent");
    response->trace = MakeRequestContext(
        it != request.headers.end() ? it->second : std::string());
    response->trace.AddStage(Stage::kHeaderParse, header_parse_us);
  }
  for (const auto& [name, value] : response->headers) {
    if (name == "traceparent") return;
  }
  response->headers.emplace_back("traceparent",
                                 response->trace.TraceparentHeader());
}

/// One access-log record per completed response; the single call site per
/// response path in HandleConnection is what makes "exactly once" hold.
void LogAccess(const std::string& method, const std::string& path,
               const HttpResponse& response, double total_us) {
  AccessLog& log = AccessLog::Global();
  if (!log.enabled()) return;
  AccessLog::Record record;
  record.context = &response.trace;
  record.method = method;
  record.path = path;
  record.status = response.status;
  record.bytes = static_cast<int64_t>(response.body.size());
  record.total_us = total_us;
  record.cache_hit = response.cache_hit;
  record.batch_size = response.batch_size;
  log.Write(record);
}

}  // namespace

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpParse ParseHttpRequest(const std::string& buffer, size_t max_body_bytes,
                           HttpRequest* out, size_t* consumed) {
  const size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return buffer.size() > kMaxHeaderBytes ? HttpParse::kBadRequest
                                           : HttpParse::kNeedMore;
  }
  if (header_end > kMaxHeaderBytes) return HttpParse::kBadRequest;

  // Request line.
  const size_t line_end = buffer.find("\r\n");
  const std::string request_line = buffer.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      request_line.find(' ', sp2 + 1) != std::string::npos) {
    return HttpParse::kBadRequest;
  }
  HttpRequest request;
  request.method = request_line.substr(0, sp1);
  request.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  request.version = request_line.substr(sp2 + 1);
  if (request.method.empty() || request.target.empty() ||
      request.target[0] != '/' ||
      request.version.rfind("HTTP/1.", 0) != 0) {
    return HttpParse::kBadRequest;
  }

  // Header fields.
  size_t cursor = line_end + 2;
  while (cursor < header_end) {
    const size_t eol = buffer.find("\r\n", cursor);
    const std::string line = buffer.substr(cursor, eol - cursor);
    cursor = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return HttpParse::kBadRequest;  // also rejects folded continuations
    }
    const std::string name = ToLower(Trim(line.substr(0, colon)));
    if (name.find(' ') != std::string::npos || name.find('\t') != std::string::npos) {
      return HttpParse::kBadRequest;
    }
    request.headers[name] = Trim(line.substr(colon + 1));
  }

  if (request.headers.count("transfer-encoding") != 0) {
    return HttpParse::kBadRequest;  // chunked bodies are not supported
  }

  size_t content_length = 0;
  const auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    const std::string& text = it->second;
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos ||
        text.size() > 12) {
      return HttpParse::kBadRequest;
    }
    content_length = static_cast<size_t>(std::stoull(text));
  }
  if (content_length > max_body_bytes) return HttpParse::kPayloadTooLarge;

  const size_t body_begin = header_end + 4;
  if (buffer.size() - body_begin < content_length) {
    return HttpParse::kNeedMore;
  }
  request.body = buffer.substr(body_begin, content_length);
  *consumed = body_begin + content_length;
  *out = std::move(request);
  return HttpParse::kOk;
}

std::string RenderHttpResponse(const HttpResponse& response,
                               bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

HttpServer::HttpServer() = default;

HttpServer::~HttpServer() { Drain(); }

void HttpServer::Route(const std::string& method, const std::string& path,
                       Handler handler) {
  routes_[method + " " + path] = std::move(handler);
}

Status HttpServer::Start(const std::string& host, int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind " + host + ":" + std::to_string(port) +
                           ": " + error);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen(): " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("getsockname(): " + error);
  }
  port_ = ntohs(bound.sin_port);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener closed or fatal error
    }
    timeval timeout{};
    timeout.tv_usec = kRecvTimeoutMs * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void HttpServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[16 * 1024];
  bool close_connection = false;
  while (!close_connection) {
    // Serve every complete request already buffered before reading more.
    // The timer restarts every iteration, so on the iteration that parses
    // a complete request it measures parse → handler → send without the
    // network wait that preceded it (stage sums stay ≤ total_us).
    size_t consumed = 0;
    HttpRequest request;
    Timer total_timer;
    const double parse_start_us =
        obs::TraceEnabled() ? obs::TraceNowMicros() : 0.0;
    const HttpParse parsed =
        ParseHttpRequest(buffer, max_body_bytes_, &request, &consumed);
    const double parse_us = total_timer.ElapsedMicros();
    if (parsed == HttpParse::kOk) {
      request.header_parse_us = parse_us;
      if (obs::TraceEnabled()) {
        obs::RecordServeSpan("serve/header_parse", parse_start_us, parse_us);
      }
      buffer.erase(0, consumed);
      const bool keep_alive =
          !stopping_.load() &&
          ToLower(request.headers.count("connection") != 0
                      ? request.headers.at("connection")
                      : "keep-alive") != "close";
      HttpResponse response;
      const auto route = routes_.find(request.method + " " + request.target);
      if (route != routes_.end()) {
        response = route->second(request);
      } else {
        // Distinguish a wrong method on a known path from an unknown path.
        bool path_known = false;
        for (const auto& [key, handler] : routes_) {
          const size_t space = key.find(' ');
          if (key.compare(space + 1, std::string::npos, request.target) == 0) {
            path_known = true;
            break;
          }
        }
        response.status = path_known ? 405 : 404;
        response.body = std::string("{\"error\": \"") +
                        (path_known ? "method not allowed" : "not found") +
                        "\"}";
      }
      FinalizeResponse(request, parse_us, &response);
      requests_served_.fetch_add(1);
      const bool sent = SendAll(fd, RenderHttpResponse(response, keep_alive));
      LogAccess(request.method, request.target, response,
                total_timer.ElapsedMicros());
      if (!sent) break;
      close_connection = !keep_alive;
      continue;
    }
    if (parsed == HttpParse::kBadRequest ||
        parsed == HttpParse::kPayloadTooLarge) {
      HttpResponse response;
      response.status = parsed == HttpParse::kBadRequest ? 400 : 413;
      response.body = parsed == HttpParse::kBadRequest
                          ? "{\"error\": \"malformed HTTP request\"}"
                          : "{\"error\": \"request body too large\"}";
      // `request` was never filled: the synthesized context carries fresh
      // ids and the record has no method/path to report.
      FinalizeResponse(request, parse_us, &response);
      requests_served_.fetch_add(1);
      SendAll(fd, RenderHttpResponse(response, /*keep_alive=*/false));
      LogAccess(request.method, request.target, response,
                total_timer.ElapsedMicros());
      break;
    }
    // kNeedMore: pull more bytes; the receive timeout lets us notice drain.
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      // Idle: a half-received request keeps waiting, an idle connection
      // closes once the server is draining.
      if (stopping_.load() && buffer.empty()) break;
      continue;
    }
    break;  // hard receive error
  }
  ::close(fd);
}

void HttpServer::Drain() {
  if (stopping_.exchange(true)) {
    // A second drain still waits for the first to have joined everything.
  }
  if (listen_fd_ >= 0) {
    // shutdown() unblocks the accept() so the accept thread can exit.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // After the accept thread has exited no new connection threads appear.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  if (port_ != 0) {
    STHSL_LOG(Info) << "http server on port " << port_ << " drained ("
                    << requests_served_.load() << " requests served)";
  }
}

}  // namespace sthsl::serve
