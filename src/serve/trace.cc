#include "serve/trace.h"

#include <mutex>
#include <random>

namespace sthsl::serve {
namespace {

bool IsLowerHex(const std::string& text) {
  for (char c : text) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return !text.empty();
}

bool AllZero(const std::string& text) {
  for (char c : text) {
    if (c != '0') return false;
  }
  return true;
}

std::string HexDigits(uint64_t value, int digits) {
  static const char* kHex = "0123456789abcdef";
  std::string out(static_cast<size_t>(digits), '0');
  for (int i = digits - 1; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[value & 0xf];
    value >>= 4;
  }
  return out;
}

// splitmix64: tiny, full-period, and seedable — plenty for trace ids, which
// need uniqueness within a process, not cryptographic strength.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct IdGenerator {
  std::mutex mu;
  uint64_t state = 0;  // guarded by mu
};

IdGenerator& Generator() {
  static IdGenerator* generator = [] {
    auto* g = new IdGenerator();
    std::random_device device;
    g->state = (static_cast<uint64_t>(device()) << 32) ^ device();
    return g;
  }();
  return *generator;
}

uint64_t NextNonZeroId() {
  IdGenerator& generator = Generator();
  std::lock_guard<std::mutex> lock(generator.mu);
  uint64_t id = 0;
  while (id == 0) id = SplitMix64(&generator.state);
  return id;
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kHeaderParse:
      return "header_parse";
    case Stage::kBodyParse:
      return "body_parse";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kBatchAssembly:
      return "batch_assembly";
    case Stage::kInference:
      return "inference";
    case Stage::kSerialize:
      return "serialize";
  }
  return "unknown";
}

std::string RequestContext::TraceparentHeader() const {
  std::string out;
  out.reserve(2 + 1 + 32 + 1 + 16 + 1 + 2);
  out += "00-";
  out += trace_id;
  out += '-';
  out += span_id;
  out += "-01";
  return out;
}

bool ParseTraceparent(const std::string& header, std::string* trace_id,
                      std::string* parent_span_id) {
  // version(2) '-' trace-id(32) '-' parent-id(16) '-' flags(2) == 55 chars.
  if (header.size() != 55) return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') return false;
  const std::string version = header.substr(0, 2);
  const std::string trace = header.substr(3, 32);
  const std::string parent = header.substr(36, 16);
  const std::string flags = header.substr(53, 2);
  if (!IsLowerHex(version) || !IsLowerHex(trace) || !IsLowerHex(parent) ||
      !IsLowerHex(flags)) {
    return false;
  }
  // Version ff is reserved-invalid; all-zero ids are explicitly invalid.
  if (version == "ff" || AllZero(trace) || AllZero(parent)) return false;
  *trace_id = trace;
  *parent_span_id = parent;
  return true;
}

RequestContext MakeRequestContext(const std::string& traceparent_header) {
  RequestContext context;
  std::string parent_span;
  if (!traceparent_header.empty() &&
      ParseTraceparent(traceparent_header, &context.trace_id, &parent_span)) {
    context.propagated = true;
  } else {
    context.trace_id =
        HexDigits(NextNonZeroId(), 16) + HexDigits(NextNonZeroId(), 16);
  }
  // Always a fresh span id: this server is a new span in the trace, whether
  // or not the trace id was inherited.
  context.span_id = HexDigits(NextNonZeroId(), 16);
  return context;
}

void SeedTraceIds(uint64_t seed) {
  IdGenerator& generator = Generator();
  std::lock_guard<std::mutex> lock(generator.mu);
  generator.state = seed;
}

}  // namespace sthsl::serve
