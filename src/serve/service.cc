#include "serve/service.h"

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "util/json_mini.h"
#include "util/obs/metrics.h"

namespace sthsl::serve {
namespace {

using sthsl::json::JsonQuote;
using sthsl::json::JsonValue;

std::string FloatText(float value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(value));
  return buf;
}

std::string DoubleText(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\": " + JsonQuote(message) + "}";
  return response;
}

int StatusToHttp(const Status& status) {
  switch (status.code()) {
    case Status::Code::kInvalidArgument: return 400;
    case Status::Code::kInternal: return 503;  // engine draining
    default: return 500;
  }
}

}  // namespace

PredictService::PredictService(InferenceEngine* engine) : engine_(engine) {}

void PredictService::Register(HttpServer* server) {
  server->Route("POST", "/v1/predict",
                [this](const HttpRequest& r) { return HandlePredict(r); });
  server->Route("GET", "/healthz",
                [this](const HttpRequest& r) { return HandleHealth(r); });
  server->Route("GET", "/metrics",
                [this](const HttpRequest& r) { return HandleMetrics(r); });
}

HttpResponse PredictService::HandlePredict(const HttpRequest& request) {
  JsonValue root;
  std::string error;
  if (!sthsl::json::JsonParser(request.body).Parse(&root, &error) ||
      !root.Is(JsonValue::Kind::kObject)) {
    return ErrorResponse(400, "request body is not a JSON object: " + error);
  }
  const JsonValue* window_json =
      root.FindOfKind("window", JsonValue::Kind::kArray);
  if (window_json == nullptr) {
    return ErrorResponse(400, "missing 'window': flat array of R*W*C counts");
  }

  const BundleManifest& manifest = engine_->manifest();
  std::vector<int64_t> shape = manifest.WindowShape();
  if (const JsonValue* shape_json =
          root.FindOfKind("shape", JsonValue::Kind::kArray)) {
    shape.clear();
    for (const JsonValue& extent : shape_json->items) {
      // Bound-check before Tensor::FromVector: a hostile extent must come
      // back as a 400, not abort the process inside the tensor library.
      if (!extent.Is(JsonValue::Kind::kNumber) || extent.number < 1 ||
          extent.number > 1e9) {
        return ErrorResponse(400,
                             "'shape' must be an array of positive integers");
      }
      shape.push_back(static_cast<int64_t>(extent.number));
    }
  }
  int64_t numel = 1;
  for (int64_t extent : shape) numel *= extent;
  if (static_cast<int64_t>(window_json->items.size()) != numel ||
      numel <= 0) {
    return ErrorResponse(
        400, "'window' holds " + std::to_string(window_json->items.size()) +
                 " values but the shape needs " + std::to_string(numel));
  }
  std::vector<float> values;
  values.reserve(window_json->items.size());
  for (const JsonValue& item : window_json->items) {
    if (!item.Is(JsonValue::Kind::kNumber)) {
      return ErrorResponse(400, "'window' must contain only numbers");
    }
    values.push_back(static_cast<float>(item.number));
  }

  Result<InferenceEngine::Prediction> prediction =
      engine_->Predict(Tensor::FromVector(std::move(shape), std::move(values)));
  if (!prediction.ok()) {
    return ErrorResponse(StatusToHttp(prediction.status()),
                         prediction.status().message());
  }

  const InferenceEngine::Prediction& p = prediction.value();
  std::string body = "{\"model\": " + JsonQuote(manifest.model) +
                     ", \"shape\": [" + std::to_string(p.values.Size(0)) +
                     ", " + std::to_string(p.values.Size(1)) +
                     "], \"prediction\": [";
  const std::vector<float>& data = p.values.Data();
  for (size_t i = 0; i < data.size(); ++i) {
    body += (i == 0 ? "" : ", ") + FloatText(data[i]);
  }
  body += "], \"cache_hit\": ";
  body += p.cache_hit ? "true" : "false";
  body += ", \"latency_us\": " + DoubleText(p.latency_us) + "}";
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

HttpResponse PredictService::HandleHealth(const HttpRequest& request) {
  const BundleManifest& m = engine_->manifest();
  HttpResponse response;
  response.body = "{\"status\": \"ok\", \"model\": " + JsonQuote(m.model) +
                  ", \"city\": " + JsonQuote(m.city) +
                  ", \"rows\": " + std::to_string(m.rows) +
                  ", \"cols\": " + std::to_string(m.cols) +
                  ", \"categories\": " + std::to_string(m.categories) +
                  ", \"window\": " + std::to_string(m.config.train.window) +
                  ", \"git_hash\": " + JsonQuote(m.git_hash) + "}";
  return response;
}

HttpResponse PredictService::HandleMetrics(const HttpRequest& request) {
  auto& registry = obs::MetricsRegistry::Global();
  const PredictionCache::Stats cache = engine_->cache_stats();
  const MicroBatcher::Stats batcher = engine_->batcher_stats();
  std::ostringstream body;
  body << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : registry.Counters()) {
    body << (first ? "" : ", ") << JsonQuote(name) << ": " << value;
    first = false;
  }
  body << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : registry.Gauges()) {
    body << (first ? "" : ", ") << JsonQuote(name) << ": "
         << DoubleText(value);
    first = false;
  }
  body << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, snapshot] : registry.Histograms()) {
    body << (first ? "" : ", ") << JsonQuote(name) << ": {\"count\": "
         << snapshot.count << ", \"min\": " << DoubleText(snapshot.min)
         << ", \"max\": " << DoubleText(snapshot.max)
         << ", \"mean\": " << DoubleText(snapshot.mean)
         << ", \"p50\": " << DoubleText(snapshot.p50)
         << ", \"p95\": " << DoubleText(snapshot.p95) << "}";
    first = false;
  }
  body << "}, \"cache\": {\"hits\": " << cache.hits
       << ", \"misses\": " << cache.misses
       << ", \"evictions\": " << cache.evictions
       << ", \"entries\": " << cache.entries
       << "}, \"batcher\": {\"batches\": " << batcher.batches
       << ", \"requests\": " << batcher.requests
       << ", \"size_flushes\": " << batcher.size_flushes
       << ", \"timeout_flushes\": " << batcher.timeout_flushes
       << ", \"drain_flushes\": " << batcher.drain_flushes << "}}";
  HttpResponse response;
  response.body = body.str();
  return response;
}

}  // namespace sthsl::serve
