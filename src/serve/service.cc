#include "serve/service.h"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exec/exec.h"
#include "serve/access_log.h"
#include "simd/simd.h"
#include "serve/trace.h"
#include "util/json_mini.h"
#include "util/obs/log_histogram.h"
#include "util/obs/metrics.h"
#include "util/obs/obs.h"

namespace sthsl::serve {
namespace {

using sthsl::json::JsonQuote;
using sthsl::json::JsonValue;

std::string FloatText(float value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(value));
  return buf;
}

std::string DoubleText(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\": " + JsonQuote(message) + "}";
  return response;
}

int StatusToHttp(const Status& status) {
  switch (status.code()) {
    case Status::Code::kInvalidArgument: return 400;
    case Status::Code::kInternal: return 503;  // engine draining
    default: return 500;
  }
}

const std::string& HeaderOrEmpty(const HttpRequest& request,
                                 const std::string& name) {
  static const std::string kEmpty;
  const auto it = request.headers.find(name);
  return it != request.headers.end() ? it->second : kEmpty;
}

/// Attaches the context to the response and echoes the traceparent header
/// (the HTTP layer would synthesize a fresh context otherwise, losing the
/// stage timings accumulated here).
void AttachTrace(RequestContext context, HttpResponse* response) {
  response->headers.emplace_back("traceparent", context.TraceparentHeader());
  response->trace = std::move(context);
}

/// Publishes the full per-request stage breakdown: one LogHistogram per
/// stage (always on, fixed memory) and, when tracing is enabled, one
/// "serve"-category chrome-trace span per stage laid out sequentially from
/// `t0_us`. The sequential layout is an approximation — the stages are
/// measured as durations, and the predict pipeline runs them in this order.
void PublishStages(const RequestContext& context, double t0_us) {
  auto& registry = obs::MetricsRegistry::Global();
  static const char* kStageMetric[kNumStages] = {
      "serve/stage/header_parse_us", "serve/stage/body_parse_us",
      "serve/stage/cache_lookup_us", "serve/stage/queue_wait_us",
      "serve/stage/batch_assembly_us", "serve/stage/inference_us",
      "serve/stage/serialize_us",
  };
  static const char* kStageSpan[kNumStages] = {
      "serve/header_parse",   "serve/body_parse", "serve/cache_lookup",
      "serve/queue_wait",     "serve/batch_assembly", "serve/inference",
      "serve/serialize",
  };
  const bool tracing = obs::TraceEnabled();
  double cursor_us = t0_us;
  for (int i = 0; i < kNumStages; ++i) {
    const double dur = context.stage_us[static_cast<size_t>(i)];
    registry.GetLogHistogram(kStageMetric[i]).Record(dur);
    // The header_parse span is emitted by the HTTP layer with its true
    // start time; re-emitting it here would double it.
    if (tracing && static_cast<Stage>(i) != Stage::kHeaderParse) {
      obs::RecordServeSpan(kStageSpan[i], cursor_us, dur);
    }
    cursor_us += dur;
  }
}

/// Prometheus metric name: `sthsl_` prefix, every character outside
/// [a-zA-Z0-9_] mapped to '_' (so "serve/stage/inference_us" becomes
/// "sthsl_serve_stage_inference_us").
std::string PrometheusName(const std::string& name) {
  std::string out = "sthsl_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void PrometheusScalar(std::ostringstream& body, const std::string& name,
                      const char* type, const std::string& value) {
  body << "# TYPE " << name << ' ' << type << '\n'
       << name << ' ' << value << '\n';
}

/// Execution-pool telemetry as a JSON object, embedded in both /statusz and
/// the /metrics JSON document. Worker utilization is busy-time over uptime
/// across started workers (callers excluded — their "idle" time is the rest
/// of the request, not pool overhead).
std::string ExecStatsJson() {
  const exec::PoolStats stats = exec::GetPoolStats();
  double worker_busy_us = 0.0;
  double worker_uptime_us = 0.0;
  for (size_t i = 0; i < stats.worker_busy_us.size(); ++i) {
    worker_busy_us += stats.worker_busy_us[i];
    worker_uptime_us += stats.worker_busy_us[i] + stats.worker_idle_us[i];
  }
  const double utilization =
      worker_uptime_us > 0.0 ? worker_busy_us / worker_uptime_us : 0.0;
  std::ostringstream out;
  out << "{\"threads\": " << stats.thread_count
      << ", \"workers_started\": " << stats.workers_started
      << ", \"regions_launched\": " << stats.regions_launched
      << ", \"chunks_executed\": " << stats.chunks_executed
      << ", \"queue_depth\": " << stats.queue_depth
      << ", \"max_queue_depth\": " << stats.max_queue_depth
      << ", \"busy_us\": " << DoubleText(stats.total_busy_us())
      << ", \"worker_utilization\": " << DoubleText(utilization) << "}";
  return out.str();
}

}  // namespace

PredictService::PredictService(InferenceEngine* engine) : engine_(engine) {}

void PredictService::Register(HttpServer* server) {
  server->Route("POST", "/v1/predict",
                [this](const HttpRequest& r) { return HandlePredict(r); });
  server->Route("GET", "/healthz",
                [this](const HttpRequest& r) { return HandleHealth(r); });
  server->Route("GET", "/metrics",
                [this](const HttpRequest& r) { return HandleMetrics(r); });
  server->Route("GET", "/statusz",
                [this](const HttpRequest& r) { return HandleStatusz(r); });
}

HttpResponse PredictService::HandlePredict(const HttpRequest& request) {
  const double t0_us = obs::TraceNowMicros();
  RequestContext context =
      MakeRequestContext(HeaderOrEmpty(request, "traceparent"));
  context.AddStage(Stage::kHeaderParse, request.header_parse_us);

  // On every early exit the context still rides along, so error responses
  // echo the client's trace id and land in the access log with whatever
  // stages completed.
  Timer body_timer;
  auto fail = [&](HttpResponse response) {
    context.AddStage(Stage::kBodyParse, body_timer.ElapsedMicros());
    PublishStages(context, t0_us);
    AttachTrace(std::move(context), &response);
    return response;
  };

  JsonValue root;
  std::string error;
  if (!sthsl::json::JsonParser(request.body).Parse(&root, &error) ||
      !root.Is(JsonValue::Kind::kObject)) {
    return fail(
        ErrorResponse(400, "request body is not a JSON object: " + error));
  }
  const JsonValue* window_json =
      root.FindOfKind("window", JsonValue::Kind::kArray);
  if (window_json == nullptr) {
    return fail(
        ErrorResponse(400, "missing 'window': flat array of R*W*C counts"));
  }

  const BundleManifest& manifest = engine_->manifest();
  std::vector<int64_t> shape = manifest.WindowShape();
  if (const JsonValue* shape_json =
          root.FindOfKind("shape", JsonValue::Kind::kArray)) {
    shape.clear();
    for (const JsonValue& extent : shape_json->items) {
      // Bound-check before Tensor::FromVector: a hostile extent must come
      // back as a 400, not abort the process inside the tensor library.
      if (!extent.Is(JsonValue::Kind::kNumber) || extent.number < 1 ||
          extent.number > 1e9) {
        return fail(ErrorResponse(
            400, "'shape' must be an array of positive integers"));
      }
      shape.push_back(static_cast<int64_t>(extent.number));
    }
  }
  int64_t numel = 1;
  for (int64_t extent : shape) numel *= extent;
  if (static_cast<int64_t>(window_json->items.size()) != numel ||
      numel <= 0) {
    return fail(ErrorResponse(
        400, "'window' holds " + std::to_string(window_json->items.size()) +
                 " values but the shape needs " + std::to_string(numel)));
  }
  std::vector<float> values;
  values.reserve(window_json->items.size());
  for (const JsonValue& item : window_json->items) {
    if (!item.Is(JsonValue::Kind::kNumber)) {
      return fail(ErrorResponse(400, "'window' must contain only numbers"));
    }
    values.push_back(static_cast<float>(item.number));
  }
  Tensor window = Tensor::FromVector(std::move(shape), std::move(values));
  context.AddStage(Stage::kBodyParse, body_timer.ElapsedMicros());

  Result<InferenceEngine::Prediction> prediction =
      engine_->Predict(std::move(window));
  if (!prediction.ok()) {
    HttpResponse response = ErrorResponse(StatusToHttp(prediction.status()),
                                          prediction.status().message());
    PublishStages(context, t0_us);
    AttachTrace(std::move(context), &response);
    return response;
  }

  const InferenceEngine::Prediction& p = prediction.value();
  context.AddStage(Stage::kCacheLookup, p.cache_lookup_us);
  context.AddStage(Stage::kQueueWait, p.queue_wait_us);
  context.AddStage(Stage::kBatchAssembly, p.batch_assembly_us);
  context.AddStage(Stage::kInference, p.inference_us);

  Timer serialize_timer;
  std::string body = "{\"model\": " + JsonQuote(manifest.model) +
                     ", \"shape\": [" + std::to_string(p.values.Size(0)) +
                     ", " + std::to_string(p.values.Size(1)) +
                     "], \"prediction\": [";
  const std::vector<float>& data = p.values.Data();
  for (size_t i = 0; i < data.size(); ++i) {
    body += (i == 0 ? "" : ", ") + FloatText(data[i]);
  }
  body += "], \"cache_hit\": ";
  body += p.cache_hit ? "true" : "false";
  body += ", \"latency_us\": " + DoubleText(p.latency_us);
  body += ", \"trace_id\": " + JsonQuote(context.trace_id) + "}";
  context.AddStage(Stage::kSerialize, serialize_timer.ElapsedMicros());
  PublishStages(context, t0_us);

  HttpResponse response;
  response.body = std::move(body);
  response.cache_hit = p.cache_hit;
  response.batch_size = p.batch_size;
  AttachTrace(std::move(context), &response);
  return response;
}

HttpResponse PredictService::HandleHealth(const HttpRequest& request) {
  const BundleManifest& m = engine_->manifest();
  HttpResponse response;
  response.body = "{\"status\": \"ok\", \"model\": " + JsonQuote(m.model) +
                  ", \"city\": " + JsonQuote(m.city) +
                  ", \"rows\": " + std::to_string(m.rows) +
                  ", \"cols\": " + std::to_string(m.cols) +
                  ", \"categories\": " + std::to_string(m.categories) +
                  ", \"window\": " + std::to_string(m.config.train.window) +
                  ", \"git_hash\": " + JsonQuote(m.git_hash) + "}";
  return response;
}

HttpResponse PredictService::HandleMetrics(const HttpRequest& request) {
  // Refresh the exec/* gauges from the pool's live counters so every scrape
  // sees current thread-pool telemetry in both exposition formats.
  exec::PublishPoolStats();
  auto& registry = obs::MetricsRegistry::Global();
  const PredictionCache::Stats cache = engine_->cache_stats();
  const MicroBatcher::Stats batcher = engine_->batcher_stats();

  // Content negotiation: Prometheus text exposition when the client asks
  // for text/plain or OpenMetrics; the JSON document stays the default so
  // existing scrapers (loadgen, trace_check) keep working unchanged.
  const std::string& accept = HeaderOrEmpty(request, "accept");
  const bool prometheus =
      accept.find("text/plain") != std::string::npos ||
      accept.find("openmetrics") != std::string::npos;
  if (prometheus) {
    std::ostringstream body;
    for (const auto& [name, value] : registry.Counters()) {
      PrometheusScalar(body, PrometheusName(name), "counter",
                       std::to_string(value));
    }
    for (const auto& [name, value] : registry.Gauges()) {
      PrometheusScalar(body, PrometheusName(name), "gauge",
                       DoubleText(value));
    }
    for (const auto& [name, s] : registry.Histograms()) {
      const std::string metric = PrometheusName(name);
      body << "# TYPE " << metric << " summary\n"
           << metric << "{quantile=\"0.5\"} " << DoubleText(s.p50) << '\n'
           << metric << "{quantile=\"0.95\"} " << DoubleText(s.p95) << '\n'
           << metric << "{quantile=\"0.99\"} " << DoubleText(s.p99) << '\n'
           << metric << "_sum "
           << DoubleText(s.mean * static_cast<double>(s.count)) << '\n'
           << metric << "_count " << s.count << '\n';
    }
    PrometheusScalar(body, "sthsl_serve_cache_entries", "gauge",
                     std::to_string(cache.entries));
    PrometheusScalar(body, "sthsl_serve_cache_evictions", "counter",
                     std::to_string(cache.evictions));
    PrometheusScalar(body, "sthsl_serve_batcher_batches", "counter",
                     std::to_string(batcher.batches));
    PrometheusScalar(body, "sthsl_serve_batcher_requests", "counter",
                     std::to_string(batcher.requests));
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4";
    response.body = body.str();
    return response;
  }

  std::ostringstream body;
  body << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : registry.Counters()) {
    body << (first ? "" : ", ") << JsonQuote(name) << ": " << value;
    first = false;
  }
  body << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : registry.Gauges()) {
    body << (first ? "" : ", ") << JsonQuote(name) << ": "
         << DoubleText(value);
    first = false;
  }
  body << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, snapshot] : registry.Histograms()) {
    body << (first ? "" : ", ") << JsonQuote(name) << ": {\"count\": "
         << snapshot.count << ", \"min\": " << DoubleText(snapshot.min)
         << ", \"max\": " << DoubleText(snapshot.max)
         << ", \"mean\": " << DoubleText(snapshot.mean)
         << ", \"p50\": " << DoubleText(snapshot.p50)
         << ", \"p95\": " << DoubleText(snapshot.p95)
         << ", \"p99\": " << DoubleText(snapshot.p99) << "}";
    first = false;
  }
  body << "}, \"cache\": {\"hits\": " << cache.hits
       << ", \"misses\": " << cache.misses
       << ", \"evictions\": " << cache.evictions
       << ", \"entries\": " << cache.entries
       << "}, \"batcher\": {\"batches\": " << batcher.batches
       << ", \"requests\": " << batcher.requests
       << ", \"size_flushes\": " << batcher.size_flushes
       << ", \"timeout_flushes\": " << batcher.timeout_flushes
       << ", \"drain_flushes\": " << batcher.drain_flushes
       << "}, \"exec\": " << ExecStatsJson() << "}";
  HttpResponse response;
  response.body = body.str();
  return response;
}

HttpResponse PredictService::HandleStatusz(const HttpRequest& request) {
  const BundleManifest& m = engine_->manifest();
  const PredictionCache::Stats cache = engine_->cache_stats();
  const MicroBatcher::Stats batcher = engine_->batcher_stats();
  std::ostringstream body;
  body << "{\"uptime_s\": " << DoubleText(uptime_.ElapsedMicros() / 1e6)
       << ", \"bundle\": {\"model\": " << JsonQuote(m.model)
       << ", \"city\": " << JsonQuote(m.city)
       << ", \"git_hash\": " << JsonQuote(m.git_hash)
       << ", \"created_utc\": " << JsonQuote(m.created_utc)
       << ", \"tool\": " << JsonQuote(m.tool)
       << "}, \"exec_threads\": " << exec::ThreadCount()
       << ", \"simd\": {\"kernels\": " << JsonQuote(simd::Kernels().name)
       << ", \"cpu_features\": " << JsonQuote(simd::CpuFeatureString())
       << "}, \"trace_enabled\": "
       << (obs::TraceEnabled() ? "true" : "false")
       << ", \"access_log_enabled\": "
       << (AccessLog::Global().enabled() ? "true" : "false")
       << ", \"cache\": {\"hits\": " << cache.hits
       << ", \"misses\": " << cache.misses
       << ", \"evictions\": " << cache.evictions
       << ", \"entries\": " << cache.entries
       << "}, \"batcher\": {\"batches\": " << batcher.batches
       << ", \"requests\": " << batcher.requests
       << ", \"size_flushes\": " << batcher.size_flushes
       << ", \"timeout_flushes\": " << batcher.timeout_flushes
       << ", \"drain_flushes\": " << batcher.drain_flushes
       << "}, \"exec\": " << ExecStatsJson() << "}";
  HttpResponse response;
  response.body = body.str();
  return response;
}

}  // namespace sthsl::serve
