#ifndef STHSL_SERVE_HTTP_H_
#define STHSL_SERVE_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/trace.h"
#include "util/status.h"

namespace sthsl::serve {

/// One parsed HTTP/1.1 request. Header names are lower-cased.
struct HttpRequest {
  std::string method;
  std::string target;  // path, query string included verbatim
  std::string version;
  std::map<std::string, std::string> headers;
  std::string body;
  /// Wall time spent in the (successful) ParseHttpRequest call, filled by
  /// the server before the handler runs; feeds the header_parse stage.
  double header_parse_us = 0.0;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (name, value), e.g. the echoed `traceparent`.
  std::vector<std::pair<std::string, std::string>> headers;

  // Request-scoped annotations filled by handlers, consumed by the access
  // log — never serialized onto the wire. `trace` with an empty trace_id
  // means the handler did not attach a context and the server synthesizes
  // one. batch_size < 0 means "not a predict request" (detail omitted).
  RequestContext trace;
  bool cache_hit = false;
  int64_t batch_size = -1;
};

/// Outcome of one incremental parse attempt over a receive buffer.
enum class HttpParse {
  kNeedMore,         // incomplete; read more bytes and retry
  kOk,               // one full request parsed; `consumed` bytes used
  kBadRequest,       // malformed request line / headers → 400, close
  kPayloadTooLarge,  // Content-Length above the limit → 413, close
};

/// Parses one request from the front of `buffer`. On kOk, `*out` holds the
/// request and `*consumed` the bytes to drop from the buffer (pipelined
/// requests keep their bytes). Limits: 64 KiB of headers, `max_body_bytes`
/// of body; chunked transfer encoding is not supported (kBadRequest).
HttpParse ParseHttpRequest(const std::string& buffer, size_t max_body_bytes,
                           HttpRequest* out, size_t* consumed);

/// Serializes `response` with Content-Length and Connection headers.
std::string RenderHttpResponse(const HttpResponse& response, bool keep_alive);

/// Reason phrase for the handful of status codes the server emits.
const char* HttpStatusReason(int status);

/// Minimal HTTP/1.1 server over POSIX sockets: blocking accept loop on its
/// own thread, one thread per connection with keep-alive, exact-match
/// routing, graceful drain. Zero dependencies beyond the C library.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer();
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact (method, path) matches. Must be called
  /// before Start.
  void Route(const std::string& method, const std::string& path,
             Handler handler);

  /// Largest accepted request body; beyond it the server answers 413.
  void set_max_body_bytes(size_t bytes) { max_body_bytes_ = bytes; }

  /// Binds `host:port` (port 0 picks an ephemeral port, see port()) and
  /// starts accepting connections.
  Status Start(const std::string& host, int port);

  /// The bound port (after Start).
  int port() const { return port_; }

  /// Requests served so far (completed responses).
  int64_t requests_served() const { return requests_served_.load(); }

  /// Graceful drain: stops accepting, lets in-flight requests finish,
  /// closes idle keep-alive connections, joins every thread. Idempotent.
  void Drain();

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  std::map<std::string, Handler> routes_;  // "METHOD path" → handler
  size_t max_body_bytes_ = 8 * 1024 * 1024;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> requests_served_{0};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace sthsl::serve

#endif  // STHSL_SERVE_HTTP_H_
