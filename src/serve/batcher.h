#ifndef STHSL_SERVE_BATCHER_H_
#define STHSL_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "tensor/tensor.h"

namespace sthsl::serve {

/// Dynamic micro-batcher: concurrent callers submit single input windows,
/// a fixed pool of worker threads drains them in batches. A forming batch
/// is flushed when it reaches `max_batch_size`, when the oldest queued
/// request has waited `max_wait_us`, or immediately during shutdown drain —
/// so a lone request pays at most the wait bound while a burst is executed
/// as one batched forward pass.
class MicroBatcher {
 public:
  struct Config {
    /// Requests per flushed batch (upper bound).
    int64_t max_batch_size = 8;
    /// Longest a queued request may wait for company before its batch is
    /// flushed anyway.
    int64_t max_wait_us = 2000;
    /// Worker threads executing batches (each runs the batch function
    /// independently, so flushed batches overlap).
    int64_t worker_threads = 2;
  };

  /// Flush accounting, exposed for tests and the /metrics endpoint.
  struct Stats {
    int64_t batches = 0;
    int64_t requests = 0;
    int64_t size_flushes = 0;     // batch reached max_batch_size
    int64_t timeout_flushes = 0;  // oldest request hit max_wait_us
    int64_t drain_flushes = 0;    // flushed during Shutdown drain
  };

  /// Executes one batch: receives the stacked input windows, returns one
  /// prediction per input, in order. Must be callable from multiple worker
  /// threads concurrently and must not fail (callers validate inputs before
  /// Submit).
  using BatchFn =
      std::function<std::vector<Tensor>(const std::vector<Tensor>&)>;

  /// What a Submit future resolves with: the prediction plus this request's
  /// share of the batch timeline, for per-stage tracing.
  struct Ticket {
    Tensor value;  // undefined when the batcher was already draining
    /// Submit enqueue → a worker dequeued this request.
    double queue_wait_us = 0.0;
    /// Dequeue → the batch function was entered (moving inputs/promises and
    /// flush accounting); shared by every request in the batch.
    double batch_assembly_us = 0.0;
    /// Wall time of the batch function (stacking + forward); shared by
    /// every request in the batch.
    double inference_us = 0.0;
    /// Requests in the batch this one rode in (0 when rejected by drain).
    int64_t batch_size = 0;
  };

  MicroBatcher(Config config, BatchFn fn);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one window. The future resolves with the prediction once the
  /// window's batch has run. After Shutdown the returned future resolves
  /// immediately with a Ticket holding an undefined Tensor (callers
  /// translate that into an unavailable error).
  std::future<Ticket> Submit(Tensor window);

  /// Graceful drain: rejects new submissions, flushes everything already
  /// queued, then joins the workers. Idempotent.
  void Shutdown();

  Stats GetStats() const;

 private:
  struct Pending {
    Tensor input;
    std::promise<Ticket> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  const Config config_;
  const BatchFn fn_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace sthsl::serve

#endif  // STHSL_SERVE_BATCHER_H_
