#ifndef STHSL_SERVE_BUNDLE_H_
#define STHSL_SERVE_BUNDLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sthsl_model.h"
#include "util/status.h"

namespace sthsl::serve {

/// Everything the serving layer must know to answer predictions from a
/// trained ST-HSL model without the training dataset: architecture, input
/// window length, grid geometry, the exact normalization moments baked into
/// the network, and provenance. Serialized as `manifest.json` next to the
/// `SaveCheckpoint` weights file inside a bundle directory.
struct BundleManifest {
  int64_t schema = 1;
  std::string model;  // forecaster display name, e.g. "ST-HSL"

  /// Full model configuration; `config.train.window` is the input window
  /// length W every request must supply.
  SthslConfig config;

  // Dataset geometry the model was trained on.
  std::string city;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t categories = 0;
  std::vector<std::string> category_names;

  /// Z-score moments captured from the trained network itself (not
  /// recomputed from data), so a reloaded model normalizes bit-identically.
  float mean = 0.0f;
  float stddev = 1.0f;

  // Provenance.
  int64_t generator_seed = -1;  // synthetic-data seed; -1 when unknown
  uint64_t train_seed = 0;
  std::string git_hash;     // "unknown" when not recorded
  std::string created_utc;  // ISO-8601, filled by WriteBundle
  std::string tool;         // producer, e.g. "sthsl_cli export-bundle"

  std::string weights_file = "weights.bin";

  int64_t num_regions() const { return rows * cols; }
  /// Expected request window shape (R, W, C).
  std::vector<int64_t> WindowShape() const {
    return {num_regions(), config.train.window, categories};
  }
};

/// A bundle pulled back into memory: the manifest plus a materialized
/// forecaster with the checkpoint weights loaded (eval mode).
struct LoadedBundle {
  BundleManifest manifest;
  std::unique_ptr<SthslForecaster> model;
};

/// Writes `model` (which must be fitted / materialized) as a bundle
/// directory at `dir`: `manifest.json` + `weights.bin`. Creates the
/// directory if needed. Geometry and moments are read from the network;
/// provenance fields (`city`, seeds, `git_hash`, `tool`) come from
/// `provenance` — geometry/moment fields of `provenance` are ignored.
Status WriteBundle(const SthslForecaster& model, const std::string& dir,
                   const BundleManifest& provenance);

/// Parses and validates `dir`/manifest.json alone (no weights load). Every
/// missing or mistyped field is an InvalidArgument naming the field.
Result<BundleManifest> ReadManifest(const std::string& dir);

/// Loads a full bundle: manifest + weights, strictly validated (the
/// checkpoint must match the declared architecture parameter-for-parameter).
Result<LoadedBundle> LoadBundle(const std::string& dir);

}  // namespace sthsl::serve

#endif  // STHSL_SERVE_BUNDLE_H_
