#ifndef STHSL_SERVE_CACHE_H_
#define STHSL_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace sthsl::serve {

/// Sharded LRU prediction cache keyed by the exact bytes of the input
/// window (shape + float32 payload), so identical requests are answered
/// without a forward pass. Keys are full-byte compares — the hash only
/// picks the shard and the bucket, so hash collisions can never serve a
/// wrong prediction. Capacity 0 disables the cache entirely.
class PredictionCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t entries = 0;
  };

  /// `capacity` is the total entry budget, split evenly across
  /// `num_shards` independently locked shards.
  explicit PredictionCache(int64_t capacity, int64_t num_shards = 8);

  bool enabled() const { return capacity_ > 0; }
  int64_t capacity() const { return capacity_; }

  /// True (and `*prediction` set) when `window` is cached; counts a hit or
  /// a miss either way. Disabled caches always miss without accounting.
  bool Lookup(const Tensor& window, Tensor* prediction);

  /// Inserts (or refreshes) the prediction for `window`, evicting the
  /// least-recently-used entry of the shard when it is full.
  void Insert(const Tensor& window, Tensor prediction);

  Stats GetStats() const;

  /// Exact cache key: shape extents followed by the raw float payload.
  static std::string KeyOf(const Tensor& window);
  /// 64-bit FNV-1a over the key bytes (shard selector; exposed for tests).
  static uint64_t HashKey(const std::string& key);

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::string, Tensor>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, Tensor>>::iterator>
        index;
    int64_t capacity = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);

  int64_t capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sthsl::serve

#endif  // STHSL_SERVE_CACHE_H_
