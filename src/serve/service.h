#ifndef STHSL_SERVE_SERVICE_H_
#define STHSL_SERVE_SERVICE_H_

#include "serve/engine.h"
#include "serve/http.h"

namespace sthsl::serve {

/// Binds the HTTP endpoint contract to an InferenceEngine:
///
///   POST /v1/predict  {"window": [R*W*C floats], "shape": [R, W, C]}
///                     → {"model", "shape": [R, C], "prediction": [...],
///                        "cache_hit", "latency_us"}
///   GET  /healthz     → {"status": "ok", "model", "city", ...}
///   GET  /metrics     → obs registry counters/gauges/histograms (p50/p95)
///
/// Floats are rendered with %.9g, which round-trips float32 exactly — a
/// client parsing the JSON recovers bit-identical predictions. The handlers
/// are plain functions of HttpRequest so tests can drive them without
/// sockets. See docs/serving.md for the full contract.
class PredictService {
 public:
  explicit PredictService(InferenceEngine* engine);

  /// Registers every route on `server`.
  void Register(HttpServer* server);

  HttpResponse HandlePredict(const HttpRequest& request);
  HttpResponse HandleHealth(const HttpRequest& request);
  HttpResponse HandleMetrics(const HttpRequest& request);

 private:
  InferenceEngine* engine_;  // not owned
};

}  // namespace sthsl::serve

#endif  // STHSL_SERVE_SERVICE_H_
