#ifndef STHSL_SERVE_SERVICE_H_
#define STHSL_SERVE_SERVICE_H_

#include "serve/engine.h"
#include "serve/http.h"
#include "util/timer.h"

namespace sthsl::serve {

/// Binds the HTTP endpoint contract to an InferenceEngine:
///
///   POST /v1/predict  {"window": [R*W*C floats], "shape": [R, W, C]}
///                     → {"model", "shape": [R, C], "prediction": [...],
///                        "cache_hit", "latency_us", "trace_id"}
///   GET  /healthz     → {"status": "ok", "model", "city", ...}
///   GET  /metrics     → obs registry counters/gauges/histograms
///                       (JSON by default; Prometheus text exposition when
///                       the Accept header asks for text/plain or
///                       openmetrics)
///   GET  /statusz     → uptime, bundle provenance, exec thread count,
///                       live batcher/cache stats
///
/// Every request is traced: an incoming W3C `traceparent` header is
/// adopted (malformed ones are replaced), the trace id is echoed in the
/// response `traceparent` header, and the predict path records per-stage
/// timings into serve/stage/* LogHistograms, the chrome trace ("serve"
/// category) and the access log. See docs/observability.md.
///
/// Floats are rendered with %.9g, which round-trips float32 exactly — a
/// client parsing the JSON recovers bit-identical predictions. The handlers
/// are plain functions of HttpRequest so tests can drive them without
/// sockets. See docs/serving.md for the full contract.
class PredictService {
 public:
  explicit PredictService(InferenceEngine* engine);

  /// Registers every route on `server`.
  void Register(HttpServer* server);

  HttpResponse HandlePredict(const HttpRequest& request);
  HttpResponse HandleHealth(const HttpRequest& request);
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleStatusz(const HttpRequest& request);

 private:
  InferenceEngine* engine_;  // not owned
  Timer uptime_;             // started at construction
};

}  // namespace sthsl::serve

#endif  // STHSL_SERVE_SERVICE_H_
