#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace sthsl::serve {

MicroBatcher::MicroBatcher(Config config, BatchFn fn)
    : config_(config), fn_(std::move(fn)) {
  STHSL_CHECK(config_.max_batch_size >= 1)
      << "max_batch_size must be >= 1, got " << config_.max_batch_size;
  STHSL_CHECK(config_.max_wait_us >= 0)
      << "max_wait_us must be >= 0, got " << config_.max_wait_us;
  STHSL_CHECK(config_.worker_threads >= 1)
      << "worker_threads must be >= 1, got " << config_.worker_threads;
  STHSL_CHECK(fn_ != nullptr) << "MicroBatcher needs a batch function";
  workers_.reserve(static_cast<size_t>(config_.worker_threads));
  for (int64_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

std::future<MicroBatcher::Ticket> MicroBatcher::Submit(Tensor window) {
  Pending pending;
  pending.input = std::move(window);
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<Ticket> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Draining: resolve immediately with an undefined tensor instead of
      // blocking the caller or aborting mid-drain.
      pending.promise.set_value(Ticket());
      return future;
    }
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

MicroBatcher::Stats MicroBatcher::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MicroBatcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }

    // A batch is forming. Wait for it to fill, bounded by the oldest
    // request's deadline; drain mode flushes whatever is queued right away.
    const auto deadline =
        queue_.front().enqueued + std::chrono::microseconds(config_.max_wait_us);
    bool timed_out = false;
    while (!stopping_ && !queue_.empty() &&
           static_cast<int64_t>(queue_.size()) < config_.max_batch_size) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        timed_out = true;
        break;
      }
    }
    if (queue_.empty()) continue;  // another worker flushed it first

    const size_t take = std::min<size_t>(
        queue_.size(), static_cast<size_t>(config_.max_batch_size));
    const auto dequeue_start = std::chrono::steady_clock::now();
    std::vector<Tensor> inputs;
    std::vector<std::promise<Ticket>> promises;
    std::vector<double> queue_waits_us;
    inputs.reserve(take);
    promises.reserve(take);
    queue_waits_us.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      queue_waits_us.push_back(
          std::chrono::duration<double, std::micro>(
              dequeue_start - queue_.front().enqueued)
              .count());
      inputs.push_back(std::move(queue_.front().input));
      promises.push_back(std::move(queue_.front().promise));
      queue_.pop_front();
    }
    stats_.batches += 1;
    stats_.requests += static_cast<int64_t>(take);
    if (take == static_cast<size_t>(config_.max_batch_size)) {
      stats_.size_flushes += 1;
    } else if (stopping_) {
      stats_.drain_flushes += 1;
    } else if (timed_out) {
      stats_.timeout_flushes += 1;
    } else {
      // Spurious flush path (e.g. queue shrank under a racing worker):
      // account it with the timeout bucket — it was time-bounded either way.
      stats_.timeout_flushes += 1;
    }

    lock.unlock();
    const auto infer_start = std::chrono::steady_clock::now();
    std::vector<Tensor> outputs = fn_(inputs);
    const auto infer_end = std::chrono::steady_clock::now();
    STHSL_CHECK(outputs.size() == inputs.size())
        << "batch function returned " << outputs.size() << " results for "
        << inputs.size() << " inputs";
    const double assembly_us =
        std::chrono::duration<double, std::micro>(infer_start - dequeue_start)
            .count();
    const double inference_us =
        std::chrono::duration<double, std::micro>(infer_end - infer_start)
            .count();
    for (size_t i = 0; i < take; ++i) {
      Ticket ticket;
      ticket.value = std::move(outputs[i]);
      ticket.queue_wait_us = queue_waits_us[i];
      ticket.batch_assembly_us = assembly_us;
      ticket.inference_us = inference_us;
      ticket.batch_size = static_cast<int64_t>(take);
      promises[i].set_value(std::move(ticket));
    }
    lock.lock();
  }
}

}  // namespace sthsl::serve
