#include "serve/cache.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace sthsl::serve {

PredictionCache::PredictionCache(int64_t capacity, int64_t num_shards)
    : capacity_(std::max<int64_t>(capacity, 0)) {
  STHSL_CHECK(num_shards >= 1) << "num_shards must be >= 1";
  if (capacity_ == 0) return;
  // No more shards than entries, so every shard holds at least one.
  const int64_t shard_count = std::min(num_shards, capacity_);
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int64_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    // Split the budget evenly; the first shards absorb the remainder.
    shard->capacity = capacity_ / shard_count +
                      (i < capacity_ % shard_count ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

std::string PredictionCache::KeyOf(const Tensor& window) {
  const auto& shape = window.Shape();
  const auto& data = window.Data();
  std::string key;
  key.resize(shape.size() * sizeof(int64_t) + data.size() * sizeof(float));
  size_t offset = 0;
  if (!shape.empty()) {
    std::memcpy(key.data(), shape.data(), shape.size() * sizeof(int64_t));
    offset += shape.size() * sizeof(int64_t);
  }
  if (!data.empty()) {
    std::memcpy(key.data() + offset, data.data(),
                data.size() * sizeof(float));
  }
  return key;
}

uint64_t PredictionCache::HashKey(const std::string& key) {
  // FNV-1a, 64-bit.
  uint64_t hash = 14695981039346656037ull;
  for (char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

PredictionCache::Shard& PredictionCache::ShardFor(const std::string& key) {
  return *shards_[HashKey(key) % shards_.size()];
}

bool PredictionCache::Lookup(const Tensor& window, Tensor* prediction) {
  if (!enabled()) return false;
  const std::string key = KeyOf(window);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.misses += 1;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  shard.hits += 1;
  *prediction = it->second->second;
  return true;
}

void PredictionCache::Insert(const Tensor& window, Tensor prediction) {
  if (!enabled()) return;
  std::string key = KeyOf(window);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(prediction);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(prediction));
  shard.index[std::move(key)] = shard.lru.begin();
  while (static_cast<int64_t>(shard.lru.size()) > shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    shard.evictions += 1;
  }
}

PredictionCache::Stats PredictionCache::GetStats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += static_cast<int64_t>(shard->lru.size());
  }
  return stats;
}

}  // namespace sthsl::serve
