#ifndef STHSL_UTIL_TIMER_H_
#define STHSL_UTIL_TIMER_H_

#include <chrono>

namespace sthsl {

/// Wall-clock stopwatch used by the efficiency study (Table V).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sthsl

#endif  // STHSL_UTIL_TIMER_H_
