#ifndef STHSL_UTIL_TIMER_H_
#define STHSL_UTIL_TIMER_H_

#include <chrono>

namespace sthsl {

/// Wall-clock stopwatch used by the efficiency study (Table V).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microsecond granularity for sub-millisecond work (per-op profiling;
  /// ElapsedMillis rounds such intervals to ~0 in fixed-precision output).
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sthsl

#endif  // STHSL_UTIL_TIMER_H_
