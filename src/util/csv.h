#ifndef STHSL_UTIL_CSV_H_
#define STHSL_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace sthsl {

/// Minimal CSV table: a header row plus string cells. Used for persisting
/// generated crime tensors and benchmark result tables.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Writes `table` to `path`. Cells containing commas/quotes/newlines are
/// quoted per RFC 4180.
Status WriteCsv(const std::string& path, const CsvTable& table);

/// Reads a CSV file written by WriteCsv (handles quoted cells).
Result<CsvTable> ReadCsv(const std::string& path);

/// Splits one CSV line into cells (exposed for testing).
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace sthsl

#endif  // STHSL_UTIL_CSV_H_
