#ifndef STHSL_UTIL_RNG_H_
#define STHSL_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sthsl {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every source of randomness in the project — parameter initialization,
/// dropout masks, synthetic data generation, corruption shuffles — flows
/// through an explicitly seeded Rng so that every experiment is exactly
/// reproducible from the seed it prints.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5f3759df9e3779b9ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached spare value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Poisson-distributed count with the given rate. Uses Knuth's method for
  /// small rates and normal approximation (clamped at 0) for large ones.
  int Poisson(double rate);

  /// Pareto/power-law sample: x_min * U^{-1/alpha}. Heavy-tailed for small
  /// alpha; used to plant the skewed crime distribution of the paper's Fig 2.
  double Pareto(double x_min, double alpha);

  /// Gamma(shape, scale) via Marsaglia-Tsang. Requires shape > 0.
  double Gamma(double shape, double scale);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Random permutation of [0, n).
  std::vector<int> Permutation(int n);

  /// Derives an independent child generator (for per-module streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace sthsl

#endif  // STHSL_UTIL_RNG_H_
