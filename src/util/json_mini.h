#ifndef STHSL_UTIL_JSON_MINI_H_
#define STHSL_UTIL_JSON_MINI_H_

// Minimal header-only JSON toolkit shared by the serving subsystem
// (`sthsl::serve`) and the dependency-free tools (`sthsl_trace_check`,
// `sthsl_report`, `sthsl_loadgen`): a recursive-descent parser plus the
// string-emission helpers every JSON writer in the repo needs. Header-only
// on purpose: the validators must stay buildable and trustworthy without
// linking the library they are checking. Structure checking only — \u
// escapes are not decoded (they parse but map to '?').

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace sthsl::json {

/// Escapes `text` for embedding inside a JSON string literal: quote and
/// backslash get their two-character forms, the common control characters
/// use their shorthand escapes, and every other code point below 0x20 is
/// emitted as \u00XX (raw control bytes in the output would make the
/// emitted document unparseable).
inline std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `text` as a complete JSON string literal, quotes included.
inline std::string JsonQuote(const std::string& text) {
  return "\"" + JsonEscape(text) + "\"";
}

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  bool Is(Kind k) const { return kind == k; }
  const JsonValue* Find(const std::string& key) const {
    const auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
  }
  /// Member lookup constrained to a kind; null when absent or mistyped.
  const JsonValue* FindOfKind(const std::string& key, Kind k) const {
    const JsonValue* value = Find(key);
    return value != nullptr && value->Is(k) ? value : nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& input) : input_(input) {}

  // Parses the whole input as one JSON value; returns false (with `error`
  // set) on any syntax problem or trailing garbage.
  bool Parse(JsonValue* out, std::string* error) {
    error_ = error;
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != input_.size()) return Fail("trailing characters after value");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      std::ostringstream stream;
      stream << message << " at byte " << pos_;
      *error_ = stream.str();
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= input_.size()) return Fail("unexpected end of input");
    const char c = input_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->text);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  bool ParseKeyword(JsonValue* out) {
    static const struct {
      const char* word;
      JsonValue::Kind kind;
      bool boolean;
    } kKeywords[] = {{"true", JsonValue::Kind::kBool, true},
                     {"false", JsonValue::Kind::kBool, false},
                     {"null", JsonValue::Kind::kNull, false}};
    for (const auto& keyword : kKeywords) {
      const size_t len = std::strlen(keyword.word);
      if (input_.compare(pos_, len, keyword.word) == 0) {
        out->kind = keyword.kind;
        out->boolean = keyword.boolean;
        pos_ += len;
        return true;
      }
    }
    return Fail("invalid keyword");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < input_.size() && input_[pos_] == '-') ++pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.' || input_[pos_] == 'e' ||
            input_[pos_] == 'E' || input_[pos_] == '+' ||
            input_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    char* end = nullptr;
    const std::string token = input_.substr(start, pos_ - start);
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= input_.size()) break;
      const char esc = input_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > input_.size()) return Fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(input_[pos_ + i]))) {
              return Fail("invalid \\u escape");
            }
          }
          // Structure checking only: the code point value is not needed.
          *out += '?';
          pos_ += 4;
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return Fail("expected '['");
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue item;
      if (!ParseValue(&item)) return false;
      out->items.push_back(std::move(item));
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return Fail("expected '{'");
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->members[key] = std::move(value);
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}' in object");
    }
  }

  const std::string& input_;
  size_t pos_ = 0;
  std::string* error_ = nullptr;
};

}  // namespace sthsl::json

#endif  // STHSL_UTIL_JSON_MINI_H_
