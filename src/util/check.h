#ifndef STHSL_UTIL_CHECK_H_
#define STHSL_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sthsl::internal_check {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* condition,
                                   const std::string& message) {
  std::fprintf(stderr, "[STHSL CHECK FAILED] %s:%d: (%s) %s\n", file, line,
               condition, message.c_str());
  std::fflush(stderr);
  std::abort();
}

/// Builds the optional streamed message for STHSL_CHECK. The object is
/// constructed only on the failure path, so passing checks cost one branch.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFail(file_, line_, condition_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace sthsl::internal_check

/// Invariant check for programming errors (shape mismatches, index bounds).
/// Usage: STHSL_CHECK(a == b) << "details " << a << " vs " << b;
/// On failure: prints file/line/condition/message and aborts.
#define STHSL_CHECK(condition)                                          \
  if (condition) {                                                      \
  } else                                                                \
    ::sthsl::internal_check::CheckMessageBuilder(__FILE__, __LINE__,    \
                                                 #condition)

#define STHSL_CHECK_EQ(a, b) STHSL_CHECK((a) == (b)) << #a "=" << (a) << " " #b "=" << (b) << " "
#define STHSL_CHECK_NE(a, b) STHSL_CHECK((a) != (b)) << #a "=" << (a) << " "
#define STHSL_CHECK_LT(a, b) STHSL_CHECK((a) < (b)) << #a "=" << (a) << " " #b "=" << (b) << " "
#define STHSL_CHECK_LE(a, b) STHSL_CHECK((a) <= (b)) << #a "=" << (a) << " " #b "=" << (b) << " "
#define STHSL_CHECK_GT(a, b) STHSL_CHECK((a) > (b)) << #a "=" << (a) << " " #b "=" << (b) << " "
#define STHSL_CHECK_GE(a, b) STHSL_CHECK((a) >= (b)) << #a "=" << (a) << " " #b "=" << (b) << " "

/// Returns early with the error status if `expr` is not OK.
#define STHSL_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::sthsl::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // STHSL_UTIL_CHECK_H_
