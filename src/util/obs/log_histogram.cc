#include "util/obs/log_histogram.h"

#include <algorithm>
#include <cmath>

namespace sthsl::obs {
namespace {

void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

int LogHistogram::BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // negatives and NaN included
  int exponent = std::ilogb(value);
  if (exponent >= kOctaves) return kNumBuckets - 1;
  const double octave_base = std::ldexp(1.0, exponent);
  // Linear position inside the octave, in [0, 1).
  const double frac = value / octave_base - 1.0;
  int sub = static_cast<int>(frac * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + exponent * kSubBuckets + sub;
}

double LogHistogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0.0;
  const int exponent = (bucket - 1) / kSubBuckets;
  const int sub = (bucket - 1) % kSubBuckets;
  return std::ldexp(1.0, exponent) *
         (1.0 + static_cast<double>(sub) / kSubBuckets);
}

void LogHistogram::Record(double value) {
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  const double finite = std::isfinite(value) ? value : 0.0;
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // First sample seeds min/max; racing recorders still converge because
    // the CAS loops below run unconditionally afterwards.
    min_.store(finite, std::memory_order_relaxed);
    max_.store(finite, std::memory_order_relaxed);
  }
  AtomicAdd(sum_, finite);
  AtomicMin(min_, finite);
  AtomicMax(max_, finite);
}

Histogram::Snapshot LogHistogram::GetSnapshot() const {
  Histogram::Snapshot snapshot;
  // Read the buckets once; their sum is the authoritative count so the
  // percentile walk below is self-consistent even under concurrent writes.
  std::array<int64_t, kNumBuckets> counts;
  int64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[static_cast<size_t>(i)] = bucket_count(i);
    total += counts[static_cast<size_t>(i)];
  }
  if (total == 0) return snapshot;
  snapshot.count = total;
  snapshot.min = min_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  snapshot.mean =
      sum_.load(std::memory_order_relaxed) / static_cast<double>(total);

  // Nearest-rank percentile over buckets; the estimate is the midpoint of
  // the bucket holding the rank, clamped to the observed value range.
  const auto percentile = [&](double p) {
    const int64_t rank = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(p * static_cast<double>(total))));
    int64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += counts[static_cast<size_t>(i)];
      if (seen >= rank) {
        const double lo = BucketLowerBound(i);
        const double hi = i + 1 < kNumBuckets ? BucketLowerBound(i + 1)
                                              : lo;
        const double mid = lo + (hi - lo) / 2.0;
        return std::clamp(mid, snapshot.min, snapshot.max);
      }
    }
    return snapshot.max;
  };
  snapshot.p50 = percentile(0.50);
  snapshot.p95 = percentile(0.95);
  snapshot.p99 = percentile(0.99);
  return snapshot;
}

void LogHistogram::MergeFrom(const LogHistogram& other) {
  int64_t added = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const int64_t n = other.bucket_count(i);
    if (n == 0) continue;
    buckets_[static_cast<size_t>(i)].fetch_add(n, std::memory_order_relaxed);
    added += n;
  }
  if (added == 0) return;
  if (count_.fetch_add(added, std::memory_order_relaxed) == 0) {
    min_.store(other.min_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(other.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  }
  AtomicAdd(sum_, other.sum_.load(std::memory_order_relaxed));
  AtomicMin(min_, other.min_.load(std::memory_order_relaxed));
  AtomicMax(max_, other.max_.load(std::memory_order_relaxed));
}

}  // namespace sthsl::obs
