#include "util/obs/perf_counters.h"

#include <cstdlib>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace sthsl::obs {
namespace {

bool ForcedOff() {
  const char* value = std::getenv("STHSL_PERF_DISABLE");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

#if defined(__linux__)

// Event configs in fds_ slot order; slot 0 (cycles) is the group leader.
struct EventSpec {
  uint32_t type;
  uint64_t config;
};

constexpr EventSpec kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

int OpenEvent(const EventSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // the leader gates the group
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // pid=0, cpu=-1: this thread, any CPU.
  const long fd = syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0);
  return static_cast<int>(fd);
}

int64_t ReadCounter(int fd) {
  if (fd < 0) return -1;
  uint64_t value = 0;
  if (read(fd, &value, sizeof(value)) != sizeof(value)) return -1;
  return static_cast<int64_t>(value);
}

#endif  // defined(__linux__)

}  // namespace

HwCounterGroup::HwCounterGroup() {
  for (int i = 0; i < kNumEvents; ++i) fds_[i] = -1;
  if (ForcedOff()) return;
#if defined(__linux__)
  fds_[0] = OpenEvent(kEvents[0], -1);
  if (fds_[0] < 0) return;  // syscall refused: stay a clean no-op
  available_ = true;
  for (int i = 1; i < kNumEvents; ++i) {
    // A sibling the PMU cannot provide (unsupported cache event, counter
    // pressure) reads as -1; the rest of the group stays meaningful.
    fds_[i] = OpenEvent(kEvents[i], fds_[0]);
  }
#endif
}

HwCounterGroup::~HwCounterGroup() {
#if defined(__linux__)
  for (int i = 0; i < kNumEvents; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
#endif
}

void HwCounterGroup::Start() {
#if defined(__linux__)
  if (!available_) return;
  ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#endif
}

HwCounterSample HwCounterGroup::Stop() {
  HwCounterSample sample;
#if defined(__linux__)
  if (!available_) return sample;
  ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  sample.valid = true;
  sample.cycles = ReadCounter(fds_[0]);
  sample.instructions = ReadCounter(fds_[1]);
  sample.l1d_misses = ReadCounter(fds_[2]);
  sample.llc_misses = ReadCounter(fds_[3]);
  sample.branch_misses = ReadCounter(fds_[4]);
#endif
  return sample;
}

bool HwCounterGroup::SupportedOnThisSystem() {
  static const bool supported = [] {
    HwCounterGroup probe;
    return probe.available();
  }();
  // The cached probe answers "can the syscall succeed here at all"; the env
  // override is re-read so tests can force the fallback at any point.
  return supported && !ForcedOff();
}

}  // namespace sthsl::obs
