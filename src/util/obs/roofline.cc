#include "util/obs/roofline.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/json_mini.h"

namespace sthsl::obs {
namespace {

std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

void AppendCountersJson(std::ostringstream& out,
                        const HwCounterSample& counters) {
  if (!counters.valid) {
    out << "\"counters\":null";
    return;
  }
  out << "\"counters\":{\"cycles\":" << counters.cycles
      << ",\"instructions\":" << counters.instructions
      << ",\"l1d_misses\":" << counters.l1d_misses
      << ",\"llc_misses\":" << counters.llc_misses
      << ",\"branch_misses\":" << counters.branch_misses << "}";
}

}  // namespace

double ComputeRoofGflops(const MachinePeaks& peaks, int threads) {
  return peaks.gflops_1t * std::max(threads, 1);
}

RooflineEntry MakeRooflineEntry(std::string name, int64_t calls,
                                int64_t flops, int64_t bytes, double us,
                                const MachinePeaks& peaks, int threads) {
  RooflineEntry entry;
  entry.name = std::move(name);
  entry.calls = calls;
  entry.flops = flops;
  entry.bytes = bytes;
  entry.us = us;
  if (flops <= 0 || bytes <= 0 || us <= 0.0 || !peaks.valid()) return entry;
  entry.intensity = static_cast<double>(flops) / static_cast<double>(bytes);
  entry.achieved_gflops = static_cast<double>(flops) / (us * 1e3);
  entry.achieved_gbps = static_cast<double>(bytes) / (us * 1e3);
  const double compute_roof = ComputeRoofGflops(peaks, threads);
  const double ridge = compute_roof / peaks.gbps_1t;
  entry.compute_bound = entry.intensity >= ridge;
  entry.roof_gflops =
      std::min(compute_roof, entry.intensity * peaks.gbps_1t);
  entry.pct_of_roof = 100.0 * entry.achieved_gflops / entry.roof_gflops;
  return entry;
}

std::vector<RooflineEntry> BuildRoofline(const std::vector<OpProfile>& ops,
                                         const MachinePeaks& peaks,
                                         int threads) {
  std::vector<RooflineEntry> entries;
  for (const auto& op : ops) {
    if (op.forward_flops > 0 && op.forward_us > 0.0) {
      entries.push_back(MakeRooflineEntry(op.name, op.forward_calls,
                                          op.forward_flops, op.bytes_touched,
                                          op.forward_us, peaks, threads));
    }
    if (op.backward_flops > 0 && op.backward_us > 0.0) {
      entries.push_back(MakeRooflineEntry(op.name + ".bwd", op.backward_calls,
                                          op.backward_flops,
                                          op.backward_bytes, op.backward_us,
                                          peaks, threads));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const RooflineEntry& a, const RooflineEntry& b) {
              return a.name < b.name;
            });
  return entries;
}

std::string RooflineJson(const std::vector<RooflineEntry>& entries,
                         const MachinePeaks& peaks, int threads) {
  std::ostringstream out;
  const double compute_roof = ComputeRoofGflops(peaks, threads);
  out << "{\"bench\":\"roofline\",\"peaks\":{\"cpu_model\":"
      << json::JsonQuote(peaks.cpu_model)
      << ",\"gflops_1t\":" << Num(peaks.gflops_1t)
      << ",\"gbps_1t\":" << Num(peaks.gbps_1t) << ",\"threads\":" << threads
      << ",\"compute_roof_gflops\":" << Num(compute_roof)
      << ",\"memory_roof_gbps\":" << Num(peaks.gbps_1t)
      << ",\"calibrated_utc\":" << json::JsonQuote(peaks.created_utc)
      << ",\"from_cache\":" << (peaks.from_cache ? "true" : "false")
      << "},\"ops\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const RooflineEntry& e = entries[i];
    if (i > 0) out << ",";
    out << "{\"name\":" << json::JsonQuote(e.name)
        << ",\"calls\":" << e.calls << ",\"flops\":" << e.flops
        << ",\"bytes\":" << e.bytes << ",\"us\":" << Num(e.us)
        << ",\"intensity\":" << Num(e.intensity)
        << ",\"achieved_gflops\":" << Num(e.achieved_gflops)
        << ",\"achieved_gbps\":" << Num(e.achieved_gbps)
        << ",\"roof_gflops\":" << Num(e.roof_gflops)
        << ",\"pct_of_roof\":" << Num(e.pct_of_roof) << ",\"bound\":\""
        << (e.compute_bound ? "compute" : "memory") << "\",";
    AppendCountersJson(out, e.counters);
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace sthsl::obs
