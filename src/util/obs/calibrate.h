#ifndef STHSL_UTIL_OBS_CALIBRATE_H_
#define STHSL_UTIL_OBS_CALIBRATE_H_

// One-shot machine-peak calibration for the roofline reporter: a dependent
// FMA-chain loop measures single-thread peak GFLOP/s, a stream-triad sweep
// over LLC-sized buffers measures single-thread memory bandwidth. Results
// are cached (keyed by CPU model, so a container migrated across hosts
// recalibrates) in `~/.cache/sthsl/machine_peaks.json` — overridable via
// STHSL_CACHE_DIR — and exposed to users as `sthsl_cli calibrate`.
//
// The measurements are deliberately single-threaded: the calibrator lives in
// the util layer, below sthsl::exec. The roofline join scales the compute
// roof by the thread count actually used; the memory roof stays the
// single-core triad figure, which makes multi-threaded %-of-roof numbers
// conservative for bandwidth-bound ops (see docs/performance.md).

#include <string>

namespace sthsl::obs {

struct MachinePeaks {
  /// Measured single-thread peaks.
  double gflops_1t = 0.0;
  double gbps_1t = 0.0;
  int hardware_threads = 1;
  /// Provenance: the CPU the numbers were measured on, and when.
  std::string cpu_model;
  std::string created_utc;
  /// True when the values came from the cache file rather than a fresh run.
  bool from_cache = false;

  bool valid() const { return gflops_1t > 0.0 && gbps_1t > 0.0; }
};

/// The CPU model string from /proc/cpuinfo ("unknown" when unreadable).
std::string CpuModelName();

/// Number of online hardware threads (>= 1).
int HardwareThreads();

/// Absolute path of the peaks cache file.
std::string PeaksCachePath();

/// A vectorized FMA-throughput probe registered by a higher layer
/// (src/simd registers one at static init that drives the dispatched GEMM
/// register tile). The scalar fallback loop in this layer underestimates
/// machines with vector FMA units by the full vector width, which would
/// make the roofline report achieved rates far above 100% of "peak".
using FmaProbeFn = double (*)(double seconds_budget);
void SetFmaProbe(FmaProbeFn probe);

/// Runs the FMA and triad measurement loops, splitting roughly
/// `seconds_budget` of wall time between them. Does not touch the cache.
MachinePeaks MeasureMachinePeaks(double seconds_budget);

/// Parses a cached peaks file. False when missing, malformed, or incomplete.
bool LoadCachedPeaks(const std::string& path, MachinePeaks* out);

/// Writes `peaks` to `path`, creating parent directories as needed.
bool SaveMachinePeaks(const std::string& path, const MachinePeaks& peaks);

/// Cache-through entry point: returns cached peaks when the file exists and
/// was measured on this CPU model; otherwise measures (`seconds_budget`) and
/// rewrites the cache. `force_remeasure` skips the cache read.
MachinePeaks CalibrateMachinePeaks(bool force_remeasure,
                                   double seconds_budget = 1.0);

}  // namespace sthsl::obs

#endif  // STHSL_UTIL_OBS_CALIBRATE_H_
