#ifndef STHSL_UTIL_OBS_METRICS_H_
#define STHSL_UTIL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sthsl::obs {

/// Training/runtime metrics registry: named counters, gauges and histograms
/// the trainer publishes into (epoch loss, grad norms, samples/sec, peak
/// tensor bytes) and the exporters read out of. The registry itself is
/// always functional — callers gate publishing on TraceEnabled() so the
/// disabled path stays free.
///
/// Instrument references returned by Get* are stable for the life of the
/// registry (until Reset, which is test-only).

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(int64_t delta = 1) { value_.fetch_add(delta); }
  int64_t Value() const { return value_.load(); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value metric.
class Gauge {
 public:
  void Set(double value) { value_.store(value); }
  double Value() const { return value_.load(); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample-accumulating metric with nearest-rank percentiles. Samples are
/// kept exactly (epoch-scale cardinality); Record is O(1), Snapshot sorts.
/// High-rate paths (serving) use LogHistogram instead — same Snapshot type,
/// constant memory, bounded-error percentiles (see log_histogram.h).
class Histogram {
 public:
  struct Snapshot {
    int64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  void Record(double value);
  Snapshot GetSnapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

class LogHistogram;

class MetricsRegistry {
 public:
  /// The process-wide registry (leaked singleton, safe at exit time).
  static MetricsRegistry& Global();

  MetricsRegistry();
  ~MetricsRegistry();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);
  /// Bounded log-linear histogram for hot paths (see log_histogram.h).
  /// Shares the histogram namespace: Histograms() reports both kinds.
  LogHistogram& GetLogHistogram(const std::string& name);

  /// Name-sorted snapshots for the exporters. Histograms() covers the exact
  /// and the log-linear instruments in one listing.
  std::vector<std::pair<std::string, int64_t>> Counters() const;
  std::vector<std::pair<std::string, double>> Gauges() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> Histograms() const;

  /// Drops every instrument. Invalidates references returned by Get*; only
  /// for test isolation.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<LogHistogram>> log_histograms_;
};

}  // namespace sthsl::obs

#endif  // STHSL_UTIL_OBS_METRICS_H_
