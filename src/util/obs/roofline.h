#ifndef STHSL_UTIL_OBS_ROOFLINE_H_
#define STHSL_UTIL_OBS_ROOFLINE_H_

// Roofline join: combines per-op profiler samples (analytic FLOPs + byte
// traffic + measured wall time), calibrated machine peaks, and optional
// hardware-counter readings into per-op achieved GFLOP/s, GB/s, %-of-roof
// and a compute/memory-bound verdict. Rendered to BENCH_roofline.json by
// bench_kernels, to markdown by `sthsl_report --roofline`, and validated by
// `sthsl_trace_check roofline`. Methodology: docs/performance.md.

#include <cstdint>
#include <string>
#include <vector>

#include "util/obs/calibrate.h"
#include "util/obs/obs.h"
#include "util/obs/perf_counters.h"

namespace sthsl::obs {

struct RooflineEntry {
  std::string name;
  int64_t calls = 0;
  int64_t flops = 0;
  int64_t bytes = 0;
  double us = 0.0;
  /// flops / bytes.
  double intensity = 0.0;
  /// flops / (us · 1e3) and bytes / (us · 1e3).
  double achieved_gflops = 0.0;
  double achieved_gbps = 0.0;
  /// min(compute roof, intensity · memory roof) at the joined thread count.
  double roof_gflops = 0.0;
  /// 100 · achieved_gflops / roof_gflops.
  double pct_of_roof = 0.0;
  /// intensity >= ridge point (compute roof / memory roof): the op could in
  /// principle saturate the ALUs; otherwise it is bandwidth-limited.
  bool compute_bound = false;
  /// Hardware counters attributed to this op's run (valid == false when the
  /// perf_event path is unavailable or the run was not counter-isolated).
  HwCounterSample counters;
};

/// The compute roof in GFLOP/s: single-thread measured peak scaled by the
/// thread count the kernels actually ran with.
double ComputeRoofGflops(const MachinePeaks& peaks, int threads);

/// One entry from raw totals; pure math, unit-testable. Returns an entry
/// with pct_of_roof == 0 when flops, bytes or us are non-positive.
RooflineEntry MakeRooflineEntry(std::string name, int64_t calls,
                                int64_t flops, int64_t bytes, double us,
                                const MachinePeaks& peaks, int threads);

/// Joins profiler snapshots against the peaks: one entry per op with
/// modeled flops and positive duration (forward columns; ops with backward
/// calls additionally get a "<name>.bwd" entry). Ops without a flop model
/// are skipped — a roofline position needs both coordinates.
std::vector<RooflineEntry> BuildRoofline(const std::vector<OpProfile>& ops,
                                         const MachinePeaks& peaks,
                                         int threads);

/// Renders entries + peaks as the BENCH_roofline.json document body.
std::string RooflineJson(const std::vector<RooflineEntry>& entries,
                         const MachinePeaks& peaks, int threads);

}  // namespace sthsl::obs

#endif  // STHSL_UTIL_OBS_ROOFLINE_H_
