#ifndef STHSL_UTIL_OBS_PERF_COUNTERS_H_
#define STHSL_UTIL_OBS_PERF_COUNTERS_H_

// Hardware performance counters for profiled regions, built on Linux
// `perf_event_open`. One HwCounterGroup opens a counter group (cycles as the
// group leader; instructions, L1d-read misses, LLC misses and branch misses
// as siblings) pinned to the calling thread, so all five are scheduled onto
// the PMU together and their ratios are meaningful.
//
// Portability contract: on non-Linux builds, in containers that mask the
// syscall (EPERM/EACCES/ENOSYS — common under seccomp or with
// kernel.perf_event_paranoid >= 2), or when STHSL_PERF_DISABLE=1 is set, the
// group reports available() == false and every operation is a clean no-op —
// samples come back with valid == false and callers degrade to wall-time-only
// reporting. Opening never throws and never aborts the process.

#include <cstdint>

namespace sthsl::obs {

/// One reading of the counter group. `valid` is false when the counters are
/// unavailable; individual counters that failed to open (e.g. an unsupported
/// cache event on this CPU) read as -1 while the rest stay meaningful.
struct HwCounterSample {
  bool valid = false;
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t l1d_misses = 0;
  int64_t llc_misses = 0;
  int64_t branch_misses = 0;
};

/// RAII counter group attached to the calling thread. Typical use:
///
///   HwCounterGroup counters;
///   counters.Start();          // reset + enable (no-op when unavailable)
///   RunKernel();
///   HwCounterSample s = counters.Stop();   // disable + read
class HwCounterGroup {
 public:
  HwCounterGroup();
  ~HwCounterGroup();

  HwCounterGroup(const HwCounterGroup&) = delete;
  HwCounterGroup& operator=(const HwCounterGroup&) = delete;

  /// True when the group leader opened successfully.
  bool available() const { return available_; }

  /// Resets all counters to zero and enables counting.
  void Start();

  /// Disables counting and returns the accumulated totals since Start().
  HwCounterSample Stop();

  /// Whether a counter group can be opened at all on this system (one probe
  /// per process, cached). False on non-Linux, under STHSL_PERF_DISABLE=1,
  /// and when the kernel refuses the syscall.
  static bool SupportedOnThisSystem();

 private:
  static constexpr int kNumEvents = 5;
  int fds_[kNumEvents];
  bool available_ = false;
};

}  // namespace sthsl::obs

#endif  // STHSL_UTIL_OBS_PERF_COUNTERS_H_
