#include "util/obs/calibrate.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/json_mini.h"
#include "util/logging.h"
#include "util/timer.h"

namespace sthsl::obs {
namespace {

// FMA loop geometry: independent accumulator chains (enough for the compiler
// to vectorize and to hide the FMA latency) advanced in fixed-size blocks so
// the timer is consulted rarely.
constexpr int kFmaChains = 16;
constexpr int64_t kFmaBlockIters = 1 << 14;

// Triad buffers: 16 MiB per array (3 arrays = 48 MiB) — far beyond any LLC,
// so the loop streams from DRAM.
constexpr int64_t kTriadElems = int64_t{1} << 22;

// Zero-initialized before any dynamic initialization, so a registration
// running from another translation unit's static initializer is safe.
FmaProbeFn g_fma_probe = nullptr;

double MeasureFmaGflops(double seconds_budget) {
  if (g_fma_probe != nullptr) {
    const double gflops = g_fma_probe(seconds_budget);
    if (gflops > 0.0) return gflops;
  }
  float acc[kFmaChains];
  for (int i = 0; i < kFmaChains; ++i) {
    acc[i] = 0.001f * static_cast<float>(i + 1);
  }
  // Multiplier fractionally above 1 and a tiny addend keep every chain
  // finite and non-constant for the full run.
  const float mul = 1.0000001f;
  const float add = 1e-7f;
  int64_t blocks = 0;
  Timer timer;
  do {
    for (int64_t it = 0; it < kFmaBlockIters; ++it) {
      for (int i = 0; i < kFmaChains; ++i) acc[i] = acc[i] * mul + add;
    }
    ++blocks;
  } while (timer.ElapsedSeconds() < seconds_budget);
  const double elapsed = timer.ElapsedSeconds();
  // The sink keeps the chains observable so the loop cannot be deleted.
  volatile float sink = 0.0f;
  for (int i = 0; i < kFmaChains; ++i) sink = sink + acc[i];
  (void)sink;
  const double flops = static_cast<double>(blocks) * kFmaBlockIters *
                       kFmaChains * 2.0;  // multiply + add per step
  return elapsed > 0.0 ? flops / elapsed / 1e9 : 0.0;
}

double MeasureTriadGbps(double seconds_budget) {
  std::vector<float> a(static_cast<size_t>(kTriadElems), 0.0f);
  std::vector<float> b(static_cast<size_t>(kTriadElems), 1.0f);
  std::vector<float> c(static_cast<size_t>(kTriadElems), 2.0f);
  const float scale = 0.5f;
  int64_t passes = 0;
  Timer timer;
  do {
    float* pa = a.data();
    const float* pb = b.data();
    const float* pc = c.data();
    for (int64_t i = 0; i < kTriadElems; ++i) pa[i] = pb[i] + scale * pc[i];
    ++passes;
  } while (timer.ElapsedSeconds() < seconds_budget);
  const double elapsed = timer.ElapsedSeconds();
  volatile float sink = a[static_cast<size_t>(passes % kTriadElems)];
  (void)sink;
  // Two streamed reads and one write per element; write-allocate traffic is
  // not counted, which keeps the figure conservative.
  const double bytes = static_cast<double>(passes) * kTriadElems * 3.0 * 4.0;
  return elapsed > 0.0 ? bytes / elapsed / 1e9 : 0.0;
}

// Creates `dir` and its parents (best effort, like `mkdir -p`).
void MakeDirs(const std::string& dir) {
  std::string partial;
  for (size_t i = 0; i < dir.size(); ++i) {
    partial += dir[i];
    if ((dir[i] == '/' && partial.size() > 1) || i + 1 == dir.size()) {
      mkdir(partial.c_str(), 0755);
    }
  }
}

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

}  // namespace

void SetFmaProbe(FmaProbeFn probe) { g_fma_probe = probe; }

std::string CpuModelName() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.compare(0, 10, "model name") != 0) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    if (start < line.size()) return line.substr(start);
    break;
  }
  return "unknown";
}

int HardwareThreads() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

std::string PeaksCachePath() {
  if (const char* dir = std::getenv("STHSL_CACHE_DIR")) {
    if (dir[0] != '\0') return std::string(dir) + "/machine_peaks.json";
  }
  if (const char* home = std::getenv("HOME")) {
    if (home[0] != '\0') {
      return std::string(home) + "/.cache/sthsl/machine_peaks.json";
    }
  }
  return "/tmp/sthsl-cache/machine_peaks.json";
}

MachinePeaks MeasureMachinePeaks(double seconds_budget) {
  MachinePeaks peaks;
  peaks.cpu_model = CpuModelName();
  peaks.hardware_threads = HardwareThreads();
  peaks.created_utc = internal_logging::FormatTimestampIso8601();
  const double half = seconds_budget > 0.0 ? seconds_budget / 2.0 : 0.0;
  peaks.gflops_1t = MeasureFmaGflops(half);
  peaks.gbps_1t = MeasureTriadGbps(half);
  return peaks;
}

bool LoadCachedPeaks(const std::string& path, MachinePeaks* out) {
  std::ifstream file(path);
  if (!file.good()) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  json::JsonValue root;
  std::string error;
  json::JsonParser parser(text);
  if (!parser.Parse(&root, &error)) return false;
  if (!root.Is(json::JsonValue::Kind::kObject)) return false;
  // Schema 2: the FMA peak is measured through the simd gemm-tile probe.
  // Older caches hold the scalar-loop figure, which the vectorized kernels
  // exceed by the vector width — treat them as missing and remeasure.
  const auto* schema =
      root.FindOfKind("schema", json::JsonValue::Kind::kNumber);
  if (schema == nullptr || schema->number != 2) return false;
  const auto* gflops =
      root.FindOfKind("gflops_1t", json::JsonValue::Kind::kNumber);
  const auto* gbps = root.FindOfKind("gbps_1t", json::JsonValue::Kind::kNumber);
  const auto* model =
      root.FindOfKind("cpu_model", json::JsonValue::Kind::kString);
  if (gflops == nullptr || gbps == nullptr || model == nullptr) return false;
  MachinePeaks peaks;
  peaks.gflops_1t = gflops->number;
  peaks.gbps_1t = gbps->number;
  peaks.cpu_model = model->text;
  if (const auto* threads = root.FindOfKind(
          "hardware_threads", json::JsonValue::Kind::kNumber)) {
    peaks.hardware_threads = static_cast<int>(threads->number);
  }
  if (const auto* created =
          root.FindOfKind("created_utc", json::JsonValue::Kind::kString)) {
    peaks.created_utc = created->text;
  }
  peaks.from_cache = true;
  if (!peaks.valid()) return false;
  *out = peaks;
  return true;
}

bool SaveMachinePeaks(const std::string& path, const MachinePeaks& peaks) {
  MakeDirs(DirnameOf(path));
  std::ofstream file(path, std::ios::trunc);
  if (!file.good()) return false;
  char numbers[128];
  std::snprintf(numbers, sizeof numbers,
                "\"gflops_1t\":%.6g,\"gbps_1t\":%.6g,\"hardware_threads\":%d",
                peaks.gflops_1t, peaks.gbps_1t, peaks.hardware_threads);
  file << "{\"schema\":2,\"cpu_model\":" << json::JsonQuote(peaks.cpu_model)
       << "," << numbers
       << ",\"created_utc\":" << json::JsonQuote(peaks.created_utc) << "}\n";
  return file.good();
}

MachinePeaks CalibrateMachinePeaks(bool force_remeasure,
                                   double seconds_budget) {
  const std::string path = PeaksCachePath();
  if (!force_remeasure) {
    MachinePeaks cached;
    if (LoadCachedPeaks(path, &cached) &&
        cached.cpu_model == CpuModelName()) {
      return cached;
    }
  }
  MachinePeaks peaks = MeasureMachinePeaks(seconds_budget);
  if (!SaveMachinePeaks(path, peaks)) {
    STHSL_LOG(Warning) << "could not write machine-peaks cache to " << path;
  }
  return peaks;
}

}  // namespace sthsl::obs
