#include "util/obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <sstream>
#include <vector>

#include "util/obs/metrics.h"
#include "util/obs/obs.h"

namespace sthsl::obs {
namespace {

// Ops sorted by total (forward + backward) time, heaviest first.
std::vector<OpProfile> SortedOps() {
  std::vector<OpProfile> ops = OpProfiles();
  std::sort(ops.begin(), ops.end(), [](const OpProfile& a,
                                       const OpProfile& b) {
    return a.forward_us + a.backward_us > b.forward_us + b.backward_us;
  });
  return ops;
}

std::vector<ScopeProfile> SortedScopes() {
  std::vector<ScopeProfile> scopes = ScopeProfiles();
  std::sort(scopes.begin(), scopes.end(),
            [](const ScopeProfile& a, const ScopeProfile& b) {
              return a.total_us > b.total_us;
            });
  return scopes;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintObsSummary(std::FILE* out) {
  const std::vector<OpProfile> ops = SortedOps();
  if (!ops.empty()) {
    std::fprintf(out, "[sthsl-obs] per-op profile (self time)\n");
    std::fprintf(out, "  %-24s %9s %12s %9s %12s %10s %10s %8s\n", "op",
                 "calls", "fwd_ms", "bwd_calls", "bwd_ms", "MB", "GFLOP",
                 "GF/s");
    double total_fwd = 0.0;
    double total_bwd = 0.0;
    const size_t shown = std::min<size_t>(ops.size(), 20);
    for (const OpProfile& op : ops) {
      total_fwd += op.forward_us;
      total_bwd += op.backward_us;
    }
    for (size_t i = 0; i < shown; ++i) {
      const OpProfile& op = ops[i];
      const double gflop =
          static_cast<double>(op.forward_flops + op.backward_flops) / 1e9;
      const double total_us = op.forward_us + op.backward_us;
      const double gfps = total_us > 0.0 ? gflop * 1e6 / total_us : 0.0;
      std::fprintf(out, "  %-24s %9" PRId64 " %12.3f %9" PRId64
                   " %12.3f %10.2f %10.3f %8.2f\n",
                   op.name.c_str(), op.forward_calls, op.forward_us / 1e3,
                   op.backward_calls, op.backward_us / 1e3,
                   static_cast<double>(op.bytes_touched) / 1e6, gflop, gfps);
    }
    if (ops.size() > shown) {
      std::fprintf(out, "  ... %zu more op(s)\n", ops.size() - shown);
    }
    std::fprintf(out, "  %-24s %9s %12.3f %9s %12.3f\n", "total", "",
                 total_fwd / 1e3, "", total_bwd / 1e3);
  }

  const std::vector<ScopeProfile> scopes = SortedScopes();
  if (!scopes.empty()) {
    std::fprintf(out, "[sthsl-obs] phase scopes\n");
    // "par" is effective parallelism (busy / wall) for exec-layer tags;
    // divide by the thread count for parallel efficiency.
    std::fprintf(out, "  %-28s %9s %12s %12s %6s\n", "scope", "calls",
                 "total_ms", "busy_ms", "par");
    for (const ScopeProfile& scope : scopes) {
      const double par =
          scope.total_us > 0.0 ? scope.busy_us / scope.total_us : 0.0;
      std::fprintf(out, "  %-28s %9" PRId64 " %12.3f %12.3f %6.2f\n",
                   scope.name.c_str(), scope.calls, scope.total_us / 1e3,
                   scope.busy_us / 1e3, par);
    }
  }

  auto& registry = MetricsRegistry::Global();
  const auto counters = registry.Counters();
  const auto gauges = registry.Gauges();
  const auto histograms = registry.Histograms();
  if (!counters.empty() || !gauges.empty() || !histograms.empty()) {
    std::fprintf(out, "[sthsl-obs] metrics\n");
    for (const auto& [name, value] : counters) {
      std::fprintf(out, "  counter %-26s %" PRId64 "\n", name.c_str(), value);
    }
    for (const auto& [name, value] : gauges) {
      std::fprintf(out, "  gauge   %-26s %.6g\n", name.c_str(), value);
    }
    for (const auto& [name, snapshot] : histograms) {
      std::fprintf(out,
                   "  hist    %-26s count=%" PRId64
                   " min=%.6g mean=%.6g p50=%.6g p95=%.6g p99=%.6g "
                   "max=%.6g\n",
                   name.c_str(), snapshot.count, snapshot.min, snapshot.mean,
                   snapshot.p50, snapshot.p95, snapshot.p99, snapshot.max);
    }
  }
  const int64_t peak = PeakTensorBytes();
  if (peak > 0) {
    std::fprintf(out, "[sthsl-obs] tensor memory: peak %.2f MB, live %.2f MB\n",
                 static_cast<double>(peak) / 1e6,
                 static_cast<double>(LiveTensorBytes()) / 1e6);
  }
  const int64_t dropped = DroppedTraceEvents();
  if (dropped > 0) {
    std::fprintf(out,
                 "[sthsl-obs] WARNING: %" PRId64 " trace event(s) dropped "
                 "(raise STHSL_TRACE_MAX_EVENTS)\n",
                 dropped);
  }
}

Status WriteChromeTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open trace output " + path);
  }
  std::fprintf(file,
               "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"name\":"
               "\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,"
               "\"args\":{\"name\":\"sthsl\"}}");
  for (const TraceEvent& event : TraceEvents()) {
    std::fprintf(file,
                 ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                 "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}",
                 JsonEscape(event.name).c_str(), event.category, event.ts_us,
                 event.dur_us, event.tid);
  }
  std::fprintf(file, "]}\n");
  if (std::fclose(file) != 0) {
    return Status::IoError("error writing trace output " + path);
  }
  return Status::Ok();
}

std::string MetricsJson() {
  std::ostringstream json;
  json.precision(10);
  auto& registry = MetricsRegistry::Global();

  json << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.Counters()) {
    json << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << value;
    first = false;
  }
  json << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.Gauges()) {
    json << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << value;
    first = false;
  }
  json << "},\"histograms\":{";
  first = true;
  for (const auto& [name, s] : registry.Histograms()) {
    json << (first ? "" : ",") << "\"" << JsonEscape(name)
         << "\":{\"count\":" << s.count << ",\"min\":" << s.min
         << ",\"max\":" << s.max << ",\"mean\":" << s.mean
         << ",\"p50\":" << s.p50 << ",\"p95\":" << s.p95
         << ",\"p99\":" << s.p99 << "}";
    first = false;
  }
  json << "},\"ops\":[";
  first = true;
  for (const OpProfile& op : SortedOps()) {
    json << (first ? "" : ",") << "{\"name\":\"" << JsonEscape(op.name)
         << "\",\"forward_calls\":" << op.forward_calls
         << ",\"forward_us\":" << op.forward_us
         << ",\"backward_calls\":" << op.backward_calls
         << ",\"backward_us\":" << op.backward_us
         << ",\"bytes_touched\":" << op.bytes_touched
         << ",\"forward_flops\":" << op.forward_flops
         << ",\"backward_flops\":" << op.backward_flops
         << ",\"backward_bytes\":" << op.backward_bytes << "}";
    first = false;
  }
  json << "],\"scopes\":[";
  first = true;
  for (const ScopeProfile& scope : SortedScopes()) {
    json << (first ? "" : ",") << "{\"name\":\"" << JsonEscape(scope.name)
         << "\",\"calls\":" << scope.calls
         << ",\"total_us\":" << scope.total_us
         << ",\"busy_us\":" << scope.busy_us
         << ",\"slices\":" << scope.slices << "}";
    first = false;
  }
  json << "],\"tensor_memory\":{\"live_bytes\":" << LiveTensorBytes()
       << ",\"peak_bytes\":" << PeakTensorBytes()
       << "},\"dropped_trace_events\":" << DroppedTraceEvents() << "}";
  return json.str();
}

Status WriteMetricsJson(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open metrics output " + path);
  }
  const std::string json = MetricsJson();
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  if (std::fclose(file) != 0) {
    return Status::IoError("error writing metrics output " + path);
  }
  return Status::Ok();
}

}  // namespace sthsl::obs
