#include "util/obs/obs.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/obs/export.h"
#include "util/timer.h"

namespace sthsl::obs {
namespace {

struct ScopeFrame {
  const char* name;
  double start_us;
  Timer timer;
};

// All shared state lives behind one mutex; the hot path touches it only when
// tracing is enabled, and training is effectively single-threaded, so a
// plain mutex is cheap and keeps multi-threaded callers safe.
struct State {
  std::mutex mu;
  std::unordered_map<std::string, OpProfile> ops;
  std::unordered_map<std::string, ScopeProfile> scopes;
  std::vector<TraceEvent> events;
  int64_t dropped_events = 0;
  int64_t max_events = int64_t{1} << 20;
  std::string trace_path;
  std::string metrics_path;
  std::atomic<int64_t> live_bytes{0};
  std::atomic<int64_t> peak_bytes{0};
};

// Leaked on purpose: the atexit exporter runs after static destruction of
// ordinary globals would have begun.
State& S() {
  static State* state = new State();
  return *state;
}

// Process-wide monotonic clock all timestamps are relative to.
Timer& TraceClock() {
  static Timer* timer = new Timer();
  return *timer;
}

// Per-thread op boundary: the instant the previous op (or scope edge, or
// backward-pass edge) completed. Negative means "no boundary yet" — the
// first op on a thread is recorded with zero duration rather than absorbing
// arbitrary prior time.
thread_local double t_boundary_us = -1.0;
thread_local int t_backward_depth = 0;
thread_local std::vector<ScopeFrame> t_scope_stack;

int ThisTid() {
  static std::atomic<int> next{1};
  thread_local int tid = next.fetch_add(1);
  return tid;
}

void AddEventLocked(State& state, std::string name, const char* category,
                    double ts_us, double dur_us, int tid) {
  if (static_cast<int64_t>(state.events.size()) >= state.max_events) {
    ++state.dropped_events;
    return;
  }
  state.events.push_back({std::move(name), category, ts_us, dur_us, tid});
}

bool EnabledFromEnv() {
  const char* value = std::getenv("STHSL_TRACE");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

void AtExitFlush() {
  if (!TraceEnabled()) return;
  std::string trace_path;
  std::string metrics_path;
  {
    State& state = S();
    std::lock_guard<std::mutex> lock(state.mu);
    trace_path = state.trace_path;
    metrics_path = state.metrics_path;
  }
  PrintObsSummary(stderr);
  if (!trace_path.empty()) {
    const Status status = WriteChromeTrace(trace_path);
    if (status.ok()) {
      std::fprintf(stderr, "[sthsl-obs] trace written to %s\n",
                   trace_path.c_str());
    } else {
      std::fprintf(stderr, "[sthsl-obs] %s\n", status.ToString().c_str());
    }
  }
  if (!metrics_path.empty()) {
    const Status status = WriteMetricsJson(metrics_path);
    if (status.ok()) {
      std::fprintf(stderr, "[sthsl-obs] metrics written to %s\n",
                   metrics_path.c_str());
    } else {
      std::fprintf(stderr, "[sthsl-obs] %s\n", status.ToString().c_str());
    }
  }
}

void EnsureExitHookRegistered() {
  static bool once = [] {
    std::atexit(AtExitFlush);
    return true;
  }();
  (void)once;
}

bool InitFromEnv() {
  State& state = S();
  if (const char* path = std::getenv("STHSL_TRACE_OUT")) {
    state.trace_path = path;
  }
  if (const char* path = std::getenv("STHSL_METRICS_OUT")) {
    state.metrics_path = path;
  }
  if (const char* cap = std::getenv("STHSL_TRACE_MAX_EVENTS")) {
    const int64_t parsed = std::atoll(cap);
    if (parsed > 0) state.max_events = parsed;
  }
  const bool enabled = EnabledFromEnv();
  if (enabled) EnsureExitHookRegistered();
  return enabled;
}

}  // namespace

namespace obs_internal {
bool g_enabled = InitFromEnv();
}  // namespace obs_internal

bool SetTraceEnabled(bool enabled) {
  const bool previous = obs_internal::g_enabled;
  obs_internal::g_enabled = enabled;
  if (enabled) EnsureExitHookRegistered();
  return previous;
}

void SetTraceOutPath(std::string path) {
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  state.trace_path = std::move(path);
}

void SetMetricsOutPath(std::string path) {
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  state.metrics_path = std::move(path);
}

double TraceNowMicros() { return TraceClock().ElapsedMicros(); }

void RecordForwardOp(const std::string& name, int64_t bytes_touched,
                     int64_t flops) {
  const double now = TraceNowMicros();
  const double dur = t_boundary_us >= 0.0 ? now - t_boundary_us : 0.0;
  t_boundary_us = now;
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  OpProfile& op = state.ops[name];
  op.name = name;
  ++op.forward_calls;
  op.forward_us += dur;
  op.bytes_touched += bytes_touched;
  op.forward_flops += flops;
  AddEventLocked(state, name, "op", now - dur, dur, ThisTid());
}

void RecordBackwardOp(const std::string& name, double start_us, int64_t flops,
                      int64_t bytes) {
  const double now = TraceNowMicros();
  t_boundary_us = now;
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  OpProfile& op = state.ops[name];
  op.name = name;
  ++op.backward_calls;
  op.backward_us += now - start_us;
  op.backward_flops += flops;
  op.backward_bytes += bytes;
  AddEventLocked(state, name, "backward", start_us, now - start_us, ThisTid());
}

void RecordKernelSample(const std::string& name, double dur_us, int64_t bytes,
                        int64_t flops) {
  const double now = TraceNowMicros();
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  OpProfile& op = state.ops[name];
  op.name = name;
  ++op.forward_calls;
  op.forward_us += dur_us;
  op.bytes_touched += bytes;
  op.forward_flops += flops;
  AddEventLocked(state, name, "op", now - dur_us, dur_us, ThisTid());
}

bool InBackwardPass() { return t_backward_depth > 0; }

BackwardPassGuard::BackwardPassGuard() : active_(TraceEnabled()) {
  if (!active_) return;
  ++t_backward_depth;
  t_boundary_us = TraceNowMicros();
}

BackwardPassGuard::~BackwardPassGuard() {
  if (!active_) return;
  --t_backward_depth;
  t_boundary_us = TraceNowMicros();
}

void RecordServeSpan(const char* name, double start_us, double dur_us) {
  if (!TraceEnabled()) return;
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  AddEventLocked(state, name, "serve", start_us, dur_us, ThisTid());
}

void BeginScope(const char* name) {
  ScopeFrame frame;
  frame.name = name;
  frame.start_us = TraceNowMicros();
  t_scope_stack.push_back(frame);
  t_boundary_us = frame.start_us;
}

void EndScope() {
  if (t_scope_stack.empty()) return;
  ScopeFrame frame = t_scope_stack.back();
  t_scope_stack.pop_back();
  const double dur = frame.timer.ElapsedMicros();
  t_boundary_us = TraceNowMicros();
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  ScopeProfile& scope = state.scopes[frame.name];
  scope.name = frame.name;
  ++scope.calls;
  scope.total_us += dur;
  AddEventLocked(state, frame.name, "phase", frame.start_us, dur, ThisTid());
}

ParallelRegionToken BeginParallelRegion(const char* tag) {
  ParallelRegionToken token;
  if (!TraceEnabled()) return token;
  token.tag = tag;
  token.launch_tid = ThisTid();
  token.start_us = TraceNowMicros();
  token.active = true;
  return token;
}

void RecordParallelSlice(const ParallelRegionToken& token, double start_us,
                         double dur_us) {
  if (!token.active) return;
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  AddEventLocked(state, token.tag, "exec", start_us, dur_us, ThisTid());
}

void EndParallelRegion(const ParallelRegionToken& token, double busy_us,
                       int64_t slices) {
  if (!token.active) return;
  const double dur = TraceNowMicros() - token.start_us;
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  ScopeProfile& scope = state.scopes[token.tag];
  scope.name = token.tag;
  ++scope.calls;
  scope.total_us += dur;
  scope.busy_us += busy_us;
  scope.slices += slices;
}

void OnTensorAlloc(int64_t bytes) {
  State& state = S();
  const int64_t live = state.live_bytes.fetch_add(bytes) + bytes;
  int64_t peak = state.peak_bytes.load();
  while (live > peak &&
         !state.peak_bytes.compare_exchange_weak(peak, live)) {
  }
}

void OnTensorFree(int64_t bytes) {
  // May transiently undershoot zero when tracing is toggled between a
  // tensor's allocation and destruction; LiveTensorBytes clamps.
  S().live_bytes.fetch_sub(bytes);
}

int64_t LiveTensorBytes() {
  const int64_t live = S().live_bytes.load();
  return live > 0 ? live : 0;
}

int64_t PeakTensorBytes() {
  const int64_t peak = S().peak_bytes.load();
  return peak > 0 ? peak : 0;
}

std::vector<OpProfile> OpProfiles() {
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<OpProfile> out;
  out.reserve(state.ops.size());
  for (const auto& [name, op] : state.ops) out.push_back(op);
  return out;
}

std::vector<ScopeProfile> ScopeProfiles() {
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<ScopeProfile> out;
  out.reserve(state.scopes.size());
  for (const auto& [name, scope] : state.scopes) out.push_back(scope);
  return out;
}

std::vector<TraceEvent> TraceEvents() {
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.events;
}

int64_t DroppedTraceEvents() {
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.dropped_events;
}

void ResetProfiler() {
  State& state = S();
  std::lock_guard<std::mutex> lock(state.mu);
  state.ops.clear();
  state.scopes.clear();
  state.events.clear();
  state.dropped_events = 0;
  state.live_bytes.store(0);
  state.peak_bytes.store(0);
  // The reset instant becomes the calling thread's op boundary: the caller
  // is starting a measurement region here, so the first op afterwards must
  // be attributed its full duration. Recording it with zero duration (the
  // -1 "no boundary" sentinel, kept for threads that never reset) would
  // under-count a k-iteration benchmark loop's time by 1/k while
  // forward_calls still counts every call — inflating achieved GFLOP/s.
  t_boundary_us = TraceNowMicros();
}

}  // namespace sthsl::obs
