#ifndef STHSL_UTIL_OBS_EXPORT_H_
#define STHSL_UTIL_OBS_EXPORT_H_

#include <cstdio>
#include <string>

#include "util/status.h"

namespace sthsl::obs {

/// Exporters over the profiler + metrics registry state. All three run
/// automatically at process exit when tracing is enabled (see obs.h); they
/// can also be invoked directly (benches, tests).

/// Human-readable summary: top ops by total time, phase scopes, metrics.
void PrintObsSummary(std::FILE* out);

/// Writes the event buffer in Chrome trace-event JSON ("ph":"X" complete
/// events, microsecond timestamps) loadable by chrome://tracing / Perfetto.
Status WriteChromeTrace(const std::string& path);

/// Writes the metrics registry + per-op/scope profiles + tensor-memory
/// accounting as one JSON object (consumed by the bench harness and the
/// sthsl_trace_check tool).
Status WriteMetricsJson(const std::string& path);

/// The JSON body WriteMetricsJson writes, for in-process consumers.
std::string MetricsJson();

/// Escapes a string for embedding in a JSON string literal.
std::string JsonEscape(const std::string& text);

}  // namespace sthsl::obs

#endif  // STHSL_UTIL_OBS_EXPORT_H_
