#include "util/obs/run_ledger.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/obs/export.h"

namespace sthsl::obs {
namespace {

/// Renders a double as a JSON literal; JSON has no NaN/Inf, so non-finite
/// values become null (the validator and report treat null as "absent").
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

std::string QuotedJson(const std::string& text) {
  return "\"" + JsonEscape(text) + "\"";
}

/// Compile-time build description for the header record, so a ledger row
/// is attributable to the binary that produced it.
std::string BuildFlags() {
  std::string flags;
#ifdef NDEBUG
  flags += "NDEBUG";
#else
  flags += "DEBUG";
#endif
#if defined(__SANITIZE_ADDRESS__)
  flags += "+asan";
#endif
#if defined(__SANITIZE_THREAD__)
  flags += "+tsan";
#endif
  return flags;
}

}  // namespace

RunLedger& RunLedger::Global() {
  // Leaked on purpose, like the profiler state: usable from atexit paths.
  static RunLedger* ledger = [] {
    auto* instance = new RunLedger();
    if (const char* path = std::getenv("STHSL_RUN_LOG")) {
      instance->SetDefaultPath(path);
    }
    return instance;
  }();
  return *ledger;
}

void RunLedger::SetDefaultPath(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  default_path_ = std::move(path);
}

std::string RunLedger::DefaultPath() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_path_;
}

bool RunLedger::Configured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !default_path_.empty();
}

bool RunLedger::Active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !run_path_.empty();
}

void RunLedger::AppendLineLocked(const std::string& json) {
  std::FILE* file = std::fopen(run_path_.c_str(), "a");
  if (file == nullptr) {
    std::fprintf(stderr, "[sthsl-obs] cannot append to run ledger %s\n",
                 run_path_.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

void RunLedger::BeginRun(const RunLedgerHeader& header,
                         const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  run_path_ = path.empty() ? default_path_ : path;
  run_model_.clear();
  run_id_ = 0;
  if (run_path_.empty()) return;
  run_model_ = header.model;
  run_id_ = next_run_id_++;

  std::string json = "{\"record\":\"header\",\"schema\":";
  json += std::to_string(kRunLedgerSchemaVersion);
  json += ",\"run\":" + std::to_string(run_id_);
  json += ",\"model\":" + QuotedJson(header.model);
  json += ",\"dataset\":{\"city\":" + QuotedJson(header.dataset_city);
  json += ",\"rows\":" + std::to_string(header.dataset_rows);
  json += ",\"cols\":" + std::to_string(header.dataset_cols);
  json += ",\"days\":" + std::to_string(header.dataset_days);
  json += ",\"categories\":" + std::to_string(header.dataset_categories);
  json += ",\"generator_seed\":" +
          std::to_string(header.dataset_generator_seed) + "}";
  json += ",\"train_end\":" + std::to_string(header.train_end);
  json += ",\"train_seed\":" + std::to_string(header.train_seed);
  json += ",\"build\":{\"compiler\":" + QuotedJson(__VERSION__);
  json += ",\"flags\":" + QuotedJson(BuildFlags()) + "}";
  json += ",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : header.config) {
    if (!first) json += ",";
    json += QuotedJson(key) + ":" + value;
    first = false;
  }
  json += "}}";
  AppendLineLocked(json);
}

void RunLedger::RecordEpoch(const RunLedgerEpoch& epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (run_path_.empty()) return;
  std::string json = "{\"record\":\"epoch\",\"run\":" + std::to_string(run_id_);
  json += ",\"epoch\":" + std::to_string(epoch.epoch);
  json += ",\"loss\":" + JsonNumber(epoch.loss);
  json += ",\"lr\":" + JsonNumber(epoch.lr);
  json += ",\"epoch_seconds\":" + JsonNumber(epoch.epoch_seconds);
  json += ",\"windows\":" + std::to_string(epoch.windows);
  json += ",\"grad_norm\":" + JsonNumber(epoch.grad_norm);
  json += ",\"peak_tensor_bytes\":" + std::to_string(epoch.peak_tensor_bytes);
  if (epoch.has_validation) {
    json += ",\"validation_mae\":" + JsonNumber(epoch.validation_mae);
    json += std::string(",\"best_snapshot\":") +
            (epoch.best_snapshot ? "true" : "false");
  }
  json += ",\"params\":[";
  bool first = true;
  for (const RunLedgerParamStats& p : epoch.params) {
    if (!first) json += ",";
    json += "{\"name\":" + QuotedJson(p.name);
    json += ",\"numel\":" + std::to_string(p.numel);
    json += ",\"grad_norm\":" + JsonNumber(p.grad_norm);
    json += ",\"weight_norm\":" + JsonNumber(p.weight_norm);
    json += ",\"update_ratio\":" + JsonNumber(p.update_ratio);
    json += ",\"nan_grad_frac\":" + JsonNumber(p.nan_grad_frac);
    json += ",\"zero_grad_frac\":" + JsonNumber(p.zero_grad_frac) + "}";
    first = false;
  }
  json += "]}";
  AppendLineLocked(json);
}

void RunLedger::RecordEvent(const std::string& kind, int64_t epoch,
                            double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (run_path_.empty()) return;
  std::string json = "{\"record\":\"event\",\"run\":" + std::to_string(run_id_);
  json += ",\"kind\":" + QuotedJson(kind);
  json += ",\"epoch\":" + std::to_string(epoch);
  if (std::isfinite(value)) json += ",\"value\":" + JsonNumber(value);
  json += "}";
  AppendLineLocked(json);
}

void RunLedger::RecordFinalEval(const std::string& model,
                                const std::string& city,
                                const RunLedgerEval& overall,
                                const std::vector<RunLedgerEval>& categories) {
  std::lock_guard<std::mutex> lock(mu_);
  if (run_path_.empty() || model != run_model_) return;
  auto eval_json = [](const RunLedgerEval& e) {
    std::string json = "{\"name\":" + QuotedJson(e.name);
    json += ",\"mae\":" + JsonNumber(e.mae);
    json += ",\"mape\":" + JsonNumber(e.mape);
    json += ",\"rmse\":" + JsonNumber(e.rmse);
    json += ",\"entries\":" + std::to_string(e.entries) + "}";
    return json;
  };
  std::string json = "{\"record\":\"final\",\"run\":" + std::to_string(run_id_);
  json += ",\"model\":" + QuotedJson(model);
  json += ",\"city\":" + QuotedJson(city);
  json += ",\"overall\":" + eval_json(overall);
  json += ",\"categories\":[";
  for (size_t i = 0; i < categories.size(); ++i) {
    if (i > 0) json += ",";
    json += eval_json(categories[i]);
  }
  json += "]}";
  AppendLineLocked(json);
  run_path_.clear();
  run_model_.clear();
  run_id_ = 0;
}

void RunLedger::EndRun() {
  std::lock_guard<std::mutex> lock(mu_);
  run_path_.clear();
  run_model_.clear();
  run_id_ = 0;
}

}  // namespace sthsl::obs
