#ifndef STHSL_UTIL_OBS_RUN_LEDGER_H_
#define STHSL_UTIL_OBS_RUN_LEDGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sthsl::obs {

/// Cross-run experiment log: an append-only JSONL file where every training
/// run streams a header record (model, full training config, dataset and
/// seeds, build flags), one record per epoch (loss, learning rate, global
/// and per-parameter-tensor gradient-flow statistics, validation MAE, wall
/// time, peak tensor bytes), event records (best-snapshot restore, early
/// stop) and a closing final-eval record with the masked test metrics.
///
/// `tools/sthsl_report` aggregates N ledgers into comparison tables and a
/// quality/efficiency regression gate; `sthsl_trace_check --run-log`
/// validates the schema (see docs/observability.md for the record layout).
///
/// Activation: a per-run path (`TrainConfig::run_log`, `sthsl_cli train
/// --run-log`) takes precedence; otherwise the process-default path
/// (STHSL_RUN_LOG env, or SetDefaultPath — the bench harness points it at
/// $STHSL_BENCH_JSON_DIR/LEDGER_<bench>.jsonl) applies. When neither is set
/// the trainer skips all bookkeeping: the disabled path costs one string
/// emptiness check per Fit, keeping the zero-cost-when-off contract of the
/// rest of the obs layer.

/// Record-layout version stamped into every header record; bump on any
/// backwards-incompatible field change.
inline constexpr int kRunLedgerSchemaVersion = 1;

/// Gradient-flow statistics of one parameter tensor, sampled at the last
/// optimizer step of an epoch (after gradient accumulation, before and
/// after the optimizer update).
struct RunLedgerParamStats {
  std::string name;  // Module::NamedParameters() path, e.g. "head.weight"
  int64_t numel = 0;
  double grad_norm = 0.0;    // L2 norm of the accumulated gradient
  double weight_norm = 0.0;  // L2 norm of the weights before the update
  /// ||w_after - w_before|| / (||w_before|| + 1e-12): the update-to-weight
  /// ratio; healthy training sits around 1e-3, ~0 means a dead layer and
  /// >>1e-2 means the layer is being rewritten every step.
  double update_ratio = 0.0;
  double nan_grad_frac = 0.0;   // fraction of non-finite gradient entries
  double zero_grad_frac = 0.0;  // fraction of exactly-zero gradient entries
};

/// Contents of the run-opening header record.
struct RunLedgerHeader {
  std::string model;
  std::string dataset_city;
  int64_t dataset_rows = 0;
  int64_t dataset_cols = 0;
  int64_t dataset_days = 0;
  int64_t dataset_categories = 0;
  /// Seed of the synthetic generator that produced the dataset; -1 when
  /// unknown (e.g. CSV-loaded data that lost the provenance).
  int64_t dataset_generator_seed = -1;
  int64_t train_end = 0;
  uint64_t train_seed = 0;
  /// The full training configuration as pre-rendered JSON key/value pairs
  /// (values are JSON literals, e.g. {"epochs", "15"} or {"cosine_lr",
  /// "true"}). Rendered by the caller so this layer stays independent of
  /// the core layer's TrainConfig type.
  std::vector<std::pair<std::string, std::string>> config;
};

/// Contents of one per-epoch record.
struct RunLedgerEpoch {
  int64_t epoch = 0;  // 1-based
  double loss = 0.0;  // mean per-window training loss of the epoch
  double lr = 0.0;    // learning rate after the schedule, this epoch
  double epoch_seconds = 0.0;
  int64_t windows = 0;     // training windows consumed this epoch
  double grad_norm = 0.0;  // global L2 over all parameters, sampled step
  /// High-water mark of live tensor bytes (0 unless STHSL_TRACE is on —
  /// memory accounting lives on the tracing hooks).
  int64_t peak_tensor_bytes = 0;
  bool has_validation = false;  // a validation pass ran after this epoch
  double validation_mae = 0.0;  // meaningful when has_validation
  bool best_snapshot = false;   // this epoch's validation improved the best
  std::vector<RunLedgerParamStats> params;
};

/// One evaluation figure of the final-eval record.
struct RunLedgerEval {
  std::string name;  // "overall" or a category name
  double mae = 0.0;
  double mape = 0.0;
  double rmse = 0.0;
  int64_t entries = 0;  // evaluated (positive-truth) entries
};

/// The process-wide ledger writer. Thread-safe; records are appended as
/// single JSONL lines and flushed per write, so a crashed run keeps every
/// completed record.
class RunLedger {
 public:
  /// The process-wide instance (leaked singleton; default path initialized
  /// from the STHSL_RUN_LOG environment variable).
  static RunLedger& Global();

  /// Fallback output path for runs that do not name their own ("" disables).
  void SetDefaultPath(std::string path);
  std::string DefaultPath() const;

  /// True when a default path is configured (harness-level check: should
  /// runs started now be ledgered?).
  bool Configured() const;

  /// Opens a run: appends the header record to `path` (falls back to the
  /// default path when empty; no run is opened when both are empty). A
  /// previously open run is superseded.
  void BeginRun(const RunLedgerHeader& header, const std::string& path);

  /// True while a run is open and writable.
  bool Active() const;

  void RecordEpoch(const RunLedgerEpoch& epoch);

  /// Appends an event record ("early_stop", "restore_best", "ema_final").
  /// `epoch` is the 1-based epoch the event refers to; `value` carries the
  /// event's metric (e.g. the best validation MAE) — pass NaN to omit.
  void RecordEvent(const std::string& kind, int64_t epoch, double value);

  /// Appends the final-eval record and closes the run — but only when
  /// `model` matches the open run's model name. EvaluateForecaster calls
  /// this for every forecaster; the guard keeps classical baselines (which
  /// never open runs) from closing a neural model's run.
  void RecordFinalEval(const std::string& model, const std::string& city,
                       const RunLedgerEval& overall,
                       const std::vector<RunLedgerEval>& categories);

  /// Closes the run without a final-eval record.
  void EndRun();

 private:
  void AppendLineLocked(const std::string& json);

  mutable std::mutex mu_;
  std::string default_path_;
  std::string run_path_;   // output file of the open run; empty = no run
  std::string run_model_;  // model name of the open run
  int64_t next_run_id_ = 1;
  int64_t run_id_ = 0;  // id of the open run (0 = none)
};

}  // namespace sthsl::obs

#endif  // STHSL_UTIL_OBS_RUN_LEDGER_H_
