#ifndef STHSL_UTIL_OBS_OBS_H_
#define STHSL_UTIL_OBS_OBS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sthsl::obs {

/// Observability layer: a per-op autograd profiler, scoped phase regions and
/// a Chrome-trace event buffer, shared by the trainer, the benchmarks and
/// `sthsl_cli`.
///
/// Enablement: set the STHSL_TRACE environment variable to anything but "0"
/// before process start, or call SetTraceEnabled(true) at runtime. When
/// disabled, every hook costs a single predictable branch and records no
/// state. When enabled at process exit, a human-readable summary is printed
/// to stderr, and the trace / metrics JSON files configured via
/// STHSL_TRACE_OUT / STHSL_METRICS_OUT (or SetTraceOutPath /
/// SetMetricsOutPath) are written.

namespace obs_internal {
/// Backing flag; read through TraceEnabled(). Initialized from the
/// STHSL_TRACE environment variable during static initialization.
extern bool g_enabled;
}  // namespace obs_internal

/// True when the observability layer is recording.
inline bool TraceEnabled() { return obs_internal::g_enabled; }

/// Enables or disables recording at runtime, overriding the environment
/// variable. Returns the previous state (for scoped save/restore in tests).
bool SetTraceEnabled(bool enabled);

/// Configures the Chrome-trace / metrics JSON files written at process exit.
/// Also settable via the STHSL_TRACE_OUT / STHSL_METRICS_OUT env variables.
void SetTraceOutPath(std::string path);
void SetMetricsOutPath(std::string path);

// -- Per-op profiler ----------------------------------------------------------

/// Aggregated cost of one autograd op name. Forward time is self time: the
/// wall time between the previous op boundary on the thread and the op's
/// MakeResult call, so per-epoch totals are additive and account for the
/// kernel compute plus the glue between consecutive ops. Backward time
/// brackets the op's backward function inside Tensor::Backward.
struct OpProfile {
  std::string name;
  int64_t forward_calls = 0;
  double forward_us = 0.0;
  int64_t backward_calls = 0;
  double backward_us = 0.0;
  /// Bytes read + written per forward call: 4 * (output numel + input numels).
  int64_t bytes_touched = 0;
  /// Analytic floating-point operation counts from the per-op cost model
  /// (src/tensor/kernel_cost.h); zero for ops without a model (pure data
  /// movement) and for callers that predate the model.
  int64_t forward_flops = 0;
  int64_t backward_flops = 0;
  /// Modeled bytes read + written across the op's backward function.
  int64_t backward_bytes = 0;
};

/// Aggregated cost of one named scoped region (model phase). For exec-layer
/// parallel-region tags the busy columns are additionally filled in:
/// `busy_us` sums the chunk-execution time across every participating thread
/// and `slices` counts executed chunks, so per-tag parallel efficiency is
/// busy_us / (total_us * threads).
struct ScopeProfile {
  std::string name;
  int64_t calls = 0;
  double total_us = 0.0;
  double busy_us = 0.0;
  int64_t slices = 0;
};

/// One slice of the Chrome trace ("ph":"X" complete event).
struct TraceEvent {
  std::string name;
  const char* category;  // "op", "backward", "phase", "exec" or "serve"
  double ts_us;          // start, microseconds since the process trace epoch
  double dur_us;
  int tid;
};

/// Microseconds since the process trace epoch (monotonic clock).
double TraceNowMicros();

/// Called by MakeResult once per forward op: attributes the wall time since
/// the previous op boundary on this thread and appends a trace event.
/// `flops` is the op's analytic forward operation count (0 when unmodeled).
void RecordForwardOp(const std::string& name, int64_t bytes_touched,
                     int64_t flops = 0);

/// Called by Tensor::Backward around each GradNode's backward function;
/// `start_us` is the TraceNowMicros() reading taken before the call.
/// `flops` / `bytes` are the analytic backward cost model for the op.
void RecordBackwardOp(const std::string& name, double start_us,
                      int64_t flops = 0, int64_t bytes = 0);

/// Records one explicitly-timed kernel sample into the forward columns of
/// `name`'s profile, without touching this thread's op boundary. For kernels
/// that never pass through MakeResult (optimizer update loops); single
/// mutex-protected update, only call when TraceEnabled().
void RecordKernelSample(const std::string& name, double dur_us, int64_t bytes,
                        int64_t flops);

/// True while a Backward pass runs on this thread. MakeResult skips forward
/// attribution then, so ops executed inside backward functions are not
/// double-counted against the forward column.
bool InBackwardPass();

/// RAII marker for a Backward pass (no-op when tracing is disabled).
class BackwardPassGuard {
 public:
  BackwardPassGuard();
  ~BackwardPassGuard();

  BackwardPassGuard(const BackwardPassGuard&) = delete;
  BackwardPassGuard& operator=(const BackwardPassGuard&) = delete;

 private:
  bool active_;
};

/// Appends one completed span to the trace buffer under the "serve"
/// category, without touching any thread's forward-op boundary. Used by the
/// serving tier for per-request stage spans (header parse, cache lookup,
/// inference, ...). `name` must be a string literal or otherwise outlive the
/// process trace buffer; single-branch no-op when tracing is disabled.
void RecordServeSpan(const char* name, double start_us, double dur_us);

/// Opens / closes a named region on this thread's scope stack. Regions must
/// nest; prefer the STHSL_TRACE_SCOPE macro. `name` must outlive the scope
/// (string literals).
void BeginScope(const char* name);
void EndScope();

/// RAII scoped region; records nothing when tracing is disabled.
class TraceScope {
 public:
  explicit TraceScope(const char* name) : active_(TraceEnabled()) {
    if (active_) BeginScope(name);
  }
  ~TraceScope() {
    if (active_) EndScope();
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool active_;
};

// -- Parallel-region attribution ----------------------------------------------

/// Token tying the chunk slices of one exec-layer parallel region back to
/// the context that launched it. Created on the launching thread by
/// BeginParallelRegion; pool workers pass it to RecordParallelSlice so
/// their time is recorded under the region's tag (trace category "exec")
/// instead of appearing as orphan per-thread ops — and without perturbing
/// any thread's forward-op boundary, so MakeResult's self-time attribution
/// on the launching thread stays correct (the region's wall time lands in
/// the launching op's forward column).
struct ParallelRegionToken {
  const char* tag = nullptr;
  int launch_tid = 0;
  double start_us = 0.0;
  bool active = false;
};

/// Opens a parallel region on the launching thread. Returns an inactive
/// token (single branch, no recording) when tracing is disabled.
ParallelRegionToken BeginParallelRegion(const char* tag);

/// Records one executed chunk slice of the region, on whichever pool worker
/// (or the caller) ran it. No-op for inactive tokens.
void RecordParallelSlice(const ParallelRegionToken& token, double start_us,
                         double dur_us);

/// Closes the region on the launching thread: accumulates the region's wall
/// time — plus the summed per-chunk busy time and executed-chunk count the
/// exec layer measured — into the scope profile named by its tag. No-op for
/// inactive tokens.
void EndParallelRegion(const ParallelRegionToken& token, double busy_us = 0.0,
                       int64_t slices = 0);

// -- Tensor memory accounting -------------------------------------------------

/// Called by Tensor::FromImpl / ~TensorImpl when tracing is enabled; tracks
/// live float-buffer bytes and their high-water mark. Gradient buffers are
/// not counted (the estimate is the value-buffer footprint).
void OnTensorAlloc(int64_t bytes);
void OnTensorFree(int64_t bytes);
int64_t LiveTensorBytes();
int64_t PeakTensorBytes();

// -- Snapshots ----------------------------------------------------------------

std::vector<OpProfile> OpProfiles();
std::vector<ScopeProfile> ScopeProfiles();
std::vector<TraceEvent> TraceEvents();
/// Events discarded after the buffer cap (STHSL_TRACE_MAX_EVENTS, default
/// 2^20) was reached; reported so truncation is never silent.
int64_t DroppedTraceEvents();

/// Clears every recorded profile, scope, trace event and the tensor-memory
/// peak, and resets this thread's op boundary (tests and per-model benches).
void ResetProfiler();

}  // namespace sthsl::obs

#define STHSL_OBS_CONCAT_INNER(a, b) a##b
#define STHSL_OBS_CONCAT(a, b) STHSL_OBS_CONCAT_INNER(a, b)

/// Marks the enclosing block as a named trace region (model phase):
///   STHSL_TRACE_SCOPE("sthsl/hypergraph_prop");
#define STHSL_TRACE_SCOPE(name) \
  ::sthsl::obs::TraceScope STHSL_OBS_CONCAT(sthsl_trace_scope_, __LINE__)(name)

#endif  // STHSL_UTIL_OBS_OBS_H_
