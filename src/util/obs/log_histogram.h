#ifndef STHSL_UTIL_OBS_LOG_HISTOGRAM_H_
#define STHSL_UTIL_OBS_LOG_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "util/obs/metrics.h"

namespace sthsl::obs {

/// Bounded log-linear (HDR-style) histogram for high-rate hot paths: the
/// serving tier records every request latency into one of these instead of
/// the sample-accumulating Histogram, so metric memory stays constant no
/// matter how many requests are served.
///
/// Layout: bucket 0 covers [0, 1); above that each power-of-two octave
/// [2^e, 2^(e+1)) is split into kSubBuckets equal-width linear sub-buckets,
/// for kOctaves octaves. With kSubBuckets = 16 a bucket is 1/16th of its
/// octave wide, so any recorded value v >= 1 lands in a bucket whose width
/// is at most v/16 — quantile estimates (reported at the bucket midpoint,
/// clamped to the observed [min, max]) carry a relative error of at most
/// 1/(2*16) ~= 3.125%. Values in [0, 1) are reported with absolute error
/// <= 0.5; values at or above 2^kOctaves clamp into the last bucket.
///
/// Recording is lock-free: one relaxed fetch_add on the bucket counter plus
/// compare-exchange loops for sum/min/max. Snapshots and merges read the
/// counters without stopping writers, so a snapshot taken under concurrent
/// recording is a consistent-enough view, not a linearizable one.
class LogHistogram {
 public:
  static constexpr int kSubBuckets = 16;
  static constexpr int kOctaves = 44;  // covers [1, 2^44) ~= 2e13
  static constexpr int kNumBuckets = 1 + kOctaves * kSubBuckets;

  LogHistogram() = default;

  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Records one value. Negative and NaN values count into bucket 0.
  void Record(double value);

  /// count/min/max/mean are exact (modulo concurrent-writer skew);
  /// percentiles are bucket-midpoint estimates with the error bound above.
  Histogram::Snapshot GetSnapshot() const;

  /// Adds every recorded sample of `other` into this histogram. Bucket
  /// addition commutes and associates, so merging per-shard or per-process
  /// histograms in any order yields the same result.
  void MergeFrom(const LogHistogram& other);

  /// The bucket a value falls into (exposed for property tests).
  static int BucketIndex(double value);
  /// Inclusive lower edge of `bucket`; the next bucket's edge bounds it.
  static double BucketLowerBound(int bucket);

  int64_t bucket_count(int bucket) const {
    return buckets_[static_cast<size_t>(bucket)].load(
        std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

}  // namespace sthsl::obs

#endif  // STHSL_UTIL_OBS_LOG_HISTOGRAM_H_
