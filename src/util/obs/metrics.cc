#include "util/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/obs/log_histogram.h"

namespace sthsl::obs {

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(value);
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_;
  }
  Snapshot snapshot;
  if (sorted.empty()) return snapshot;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  snapshot.count = static_cast<int64_t>(n);
  snapshot.min = sorted.front();
  snapshot.max = sorted.back();
  snapshot.mean =
      std::accumulate(sorted.begin(), sorted.end(), 0.0) /
      static_cast<double>(n);
  // Nearest-rank percentile: the smallest sample with at least p*n samples
  // at or below it.
  auto percentile = [&](double p) {
    const size_t rank =
        static_cast<size_t>(std::ceil(p * static_cast<double>(n)));
    return sorted[std::min(n - 1, rank > 0 ? rank - 1 : 0)];
  };
  snapshot.p50 = percentile(0.50);
  snapshot.p95 = percentile(0.95);
  snapshot.p99 = percentile(0.99);
  return snapshot;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

LogHistogram& MetricsRegistry::GetLogHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = log_histograms_[name];
  if (!slot) slot = std::make_unique<LogHistogram>();
  return *slot;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->Value());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size() + log_histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram->GetSnapshot());
  }
  for (const auto& [name, histogram] : log_histograms_) {
    out.emplace_back(name, histogram->GetSnapshot());
  }
  // Both maps iterate name-sorted; one stable sort restores global order.
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  log_histograms_.clear();
}

}  // namespace sthsl::obs
