#include "util/rng.h"

#include <cmath>
#include <numeric>

#include "util/check.h"

namespace sthsl {
namespace {

// SplitMix64, used to expand the single seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  STHSL_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  uint64_t r;
  do {
    r = NextU64();
  } while (r < threshold);
  return r % n;
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_normal_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int Rng::Poisson(double rate) {
  STHSL_CHECK_GE(rate, 0.0);
  if (rate <= 0.0) return 0;
  if (rate < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-rate);
    double product = Uniform();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= Uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large rates.
  const double sample = Normal(rate, std::sqrt(rate));
  return sample < 0.0 ? 0 : static_cast<int>(sample + 0.5);
}

double Rng::Pareto(double x_min, double alpha) {
  STHSL_CHECK_GT(x_min, 0.0);
  STHSL_CHECK_GT(alpha, 0.0);
  double u;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return x_min * std::pow(u, -1.0 / alpha);
}

double Rng::Gamma(double shape, double scale) {
  STHSL_CHECK_GT(shape, 0.0);
  STHSL_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then apply the standard correction.
    const double u = std::max(Uniform(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x;
    double v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int> Rng::Permutation(int n) {
  STHSL_CHECK_GE(n, 0);
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  Shuffle(perm);
  return perm;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace sthsl
