#include "util/logging.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace sthsl {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogLevel LevelFromEnv() {
  const char* value = std::getenv("STHSL_LOG_LEVEL");
  if (value == nullptr || value[0] == '\0') return LogLevel::kInfo;
  std::string lowered;
  for (const char* p = value; *p != '\0'; ++p) {
    lowered += static_cast<char>(
        *p >= 'A' && *p <= 'Z' ? *p - 'A' + 'a' : *p);
  }
  if (lowered == "debug" || lowered == "0") return LogLevel::kDebug;
  if (lowered == "info" || lowered == "1") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning" || lowered == "2") {
    return LogLevel::kWarning;
  }
  if (lowered == "error" || lowered == "3") return LogLevel::kError;
  return LogLevel::kInfo;
}

LogLevel g_min_level = LevelFromEnv();

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

namespace internal_logging {

std::string FormatTimestampIso8601() {
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  using std::chrono::system_clock;
  const auto now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis);
  return buffer;
}

void Emit(LogLevel level, const std::string& message) {
  if (level < g_min_level) return;
  // Assemble the full line first, then write it atomically under one lock,
  // so trainer/bench output from concurrent threads stays readable.
  std::string line = FormatTimestampIso8601();
  line += " [";
  line += LevelName(level);
  line += "] ";
  line += message;
  line += '\n';
  static std::mutex* mu = new std::mutex();
  std::lock_guard<std::mutex> lock(*mu);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal_logging
}  // namespace sthsl
