#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace sthsl {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteCell(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void AppendRow(std::ostream& os, const std::vector<std::string>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << ',';
    os << QuoteCell(row[i]);
  }
  os << '\n';
}

}  // namespace

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  AppendRow(file, table.header);
  for (const auto& row : table.rows) AppendRow(file, row);
  file.flush();
  if (!file.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(file, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (first) {
      table.header = SplitCsvLine(line);
      first = false;
    } else {
      table.rows.push_back(SplitCsvLine(line));
    }
  }
  if (first) return Status::IoError("empty csv file: " + path);
  return table;
}

}  // namespace sthsl
