#ifndef STHSL_UTIL_LOGGING_H_
#define STHSL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace sthsl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted. The initial
/// value comes from the STHSL_LOG_LEVEL environment variable ("debug",
/// "info", "warn"/"warning", "error", or 0-3); default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Emits one complete line: "<ISO-8601 UTC> [LEVEL] message\n", written with
/// a single locked write so lines from concurrent threads never interleave.
void Emit(LogLevel level, const std::string& message);

/// Current UTC wall time as "YYYY-MM-DDTHH:MM:SS.mmmZ".
std::string FormatTimestampIso8601();

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Emit(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace sthsl

#define STHSL_LOG(level)                                 \
  ::sthsl::internal_logging::LogMessage(                 \
      ::sthsl::LogLevel::k##level)

#endif  // STHSL_UTIL_LOGGING_H_
