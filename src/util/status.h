#ifndef STHSL_UTIL_STATUS_H_
#define STHSL_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace sthsl {

/// Lightweight error-status type in the RocksDB/absl style. The project
/// builds without exceptions; every fallible operation returns a `Status`
/// (or a `Result<T>`, see below) that callers must inspect.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIoError,
    kFailedPrecondition,
    kOutOfRange,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logging.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Value-or-error wrapper. `ok()` must be checked before `value()`;
/// accessing the value of a failed result aborts (see STHSL_CHECK).
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace sthsl

#endif  // STHSL_UTIL_STATUS_H_
