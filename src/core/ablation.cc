#include "core/ablation.h"

#include "util/check.h"

namespace sthsl {

SthslConfig AblationVariant(const std::string& name, SthslConfig base) {
  SthslConfig config = base;
  if (name == "ST-HSL") {
    return config;
  }
  if (name == "w/o S-Conv") {
    config.use_spatial_conv = false;
    return config;
  }
  if (name == "w/o T-Conv") {
    config.use_temporal_conv = false;
    return config;
  }
  if (name == "w/o C-Conv") {
    config.use_category_conv = false;
    return config;
  }
  if (name == "w/o Local") {
    config.use_local_encoder = false;
    return config;
  }
  if (name == "w/o Hyper") {
    // Remove the hypergraph branch entirely; both self-supervised tasks
    // depend on it, and prediction falls back to the local view.
    config.use_hypergraph = false;
    config.use_infomax = false;
    config.use_contrastive = false;
    config.prediction_source = PredictionSource::kLocal;
    return config;
  }
  if (name == "w/o GlobalTem") {
    config.use_global_temporal = false;
    return config;
  }
  if (name == "w/o Infomax") {
    config.use_infomax = false;
    return config;
  }
  if (name == "w/o ConL") {
    config.use_contrastive = false;
    return config;
  }
  if (name == "w/o Global") {
    // Like "w/o ConL" but predicting from the local encoder only.
    config.use_contrastive = false;
    config.prediction_source = PredictionSource::kLocal;
    return config;
  }
  if (name == "Fusion w/o ConL") {
    config.use_contrastive = false;
    config.prediction_source = PredictionSource::kFusion;
    return config;
  }
  STHSL_CHECK(false) << "unknown ablation variant: " << name;
  return config;
}

std::vector<std::string> LocalEncoderVariantNames() {
  return {"w/o S-Conv", "w/o T-Conv", "w/o C-Conv", "w/o Local", "ST-HSL"};
}

std::vector<std::string> SslVariantNames() {
  return {"w/o Hyper",  "w/o GlobalTem",   "w/o Infomax", "w/o ConL",
          "w/o Global", "Fusion w/o ConL", "ST-HSL"};
}

}  // namespace sthsl
