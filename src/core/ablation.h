#ifndef STHSL_CORE_ABLATION_H_
#define STHSL_CORE_ABLATION_H_

#include <string>
#include <vector>

#include "core/sthsl_model.h"

namespace sthsl {

/// Derives the configuration of a named ablation variant from a base
/// configuration. Recognized names (matching the paper):
///   Fig. 5 (multi-view local encoder):
///     "w/o S-Conv", "w/o T-Conv", "w/o C-Conv", "w/o Local"
///   Table IV (hypergraph dual-stage self-supervision):
///     "w/o Hyper", "w/o GlobalTem", "w/o Infomax", "w/o ConL",
///     "w/o Global", "Fusion w/o ConL"
///   plus "ST-HSL" (the unmodified base).
/// Aborts on an unknown name.
SthslConfig AblationVariant(const std::string& name, SthslConfig base);

/// Variant names of the Fig. 5 local-encoder study (plus the full model).
std::vector<std::string> LocalEncoderVariantNames();

/// Variant names of the Table IV self-supervision study (plus full model).
std::vector<std::string> SslVariantNames();

}  // namespace sthsl

#endif  // STHSL_CORE_ABLATION_H_
