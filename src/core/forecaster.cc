#include "core/forecaster.h"

#include <string>
#include <vector>

#include "util/check.h"
#include "util/obs/run_ledger.h"

namespace sthsl {
namespace {

obs::RunLedgerEval ToLedgerEval(const std::string& name, const EvalResult& r) {
  obs::RunLedgerEval eval;
  eval.name = name;
  eval.mae = r.mae;
  eval.mape = r.mape;
  eval.rmse = r.rmse;
  eval.entries = r.evaluated_entries;
  return eval;
}

}  // namespace

std::vector<Tensor> Forecaster::PredictWindows(
    const std::vector<Tensor>& windows) {
  STHSL_CHECK(false) << Name()
                     << " does not support raw-window prediction; only "
                        "models with SupportsWindowPredict() can serve";
  return {};
}

CrimeMetrics EvaluateForecaster(Forecaster& model, const CrimeDataset& data,
                                int64_t test_start, int64_t test_end) {
  STHSL_CHECK(test_start > 0 && test_end <= data.num_days() &&
              test_start < test_end)
      << "invalid test range [" << test_start << ", " << test_end << ")";
  CrimeMetrics metrics(data.num_regions(), data.num_categories());
  for (int64_t t = test_start; t < test_end; ++t) {
    Tensor pred = model.PredictDay(data, t);
    metrics.AddDay(pred, data.TargetDay(t));
  }
  // Close the model's open run-ledger run with the masked test metrics. The
  // ledger itself ignores the call when no run is open or when the open run
  // belongs to a different model (e.g. classical baselines never open one).
  auto& ledger = obs::RunLedger::Global();
  if (ledger.Active()) {
    std::vector<obs::RunLedgerEval> categories;
    categories.reserve(static_cast<size_t>(data.num_categories()));
    for (int64_t c = 0; c < data.num_categories(); ++c) {
      categories.push_back(ToLedgerEval(
          data.category_names()[static_cast<size_t>(c)], metrics.Category(c)));
    }
    ledger.RecordFinalEval(model.Name(), data.city_name(),
                           ToLedgerEval("overall", metrics.Overall()),
                           categories);
  }
  return metrics;
}

}  // namespace sthsl
