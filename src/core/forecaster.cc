#include "core/forecaster.h"

#include "util/check.h"

namespace sthsl {

CrimeMetrics EvaluateForecaster(Forecaster& model, const CrimeDataset& data,
                                int64_t test_start, int64_t test_end) {
  STHSL_CHECK(test_start > 0 && test_end <= data.num_days() &&
              test_start < test_end)
      << "invalid test range [" << test_start << ", " << test_end << ")";
  CrimeMetrics metrics(data.num_regions(), data.num_categories());
  for (int64_t t = test_start; t < test_end; ++t) {
    Tensor pred = model.PredictDay(data, t);
    metrics.AddDay(pred, data.TargetDay(t));
  }
  return metrics;
}

}  // namespace sthsl
