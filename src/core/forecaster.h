#ifndef STHSL_CORE_FORECASTER_H_
#define STHSL_CORE_FORECASTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/crime_dataset.h"
#include "metrics/metrics.h"
#include "tensor/tensor.h"

namespace sthsl {

/// Common interface of every crime-forecasting model in the repository —
/// ST-HSL, its ablation variants and all baselines. A forecaster is fitted
/// on the chronological prefix of a dataset and then asked to predict single
/// future days; the benchmark harness drives all models through this
/// interface so every comparison shares data, split and metric code.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  virtual std::string Name() const = 0;

  /// Trains on days [0, train_end) of `data`.
  virtual void Fit(const CrimeDataset& data, int64_t train_end) = 0;

  /// Predicts the (R, C) crime counts of day `t`, given access to the true
  /// history of days [0, t).
  virtual Tensor PredictDay(const CrimeDataset& data, int64_t t) = 0;

  /// True when the model can answer PredictWindows, i.e. predict from a raw
  /// input window without dataset access. Neural forecasters can; classical
  /// baselines that consume the full history cannot.
  virtual bool SupportsWindowPredict() const { return false; }

  /// Batched raw-window inference entry point, used by the serving layer:
  /// each element of `windows` is one (R, W, C) input window and the result
  /// holds the matching (R, C) non-negative predictions, in order. One call
  /// amortizes scheduling and dispatch over the whole micro-batch. The base
  /// implementation aborts; models advertising SupportsWindowPredict()
  /// override it.
  virtual std::vector<Tensor> PredictWindows(
      const std::vector<Tensor>& windows);

  /// Wall-clock seconds of each completed training epoch (empty for
  /// non-iterative models). Used by the Table V efficiency study.
  virtual std::vector<double> EpochSeconds() const { return {}; }
};

/// Runs `model` over the test days [test_start, test_end) and accumulates
/// masked MAE/MAPE into a fresh metrics object.
CrimeMetrics EvaluateForecaster(Forecaster& model, const CrimeDataset& data,
                                int64_t test_start, int64_t test_end);

}  // namespace sthsl

#endif  // STHSL_CORE_FORECASTER_H_
