#include "core/sthsl_model.h"

#include <utility>
#include <vector>

#include "tensor/ops.h"
#include "tensor/sparse_ops.h"
#include "util/check.h"
#include "util/obs/obs.h"

namespace sthsl {

SthslNet::SthslNet(const SthslConfig& config, int64_t grid_rows,
                   int64_t grid_cols, int64_t num_categories, float mean,
                   float stddev, Rng& rng)
    : config_(config),
      grid_rows_(grid_rows),
      grid_cols_(grid_cols),
      num_regions_(grid_rows * grid_cols),
      num_categories_(num_categories),
      mean_(mean),
      stddev_(stddev),
      rng_(rng.Fork()) {
  STHSL_CHECK_GT(stddev_, 0.0f);
  const int64_t d = config_.dim;
  const int64_t k = config_.kernel_size;

  category_embedding_ = RegisterParameter(
      "category_embedding",
      Tensor::XavierUniform({num_categories_, d}, rng, num_categories_, d));

  conv_dropout_ = std::make_unique<DropoutLayer>(config_.dropout, rng);
  RegisterModule("conv_dropout", conv_dropout_.get());

  // Channel count of the local convolutions: cross-category mixing uses all
  // C channels; the "w/o C-Conv" ablation processes categories separately.
  const int64_t channels = config_.use_category_conv ? num_categories_ : 1;
  if (config_.use_local_encoder && config_.use_spatial_conv) {
    spatial_conv1_ =
        std::make_unique<Conv2dLayer>(channels, channels, k, k, rng);
    spatial_conv2_ =
        std::make_unique<Conv2dLayer>(channels, channels, k, k, rng);
    RegisterModule("spatial_conv1", spatial_conv1_.get());
    RegisterModule("spatial_conv2", spatial_conv2_.get());
  }
  if (config_.use_local_encoder && config_.use_temporal_conv) {
    temporal_conv1_ =
        std::make_unique<Conv1dLayer>(channels, channels, k, rng);
    temporal_conv2_ =
        std::make_unique<Conv1dLayer>(channels, channels, k, rng);
    RegisterModule("temporal_conv1", temporal_conv1_.get());
    RegisterModule("temporal_conv2", temporal_conv2_.get());
  }

  if (config_.use_hypergraph) {
    hypergraph_ = RegisterParameter(
        "hypergraph",
        Tensor::XavierUniform({config_.num_hyperedges,
                               num_regions_ * num_categories_},
                              rng, num_regions_ * num_categories_,
                              config_.num_hyperedges));
    if (config_.hypergraph_density < 1.0f) {
      // Sparse incidence structure: keep each Xavier entry with probability
      // `hypergraph_density`, zero the rest. The surviving coordinates are
      // the fixed pattern — HypergraphPropagate masks (or never
      // materializes) gradients outside it, so dropped entries stay exact
      // zeros through training.
      for (float& v : hypergraph_.MutableData()) {
        if (!rng.Bernoulli(config_.hypergraph_density)) v = 0.0f;
      }
    }
    if (config_.use_global_temporal) {
      for (int64_t i = 0; i < config_.global_temporal_layers; ++i) {
        global_temporal_convs_.push_back(
            std::make_unique<Conv1dLayer>(1, 1, k, rng));
        RegisterModule("global_temporal_conv" + std::to_string(i),
                       global_temporal_convs_.back().get());
      }
    }
    if (config_.use_infomax) {
      infomax_weight_ = RegisterParameter(
          "infomax_weight", Tensor::XavierUniform({d, d}, rng, d, d));
    }
  }

  const bool fusion =
      config_.prediction_source == PredictionSource::kFusion;
  pool_logits_ = RegisterParameter(
      "pool_logits", Tensor::Zeros({config_.train.window}, true));
  head_ = std::make_unique<Linear>(fusion ? 2 * d : d, 1, rng);
  RegisterModule("head", head_.get());
}

// Eq. 1: e_{r,t,c} = ZScore(X_{r,t,c}) * e_c.
Tensor SthslNet::EmbedWindow(const Tensor& window) const {
  STHSL_CHECK_EQ(window.Dim(), 3) << "window must be (R, W, C)";
  STHSL_CHECK_EQ(window.Size(0), num_regions_);
  STHSL_CHECK_EQ(window.Size(2), num_categories_);
  Tensor z = (window - mean_) * (1.0f / stddev_);
  return Mul(Unsqueeze(z, -1), category_embedding_);  // (R, W, C, d)
}

// Eq. 2-3: two spatial then two temporal convolution layers, each with
// dropout, residual connection and LeakyReLU.
Tensor SthslNet::LocalEncode(const Tensor& embeddings, bool training) {
  STHSL_TRACE_SCOPE("sthsl/local_encoder");
  const int64_t w = embeddings.Size(1);
  const int64_t d = config_.dim;
  const float slope = config_.leaky_slope;
  Tensor x = embeddings;  // (R, W, C, d)

  if (config_.use_spatial_conv) {
    // (R, W, C, d) -> (W, d, C, R) -> images (W*d, C, I, J).
    Tensor s = Reshape(Permute(x, {1, 3, 2, 0}),
                       {w * d, num_categories_, grid_rows_, grid_cols_});
    if (!config_.use_category_conv) {
      s = Reshape(s, {w * d * num_categories_, 1, grid_rows_, grid_cols_});
    }
    for (Conv2dLayer* conv : {spatial_conv1_.get(), spatial_conv2_.get()}) {
      Tensor y = conv->Forward(s);
      s = LeakyRelu(Add(conv_dropout_->Forward(y), s), slope);
    }
    if (!config_.use_category_conv) {
      s = Reshape(s, {w * d, num_categories_, grid_rows_, grid_cols_});
    }
    x = Permute(Reshape(s, {w, d, num_categories_, num_regions_}),
                {3, 0, 2, 1});  // back to (R, W, C, d)
  }

  if (config_.use_temporal_conv) {
    // (R, W, C, d) -> (R, d, C, W) -> sequences (R*d, C, W).
    Tensor s = Reshape(Permute(x, {0, 3, 2, 1}),
                       {num_regions_ * d, num_categories_, w});
    if (!config_.use_category_conv) {
      s = Reshape(s, {num_regions_ * d * num_categories_, 1, w});
    }
    for (Conv1dLayer* conv : {temporal_conv1_.get(), temporal_conv2_.get()}) {
      Tensor y = conv->Forward(s);
      s = LeakyRelu(Add(conv_dropout_->Forward(y), s), slope);
    }
    if (!config_.use_category_conv) {
      s = Reshape(s, {num_regions_ * d, num_categories_, w});
    }
    x = Permute(Reshape(s, {num_regions_, d, num_categories_, w}),
                {0, 3, 2, 1});
  }
  return x;
}

// Eq. 4: Gamma = sigma(H^T sigma(H E)), hyperedges as intermediate hubs.
Tensor SthslNet::HypergraphPropagate(const Tensor& embeddings) const {
  STHSL_TRACE_SCOPE("sthsl/hypergraph_prop");
  const int64_t w = embeddings.Size(1);
  const int64_t d = config_.dim;
  const float slope = config_.leaky_slope;
  // (R, W, C, d) -> (R, C, W, d) -> (R*C, W*d): every region-category pair
  // is one hypergraph node; time and latent dims ride along as features.
  Tensor e2 = Reshape(Permute(embeddings, {0, 2, 1, 3}),
                      {num_regions_ * num_categories_, w * d});
  Tensor to_edges;  // (H, W*d)
  Tensor back;      // (RC, W*d)
  if (config_.hypergraph_density < 1.0f) {
    // Fixed-pattern incidence: the pattern is exactly the parameter's
    // current nonzeros (construction zeroed the rest, and both branches
    // below keep gradients off the zero coordinates, so the set never
    // changes). Dispatch on measured density, not the config knob — the two
    // agree up to Bernoulli noise, but the stored structure is the truth.
    const auto& h = hypergraph_.Data();
    int64_t nnz = 0;
    for (float v : h) {
      if (v != 0.0f) ++nnz;
    }
    const double density =
        static_cast<double>(nnz) / static_cast<double>(hypergraph_.Numel());
    if (density <= config_.sparse_threshold) {
      // Sparse path: CSR SpMM over stored entries only. Visits entries in
      // the same ascending order the dense GEMM visits all entries, so the
      // result is bitwise-identical to the masked-dense branch.
      sparse::SparseTensor csr = ToSparse(hypergraph_).ToCsr();
      Tensor values = SparseValues(hypergraph_, csr);
      to_edges = LeakyRelu(SpMM(csr, values, e2), slope);
      back = LeakyRelu(
          SpMM(csr, values, to_edges, /*transpose_a=*/true), slope);
    } else {
      // Masked-dense path: multiplying by the 0/1 pattern mask is a no-op
      // on the forward values (the zeros are already exact +0) but blocks
      // gradient flow to the zero coordinates in the backward pass.
      std::vector<float> mask(h.size());
      for (size_t i = 0; i < h.size(); ++i) mask[i] = h[i] != 0.0f ? 1.0f : 0.0f;
      Tensor hm = Mul(hypergraph_,
                      Tensor::FromVector(hypergraph_.Shape(), std::move(mask)));
      to_edges = LeakyRelu(MatMul(hm, e2), slope);
      back = LeakyRelu(MatMul(Transpose(hm, 0, 1), to_edges), slope);
    }
  } else {
    to_edges = LeakyRelu(MatMul(hypergraph_, e2), slope);
    back = LeakyRelu(MatMul(Transpose(hypergraph_, 0, 1), to_edges), slope);
  }
  // Residual connection, as in the paper's Eq. 2-3 convolutions: keeps each
  // node's own signal alongside the (low-rank) global hyperedge mixing.
  back = Add(back, e2);
  return Permute(
      Reshape(back, {num_regions_, num_categories_, w, d}), {0, 2, 1, 3});
}

// Eq. 5: stacked single-channel temporal convolutions on the global view.
Tensor SthslNet::GlobalTemporal(const Tensor& gamma, bool training) {
  STHSL_TRACE_SCOPE("sthsl/global_temporal");
  const int64_t w = gamma.Size(1);
  const int64_t d = config_.dim;
  const float slope = config_.leaky_slope;
  // (R, W, C, d) -> (R, C, d, W) -> (R*C*d, 1, W).
  Tensor s = Reshape(Permute(gamma, {0, 2, 3, 1}),
                     {num_regions_ * num_categories_ * d, 1, w});
  for (const auto& conv : global_temporal_convs_) {
    // Residual connection around each layer, as in Eq. 2-3: the deep
    // single-channel stack is otherwise lossy.
    s = LeakyRelu(Add(conv_dropout_->Forward(conv->Forward(s)), s), slope);
  }
  return Permute(
      Reshape(s, {num_regions_, num_categories_, d, w}), {0, 3, 1, 2});
}

// Eq. 6-7: readout + bilinear discrimination of original vs corrupt nodes.
Tensor SthslNet::InfomaxLoss(const Tensor& gamma,
                             const Tensor& corrupt_gamma) const {
  STHSL_TRACE_SCOPE("sthsl/infomax_loss");
  const int64_t w = gamma.Size(1);
  const int64_t d = config_.dim;
  Tensor psi = Mean(gamma, {0});  // (W, C, d) graph-level readout, Eq. 6

  auto score = [&](const Tensor& nodes) {
    Tensor wx = Reshape(
        MatMul(Reshape(nodes, {num_regions_ * w * num_categories_, d}),
               infomax_weight_),
        {num_regions_, w, num_categories_, d});
    return Sum(Mul(wx, Unsqueeze(psi, 0)), {-1});  // (R, W, C)
  };

  Tensor positive = score(gamma);
  Tensor negative = score(corrupt_gamma);
  Tensor loss_pos = Mean(Log(Sigmoid(positive)));
  Tensor loss_neg = Mean(Log(1.0f - Sigmoid(negative)));
  return Neg(Add(loss_pos, loss_neg));
}

// Eq. 8: InfoNCE between temporally pooled local and global embeddings;
// positives pair the two views of the same (region, category), negatives
// come from other regions of the same category.
Tensor SthslNet::ContrastiveLoss(const Tensor& local,
                                 const Tensor& global) const {
  STHSL_TRACE_SCOPE("sthsl/contrastive_loss");
  Tensor l = L2NormalizeRows(Mean(local, {1}));   // (R, C, d)
  Tensor g = L2NormalizeRows(Mean(global, {1}));  // (R, C, d)
  const float inv_tau = 1.0f / config_.temperature;

  // Identity mask to pull the diagonal out of the similarity matrix.
  std::vector<float> eye(
      static_cast<size_t>(num_regions_ * num_regions_), 0.0f);
  for (int64_t r = 0; r < num_regions_; ++r) {
    eye[static_cast<size_t>(r * num_regions_ + r)] = 1.0f;
  }
  Tensor identity =
      Tensor::FromVector({num_regions_, num_regions_}, std::move(eye));

  Tensor total = Tensor::Scalar(0.0f);
  for (int64_t c = 0; c < num_categories_; ++c) {
    Tensor lc = Squeeze(Narrow(l, 1, c, 1), 1);  // (R, d)
    Tensor gc = Squeeze(Narrow(g, 1, c, 1), 1);
    Tensor sim = MulScalar(MatMul(gc, Transpose(lc, 0, 1)), inv_tau);
    Tensor log_probs = Log(Softmax(sim, 1));
    Tensor diag_sum = Sum(Mul(log_probs, identity));
    total = Add(total, Neg(diag_sum));
  }
  return MulScalar(total,
                   1.0f / static_cast<float>(num_regions_ * num_categories_));
}

// Eq. 9: temporal mean pooling followed by a linear read-out, then
// de-normalization back to count space.
Tensor SthslNet::Predict(const Tensor& local, const Tensor& global) {
  STHSL_TRACE_SCOPE("sthsl/predict_head");
  PredictionSource source = config_.prediction_source;
  if (!config_.use_hypergraph) source = PredictionSource::kLocal;

  // Temporal pooling: softmax-weighted mean over the window. Zero logits
  // reproduce Eq. 9's uniform mean; training can shift mass to recent days.
  // Shorter-than-configured windows use the most recent logits.
  auto pool = [&](const Tensor& view) {
    const int64_t w = view.Size(1);
    STHSL_CHECK_LE(w, pool_logits_.Numel())
        << "window longer than the configured training window";
    Tensor logits = w == pool_logits_.Numel()
                        ? pool_logits_
                        : Narrow(pool_logits_, 0,
                                 pool_logits_.Numel() - w, w);
    Tensor weights = Reshape(Softmax(logits, 0), {1, w, 1, 1});
    return Sum(Mul(view, weights), {1});
  };
  Tensor pooled;
  switch (source) {
    case PredictionSource::kGlobal:
      pooled = pool(global);
      break;
    case PredictionSource::kLocal:
      pooled = pool(local);
      break;
    case PredictionSource::kFusion:
      pooled = Cat({pool(local), pool(global)}, -1);
      break;
  }
  Tensor out = head_->Forward(pooled);  // (R, C, 1)
  out = Reshape(out, {num_regions_, num_categories_});
  return AddScalar(MulScalar(out, stddev_), mean_);
}

SthslNet::Output SthslNet::Forward(const Tensor& window, bool training) {
  STHSL_TRACE_SCOPE("sthsl/forward");
  Output output;
  Tensor embeddings = EmbedWindow(window);
  Tensor local = config_.use_local_encoder
                     ? LocalEncode(embeddings, training)
                     : embeddings;

  Tensor global;
  if (config_.use_hypergraph) {
    Tensor gamma_r = HypergraphPropagate(embeddings);
    global = config_.use_global_temporal ? GlobalTemporal(gamma_r, training)
                                         : gamma_r;
    if (training && config_.use_infomax) {
      // Corruption: shuffle region identities, keep everything else.
      Tensor corrupt_embeddings =
          IndexSelect(embeddings, 0, [&] {
            auto perm = rng_.Permutation(static_cast<int>(num_regions_));
            return std::vector<int64_t>(perm.begin(), perm.end());
          }());
      Tensor corrupt_gamma = HypergraphPropagate(corrupt_embeddings);
      output.infomax_loss = InfomaxLoss(gamma_r, corrupt_gamma);
    }
    if (training && config_.use_contrastive) {
      output.contrastive_loss = ContrastiveLoss(local, global);
    }
  }
  output.prediction = Predict(local, global);
  return output;
}

// -- Forecaster wrapper -----------------------------------------------------------

SthslForecaster::SthslForecaster(SthslConfig config, std::string name)
    : NeuralForecaster(config.train),
      config_(std::move(config)),
      name_(std::move(name)) {}

void SthslForecaster::MaterializeForInference(int64_t rows, int64_t cols,
                                              int64_t num_categories,
                                              float mean, float stddev) {
  net_ = std::make_unique<SthslNet>(config_, rows, cols, num_categories, mean,
                                    stddev, rng_);
  net_->SetTraining(false);
}

void SthslForecaster::Prepare(const CrimeDataset& data, int64_t train_end) {
  float mean;
  float stddev;
  data.SliceDays(0, train_end).ComputeMoments(&mean, &stddev);
  net_ = std::make_unique<SthslNet>(config_, data.rows(), data.cols(),
                                    data.num_categories(), mean, stddev,
                                    rng_);
}

Tensor SthslForecaster::Forward(const Tensor& window, bool training) {
  STHSL_CHECK(net_ != nullptr) << "Fit must run before Forward";
  SthslNet::Output out = net_->Forward(window, training);
  last_infomax_loss_ = out.infomax_loss;
  last_contrastive_loss_ = out.contrastive_loss;
  return out.prediction;
}

// Eq. 10 joint objective (weight decay is handled by the optimizer). The
// squared-error term is averaged over entries rather than summed so that
// the lambda weights of the self-supervised terms are scale-free across
// city sizes (a normalization choice; the gradient direction is identical).
Tensor SthslForecaster::Loss(const Tensor& pred, const Tensor& target) {
  Tensor loss = MseLoss(pred, target);
  if (last_infomax_loss_.Defined()) {
    loss = Add(loss, MulScalar(last_infomax_loss_, config_.lambda1));
  }
  if (last_contrastive_loss_.Defined()) {
    loss = Add(loss, MulScalar(last_contrastive_loss_, config_.lambda2));
  }
  return loss;
}

}  // namespace sthsl
