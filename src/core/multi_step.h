#ifndef STHSL_CORE_MULTI_STEP_H_
#define STHSL_CORE_MULTI_STEP_H_

#include <cstdint>
#include <vector>

#include "core/forecaster.h"
#include "data/crime_dataset.h"
#include "metrics/metrics.h"
#include "tensor/tensor.h"

namespace sthsl {

/// Multi-day forecasting — an extension beyond the paper's single-day task.
/// The fitted single-step forecaster is rolled forward recursively: each
/// predicted day is appended to the history and fed back as input for the
/// next step (the standard iterated strategy for one-step forecasters).
///
/// Returns `horizon` matrices of shape (R, C): the forecasts for days
/// `start_day, start_day + 1, ..., start_day + horizon - 1`, using true
/// data only before `start_day`.
std::vector<Tensor> ForecastHorizon(Forecaster& model,
                                    const CrimeDataset& data,
                                    int64_t start_day, int64_t horizon);

/// Per-lead-time evaluation of iterated forecasts across the test span: for
/// each lead h in [1, horizon], forecasts launched from every admissible
/// start day are scored against the truth at start+h-1. Element h-1 of the
/// result aggregates lead-h accuracy (errors grow with lead time).
std::vector<EvalResult> EvaluateHorizon(Forecaster& model,
                                        const CrimeDataset& data,
                                        int64_t test_start, int64_t test_end,
                                        int64_t horizon);

}  // namespace sthsl

#endif  // STHSL_CORE_MULTI_STEP_H_
