#include "core/multi_step.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/check.h"

namespace sthsl {

std::vector<Tensor> ForecastHorizon(Forecaster& model,
                                    const CrimeDataset& data,
                                    int64_t start_day, int64_t horizon) {
  STHSL_CHECK(start_day > 0 && start_day <= data.num_days());
  STHSL_CHECK_GT(horizon, 0);

  // Rolling copy of the count tensor: forecasts overwrite future days so
  // later steps condition on them. Work on a day-extended clone so the
  // horizon may run past the dataset's end.
  const int64_t regions = data.num_regions();
  const int64_t cats = data.num_categories();
  const int64_t needed_days = start_day + horizon;
  NoGradGuard no_grad;

  std::vector<float> rolling(
      static_cast<size_t>(regions * needed_days * cats), 0.0f);
  const auto& source = data.counts().Data();
  const int64_t source_days = data.num_days();
  for (int64_t r = 0; r < regions; ++r) {
    const int64_t copy_days = std::min(needed_days, source_days);
    std::copy(source.begin() + r * source_days * cats,
              source.begin() + (r * source_days + copy_days) * cats,
              rolling.begin() + r * needed_days * cats);
  }

  std::vector<Tensor> forecasts;
  forecasts.reserve(static_cast<size_t>(horizon));
  for (int64_t h = 0; h < horizon; ++h) {
    CrimeDataset view(data.city_name(), data.rows(), data.cols(),
                      data.category_names(),
                      Tensor::FromVector({regions, needed_days, cats},
                                         rolling));
    Tensor pred = ClampMin(model.PredictDay(view, start_day + h), 0.0f);
    forecasts.push_back(pred);
    // Feed the prediction back as the "observed" day start_day + h.
    const auto& pv = pred.Data();
    for (int64_t r = 0; r < regions; ++r) {
      for (int64_t c = 0; c < cats; ++c) {
        rolling[static_cast<size_t>(
            (r * needed_days + start_day + h) * cats + c)] =
            pv[static_cast<size_t>(r * cats + c)];
      }
    }
  }
  return forecasts;
}

std::vector<EvalResult> EvaluateHorizon(Forecaster& model,
                                        const CrimeDataset& data,
                                        int64_t test_start, int64_t test_end,
                                        int64_t horizon) {
  STHSL_CHECK(test_start > 0 && test_end <= data.num_days() &&
              test_start < test_end);
  STHSL_CHECK_GT(horizon, 0);
  std::vector<CrimeMetrics> per_lead(
      static_cast<size_t>(horizon),
      CrimeMetrics(data.num_regions(), data.num_categories()));

  for (int64_t start = test_start; start + horizon <= test_end; ++start) {
    const std::vector<Tensor> forecasts =
        ForecastHorizon(model, data, start, horizon);
    for (int64_t h = 0; h < horizon; ++h) {
      per_lead[static_cast<size_t>(h)].AddDay(
          forecasts[static_cast<size_t>(h)], data.TargetDay(start + h));
    }
  }

  std::vector<EvalResult> results;
  results.reserve(static_cast<size_t>(horizon));
  for (const auto& metrics : per_lead) results.push_back(metrics.Overall());
  return results;
}

}  // namespace sthsl
