#ifndef STHSL_CORE_STHSL_MODEL_H_
#define STHSL_CORE_STHSL_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/neural_forecaster.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace sthsl {

/// Which embedding view feeds the prediction head (Eq. 9).
enum class PredictionSource {
  kGlobal,  // hypergraph view Gamma^(T) — the full model's default
  kLocal,   // multi-view convolution view H^(T) ("w/o Hyper", "w/o Global")
  kFusion,  // concatenation of both views ("Fusion w/o ConL")
};

/// Full configuration of ST-HSL: architecture hyperparameters (paper Sec.
/// IV-A4), the self-supervision weights of Eq. 10, and one switch per
/// ablation variant of Fig. 5 / Table IV.
struct SthslConfig {
  int64_t dim = 16;             // embedding dimensionality d (best in Fig. 7)
  int64_t num_hyperedges = 128; // H (best in Fig. 7)
  int64_t kernel_size = 3;      // spatial/temporal conv kernel (Fig. 7)
  int64_t global_temporal_layers = 4;  // stacked Eq. 5 convolutions
  float dropout = 0.2f;
  float leaky_slope = 0.1f;
  float lambda1 = 0.2f;       // weight of the infomax loss L^(I)
  float lambda2 = 0.1f;       // weight of the contrastive loss L^(C)
  float temperature = 0.5f;   // InfoNCE temperature tau

  // Multi-view local encoder ablations (Fig. 5).
  bool use_local_encoder = true;   // "w/o Local" when false
  bool use_spatial_conv = true;    // "w/o S-Conv" when false
  bool use_temporal_conv = true;   // "w/o T-Conv" when false
  bool use_category_conv = true;   // "w/o C-Conv": no cross-category mixing

  // Hypergraph / self-supervision ablations (Table IV).
  bool use_hypergraph = true;       // "w/o Hyper" when false
  bool use_global_temporal = true;  // "w/o GlobalTem" when false
  bool use_infomax = true;          // "w/o Infomax" when false
  bool use_contrastive = true;      // "w/o ConL" when false
  PredictionSource prediction_source = PredictionSource::kGlobal;

  // Sparse hypergraph incidence (docs/sparse.md). `hypergraph_density` is
  // the fraction of Xavier-initialized incidence entries kept at init; the
  // rest are zeroed and — by the fixed-pattern gradient contract — stay
  // exactly zero for the lifetime of the model, so the learned structure is
  // genuinely sparse. 1.0 (default) is the classic fully dense parameter
  // and leaves every code path untouched. When the incidence density is at
  // or below `sparse_threshold`, HypergraphPropagate dispatches CSR SpMM
  // kernels; above it (but below 1) a masked-dense path applies the same
  // fixed-pattern semantics with dense GEMMs. Both paths are
  // bitwise-identical in outputs, gradients and checkpoints.
  float hypergraph_density = 1.0f;
  float sparse_threshold = 0.25f;

  TrainConfig train;
};

/// The ST-HSL network: crime embedding layer (Eq. 1), multi-view
/// spatial-temporal convolution encoder (Eq. 2-3), hypergraph global
/// dependency module (Eq. 4-5), hypergraph infomax network (Eq. 6-7),
/// local-global contrastive objective (Eq. 8) and prediction head (Eq. 9).
class SthslNet : public Module {
 public:
  SthslNet(const SthslConfig& config, int64_t grid_rows, int64_t grid_cols,
           int64_t num_categories, float mean, float stddev, Rng& rng);

  /// Output of one forward pass: the prediction plus the auxiliary
  /// self-supervised losses of the dual-stage paradigm.
  struct Output {
    Tensor prediction;        // (R, C) predicted counts
    Tensor infomax_loss;      // scalar, undefined if disabled
    Tensor contrastive_loss;  // scalar, undefined if disabled
  };

  /// `window`: raw counts (R, W, C). `training` enables dropout and the
  /// computation of the self-supervised losses.
  Output Forward(const Tensor& window, bool training);

  /// Learned hyperedge-region dependency matrix (H, R*C); used by the
  /// Fig. 8 case study. Undefined when the hypergraph is ablated.
  Tensor hyperedge_weights() const { return hypergraph_; }

  const SthslConfig& config() const { return config_; }

  /// Z-score normalization moments baked in at construction (Eq. 1).
  /// Recorded by the serving bundle so a reloaded network normalizes
  /// bit-identically to the trained one.
  float mean() const { return mean_; }
  float stddev() const { return stddev_; }
  int64_t grid_rows() const { return grid_rows_; }
  int64_t grid_cols() const { return grid_cols_; }
  int64_t num_categories() const { return num_categories_; }

 private:
  Tensor EmbedWindow(const Tensor& window) const;               // Eq. 1
  Tensor LocalEncode(const Tensor& embeddings, bool training);  // Eq. 2-3
  Tensor HypergraphPropagate(const Tensor& embeddings) const;   // Eq. 4
  Tensor GlobalTemporal(const Tensor& gamma, bool training);    // Eq. 5
  Tensor InfomaxLoss(const Tensor& gamma, const Tensor& corrupt_gamma) const;
  Tensor ContrastiveLoss(const Tensor& local, const Tensor& global) const;
  Tensor Predict(const Tensor& local, const Tensor& global);

  SthslConfig config_;
  int64_t grid_rows_;
  int64_t grid_cols_;
  int64_t num_regions_;
  int64_t num_categories_;
  float mean_;
  float stddev_;
  mutable Rng rng_;

  Tensor category_embedding_;  // (C, d) — Eq. 1's e_c
  std::unique_ptr<Conv2dLayer> spatial_conv1_;
  std::unique_ptr<Conv2dLayer> spatial_conv2_;
  std::unique_ptr<Conv1dLayer> temporal_conv1_;
  std::unique_ptr<Conv1dLayer> temporal_conv2_;
  Tensor hypergraph_;  // (H, R*C) — Eq. 4's learnable structure
  std::vector<std::unique_ptr<Conv1dLayer>> global_temporal_convs_;
  Tensor infomax_weight_;  // (d, d) — Eq. 7's bilinear W^(I)
  /// Learned temporal pooling logits over the window (softmax-normalized);
  /// initialized to zero, i.e. exactly Eq. 9's uniform mean pooling, but
  /// free to learn recency emphasis.
  Tensor pool_logits_;
  std::unique_ptr<Linear> head_;  // Eq. 9 prediction head
  std::unique_ptr<DropoutLayer> conv_dropout_;
};

/// Forecaster wrapper that trains SthslNet with the joint objective of
/// Eq. 10: squared error + lambda1 L^(I) + lambda2 L^(C) (+ weight decay
/// via the optimizer).
class SthslForecaster : public NeuralForecaster {
 public:
  explicit SthslForecaster(SthslConfig config, std::string name = "ST-HSL");

  std::string Name() const override { return name_; }

  /// The trained network (null before Fit). Exposed for the case study.
  const SthslNet* net() const { return net_.get(); }
  /// Mutable access for checkpoint/bundle loading into a materialized net.
  SthslNet* mutable_net() { return net_.get(); }

  /// Materializes the network for inference from explicit grid geometry and
  /// normalization moments, without a dataset or training step. Used by the
  /// serving layer's bundle loader (the moments come from the bundle
  /// manifest, so predictions match the exporting process bit-for-bit once
  /// the checkpoint is loaded).
  void MaterializeForInference(int64_t rows, int64_t cols,
                               int64_t num_categories, float mean,
                               float stddev);

 protected:
  void Prepare(const CrimeDataset& data, int64_t train_end) override;
  Tensor Forward(const Tensor& window, bool training) override;
  Tensor Loss(const Tensor& pred, const Tensor& target) override;
  Module* RootModule() override { return net_.get(); }

 private:
  SthslConfig config_;
  std::string name_;
  std::unique_ptr<SthslNet> net_;
  Tensor last_infomax_loss_;
  Tensor last_contrastive_loss_;
};

}  // namespace sthsl

#endif  // STHSL_CORE_STHSL_MODEL_H_
