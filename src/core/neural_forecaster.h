#ifndef STHSL_CORE_NEURAL_FORECASTER_H_
#define STHSL_CORE_NEURAL_FORECASTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/forecaster.h"
#include "nn/module.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace sthsl {

/// Shared training hyperparameters of all gradient-trained forecasters.
struct TrainConfig {
  /// Length of the input history window (days) fed to the model.
  int64_t window = 14;
  /// Number of passes over the (subsampled) window set.
  int64_t epochs = 15;
  /// Optimizer steps per epoch (stochastic subsampling keeps single-core
  /// epochs affordable at full city scale).
  int64_t max_steps_per_epoch = 24;
  /// Windows per optimizer step (gradient accumulation; the paper trains
  /// with batch sizes in {4, ..., 32}).
  int64_t batch_size = 4;
  float lr = 5e-3f;
  /// L2 weight decay (the paper's lambda_3 regularization).
  float weight_decay = 1e-4f;
  /// Days held out from the end of the training span for validation-based
  /// model selection (the paper validates on the last 30 days of the
  /// training set). 0 disables selection and keeps the final parameters.
  int64_t validation_days = 30;
  /// Validate every this many epochs (validation costs forward passes).
  int64_t validation_every = 2;
  /// At most this many validation days are evaluated per check (subsampled
  /// evenly across the validation span).
  int64_t validation_max_days = 10;
  /// Early stopping: give up after this many consecutive validation checks
  /// without improvement (0 disables). With a generous `epochs` cap this
  /// trains every model to convergence — simple models stop early, complex
  /// ones use the budget they need.
  int64_t early_stop_patience = 0;
  /// Exponential moving average of parameters (Polyak averaging) evaluated
  /// instead of the raw iterate; 0 disables. Strongly reduces run-to-run
  /// variance of small-batch training.
  float ema_decay = 0.95f;
  /// Cosine learning-rate decay from `lr` to `lr * lr_floor` over training.
  bool cosine_lr = true;
  float lr_floor = 0.1f;
  uint64_t seed = 7;
  bool verbose = false;
  /// Run-ledger output path (JSONL, appended). When empty, the process
  /// default (STHSL_RUN_LOG / obs::RunLedger::SetDefaultPath) applies; when
  /// both are empty the run is not ledgered. See src/util/obs/run_ledger.h.
  std::string run_log;
};

/// Base class of every neural forecaster: owns the generic windowed
/// training loop (Adam on sliding windows of the training span, squared
/// error by default) so each model only implements its forward pass.
class NeuralForecaster : public Forecaster {
 public:
  explicit NeuralForecaster(TrainConfig config)
      : train_config_(config), rng_(config.seed) {}

  void Fit(const CrimeDataset& data, int64_t train_end) override;
  Tensor PredictDay(const CrimeDataset& data, int64_t t) override;
  bool SupportsWindowPredict() const override { return true; }
  /// Eval-mode forward over each raw (R, W, C) window (no autograd, outputs
  /// clamped at zero like PredictDay). The network must be materialized
  /// (Fit, or a bundle loader's explicit materialization) before calling.
  std::vector<Tensor> PredictWindows(
      const std::vector<Tensor>& windows) override;
  std::vector<double> EpochSeconds() const override { return epoch_seconds_; }

  const TrainConfig& train_config() const { return train_config_; }

 protected:
  /// Called once before training with the full dataset (e.g. to capture
  /// Z-score moments and grid geometry). Default: no-op.
  virtual void Prepare(const CrimeDataset& data, int64_t train_end) {}

  /// Model forward pass: raw count window (R, W, C) -> predicted counts
  /// (R, C). `training` toggles dropout and auxiliary-loss bookkeeping.
  virtual Tensor Forward(const Tensor& window, bool training) = 0;

  /// Training objective given forward output; default is the paper's sum of
  /// squared errors (Eq. 10 first term). Subclasses add auxiliary terms.
  virtual Tensor Loss(const Tensor& pred, const Tensor& target);

  /// The module whose parameters are optimized.
  virtual Module* RootModule() = 0;

  TrainConfig train_config_;
  Rng rng_;
  /// Absolute day index of the target currently being predicted; set by the
  /// training loop and PredictDay before each Forward call (models with
  /// calendar-aware components, e.g. DMSTGCN, read the day-of-week from it).
  int64_t current_target_day_ = -1;

 private:
  std::vector<double> epoch_seconds_;
  std::unique_ptr<Adam> optimizer_;
};

}  // namespace sthsl

#endif  // STHSL_CORE_NEURAL_FORECASTER_H_
