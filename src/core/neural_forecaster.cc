#include "core/neural_forecaster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "metrics/metrics.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/obs/metrics.h"
#include "util/obs/obs.h"
#include "util/obs/run_ledger.h"
#include "util/timer.h"

namespace sthsl {
namespace {

std::string JsonFloat(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

/// Renders the run-opening ledger record: model, dataset provenance, seeds
/// and the full TrainConfig (as JSON literals — the obs layer does not know
/// the core config type).
obs::RunLedgerHeader MakeLedgerHeader(const std::string& model,
                                      const CrimeDataset& data,
                                      int64_t train_end,
                                      const TrainConfig& config) {
  obs::RunLedgerHeader header;
  header.model = model;
  header.dataset_city = data.city_name();
  header.dataset_rows = data.rows();
  header.dataset_cols = data.cols();
  header.dataset_days = data.num_days();
  header.dataset_categories = data.num_categories();
  header.dataset_generator_seed = data.generator_seed();
  header.train_end = train_end;
  header.train_seed = config.seed;
  header.config = {
      {"window", std::to_string(config.window)},
      {"epochs", std::to_string(config.epochs)},
      {"max_steps_per_epoch", std::to_string(config.max_steps_per_epoch)},
      {"batch_size", std::to_string(config.batch_size)},
      {"lr", JsonFloat(config.lr)},
      {"weight_decay", JsonFloat(config.weight_decay)},
      {"validation_days", std::to_string(config.validation_days)},
      {"validation_every", std::to_string(config.validation_every)},
      {"validation_max_days", std::to_string(config.validation_max_days)},
      {"early_stop_patience", std::to_string(config.early_stop_patience)},
      {"ema_decay", JsonFloat(config.ema_decay)},
      {"cosine_lr", config.cosine_lr ? "true" : "false"},
      {"lr_floor", JsonFloat(config.lr_floor)},
  };
  return header;
}

}  // namespace

Tensor NeuralForecaster::Loss(const Tensor& pred, const Tensor& target) {
  return MseLoss(pred, target);
}

void NeuralForecaster::Fit(const CrimeDataset& data, int64_t train_end) {
  STHSL_TRACE_SCOPE("train/fit");
  const int64_t window = train_config_.window;
  STHSL_CHECK(train_end > window && train_end <= data.num_days())
      << "train_end " << train_end << " incompatible with window " << window;

  Prepare(data, train_end);
  Module* root = RootModule();
  STHSL_CHECK(root != nullptr);
  optimizer_ = std::make_unique<Adam>(root->Parameters(), train_config_.lr,
                                      0.9f, 0.999f, 1e-8f,
                                      train_config_.weight_decay);
  root->SetTraining(true);

  // Run ledger: the per-run path wins over the process default; when both
  // are empty the run is not ledgered and no statistics are collected.
  auto& ledger = obs::RunLedger::Global();
  const std::string ledger_path = !train_config_.run_log.empty()
                                      ? train_config_.run_log
                                      : ledger.DefaultPath();
  const bool ledger_on = !ledger_path.empty();
  std::vector<std::pair<std::string, Tensor>> named_params;
  if (ledger_on) {
    named_params = root->NamedParameters();
    ledger.BeginRun(MakeLedgerHeader(Name(), data, train_end, train_config_),
                    ledger_path);
  }

  // Validation split: the last `validation_days` of the training span
  // drive model selection (the paper's protocol).
  int64_t validation_days =
      std::min(train_config_.validation_days, train_end - window - 1);
  if (validation_days < 0) validation_days = 0;
  const int64_t fit_end = train_end - validation_days;

  // Validation days stay in the training pool (each is visited rarely under
  // stochastic subsampling); they additionally drive snapshot selection.
  std::vector<int64_t> targets;
  for (int64_t t = window; t < train_end; ++t) targets.push_back(t);
  STHSL_CHECK(!targets.empty())
      << "no training targets: train_end too small for the window";

  std::vector<int64_t> validation_targets;
  if (validation_days > 0) {
    const int64_t max_days = std::max<int64_t>(
        1, std::min(train_config_.validation_max_days, validation_days));
    const int64_t stride = std::max<int64_t>(1, validation_days / max_days);
    for (int64_t t = fit_end; t < train_end; t += stride) {
      validation_targets.push_back(t);
    }
  }

  // Best-on-validation snapshot of all parameter buffers.
  double best_validation = std::numeric_limits<double>::infinity();
  int64_t best_epoch = 0;
  int64_t checks_without_improvement = 0;
  std::vector<std::vector<float>> best_params;
  // Mutable handles: the EMA swap and best-snapshot restore below rewrite the
  // parameter buffers in place.
  auto params = root->MutableParameters();

  // Polyak (EMA) shadow of the parameters; validation and the final model
  // use the shadow, which is far less noisy than the last SGD iterate.
  const float ema_decay = train_config_.ema_decay;
  std::vector<std::vector<float>> ema;
  if (ema_decay > 0.0f) {
    for (const auto& p : params) ema.push_back(p.Data());
  }
  auto update_ema = [&]() {
    if (ema_decay <= 0.0f) return;
    for (size_t i = 0; i < params.size(); ++i) {
      const auto& current = params[i].Data();
      auto& shadow = ema[i];
      for (size_t j = 0; j < shadow.size(); ++j) {
        shadow[j] = ema_decay * shadow[j] + (1.0f - ema_decay) * current[j];
      }
    }
  };
  // Temporarily swaps the EMA shadow into the live parameters.
  auto swap_with_ema = [&]() {
    if (ema_decay <= 0.0f) return;
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].MutableData().swap(ema[i]);
    }
  };

  auto validate = [&]() {
    STHSL_TRACE_SCOPE("train/validate");
    NoGradGuard no_grad;
    root->SetTraining(false);
    CrimeMetrics metrics(data.num_regions(), data.num_categories());
    for (int64_t t : validation_targets) {
      current_target_day_ = t;
      Tensor pred = Forward(data.WindowInput(t, window), /*training=*/false);
      metrics.AddDay(ClampMin(pred, 0.0f), data.TargetDay(t));
    }
    root->SetTraining(true);
    const EvalResult overall = metrics.Overall();
    // Masked MAE matches the test metric; fall back to 0 when the span has
    // no positive entries (then any snapshot is as good as another).
    return overall.evaluated_entries > 0 ? overall.mae : 0.0;
  };

  epoch_seconds_.clear();
  for (int64_t epoch = 0; epoch < train_config_.epochs; ++epoch) {
    Timer timer;
    if (train_config_.cosine_lr && train_config_.epochs > 1) {
      const double progress = static_cast<double>(epoch) /
                              static_cast<double>(train_config_.epochs - 1);
      const double scale =
          train_config_.lr_floor +
          (1.0 - train_config_.lr_floor) * 0.5 * (1.0 + std::cos(M_PI * progress));
      optimizer_->SetLr(train_config_.lr * static_cast<float>(scale));
    }
    rng_.Shuffle(targets);
    const int64_t batch = std::max<int64_t>(1, train_config_.batch_size);
    const int64_t steps = std::min<int64_t>(
        train_config_.max_steps_per_epoch,
        (static_cast<int64_t>(targets.size()) + batch - 1) / batch);
    double epoch_loss = 0.0;
    int64_t cursor = 0;
    int64_t epoch_windows = 0;
    double epoch_grad_norm = 0.0;
    std::vector<obs::RunLedgerParamStats> epoch_param_stats;
    {
      STHSL_TRACE_SCOPE("train/epoch");
      for (int64_t step = 0; step < steps; ++step) {
        STHSL_TRACE_SCOPE("train/step");
        optimizer_->ZeroGrad();
        int64_t accumulated = 0;
        // Gradient accumulation over `batch` windows approximates mini-batch
        // training on a framework without a leading batch dimension.
        for (int64_t b = 0;
             b < batch && cursor < static_cast<int64_t>(targets.size());
             ++b, ++cursor) {
          const int64_t t = targets[static_cast<size_t>(cursor)];
          Tensor input = data.WindowInput(t, window);
          Tensor target = data.TargetDay(t);
          current_target_day_ = t;
          Tensor pred = Forward(input, /*training=*/true);
          Tensor loss = MulScalar(Loss(pred, target),
                                  1.0f / static_cast<float>(batch));
          loss.Backward();
          epoch_loss += loss.Item() * static_cast<double>(batch);
          ++accumulated;
        }
        if (accumulated > 0) {
          epoch_windows += accumulated;
          if (obs::TraceEnabled()) {
            // Global gradient norm over every parameter, pre-update; the
            // histogram's percentiles expose exploding/vanishing gradients.
            double sq = 0.0;
            for (const auto& p : params) {
              for (float g : p.Grad()) {
                sq += static_cast<double>(g) * static_cast<double>(g);
              }
            }
            obs::MetricsRegistry::Global()
                .GetHistogram("train/grad_norm")
                .Record(std::sqrt(sq));
          }
          // Gradient-flow sample for the run ledger, taken at the epoch's
          // last optimizer step: per-parameter norms and NaN/zero fractions
          // of the accumulated gradient, and the update-to-weight ratio
          // measured across the actual optimizer update.
          const bool sample_grads = ledger_on && step + 1 == steps;
          std::vector<std::vector<float>> pre_update;
          if (sample_grads) {
            epoch_param_stats.clear();
            epoch_param_stats.reserve(named_params.size());
            pre_update.reserve(named_params.size());
            double global_sq = 0.0;
            for (const auto& [pname, p] : named_params) {
              obs::RunLedgerParamStats stats;
              stats.name = pname;
              stats.numel = p.Numel();
              const auto& grad = p.Grad();
              double grad_sq = 0.0;
              double weight_sq = 0.0;
              int64_t non_finite = 0;
              int64_t zeros = 0;
              for (float g : grad) {
                if (!std::isfinite(g)) {
                  ++non_finite;
                  continue;
                }
                if (g == 0.0f) ++zeros;
                grad_sq += static_cast<double>(g) * static_cast<double>(g);
              }
              for (float w : p.Data()) {
                weight_sq += static_cast<double>(w) * static_cast<double>(w);
              }
              stats.grad_norm = std::sqrt(grad_sq);
              stats.weight_norm = std::sqrt(weight_sq);
              // An empty gradient buffer means backward never reached this
              // parameter; report it as all-zero (a dead layer).
              stats.nan_grad_frac =
                  grad.empty() ? 0.0
                               : static_cast<double>(non_finite) /
                                     static_cast<double>(grad.size());
              stats.zero_grad_frac =
                  grad.empty() ? 1.0
                               : static_cast<double>(zeros) /
                                     static_cast<double>(grad.size());
              global_sq += grad_sq;
              epoch_param_stats.push_back(std::move(stats));
              pre_update.push_back(p.Data());
            }
            epoch_grad_norm = std::sqrt(global_sq);
          }
          optimizer_->Step();
          if (sample_grads) {
            for (size_t i = 0; i < named_params.size(); ++i) {
              const auto& after = named_params[i].second.Data();
              const auto& before = pre_update[i];
              double delta_sq = 0.0;
              for (size_t j = 0; j < after.size(); ++j) {
                const double d =
                    static_cast<double>(after[j]) - static_cast<double>(before[j]);
                delta_sq += d * d;
              }
              epoch_param_stats[i].update_ratio =
                  std::sqrt(delta_sq) /
                  (epoch_param_stats[i].weight_norm + 1e-12);
            }
          }
          update_ema();
        }
      }
    }
    epoch_seconds_.push_back(timer.ElapsedSeconds());
    // Mean per-window loss: normalizing by windows (not steps) keeps the
    // logged value comparable across batch sizes and short final steps.
    const double mean_loss =
        epoch_loss / static_cast<double>(std::max<int64_t>(epoch_windows, 1));
    if (obs::TraceEnabled()) {
      auto& registry = obs::MetricsRegistry::Global();
      registry.GetCounter("train/epochs").Add(1);
      registry.GetCounter("train/windows").Add(epoch_windows);
      registry.GetHistogram("train/epoch_loss").Record(mean_loss);
      const double secs = epoch_seconds_.back();
      if (secs > 0.0 && epoch_windows > 0) {
        registry.GetHistogram("train/samples_per_sec")
            .Record(static_cast<double>(epoch_windows) / secs);
      }
      registry.GetGauge("tensor/peak_bytes")
          .Set(static_cast<double>(obs::PeakTensorBytes()));
    }

    const bool last_epoch = epoch + 1 == train_config_.epochs;
    bool validated = false;
    bool improved = false;
    double val_score = 0.0;
    if (!validation_targets.empty() &&
        (last_epoch || (epoch + 1) % train_config_.validation_every == 0)) {
      swap_with_ema();  // validate the averaged parameters
      val_score = validate();
      validated = true;
      if (val_score < best_validation) {
        best_validation = val_score;
        best_epoch = epoch + 1;
        improved = true;
        best_params.clear();
        for (const auto& p : params) best_params.push_back(p.Data());
        checks_without_improvement = 0;
      } else {
        ++checks_without_improvement;
      }
      swap_with_ema();  // restore the raw iterate for further training
      if (train_config_.verbose) {
        STHSL_LOG(Info) << Name() << " epoch " << epoch + 1 << " loss "
                        << mean_loss << " val-mae " << val_score;
      }
    } else if (train_config_.verbose) {
      STHSL_LOG(Info) << Name() << " epoch " << epoch + 1 << "/"
                      << train_config_.epochs << " loss " << mean_loss << " ("
                      << epoch_seconds_.back() << "s)";
    }
    if (ledger_on) {
      obs::RunLedgerEpoch record;
      record.epoch = epoch + 1;
      record.loss = mean_loss;
      record.lr = optimizer_->lr();
      record.epoch_seconds = epoch_seconds_.back();
      record.windows = epoch_windows;
      record.grad_norm = epoch_grad_norm;
      record.peak_tensor_bytes = obs::PeakTensorBytes();
      record.has_validation = validated;
      record.validation_mae = val_score;
      record.best_snapshot = improved;
      record.params = std::move(epoch_param_stats);
      ledger.RecordEpoch(record);
    }
    if (train_config_.early_stop_patience > 0 &&
        checks_without_improvement >= train_config_.early_stop_patience) {
      if (ledger_on) {
        ledger.RecordEvent("early_stop", epoch + 1, best_validation);
      }
      break;  // converged: no validation improvement for `patience` checks
    }
  }

  if (!best_params.empty()) {
    // Final model: the best-on-validation (EMA) snapshot.
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].MutableData() = best_params[i];
    }
    if (ledger_on) {
      ledger.RecordEvent("restore_best", best_epoch, best_validation);
    }
  } else if (ema_decay > 0.0f) {
    swap_with_ema();  // no validation ran: keep the averaged parameters
    if (ledger_on) {
      ledger.RecordEvent("ema_final",
                         static_cast<int64_t>(epoch_seconds_.size()),
                         std::numeric_limits<double>::quiet_NaN());
    }
  }
  root->SetTraining(false);
}

std::vector<Tensor> NeuralForecaster::PredictWindows(
    const std::vector<Tensor>& windows) {
  STHSL_TRACE_SCOPE("infer/predict_windows");
  Module* root = RootModule();
  STHSL_CHECK(root != nullptr)
      << Name() << ": network not materialized before PredictWindows";
  root->SetTraining(false);
  NoGradGuard no_grad;
  // Raw windows carry no calendar position; calendar-aware models fall back
  // to their day-agnostic path.
  current_target_day_ = -1;
  std::vector<Tensor> predictions;
  predictions.reserve(windows.size());
  for (const Tensor& window : windows) {
    predictions.push_back(
        ClampMin(Forward(window, /*training=*/false), 0.0f));
  }
  return predictions;
}

Tensor NeuralForecaster::PredictDay(const CrimeDataset& data, int64_t t) {
  STHSL_TRACE_SCOPE("infer/predict_day");
  Module* root = RootModule();
  STHSL_CHECK(root != nullptr);
  root->SetTraining(false);
  NoGradGuard no_grad;
  current_target_day_ = t;
  Tensor input = data.WindowInput(t, train_config_.window);
  Tensor pred = Forward(input, /*training=*/false);
  // Crime counts are non-negative; clamp at zero for evaluation.
  return ClampMin(pred, 0.0f);
}

}  // namespace sthsl
