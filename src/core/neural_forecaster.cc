#include "core/neural_forecaster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "metrics/metrics.h"
#include "tensor/ops.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/obs/metrics.h"
#include "util/obs/obs.h"
#include "util/timer.h"

namespace sthsl {

Tensor NeuralForecaster::Loss(const Tensor& pred, const Tensor& target) {
  return MseLoss(pred, target);
}

void NeuralForecaster::Fit(const CrimeDataset& data, int64_t train_end) {
  STHSL_TRACE_SCOPE("train/fit");
  const int64_t window = train_config_.window;
  STHSL_CHECK(train_end > window && train_end <= data.num_days())
      << "train_end " << train_end << " incompatible with window " << window;

  Prepare(data, train_end);
  Module* root = RootModule();
  STHSL_CHECK(root != nullptr);
  optimizer_ = std::make_unique<Adam>(root->Parameters(), train_config_.lr,
                                      0.9f, 0.999f, 1e-8f,
                                      train_config_.weight_decay);
  root->SetTraining(true);

  // Validation split: the last `validation_days` of the training span
  // drive model selection (the paper's protocol).
  int64_t validation_days =
      std::min(train_config_.validation_days, train_end - window - 1);
  if (validation_days < 0) validation_days = 0;
  const int64_t fit_end = train_end - validation_days;

  // Validation days stay in the training pool (each is visited rarely under
  // stochastic subsampling); they additionally drive snapshot selection.
  std::vector<int64_t> targets;
  for (int64_t t = window; t < train_end; ++t) targets.push_back(t);
  STHSL_CHECK(!targets.empty())
      << "no training targets: train_end too small for the window";

  std::vector<int64_t> validation_targets;
  if (validation_days > 0) {
    const int64_t max_days = std::max<int64_t>(
        1, std::min(train_config_.validation_max_days, validation_days));
    const int64_t stride = std::max<int64_t>(1, validation_days / max_days);
    for (int64_t t = fit_end; t < train_end; t += stride) {
      validation_targets.push_back(t);
    }
  }

  // Best-on-validation snapshot of all parameter buffers.
  double best_validation = std::numeric_limits<double>::infinity();
  int64_t checks_without_improvement = 0;
  std::vector<std::vector<float>> best_params;
  // Mutable handles: the EMA swap and best-snapshot restore below rewrite the
  // parameter buffers in place.
  auto params = root->MutableParameters();

  // Polyak (EMA) shadow of the parameters; validation and the final model
  // use the shadow, which is far less noisy than the last SGD iterate.
  const float ema_decay = train_config_.ema_decay;
  std::vector<std::vector<float>> ema;
  if (ema_decay > 0.0f) {
    for (const auto& p : params) ema.push_back(p.Data());
  }
  auto update_ema = [&]() {
    if (ema_decay <= 0.0f) return;
    for (size_t i = 0; i < params.size(); ++i) {
      const auto& current = params[i].Data();
      auto& shadow = ema[i];
      for (size_t j = 0; j < shadow.size(); ++j) {
        shadow[j] = ema_decay * shadow[j] + (1.0f - ema_decay) * current[j];
      }
    }
  };
  // Temporarily swaps the EMA shadow into the live parameters.
  auto swap_with_ema = [&]() {
    if (ema_decay <= 0.0f) return;
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].MutableData().swap(ema[i]);
    }
  };

  auto validate = [&]() {
    STHSL_TRACE_SCOPE("train/validate");
    NoGradGuard no_grad;
    root->SetTraining(false);
    CrimeMetrics metrics(data.num_regions(), data.num_categories());
    for (int64_t t : validation_targets) {
      current_target_day_ = t;
      Tensor pred = Forward(data.WindowInput(t, window), /*training=*/false);
      metrics.AddDay(ClampMin(pred, 0.0f), data.TargetDay(t));
    }
    root->SetTraining(true);
    const EvalResult overall = metrics.Overall();
    // Masked MAE matches the test metric; fall back to 0 when the span has
    // no positive entries (then any snapshot is as good as another).
    return overall.evaluated_entries > 0 ? overall.mae : 0.0;
  };

  epoch_seconds_.clear();
  for (int64_t epoch = 0; epoch < train_config_.epochs; ++epoch) {
    Timer timer;
    if (train_config_.cosine_lr && train_config_.epochs > 1) {
      const double progress = static_cast<double>(epoch) /
                              static_cast<double>(train_config_.epochs - 1);
      const double scale =
          train_config_.lr_floor +
          (1.0 - train_config_.lr_floor) * 0.5 * (1.0 + std::cos(M_PI * progress));
      optimizer_->SetLr(train_config_.lr * static_cast<float>(scale));
    }
    rng_.Shuffle(targets);
    const int64_t batch = std::max<int64_t>(1, train_config_.batch_size);
    const int64_t steps = std::min<int64_t>(
        train_config_.max_steps_per_epoch,
        (static_cast<int64_t>(targets.size()) + batch - 1) / batch);
    double epoch_loss = 0.0;
    int64_t cursor = 0;
    int64_t epoch_windows = 0;
    {
      STHSL_TRACE_SCOPE("train/epoch");
      for (int64_t step = 0; step < steps; ++step) {
        STHSL_TRACE_SCOPE("train/step");
        optimizer_->ZeroGrad();
        int64_t accumulated = 0;
        // Gradient accumulation over `batch` windows approximates mini-batch
        // training on a framework without a leading batch dimension.
        for (int64_t b = 0;
             b < batch && cursor < static_cast<int64_t>(targets.size());
             ++b, ++cursor) {
          const int64_t t = targets[static_cast<size_t>(cursor)];
          Tensor input = data.WindowInput(t, window);
          Tensor target = data.TargetDay(t);
          current_target_day_ = t;
          Tensor pred = Forward(input, /*training=*/true);
          Tensor loss = MulScalar(Loss(pred, target),
                                  1.0f / static_cast<float>(batch));
          loss.Backward();
          epoch_loss += loss.Item() * static_cast<double>(batch);
          ++accumulated;
        }
        if (accumulated > 0) {
          epoch_windows += accumulated;
          if (obs::TraceEnabled()) {
            // Global gradient norm over every parameter, pre-update; the
            // histogram's percentiles expose exploding/vanishing gradients.
            double sq = 0.0;
            for (const auto& p : params) {
              for (float g : p.Grad()) {
                sq += static_cast<double>(g) * static_cast<double>(g);
              }
            }
            obs::MetricsRegistry::Global()
                .GetHistogram("train/grad_norm")
                .Record(std::sqrt(sq));
          }
          optimizer_->Step();
          update_ema();
        }
      }
    }
    epoch_seconds_.push_back(timer.ElapsedSeconds());
    if (obs::TraceEnabled()) {
      auto& registry = obs::MetricsRegistry::Global();
      registry.GetCounter("train/epochs").Add(1);
      registry.GetCounter("train/windows").Add(epoch_windows);
      registry.GetHistogram("train/epoch_loss")
          .Record(epoch_loss / static_cast<double>(std::max<int64_t>(steps, 1)));
      const double secs = epoch_seconds_.back();
      if (secs > 0.0 && epoch_windows > 0) {
        registry.GetHistogram("train/samples_per_sec")
            .Record(static_cast<double>(epoch_windows) / secs);
      }
      registry.GetGauge("tensor/peak_bytes")
          .Set(static_cast<double>(obs::PeakTensorBytes()));
    }

    const bool last_epoch = epoch + 1 == train_config_.epochs;
    if (!validation_targets.empty() &&
        (last_epoch || (epoch + 1) % train_config_.validation_every == 0)) {
      swap_with_ema();  // validate the averaged parameters
      const double score = validate();
      if (score < best_validation) {
        best_validation = score;
        best_params.clear();
        for (const auto& p : params) best_params.push_back(p.Data());
        checks_without_improvement = 0;
      } else {
        ++checks_without_improvement;
      }
      swap_with_ema();  // restore the raw iterate for further training
      if (train_config_.verbose) {
        STHSL_LOG(Info) << Name() << " epoch " << epoch + 1 << " loss "
                        << epoch_loss / std::max<int64_t>(steps, 1)
                        << " val-mae " << score;
      }
    } else if (train_config_.verbose) {
      STHSL_LOG(Info) << Name() << " epoch " << epoch + 1 << "/"
                      << train_config_.epochs << " loss "
                      << epoch_loss / std::max<int64_t>(steps, 1) << " ("
                      << epoch_seconds_.back() << "s)";
    }
    if (train_config_.early_stop_patience > 0 &&
        checks_without_improvement >= train_config_.early_stop_patience) {
      break;  // converged: no validation improvement for `patience` checks
    }
  }

  if (!best_params.empty()) {
    // Final model: the best-on-validation (EMA) snapshot.
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].MutableData() = best_params[i];
    }
  } else if (ema_decay > 0.0f) {
    swap_with_ema();  // no validation ran: keep the averaged parameters
  }
  root->SetTraining(false);
}

Tensor NeuralForecaster::PredictDay(const CrimeDataset& data, int64_t t) {
  STHSL_TRACE_SCOPE("infer/predict_day");
  Module* root = RootModule();
  STHSL_CHECK(root != nullptr);
  root->SetTraining(false);
  NoGradGuard no_grad;
  current_target_day_ = t;
  Tensor input = data.WindowInput(t, train_config_.window);
  Tensor pred = Forward(input, /*training=*/false);
  // Crime counts are non-negative; clamp at zero for evaluation.
  return ClampMin(pred, 0.0f);
}

}  // namespace sthsl
