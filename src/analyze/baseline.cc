#include "analyze/baseline.h"

#include <sstream>

namespace sthsl::analyze {
namespace {

std::string Trim(std::string s) {
  const size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Baseline ParseBaseline(const std::string& text, const std::string& origin,
                       std::vector<Finding>* errors) {
  Baseline baseline;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = Trim(line);
    if (line.empty()) continue;
    // Rightmost one or two colon-separated fields are rule and count; the
    // path itself contains no colons in this tree.
    const size_t last = line.rfind(':');
    if (last == std::string::npos) {
      if (errors) {
        errors->push_back({origin, lineno, "baseline", Severity::kError,
                           "malformed baseline entry (want path:rule or "
                           "path:rule:count): " + line});
      }
      continue;
    }
    std::string path, rule;
    int count = -1;
    const std::string tail = line.substr(last + 1);
    const bool tail_is_count =
        !tail.empty() && tail.find_first_not_of("0123456789") ==
                             std::string::npos;
    if (tail_is_count) {
      const size_t prev = line.rfind(':', last - 1);
      if (prev == std::string::npos) {
        if (errors) {
          errors->push_back({origin, lineno, "baseline", Severity::kError,
                             "malformed baseline entry: " + line});
        }
        continue;
      }
      path = line.substr(0, prev);
      rule = line.substr(prev + 1, last - prev - 1);
      count = std::stoi(tail);
    } else {
      path = line.substr(0, last);
      rule = tail;
    }
    if (path.empty() || rule.empty() || !FindRule(rule)) {
      if (errors) {
        errors->push_back({origin, lineno, "baseline", Severity::kError,
                           "baseline entry names unknown rule '" + rule +
                               "': " + line});
      }
      continue;
    }
    auto& slot = baseline.entries[{path, rule}];
    if (count < 0) {
      slot = -1;
    } else if (slot != -1) {
      slot += count;
    }
  }
  return baseline;
}

int ApplyBaseline(const Baseline& baseline, std::vector<Finding>* findings) {
  std::map<std::pair<std::string, std::string>, int> remaining =
      baseline.entries;
  std::vector<Finding> kept;
  int suppressed = 0;
  for (Finding& f : *findings) {
    const auto it = remaining.find({f.path, f.rule});
    if (it != remaining.end() && (it->second == -1 || it->second > 0)) {
      if (it->second > 0) --it->second;
      ++suppressed;
      continue;
    }
    kept.push_back(std::move(f));
  }
  findings->swap(kept);
  return suppressed;
}

std::string RenderBaseline(const std::vector<Finding>& findings) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Finding& f : findings) ++counts[{f.path, f.rule}];
  std::ostringstream out;
  out << "# sthsl_analyze baseline: grandfathered findings, one\n"
         "# `<path>:<rule>:<count>` per line (count = number of suppressed\n"
         "# instances; a new instance overflows the count and fails).\n"
         "# Regenerate with `sthsl_analyze <root> --fix-baseline`; prefer\n"
         "# fixing the code and keeping this file short. Each entry should\n"
         "# carry a justification comment. See docs/correctness_tooling.md.\n";
  for (const auto& [key, count] : counts) {
    out << key.first << ":" << key.second << ":" << count << "\n";
  }
  return out.str();
}

}  // namespace sthsl::analyze
