#ifndef STHSL_ANALYZE_ANALYZER_H_
#define STHSL_ANALYZE_ANALYZER_H_

#include <string>
#include <vector>

#include "analyze/finding.h"
#include "analyze/source.h"

namespace sthsl::analyze {

struct AnalyzeOptions {
  std::string root;            // repo root containing src/
  std::string baseline_path;   // empty: no suppressions
  std::string compiler = "c++";
  bool check_self_contained = true;
  // Empty: run every pass. Otherwise a subset of
  // {"layering", "determinism", "concurrency", "headers"}.
  std::vector<std::string> only_passes;
};

struct AnalyzeResult {
  std::vector<Finding> findings;   // unsuppressed, sorted
  int suppressed = 0;
  int files_scanned = 0;
  bool ok = false;                 // false: setup error (see `error`)
  std::string error;
};

/// Runs the selected passes over `<root>/src`, applies the baseline, and
/// returns the surviving findings sorted by path/line/rule.
AnalyzeResult RunAnalysis(const AnalyzeOptions& options);

/// Pass names accepted by AnalyzeOptions::only_passes.
const std::vector<std::string>& PassNames();

/// Same as RunAnalysis but over an in-memory tree (unit tests, fixtures
/// already loaded). Never runs the self-containment check.
AnalyzeResult RunAnalysisOnFiles(const std::vector<SourceFile>& files,
                                 const AnalyzeOptions& options);

/// Renders `result` in the given format. `format` is "text", "json" or
/// "sarif"; text is the human report, the other two are machine-readable
/// with the full rule table embedded (SARIF 2.1.0).
std::string RenderReport(const AnalyzeResult& result,
                         const std::string& format);

}  // namespace sthsl::analyze

#endif  // STHSL_ANALYZE_ANALYZER_H_
