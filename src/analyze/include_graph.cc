#include "analyze/include_graph.h"

#include <algorithm>
#include <set>

#include "analyze/lexer.h"

namespace sthsl::analyze {
namespace {

std::string JoinLayers(const std::vector<std::string>& layers) {
  std::string out;
  for (const std::string& layer : layers) {
    if (!out.empty()) out += ", ";
    out += layer;
  }
  return out;
}

std::string LayerOf(const std::string& src_relative_path) {
  const size_t slash = src_relative_path.find('/');
  return slash == std::string::npos ? std::string()
                                    : src_relative_path.substr(0, slash);
}

// Tarjan-free cycle reporting: iterative DFS with an on-stack mark; the
// first back edge found per strongly connected region yields one finding
// describing the full cycle path.
class CycleFinder {
 public:
  explicit CycleFinder(
      const std::map<std::string, std::vector<std::pair<std::string, int>>>&
          graph)
      : graph_(graph) {}

  std::vector<Finding> Run() {
    for (const auto& [node, edges] : graph_) {
      (void)edges;
      if (!visited_.count(node)) Dfs(node);
    }
    return findings_;
  }

 private:
  void Dfs(const std::string& start) {
    // Explicit stack of (node, next-edge-index) to keep deep include
    // chains off the call stack.
    std::vector<std::pair<std::string, size_t>> stack{{start, 0}};
    on_path_.insert(start);
    path_.push_back(start);
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      static const std::vector<std::pair<std::string, int>> kNoEdges;
      const auto it = graph_.find(node);
      const auto& edges = it != graph_.end() ? it->second : kNoEdges;
      if (next < edges.size()) {
        const auto& [target, line] = edges[next++];
        if (on_path_.count(target)) {
          ReportCycle(target, node, line);
          continue;
        }
        if (visited_.count(target)) continue;
        on_path_.insert(target);
        path_.push_back(target);
        stack.emplace_back(target, 0);
        continue;
      }
      visited_.insert(node);
      on_path_.erase(node);
      path_.pop_back();
      stack.pop_back();
    }
  }

  void ReportCycle(const std::string& cycle_entry, const std::string& from,
                   int line) {
    const auto begin = std::find(path_.begin(), path_.end(), cycle_entry);
    std::string chain;
    for (auto it = begin; it != path_.end(); ++it) chain += *it + " -> ";
    chain += cycle_entry;
    // One finding per distinct cycle (keyed by its sorted member set).
    std::set<std::string> members(begin, path_.end());
    std::string key;
    for (const std::string& m : members) key += m + "|";
    if (!reported_.insert(key).second) return;
    findings_.push_back({from, line, "include-cycle", Severity::kError,
                         "include cycle: " + chain});
  }

  const std::map<std::string, std::vector<std::pair<std::string, int>>>&
      graph_;
  std::set<std::string> visited_;
  std::set<std::string> on_path_;
  std::vector<std::string> path_;
  std::set<std::string> reported_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<IncludeEdge> ExtractIncludeEdges(
    const std::vector<SourceFile>& files) {
  std::vector<IncludeEdge> edges;
  for (const SourceFile& file : files) {
    const std::vector<Token> tokens = Lex(file.text);
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != TokenKind::kDirective ||
          tokens[i].text != "include") {
        continue;
      }
      const Token& target = tokens[i + 1];
      if (target.kind != TokenKind::kString) continue;  // <...> is system
      edges.push_back({file.path, target.line, target.text});
    }
  }
  return edges;
}

const std::map<std::string, std::vector<std::string>>& LayerTable() {
  // The layer DAG (ROADMAP / docs/performance.md): each layer may include
  // itself, util, and the layers named here. nn and metrics sit side by
  // side and may reach each other; baselines builds on core (it wraps the
  // shared Forecaster interface) but never the reverse.
  static const std::map<std::string, std::vector<std::string>> table = {
      {"util", {"util"}},
      {"exec", {"util", "exec"}},
      {"analyze", {"util", "analyze"}},
      {"simd", {"util", "exec", "simd"}},
      {"sparse", {"util", "exec", "sparse"}},
      {"tensor", {"util", "exec", "simd", "sparse", "tensor"}},
      {"nn", {"util", "exec", "simd", "sparse", "tensor", "nn", "metrics"}},
      {"metrics",
       {"util", "exec", "simd", "sparse", "tensor", "nn", "metrics"}},
      {"data",
       {"util", "exec", "simd", "sparse", "tensor", "nn", "metrics",
        "data"}},
      {"core",
       {"util", "exec", "simd", "sparse", "tensor", "nn", "metrics", "data",
        "core"}},
      {"baselines",
       {"util", "exec", "simd", "sparse", "tensor", "nn", "metrics", "data",
        "core", "baselines"}},
      {"serve",
       {"util", "exec", "simd", "sparse", "tensor", "nn", "metrics", "data",
        "core", "baselines", "serve"}},
  };
  return table;
}

std::vector<Finding> RunLayeringPass(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  const auto& table = LayerTable();

  // Per-layer DAG check on every quoted include.
  const std::vector<IncludeEdge> edges = ExtractIncludeEdges(files);
  for (const SourceFile& file : files) {
    const std::string layer = file.Layer();
    if (layer.empty()) continue;
    if (!table.count(layer)) {
      findings.push_back(
          {file.path, 0, "unknown-layer", Severity::kError,
           "directory src/" + layer +
               "/ is not in the layer table; register it in "
               "src/analyze/include_graph.cc with its allowed dependencies"});
    }
  }
  for (const IncludeEdge& edge : edges) {
    const std::string from_layer = LayerOf(
        edge.from.rfind("src/", 0) == 0 ? edge.from.substr(4) : edge.from);
    const std::string to_layer = LayerOf(edge.target);
    if (from_layer.empty() || to_layer.empty()) continue;
    const auto from_it = table.find(from_layer);
    const auto to_it = table.find(to_layer);
    if (from_it == table.end() || to_it == table.end()) continue;
    const auto& allowed = from_it->second;
    if (std::find(allowed.begin(), allowed.end(), to_layer) ==
        allowed.end()) {
      findings.push_back(
          {edge.from, edge.line, "layer-dag", Severity::kError,
           "layer '" + from_layer + "' must not include '" + edge.target +
               "' (layer '" + to_layer + "'); '" + from_layer +
               "' may only include layers: " + JoinLayers(allowed)});
    }
  }

  // Cycle detection on the file-level include graph (src-relative names).
  std::map<std::string, std::vector<std::pair<std::string, int>>> graph;
  std::set<std::string> known;
  for (const SourceFile& file : files) known.insert(file.PathInSrc());
  for (const IncludeEdge& edge : edges) {
    const std::string from =
        edge.from.rfind("src/", 0) == 0 ? edge.from.substr(4) : edge.from;
    if (known.count(edge.target)) {
      graph[from].emplace_back(edge.target, edge.line);
    }
  }
  CycleFinder cycles(graph);
  std::vector<Finding> cycle_findings = cycles.Run();
  // Cycle findings name src-relative paths; restore the repo-relative form.
  for (Finding& f : cycle_findings) {
    if (f.path.rfind("src/", 0) != 0) f.path = "src/" + f.path;
    findings.push_back(std::move(f));
  }
  return findings;
}

}  // namespace sthsl::analyze
