#ifndef STHSL_ANALYZE_BASELINE_H_
#define STHSL_ANALYZE_BASELINE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analyze/finding.h"

namespace sthsl::analyze {

/// Baseline suppression file. One entry per line:
///
///   <path>:<rule>            # suppress every instance in the file
///   <path>:<rule>:<count>    # suppress at most <count> instances
///
/// `#` starts a comment; blank lines are skipped. The counted form is what
/// `--fix-baseline` writes: a new instance of a baselined rule in the same
/// file then overflows the count and still fails the build.
struct Baseline {
  // (path, rule) -> allowed count; -1 means unlimited.
  std::map<std::pair<std::string, std::string>, int> entries;
};

/// Parses `text` (the baseline file contents). Malformed lines are
/// reported via `errors` as file-level findings against `origin`.
Baseline ParseBaseline(const std::string& text, const std::string& origin,
                       std::vector<Finding>* errors);

/// Splits `findings` into reported and suppressed according to the
/// baseline. Findings are consumed in order, so with a counted entry the
/// first <count> instances (by position) are suppressed and the rest
/// reported. Returns the number suppressed.
int ApplyBaseline(const Baseline& baseline, std::vector<Finding>* findings);

/// Renders the baseline file that would suppress exactly `findings`
/// (counted entries, sorted, with a generated header comment).
std::string RenderBaseline(const std::vector<Finding>& findings);

}  // namespace sthsl::analyze

#endif  // STHSL_ANALYZE_BASELINE_H_
