#include "analyze/headers.h"

#include <cctype>
#include <cstdlib>

#include "analyze/lexer.h"

namespace sthsl::analyze {
namespace {

void CheckIncludeGuard(const SourceFile& file, const std::vector<Token>& tokens,
                       std::vector<Finding>& out) {
  const std::string expected = ExpectedGuard(file.PathInSrc());
  // The first directive in the file must be the #ifndef of the guard, and
  // the very next token after its symbol must be the matching #define.
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kDirective) continue;
    if (t.text != "ifndef") break;  // some other directive came first
    if (i + 1 >= tokens.size() ||
        tokens[i + 1].kind != TokenKind::kIdentifier) {
      break;
    }
    const std::string guard = tokens[i + 1].text;
    if (guard != expected) {
      out.push_back({file.path, t.line, "include-guard", Severity::kError,
                     "guard " + guard + " does not match the path; expected " +
                         expected});
      return;
    }
    if (i + 3 >= tokens.size() || tokens[i + 2].kind != TokenKind::kDirective ||
        tokens[i + 2].text != "define" || !tokens[i + 3].IsIdent(guard)) {
      out.push_back({file.path, t.line, "include-guard", Severity::kError,
                     "#ifndef " + guard +
                         " is not followed by a matching #define"});
    }
    return;
  }
  out.push_back({file.path, 1, "include-guard", Severity::kError,
                 "header has no include guard (expected " + expected + ")"});
}

void CheckTokenRules(const SourceFile& file, const std::vector<Token>& tokens,
                     std::vector<Finding>& out) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool call_like =
        i + 1 < tokens.size() && tokens[i + 1].IsPunct("(");
    if (t.text == "assert" && call_like) {
      out.push_back({file.path, t.line, "bare-assert", Severity::kError,
                     "bare assert() — use STHSL_CHECK so failures carry "
                     "file/line context and fire in release builds"});
    } else if (t.text == "const_cast") {
      out.push_back({file.path, t.line, "const-cast", Severity::kError,
                     "const_cast is forbidden in src/ — expose a mutable "
                     "accessor instead"});
    } else if (t.text == "reinterpret_cast") {
      out.push_back({file.path, t.line, "reinterpret-cast", Severity::kError,
                     "reinterpret_cast outside a baselined byte-I/O "
                     "boundary; if this is one, add a baseline entry with "
                     "a justification comment"});
    }
  }
}

}  // namespace

std::string ExpectedGuard(const std::string& path_in_src) {
  std::string guard = "STHSL_";
  for (char c : path_in_src) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';  // trailing underscore; ".h" already became "_H"
  return guard;
}

std::vector<Finding> RunHeaderPass(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    const std::vector<Token> tokens = Lex(file.text);
    CheckTokenRules(file, tokens, findings);
    if (file.IsHeader() && !file.PathInSrc().empty()) {
      CheckIncludeGuard(file, tokens, findings);
    }
  }
  return findings;
}

std::vector<Finding> RunSelfContainedCheck(
    const std::string& root, const std::vector<SourceFile>& files,
    const std::string& compiler) {
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    if (!file.IsHeader()) continue;
    const std::string cmd = "\"" + compiler +
                            "\" -std=c++20 -fsyntax-only -x c++ -I \"" + root +
                            "/src\" \"" + root + "/" + file.path +
                            "\" 2>/dev/null";
    if (std::system(cmd.c_str()) != 0) {
      findings.push_back({file.path, 0, "self-contained", Severity::kError,
                          "header does not compile standalone (" + compiler +
                              " -std=c++20 -fsyntax-only failed)"});
    }
  }
  return findings;
}

}  // namespace sthsl::analyze
