#include "analyze/determinism.h"

#include <set>
#include <string>

#include "analyze/lexer.h"
#include "analyze/token_util.h"

namespace sthsl::analyze {
namespace {

const std::set<std::string>& ThreadExemptLayers() {
  static const std::set<std::string> layers = {"exec", "serve"};
  return layers;
}

const std::set<std::string>& KernelLayers() {
  static const std::set<std::string> layers = {"tensor", "nn", "core",
                                               "simd"};
  return layers;
}

const std::set<std::string>& FloatOrderLayers() {
  static const std::set<std::string> layers = {"tensor", "nn", "core",
                                               "metrics", "data"};
  return layers;
}

bool NextIs(const std::vector<Token>& tokens, size_t i, const char* punct) {
  return i + 1 < tokens.size() && tokens[i + 1].IsPunct(punct);
}

bool PrevIsStdQualifier(const std::vector<Token>& tokens, size_t i) {
  return i >= 2 && tokens[i - 1].IsPunct("::") && tokens[i - 2].IsIdent("std");
}

void CheckThreadRule(const SourceFile& file, const std::vector<Token>& tokens,
                     std::vector<Finding>& out) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kDirective && t.text == "pragma" &&
        i + 1 < tokens.size() && tokens[i + 1].IsIdent("omp")) {
      out.push_back({file.path, t.line, "det-thread", Severity::kError,
                     "OpenMP pragma outside src/exec/ and src/serve/ — "
                     "parallelize through sthsl::exec::ParallelFor so "
                     "chunking stays deterministic"});
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;
    if ((t.text == "thread" || t.text == "jthread" || t.text == "async") &&
        PrevIsStdQualifier(tokens, i)) {
      // `std::thread::hardware_concurrency` style nested-name uses count
      // too: any reach into std::thread machinery is a contract breach.
      out.push_back({file.path, t.line, "det-thread", Severity::kError,
                     "std::" + t.text +
                         " outside src/exec/ and src/serve/ — kernels "
                         "parallelize through sthsl::exec"});
      continue;
    }
    if (t.text == "pthread_create" || t.text == "thrd_create") {
      out.push_back({file.path, t.line, "det-thread", Severity::kError,
                     t.text + " outside src/exec/ and src/serve/"});
      continue;
    }
    if (t.text == "detach" && NextIs(tokens, i, "(") && i > 0 &&
        (tokens[i - 1].IsPunct(".") || tokens[i - 1].IsPunct("->"))) {
      out.push_back({file.path, t.line, "det-thread", Severity::kError,
                     "detach() outside src/exec/ and src/serve/ — detached "
                     "threads outlive the region that spawned them and "
                     "escape the determinism contract"});
    }
  }
}

void CheckRandAndTimeRules(const SourceFile& file,
                           const std::vector<Token>& tokens,
                           std::vector<Finding>& out) {
  static const std::set<std::string> kRandCalls = {"rand", "srand", "rand_r",
                                                   "drand48", "srandom",
                                                   "random"};
  static const std::set<std::string> kRandTypes = {"random_device"};
  static const std::set<std::string> kTimeCalls = {
      "time", "clock", "gettimeofday", "clock_gettime", "localtime",
      "gmtime", "ftime"};
  static const std::set<std::string> kTimeTypes = {"system_clock",
                                                   "high_resolution_clock"};
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    // Member accesses like obj.time(...) are not the libc call.
    const bool member_access =
        i > 0 && (tokens[i - 1].IsPunct(".") || tokens[i - 1].IsPunct("->"));
    if (kRandCalls.count(t.text) && NextIs(tokens, i, "(") &&
        !member_access) {
      out.push_back({file.path, t.line, "det-rand", Severity::kError,
                     t.text + "() in kernel code — draw from the seeded "
                     "sthsl::Rng (util/rng.h) instead"});
      continue;
    }
    if (kRandTypes.count(t.text)) {
      out.push_back({file.path, t.line, "det-rand", Severity::kError,
                     "std::" + t.text + " in kernel code — entropy sources "
                     "make runs irreproducible; use a seeded sthsl::Rng"});
      continue;
    }
    if (kTimeCalls.count(t.text) && NextIs(tokens, i, "(") &&
        !member_access) {
      out.push_back({file.path, t.line, "det-time", Severity::kError,
                     t.text + "() in kernel code — results must not depend "
                     "on the wall clock (telemetry timing belongs in "
                     "util/obs)"});
      continue;
    }
    if (kTimeTypes.count(t.text)) {
      out.push_back({file.path, t.line, "det-time", Severity::kError,
                     "std::chrono::" + t.text + " in kernel code — use "
                     "sthsl::Timer (steady_clock) in the obs layer for "
                     "timing, never in a data path"});
    }
  }
}

// Names declared in this file as std::unordered_{map,set,multimap,multiset}
// variables or members: `unordered_map<K, V> name` (template arguments
// skipped, `*`/`&` tolerated).
std::set<std::string> UnorderedContainerNames(
    const std::vector<Token>& tokens) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string> names;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        !kUnordered.count(tokens[i].text)) {
      continue;
    }
    size_t j = i + 1;
    const size_t after_angles = SkipAngles(tokens, j, tokens.size());
    if (after_angles == j) continue;  // no template argument list
    j = after_angles;
    while (j < tokens.size() &&
           (tokens[j].IsPunct("*") || tokens[j].IsPunct("&"))) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
      names.insert(tokens[j].text);
    }
  }
  return names;
}

// Token range of a loop body: after the range-for's closing paren, either
// a braced block or a single statement up to `;`.
std::pair<size_t, size_t> LoopBodyRange(const std::vector<Token>& tokens,
                                        size_t after_paren, size_t end) {
  if (after_paren < end && tokens[after_paren].IsPunct("{")) {
    int depth = 0;
    for (size_t j = after_paren; j < end; ++j) {
      if (tokens[j].IsPunct("{")) ++depth;
      if (tokens[j].IsPunct("}")) --depth;
      if (depth == 0) return {after_paren + 1, j};
    }
    return {after_paren + 1, end};
  }
  for (size_t j = after_paren; j < end; ++j) {
    if (tokens[j].IsPunct(";")) return {after_paren, j};
  }
  return {after_paren, end};
}

bool ContainsAccumulation(const std::vector<Token>& tokens, size_t begin,
                          size_t end) {
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i].IsPunct("+=") || tokens[i].IsPunct("-=")) return true;
  }
  return false;
}

void CheckUnorderedIterationRule(const SourceFile& file,
                                 const std::vector<Token>& tokens,
                                 std::vector<Finding>& out) {
  const std::set<std::string> unordered = UnorderedContainerNames(tokens);
  if (unordered.empty()) return;
  for (const FunctionBody& body : FindFunctionBodies(tokens)) {
    for (size_t i = body.body_begin; i < body.body_end; ++i) {
      if (!tokens[i].IsIdent("for") || !NextIs(tokens, i, "(")) continue;
      const size_t open = i + 1;
      const size_t close = SkipParens(tokens, open, body.body_end);
      // Range-for: a `:` at paren depth 1. The container expression's last
      // identifier is the name we match against the unordered set.
      int depth = 0;
      size_t colon = 0;
      for (size_t j = open; j < close; ++j) {
        if (tokens[j].IsPunct("(")) ++depth;
        if (tokens[j].IsPunct(")")) --depth;
        if (depth == 1 && tokens[j].IsPunct(":")) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      std::string container;
      for (size_t j = colon + 1; j + 1 < close; ++j) {
        if (tokens[j].kind == TokenKind::kIdentifier) container = tokens[j].text;
      }
      if (container.empty() || !unordered.count(container)) continue;
      const auto [loop_begin, loop_end] =
          LoopBodyRange(tokens, close, body.body_end);
      if (ContainsAccumulation(tokens, loop_begin, loop_end)) {
        out.push_back(
            {file.path, tokens[i].line, "det-unordered-iter", Severity::kError,
             "range-for over unordered container '" + container +
                 "' accumulates in hash order — iterate a sorted view (or "
                 "an index vector) so float additions keep a fixed order"});
      }
      i = close > i ? close - 1 : i;
    }
  }
}

// SIMD intrinsic headers are confined to src/simd/: everywhere else a raw
// <immintrin.h>/<arm_neon.h> include means hand-rolled vector code that
// bypasses the microkernel contract (fixed accumulation order, dispatch,
// scalar-tail rules documented in simd/simd.h).
void CheckIntrinsicsRule(const SourceFile& file,
                         const std::vector<Token>& tokens,
                         std::vector<Finding>& out) {
  static const std::set<std::string> kIntrinsicHeaders = {
      "immintrin.h", "arm_neon.h", "emmintrin.h", "xmmintrin.h",
      "smmintrin.h", "avxintrin.h", "avx2intrin.h"};
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kDirective || tokens[i].text != "include") {
      continue;
    }
    const Token& target = tokens[i + 1];
    if (target.kind != TokenKind::kHeaderName ||
        !kIntrinsicHeaders.count(target.text)) {
      continue;
    }
    out.push_back({file.path, target.line, "det-intrinsics", Severity::kError,
                   "<" + target.text + "> outside src/simd/ — raw intrinsics "
                   "bypass the microkernel determinism contract; add or use "
                   "a kernel in simd/simd.h instead"});
  }
}

}  // namespace

std::vector<Finding> RunDeterminismPass(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    const std::string layer = file.Layer();
    if (layer.empty()) continue;
    const bool check_threads = !ThreadExemptLayers().count(layer);
    const bool check_rand_time = KernelLayers().count(layer) > 0;
    const bool check_unordered = FloatOrderLayers().count(layer) > 0;
    const bool check_intrinsics = layer != "simd";
    if (!check_threads && !check_rand_time && !check_unordered &&
        !check_intrinsics) {
      continue;
    }
    const std::vector<Token> tokens = Lex(file.text);
    if (check_threads) CheckThreadRule(file, tokens, findings);
    if (check_rand_time) CheckRandAndTimeRules(file, tokens, findings);
    if (check_unordered) CheckUnorderedIterationRule(file, tokens, findings);
    if (check_intrinsics) CheckIntrinsicsRule(file, tokens, findings);
  }
  return findings;
}

}  // namespace sthsl::analyze
