#include "analyze/token_util.h"

namespace sthsl::analyze {
namespace {

bool IsBodyIntroBrace(const std::vector<Token>& tokens, size_t brace) {
  // Walk backwards over tokens that may legally sit between a function
  // signature's closing `)` and its body: cv/ref qualifiers, noexcept
  // (optionally with arguments), virt-specifiers, and a trailing return
  // type. Everything else (identifiers, `=`, `,`, `;`) means this brace is
  // an initializer, a class body, or an enum body.
  size_t i = brace;
  int angle_depth = 0;
  while (i > 0) {
    const Token& t = tokens[--i];
    if (t.kind == TokenKind::kPunct && t.text == ")") {
      return true;  // signature (or noexcept(...) — either way a function)
    }
    if (t.kind == TokenKind::kIdentifier) {
      if (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
          t.text == "final" || t.text == "mutable" || t.text == "try") {
        continue;
      }
      // Part of a trailing return type only if a `->` shows up later in the
      // backward walk; allow the identifier and keep looking.
      continue;
    }
    if (t.kind == TokenKind::kPunct &&
        (t.text == "::" || t.text == "*" || t.text == "&" || t.text == "&&" ||
         t.text == "->")) {
      continue;
    }
    if (t.kind == TokenKind::kPunct && t.text == ">") {
      ++angle_depth;
      continue;
    }
    if (t.kind == TokenKind::kPunct && t.text == "<") {
      if (angle_depth == 0) return false;
      --angle_depth;
      continue;
    }
    return false;
  }
  return false;
}

}  // namespace

std::vector<FunctionBody> FindFunctionBodies(const std::vector<Token>& tokens) {
  std::vector<FunctionBody> bodies;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!tokens[i].IsPunct("{")) continue;
    if (!IsBodyIntroBrace(tokens, i)) continue;
    int depth = 1;
    size_t j = i + 1;
    for (; j < tokens.size() && depth > 0; ++j) {
      if (tokens[j].IsPunct("{")) ++depth;
      if (tokens[j].IsPunct("}")) --depth;
    }
    // j is one past the closing brace (or end of file when unbalanced).
    bodies.push_back({i + 1, depth == 0 ? j - 1 : j, tokens[i].line});
    i = (depth == 0 ? j - 1 : j);  // resume after the body
  }
  return bodies;
}

size_t SkipAngles(const std::vector<Token>& tokens, size_t i, size_t end) {
  if (i >= end || !tokens[i].IsPunct("<")) return i;
  int depth = 0;
  for (size_t j = i; j < end; ++j) {
    const Token& t = tokens[j];
    if (t.IsPunct("<")) ++depth;
    if (t.IsPunct("<<")) depth += 2;
    if (t.IsPunct(">")) --depth;
    if (t.IsPunct(">>")) depth -= 2;
    if (depth <= 0) return j + 1;
    // `;` or `{` inside an angle run: not a template argument list.
    if (t.IsPunct(";") || t.IsPunct("{")) return i;
  }
  return i;
}

size_t SkipParens(const std::vector<Token>& tokens, size_t i, size_t end) {
  if (i >= end || !tokens[i].IsPunct("(")) return i;
  int depth = 0;
  for (size_t j = i; j < end; ++j) {
    if (tokens[j].IsPunct("(")) ++depth;
    if (tokens[j].IsPunct(")")) --depth;
    if (depth == 0) return j + 1;
  }
  return end;
}

std::vector<LockSite> FindLockSites(const std::vector<Token>& tokens,
                                    size_t begin, size_t end) {
  std::vector<LockSite> sites;
  for (size_t i = begin; i < end; ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier ||
        (t.text != "lock_guard" && t.text != "unique_lock" &&
         t.text != "scoped_lock")) {
      continue;
    }
    LockSite site;
    site.token_index = i;
    site.line = t.line;
    site.kind = t.text;
    size_t j = SkipAngles(tokens, i + 1, end);
    // Optional variable name (CTAD or explicit template args either way).
    while (j < end && tokens[j].kind == TokenKind::kIdentifier) ++j;
    if (j >= end || !tokens[j].IsPunct("(")) continue;
    const size_t close = SkipParens(tokens, j, end);
    // Each top-level comma-separated argument contributes its final
    // identifier: `region->error_mu` -> "error_mu".
    std::string last_ident;
    int depth = 0;
    for (size_t k = j; k + 1 < close; ++k) {
      const Token& a = tokens[k];
      if (a.IsPunct("(")) ++depth;
      if (a.IsPunct(")")) --depth;
      if (depth == 1 && a.IsPunct(",")) {
        if (!last_ident.empty()) site.mutexes.push_back(last_ident);
        last_ident.clear();
        continue;
      }
      if (a.kind == TokenKind::kIdentifier) last_ident = a.text;
    }
    if (!last_ident.empty()) site.mutexes.push_back(last_ident);
    if (!site.mutexes.empty()) sites.push_back(site);
    i = close > i ? close - 1 : i;
  }
  return sites;
}

}  // namespace sthsl::analyze
