#ifndef STHSL_ANALYZE_SOURCE_H_
#define STHSL_ANALYZE_SOURCE_H_

#include <string>
#include <vector>

namespace sthsl::analyze {

/// One file under analysis. `path` is repo-root-relative with forward
/// slashes (e.g. "src/tensor/ops.h"); passes derive the layer from the
/// first path component after "src/".
struct SourceFile {
  std::string path;
  std::string text;

  bool IsHeader() const;
  /// Layer directory ("tensor", "nn", ...); empty when the file is not
  /// under a src/ subdirectory.
  std::string Layer() const;
  /// Path relative to src/ ("tensor/ops.h"); empty when not under src/.
  std::string PathInSrc() const;
};

/// Loads every .h/.cc file under `<root>/src`, sorted by path. Returns
/// false (with `error` set) when the directory is missing or unreadable.
bool LoadSourceTree(const std::string& root, std::vector<SourceFile>* files,
                    std::string* error);

}  // namespace sthsl::analyze

#endif  // STHSL_ANALYZE_SOURCE_H_
