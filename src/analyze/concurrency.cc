#include "analyze/concurrency.h"

#include <map>
#include <set>
#include <string>
#include <utility>

#include "analyze/lexer.h"
#include "analyze/token_util.h"

namespace sthsl::analyze {
namespace {

// `error_mu` -> "error", `conn_mu_` -> "conn"; empty when the name does not
// follow the convention (a bare `mu`/`mu_` guards by comment, not by name,
// and is exempt from the prefix rules).
std::string GuardPrefix(const std::string& name) {
  std::string base = name;
  if (!base.empty() && base.back() == '_') base.pop_back();
  constexpr const char* kSuffix = "_mu";
  if (base.size() <= 3 || base.compare(base.size() - 3, 3, kSuffix) != 0) {
    return "";
  }
  return base.substr(0, base.size() - 3);
}

// Mutex members/locals declared in this file whose names follow the `_mu`
// convention: maps mutex name -> guard prefix.
std::map<std::string, std::string> ConventionMutexes(
    const std::vector<Token>& tokens) {
  static const std::set<std::string> kMutexTypes = {
      "mutex", "recursive_mutex", "timed_mutex", "shared_mutex"};
  std::map<std::string, std::string> mutexes;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        !kMutexTypes.count(tokens[i].text)) {
      continue;
    }
    const Token& next = tokens[i + 1];
    if (next.kind != TokenKind::kIdentifier) continue;
    const std::string prefix = GuardPrefix(next.text);
    if (!prefix.empty()) mutexes[next.text] = prefix;
  }
  return mutexes;
}

// Does `ident` fall under the guard of `prefix`? Exactly the prefix, or
// prefix + "_..." (so conn guards conn_threads_ but not connection_id).
bool IsGuardedName(const std::string& ident, const std::string& prefix,
                   const std::string& mutex_name) {
  if (ident == mutex_name) return false;
  if (ident == prefix || ident == prefix + "_") return true;
  return ident.size() > prefix.size() + 1 &&
         ident.compare(0, prefix.size() + 1, prefix + "_") == 0;
}

void CheckManualLocking(const SourceFile& file,
                        const std::vector<Token>& tokens,
                        const std::map<std::string, std::string>& mutexes,
                        std::vector<Finding>& out) {
  static const std::set<std::string> kManual = {"lock", "unlock", "try_lock",
                                                "try_lock_for"};
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier || !mutexes.count(t.text)) continue;
    if (!tokens[i + 1].IsPunct(".") && !tokens[i + 1].IsPunct("->")) continue;
    const Token& method = tokens[i + 2];
    if (method.kind == TokenKind::kIdentifier && kManual.count(method.text)) {
      out.push_back(
          {file.path, t.line, "mutex-guard", Severity::kError,
           t.text + "." + method.text + "() — manual lock management on a "
           "convention mutex; use std::lock_guard or std::unique_lock so "
           "every exit path releases it"});
    }
  }
}

void CheckGuardedFields(const SourceFile& file,
                        const std::vector<Token>& tokens,
                        const std::map<std::string, std::string>& mutexes,
                        std::vector<Finding>& out) {
  for (const FunctionBody& body : FindFunctionBodies(tokens)) {
    std::set<std::string> locked;
    for (const LockSite& site :
         FindLockSites(tokens, body.body_begin, body.body_end)) {
      for (const std::string& name : site.mutexes) locked.insert(name);
    }
    for (size_t i = body.body_begin; i < body.body_end; ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      for (const auto& [mutex_name, prefix] : mutexes) {
        if (!IsGuardedName(t.text, prefix, mutex_name)) continue;
        if (locked.count(mutex_name)) continue;
        out.push_back(
            {file.path, t.line, "guarded-field", Severity::kError,
             "'" + t.text + "' is guarded by '" + mutex_name +
                 "' by naming convention, but this function constructs no "
                 "lock on it; take a std::lock_guard<std::mutex> first"});
        break;  // one finding per use site even if prefixes overlap
      }
    }
  }
}

struct HeldLock {
  std::string name;
  int depth;
  size_t site;  // index into the site list, to skip same-site pairs
};

void CheckLockOrder(const SourceFile& file, const std::vector<Token>& tokens,
                    std::vector<Finding>& out) {
  // Ordered pair (first-acquired, then-acquired) -> one observed location.
  std::map<std::pair<std::string, std::string>, std::pair<int, std::string>>
      pairs;
  for (const FunctionBody& body : FindFunctionBodies(tokens)) {
    const std::vector<LockSite> sites =
        FindLockSites(tokens, body.body_begin, body.body_end);
    std::vector<HeldLock> held;
    size_t next_site = 0;
    int depth = 0;
    for (size_t i = body.body_begin; i < body.body_end; ++i) {
      if (tokens[i].IsPunct("{")) ++depth;
      if (tokens[i].IsPunct("}")) {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
      if (next_site < sites.size() && sites[next_site].token_index == i) {
        const LockSite& site = sites[next_site];
        for (const std::string& name : site.mutexes) {
          for (const HeldLock& outer : held) {
            if (outer.name == name || outer.site == next_site) continue;
            pairs.insert({{outer.name, name},
                          {site.line, outer.name + " then " + name}});
          }
          held.push_back({name, depth, next_site});
        }
        ++next_site;
      }
    }
  }
  std::set<std::pair<std::string, std::string>> reported;
  for (const auto& [pair, where] : pairs) {
    const std::pair<std::string, std::string> inverse{pair.second, pair.first};
    if (!pairs.count(inverse)) continue;
    // Report each unordered pair once, at the lexicographically later edge.
    const auto key = pair.first < pair.second ? pair : inverse;
    if (!reported.insert(key).second) continue;
    const auto& other = pairs.at(inverse);
    out.push_back(
        {file.path, where.first, "lock-order", Severity::kError,
         "lock-order inversion: this function acquires " + pair.first +
             " then " + pair.second + ", but line " +
             std::to_string(other.first) + " acquires " + pair.second +
             " then " + pair.first + "; pick one order"});
  }
}

}  // namespace

std::vector<Finding> RunConcurrencyPass(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  // A .cc file inherits the mutex conventions its paired header declares
  // (conn_mu_ lives in http.h, the lock sites in http.cc).
  std::map<std::string, std::map<std::string, std::string>> header_mutexes;
  for (const SourceFile& file : files) {
    if (file.IsHeader()) {
      header_mutexes[file.path] = ConventionMutexes(Lex(file.text));
    }
  }
  for (const SourceFile& file : files) {
    if (file.Layer().empty()) continue;
    const std::vector<Token> tokens = Lex(file.text);
    std::map<std::string, std::string> mutexes = ConventionMutexes(tokens);
    if (!file.IsHeader() && file.path.size() > 3) {
      const std::string header =
          file.path.substr(0, file.path.size() - 3) + ".h";
      const auto it = header_mutexes.find(header);
      if (it != header_mutexes.end()) {
        mutexes.insert(it->second.begin(), it->second.end());
      }
    }
    if (!mutexes.empty()) {
      CheckManualLocking(file, tokens, mutexes, findings);
      CheckGuardedFields(file, tokens, mutexes, findings);
    }
    CheckLockOrder(file, tokens, findings);
  }
  return findings;
}

}  // namespace sthsl::analyze
