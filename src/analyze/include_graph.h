#ifndef STHSL_ANALYZE_INCLUDE_GRAPH_H_
#define STHSL_ANALYZE_INCLUDE_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "analyze/finding.h"
#include "analyze/source.h"

namespace sthsl::analyze {

/// One `#include "..."` edge between src/ files. `target` is normalized to
/// the includer-root-relative form used in this repo ("tensor/ops.h").
struct IncludeEdge {
  std::string from;    // repo-relative path of the including file
  int line = 0;
  std::string target;  // quoted include text, src-relative
};

/// Extracts every quoted-include edge, in file order. Angle includes are
/// system headers and carry no layering information, so they are skipped.
std::vector<IncludeEdge> ExtractIncludeEdges(
    const std::vector<SourceFile>& files);

/// The layer table: maps a src/ subdirectory to the set of subdirectories
/// it may include (always containing itself and "util"). The analyzer
/// layer sits beside exec: both depend only on util.
const std::map<std::string, std::vector<std::string>>& LayerTable();

/// Layering pass: enforces the layer DAG on every quoted include and
/// reports cyclic include chains among src/ files.
std::vector<Finding> RunLayeringPass(const std::vector<SourceFile>& files);

}  // namespace sthsl::analyze

#endif  // STHSL_ANALYZE_INCLUDE_GRAPH_H_
