#include "analyze/lexer.h"

#include <cctype>

namespace sthsl::analyze {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Character cursor over the source text that splices line continuations
// (backslash followed by newline, optionally with a carriage return) and
// keeps the physical line number current. Raw string bodies bypass the
// splicing via RawGet().
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return SplicedPos(pos_) >= text_.size(); }

  // Current character after splices; '\0' at end.
  char Peek() const { return CharAt(SplicedPos(pos_)); }

  char PeekAhead(size_t n) const {
    size_t p = SplicedPos(pos_);
    for (size_t i = 0; i < n && p < text_.size(); ++i) {
      p = SplicedPos(p + 1);
    }
    return CharAt(p);
  }

  // Consumes and returns the current (spliced) character.
  char Get() {
    SkipSplices();
    if (pos_ >= text_.size()) return '\0';
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  // Consumes one character with NO splice processing (raw string bodies,
  // where a backslash-newline is two literal characters).
  char RawGet() {
    if (pos_ >= text_.size()) return '\0';
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  bool RawAtEnd() const { return pos_ >= text_.size(); }
  char RawPeek() const { return CharAt(pos_); }

  int line() const { return line_; }

 private:
  char CharAt(size_t p) const { return p < text_.size() ? text_[p] : '\0'; }

  // Skips any run of backslash-newline splices starting at p. Does not
  // mutate state; Get() re-derives the skip so line counting stays exact.
  size_t SplicedPos(size_t p) const {
    for (;;) {
      if (p < text_.size() && text_[p] == '\\') {
        size_t q = p + 1;
        if (q < text_.size() && text_[q] == '\r') ++q;
        if (q < text_.size() && text_[q] == '\n') {
          p = q + 1;
          continue;
        }
      }
      return p;
    }
  }

  // Mutating twin of SplicedPos: advances pos_ over splices while counting
  // the newlines they hide, so line numbers track physical lines.
  void SkipSplices() {
    for (;;) {
      if (pos_ < text_.size() && text_[pos_] == '\\') {
        size_t q = pos_ + 1;
        if (q < text_.size() && text_[q] == '\r') ++q;
        if (q < text_.size() && text_[q] == '\n') {
          pos_ = q + 1;
          ++line_;
          continue;
        }
      }
      return;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

// Multi-character punctuation, checked longest-first.
constexpr const char* kPunct3[] = {"<<=", ">>=", "...", "->*"};
constexpr const char* kPunct2[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                                   "!=", "&&", "||", "+=", "-=", "*=", "/=",
                                   "%=", "&=", "|=", "^=", "++", "--", "##",
                                   ".*"};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : cur_(text) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    bool at_line_start = true;
    bool in_include_directive = false;
    while (!cur_.AtEnd()) {
      const char c = cur_.Peek();
      if (c == '\n') {
        cur_.Get();
        at_line_start = true;
        in_include_directive = false;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        cur_.Get();
        continue;
      }
      if (c == '/' && cur_.PeekAhead(1) == '/') {
        SkipLineComment();
        continue;
      }
      if (c == '/' && cur_.PeekAhead(1) == '*') {
        SkipBlockComment();
        continue;  // a block comment does not end the logical line
      }
      if (c == '#' && at_line_start) {
        const Token directive = LexDirective();
        in_include_directive = directive.text == "include" ||
                               directive.text == "include_next";
        tokens.push_back(directive);
        at_line_start = false;
        continue;
      }
      at_line_start = false;
      if (in_include_directive && c == '<') {
        tokens.push_back(LexHeaderName());
        in_include_directive = false;
        continue;
      }
      if (c == '"') {
        tokens.push_back(LexString(/*raw=*/false));
        continue;
      }
      if (c == '\'') {
        tokens.push_back(LexCharLiteral());
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(
                           cur_.PeekAhead(1))))) {
        tokens.push_back(LexNumber());
        continue;
      }
      if (IsIdentStart(c)) {
        tokens.push_back(LexIdentifierOrPrefixedString());
        continue;
      }
      tokens.push_back(LexPunct());
    }
    return tokens;
  }

 private:
  void SkipLineComment() {
    // The splice-aware Get() makes a backslash-continued // comment swallow
    // the next physical line too, matching the preprocessor.
    while (!cur_.AtEnd() && cur_.Peek() != '\n') cur_.Get();
  }

  void SkipBlockComment() {
    cur_.Get();  // '/'
    cur_.Get();  // '*'
    while (!cur_.AtEnd()) {
      if (cur_.Peek() == '*' && cur_.PeekAhead(1) == '/') {
        cur_.Get();
        cur_.Get();
        return;
      }
      cur_.Get();
    }
  }

  Token LexDirective() {
    const int line = cur_.line();
    cur_.Get();  // '#'
    while (!cur_.AtEnd() && (cur_.Peek() == ' ' || cur_.Peek() == '\t')) {
      cur_.Get();
    }
    std::string name;
    while (!cur_.AtEnd() && IsIdentChar(cur_.Peek())) name += cur_.Get();
    return {TokenKind::kDirective, std::move(name), line};
  }

  Token LexHeaderName() {
    const int line = cur_.line();
    cur_.Get();  // '<'
    std::string name;
    while (!cur_.AtEnd() && cur_.Peek() != '>' && cur_.Peek() != '\n') {
      name += cur_.Get();
    }
    if (cur_.Peek() == '>') cur_.Get();
    return {TokenKind::kHeaderName, std::move(name), line};
  }

  Token LexString(bool raw) {
    return raw ? LexRawString() : LexPlainString();
  }

  Token LexPlainString() {
    const int line = cur_.line();
    cur_.Get();  // opening quote
    std::string text;
    while (!cur_.AtEnd()) {
      const char c = cur_.Get();
      if (c == '\\') {
        text += c;
        if (!cur_.AtEnd()) text += cur_.Get();
        continue;
      }
      if (c == '"' || c == '\n') break;  // newline: unterminated, recover
      text += c;
    }
    return {TokenKind::kString, std::move(text), line};
  }

  // R"delim(...)delim" — the body is read verbatim: no escapes, no line
  // splicing (a trailing backslash before a newline is two body chars).
  Token LexRawString() {
    const int line = cur_.line();
    cur_.Get();  // opening quote
    std::string delim;
    while (!cur_.RawAtEnd() && cur_.RawPeek() != '(') delim += cur_.RawGet();
    if (!cur_.RawAtEnd()) cur_.RawGet();  // '('
    const std::string terminator = ")" + delim + "\"";
    std::string body;
    while (!cur_.RawAtEnd()) {
      body += cur_.RawGet();
      if (body.size() >= terminator.size() &&
          body.compare(body.size() - terminator.size(), terminator.size(),
                       terminator) == 0) {
        body.erase(body.size() - terminator.size());
        return {TokenKind::kString, std::move(body), line};
      }
    }
    return {TokenKind::kString, std::move(body), line};  // unterminated
  }

  Token LexCharLiteral() {
    const int line = cur_.line();
    cur_.Get();  // opening quote
    std::string text;
    while (!cur_.AtEnd()) {
      const char c = cur_.Get();
      if (c == '\\') {
        text += c;
        if (!cur_.AtEnd()) text += cur_.Get();
        continue;
      }
      if (c == '\'' || c == '\n') break;
      text += c;
    }
    return {TokenKind::kChar, std::move(text), line};
  }

  Token LexNumber() {
    const int line = cur_.line();
    std::string text;
    text += cur_.Get();
    while (!cur_.AtEnd()) {
      const char c = cur_.Peek();
      if (IsIdentChar(c) || c == '.') {
        text += cur_.Get();
        // Exponent signs continue the pp-number: 1e-3, 0x1p+4.
        const char last = text.back();
        if ((last == 'e' || last == 'E' || last == 'p' || last == 'P') &&
            (cur_.Peek() == '+' || cur_.Peek() == '-')) {
          text += cur_.Get();
        }
        continue;
      }
      // Digit separator: 1'000 — only when followed by an alphanumeric,
      // so a char literal right after a number is not swallowed.
      if (c == '\'' && IsIdentChar(cur_.PeekAhead(1))) {
        text += cur_.Get();
        continue;
      }
      break;
    }
    return {TokenKind::kNumber, std::move(text), line};
  }

  Token LexIdentifierOrPrefixedString() {
    const int line = cur_.line();
    std::string text;
    while (!cur_.AtEnd() && IsIdentChar(cur_.Peek())) text += cur_.Get();
    if (cur_.Peek() == '"') {
      // Encoding / raw prefixes glue onto the literal: u8R"(x)", L"x", ...
      const bool raw = !text.empty() && text.back() == 'R';
      const std::string prefix = raw ? text.substr(0, text.size() - 1) : text;
      const bool known_prefix = prefix.empty() || prefix == "u8" ||
                                prefix == "u" || prefix == "U" || prefix == "L";
      if (known_prefix) return LexString(raw);
    }
    if (cur_.Peek() == '\'' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      return LexCharLiteral();
    }
    return {TokenKind::kIdentifier, std::move(text), line};
  }

  Token LexPunct() {
    const int line = cur_.line();
    for (const char* op : kPunct3) {
      if (cur_.Peek() == op[0] && cur_.PeekAhead(1) == op[1] &&
          cur_.PeekAhead(2) == op[2]) {
        cur_.Get();
        cur_.Get();
        cur_.Get();
        return {TokenKind::kPunct, op, line};
      }
    }
    for (const char* op : kPunct2) {
      if (cur_.Peek() == op[0] && cur_.PeekAhead(1) == op[1]) {
        cur_.Get();
        cur_.Get();
        return {TokenKind::kPunct, op, line};
      }
    }
    return {TokenKind::kPunct, std::string(1, cur_.Get()), line};
  }

  Cursor cur_;
};

}  // namespace

std::vector<Token> Lex(std::string_view text) { return Lexer(text).Run(); }

}  // namespace sthsl::analyze
