#ifndef STHSL_ANALYZE_HEADERS_H_
#define STHSL_ANALYZE_HEADERS_H_

#include <string>
#include <vector>

#include "analyze/finding.h"
#include "analyze/source.h"

namespace sthsl::analyze {

/// Header-hygiene pass (carried over from sthsl_lint): path-derived include
/// guards, no bare assert(), no const_cast, reinterpret_cast confined to
/// baseline-carried byte-I/O boundaries.
std::vector<Finding> RunHeaderPass(const std::vector<SourceFile>& files);

/// The guard expected for a src-relative header path:
/// "tensor/ops.h" -> "STHSL_TENSOR_OPS_H_".
std::string ExpectedGuard(const std::string& path_in_src);

/// Self-containment check: compiles each header standalone with
/// `<compiler> -std=c++20 -fsyntax-only -I <root>/src`. Separate from
/// RunHeaderPass because it shells out to the compiler; callers may skip
/// it for speed or for deliberately-broken fixture trees.
std::vector<Finding> RunSelfContainedCheck(const std::string& root,
                                           const std::vector<SourceFile>& files,
                                           const std::string& compiler);

}  // namespace sthsl::analyze

#endif  // STHSL_ANALYZE_HEADERS_H_
