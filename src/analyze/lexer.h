#ifndef STHSL_ANALYZE_LEXER_H_
#define STHSL_ANALYZE_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace sthsl::analyze {

/// Token kinds produced by Lex(). The lexer is a lightweight C++ tokenizer:
/// it understands comments, string/char literals (including raw strings and
/// encoding prefixes), line continuations, preprocessor directives, and the
/// multi-character operators — enough for structural analysis, not a full
/// phase-7 translator.
enum class TokenKind {
  kIdentifier,  // foo, std, reinterpret_cast
  kNumber,      // pp-number: 42, 0x1f, 1.5e-3, 1'000
  kString,      // "..." with prefixes and raw strings; text excludes quotes
  kChar,        // '...'; text excludes quotes
  kPunct,       // operators and punctuation, longest-match
  kDirective,   // preprocessor directive name, e.g. "include", "ifndef"
  kHeaderName,  // <...> form after #include; text excludes the angle brackets
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character

  bool Is(TokenKind k, std::string_view t) const {
    return kind == k && text == t;
  }
  bool IsIdent(std::string_view t) const {
    return Is(TokenKind::kIdentifier, t);
  }
  bool IsPunct(std::string_view t) const { return Is(TokenKind::kPunct, t); }
};

/// Tokenizes C++ source text. Comments are consumed (never emitted);
/// line continuations (backslash-newline) are spliced everywhere except
/// inside raw string literals, with line numbers tracking the physical
/// line of each token. Unterminated literals are tolerated: the token ends
/// at end-of-input rather than aborting the scan.
std::vector<Token> Lex(std::string_view text);

}  // namespace sthsl::analyze

#endif  // STHSL_ANALYZE_LEXER_H_
