#ifndef STHSL_ANALYZE_TOKEN_UTIL_H_
#define STHSL_ANALYZE_TOKEN_UTIL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/lexer.h"

namespace sthsl::analyze {

/// Half-open token-index range [body_begin, body_end) covering the tokens
/// between (excluding) the braces of one function body. Member functions
/// defined inside a class body are reported individually; everything nested
/// within a body (lambdas, local classes) belongs to that body's span.
struct FunctionBody {
  size_t body_begin = 0;
  size_t body_end = 0;
  int line = 0;  // line of the opening brace
};

/// Heuristic function-body finder: a top-level `{` whose previous
/// significant token is `)` — possibly with const/noexcept/override/final
/// or a trailing-return chain in between — opens a function body. Control
/// flow (`if (...) {`) only matches inside bodies, which the scan skips,
/// so it never produces nested spans.
std::vector<FunctionBody> FindFunctionBodies(const std::vector<Token>& tokens);

/// One RAII lock construction found inside a token range:
/// `std::lock_guard<std::mutex> l(pool.mu)` yields kind "lock_guard" and
/// mutex names {"mu"} (the last identifier of each constructor argument).
struct LockSite {
  size_t token_index = 0;  // index of the lock_guard/unique_lock identifier
  int line = 0;
  std::string kind;
  std::vector<std::string> mutexes;
};

std::vector<LockSite> FindLockSites(const std::vector<Token>& tokens,
                                    size_t begin, size_t end);

/// Index just past a balanced `<...>` starting at `i` (which must point at
/// `<`); `>>` closes two levels. Returns `i` unchanged when the angle run
/// does not close before `end`.
size_t SkipAngles(const std::vector<Token>& tokens, size_t i, size_t end);

/// Index just past the `)` matching the `(` at `i`.
size_t SkipParens(const std::vector<Token>& tokens, size_t i, size_t end);

}  // namespace sthsl::analyze

#endif  // STHSL_ANALYZE_TOKEN_UTIL_H_
