#ifndef STHSL_ANALYZE_CONCURRENCY_H_
#define STHSL_ANALYZE_CONCURRENCY_H_

#include <vector>

#include "analyze/finding.h"
#include "analyze/source.h"

namespace sthsl::analyze {

/// Concurrency-hygiene pass, applied to all of src/:
///   - mutex-guard: a mutex whose name follows the `_mu` suffix convention
///     (error_mu, conn_mu_) is locked only through RAII
///     (lock_guard/unique_lock/scoped_lock), never .lock()/.unlock();
///   - guarded-field: identifiers sharing the mutex's name prefix
///     (conn_mu_ guards conn_threads_) are only touched inside function
///     bodies that construct a lock on that mutex;
///   - lock-order: within a file, two named mutexes nested in both orders
///     (A then B in one function, B then A in another) is an inversion.
std::vector<Finding> RunConcurrencyPass(const std::vector<SourceFile>& files);

}  // namespace sthsl::analyze

#endif  // STHSL_ANALYZE_CONCURRENCY_H_
