#include "analyze/source.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sthsl::analyze {

namespace fs = std::filesystem;

bool SourceFile::IsHeader() const {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

std::string SourceFile::PathInSrc() const {
  constexpr const char* kPrefix = "src/";
  if (path.rfind(kPrefix, 0) != 0) return "";
  return path.substr(4);
}

std::string SourceFile::Layer() const {
  const std::string in_src = PathInSrc();
  const size_t slash = in_src.find('/');
  if (slash == std::string::npos) return "";  // file directly in src/
  return in_src.substr(0, slash);
}

bool LoadSourceTree(const std::string& root, std::vector<SourceFile>* files,
                    std::string* error) {
  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    if (error) *error = "no src/ directory under " + root;
    return false;
  }
  for (const auto& entry : fs::recursive_directory_iterator(src, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    files->push_back(
        {"src/" + fs::relative(entry.path(), src).generic_string(),
         text.str()});
  }
  if (ec) {
    if (error) *error = "walking " + src.string() + ": " + ec.message();
    return false;
  }
  std::sort(files->begin(), files->end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return true;
}

}  // namespace sthsl::analyze
