#include "analyze/finding.h"

#include <algorithm>

namespace sthsl::analyze {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "error";
}

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> rules = {
      // Layering pass.
      {"layer-dag", Severity::kError, "layering",
       "src/ layers form a DAG: util -> exec -> simd -> tensor -> "
       "nn/metrics -> data -> core -> baselines -> serve; an include may "
       "only reach its own layer or one below it"},
      {"include-cycle", Severity::kError, "layering",
       "no cyclic quoted-include chains between src/ files"},
      {"unknown-layer", Severity::kError, "layering",
       "every src/ subdirectory must be registered in the layer table "
       "(src/analyze/include_graph.cc) before code lands there"},

      // Determinism-contract pass (docs/performance.md).
      {"det-thread", Severity::kError, "determinism",
       "raw threading (std::thread/std::async/detach/OpenMP/pthreads) is "
       "confined to src/exec/ and src/serve/; kernels parallelize through "
       "sthsl::exec so chunking stays bitwise-deterministic"},
      {"det-rand", Severity::kError, "determinism",
       "no ambient randomness (rand/srand/random_device) in tensor/nn/core "
       "kernel code; randomness flows through seeded sthsl::Rng"},
      {"det-time", Severity::kError, "determinism",
       "no wall-clock reads (time/clock_gettime/system_clock/...) in "
       "tensor/nn/core kernel code; results must not depend on when they "
       "run"},
      {"det-intrinsics", Severity::kError, "determinism",
       "SIMD intrinsic headers (<immintrin.h>/<arm_neon.h>/...) are "
       "confined to src/simd/; kernel code reaches vector units only "
       "through the simd::Kernels() microkernel set, which pins the "
       "accumulation order across ISAs"},
      {"det-unordered-iter", Severity::kError, "determinism",
       "no iteration over unordered containers in a function that "
       "accumulates floating-point state: hash-order iteration reorders "
       "float additions and breaks bitwise reproducibility"},

      // Concurrency-hygiene pass.
      {"mutex-guard", Severity::kError, "concurrency",
       "mutexes following the `_mu` naming convention are locked only via "
       "std::lock_guard/unique_lock/scoped_lock, never .lock()/.unlock()"},
      {"guarded-field", Severity::kError, "concurrency",
       "a field sharing the name prefix of a `_mu`-suffixed mutex is only "
       "touched in functions that construct a lock on that mutex"},
      {"lock-order", Severity::kError, "concurrency",
       "named mutex pairs are always acquired in one order within a file; "
       "both A->B and B->A nestings is a deadlock waiting for contention"},

      // Header-hygiene pass (carried over from sthsl_lint).
      {"include-guard", Severity::kError, "headers",
       "header guards are path-derived (src/tensor/ops.h -> "
       "STHSL_TENSOR_OPS_H_) with the #define immediately following"},
      {"bare-assert", Severity::kError, "headers",
       "no bare assert(); STHSL_CHECK carries file/line/message and fires "
       "in release builds"},
      {"const-cast", Severity::kError, "headers",
       "no const_cast under src/; expose a mutable accessor instead"},
      {"reinterpret-cast", Severity::kError, "headers",
       "reinterpret_cast only at vetted byte-I/O boundaries, each carried "
       "as a baseline entry"},
      {"self-contained", Severity::kError, "headers",
       "every header compiles standalone ($CXX -std=c++20 -fsyntax-only)"},
  };
  return rules;
}

const RuleInfo* FindRule(const std::string& id) {
  for (const RuleInfo& rule : Rules()) {
    if (id == rule.id) return &rule;
  }
  return nullptr;
}

void SortFindings(std::vector<Finding>& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

}  // namespace sthsl::analyze
