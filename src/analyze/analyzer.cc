#include "analyze/analyzer.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "analyze/baseline.h"
#include "analyze/concurrency.h"
#include "analyze/determinism.h"
#include "analyze/headers.h"
#include "analyze/include_graph.h"
#include "util/json_mini.h"

namespace sthsl::analyze {
namespace {

bool PassSelected(const AnalyzeOptions& options, const std::string& name) {
  if (options.only_passes.empty()) return true;
  return std::find(options.only_passes.begin(), options.only_passes.end(),
                   name) != options.only_passes.end();
}

void Append(std::vector<Finding>& into, std::vector<Finding> findings) {
  for (Finding& f : findings) into.push_back(std::move(f));
}

std::string RenderText(const AnalyzeResult& result) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    out << f.path;
    if (f.line > 0) out << ":" << f.line;
    out << ": " << SeverityName(f.severity) << " [" << f.rule << "] "
        << f.message << "\n";
  }
  out << "sthsl_analyze: " << result.files_scanned << " files, "
      << result.findings.size() << " finding(s), " << result.suppressed
      << " suppressed\n";
  return out.str();
}

std::string RenderJson(const AnalyzeResult& result) {
  using json::JsonQuote;
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out << (i ? ",\n    " : "\n    ") << "{\"path\": " << JsonQuote(f.path)
        << ", \"line\": " << f.line << ", \"rule\": " << JsonQuote(f.rule)
        << ", \"severity\": " << JsonQuote(SeverityName(f.severity))
        << ", \"message\": " << JsonQuote(f.message) << "}";
  }
  out << (result.findings.empty() ? "]" : "\n  ]") << ",\n"
      << "  \"files_scanned\": " << result.files_scanned << ",\n"
      << "  \"suppressed\": " << result.suppressed << "\n}\n";
  return out.str();
}

const char* SarifLevel(Severity s) {
  switch (s) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "error";
}

std::string RenderSarif(const AnalyzeResult& result) {
  using json::JsonQuote;
  std::ostringstream out;
  out << "{\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"sthsl_analyze\",\n"
      << "      \"informationUri\": "
         "\"docs/correctness_tooling.md\",\n"
      << "      \"rules\": [";
  const auto& rules = Rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    const RuleInfo& r = rules[i];
    out << (i ? ",\n        " : "\n        ") << "{\"id\": " << JsonQuote(r.id)
        << ", \"shortDescription\": {\"text\": " << JsonQuote(r.summary)
        << "}, \"properties\": {\"pass\": " << JsonQuote(r.pass)
        << "}, \"defaultConfiguration\": {\"level\": "
        << JsonQuote(SarifLevel(r.severity)) << "}}";
  }
  out << "\n      ]\n    }},\n"
      << "    \"results\": [";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out << (i ? ",\n      " : "\n      ") << "{\"ruleId\": "
        << JsonQuote(f.rule) << ", \"level\": "
        << JsonQuote(SarifLevel(f.severity))
        << ", \"message\": {\"text\": " << JsonQuote(f.message) << "}"
        << ", \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": "
        << JsonQuote(f.path) << "}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}]}";
  }
  out << (result.findings.empty() ? "]\n" : "\n    ]\n") << "  }]\n}\n";
  return out.str();
}

}  // namespace

const std::vector<std::string>& PassNames() {
  static const std::vector<std::string> names = {"layering", "determinism",
                                                 "concurrency", "headers"};
  return names;
}

AnalyzeResult RunAnalysisOnFiles(const std::vector<SourceFile>& files,
                                 const AnalyzeOptions& options) {
  AnalyzeResult result;
  result.ok = true;
  result.files_scanned = static_cast<int>(files.size());
  std::vector<Finding> findings;
  if (PassSelected(options, "layering")) {
    Append(findings, RunLayeringPass(files));
  }
  if (PassSelected(options, "determinism")) {
    Append(findings, RunDeterminismPass(files));
  }
  if (PassSelected(options, "concurrency")) {
    Append(findings, RunConcurrencyPass(files));
  }
  if (PassSelected(options, "headers")) {
    Append(findings, RunHeaderPass(files));
    if (options.check_self_contained && !options.root.empty()) {
      Append(findings,
             RunSelfContainedCheck(options.root, files, options.compiler));
    }
  }
  SortFindings(findings);

  if (!options.baseline_path.empty()) {
    std::ifstream in(options.baseline_path);
    if (!in) {
      result.ok = false;
      result.error = "cannot read baseline " + options.baseline_path;
      return result;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<Finding> baseline_errors;
    const Baseline baseline =
        ParseBaseline(text.str(), options.baseline_path, &baseline_errors);
    result.suppressed = ApplyBaseline(baseline, &findings);
    Append(findings, std::move(baseline_errors));
    SortFindings(findings);
  }
  result.findings = std::move(findings);
  return result;
}

AnalyzeResult RunAnalysis(const AnalyzeOptions& options) {
  AnalyzeResult result;
  std::vector<SourceFile> files;
  if (!LoadSourceTree(options.root, &files, &result.error)) {
    result.ok = false;
    return result;
  }
  return RunAnalysisOnFiles(files, options);
}

std::string RenderReport(const AnalyzeResult& result,
                         const std::string& format) {
  if (format == "json") return RenderJson(result);
  if (format == "sarif") return RenderSarif(result);
  return RenderText(result);
}

}  // namespace sthsl::analyze
