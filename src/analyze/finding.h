#ifndef STHSL_ANALYZE_FINDING_H_
#define STHSL_ANALYZE_FINDING_H_

#include <string>
#include <vector>

namespace sthsl::analyze {

enum class Severity { kError, kWarning, kNote };

const char* SeverityName(Severity s);

/// One diagnostic. `path` is repo-root-relative with forward slashes;
/// `line` is 1-based, 0 for file-level findings.
struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;
};

/// Static description of a rule, used for the SARIF rule table and the
/// documentation catalog. Severities are fixed per rule; the baseline file
/// is the only suppression mechanism.
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* pass;  // "layering" | "determinism" | "concurrency" | "headers"
  const char* summary;
};

/// Every rule the analyzer can emit, in catalog order.
const std::vector<RuleInfo>& Rules();

/// nullptr when `id` is not a known rule.
const RuleInfo* FindRule(const std::string& id);

/// Stable ordering for reports: path, then line, then rule.
void SortFindings(std::vector<Finding>& findings);

}  // namespace sthsl::analyze

#endif  // STHSL_ANALYZE_FINDING_H_
