#ifndef STHSL_ANALYZE_DETERMINISM_H_
#define STHSL_ANALYZE_DETERMINISM_H_

#include <vector>

#include "analyze/finding.h"
#include "analyze/source.h"

namespace sthsl::analyze {

/// Determinism-contract pass (docs/performance.md): kernels must be
/// bitwise-reproducible at any thread count, so
///   - raw threading primitives are confined to src/exec/ and src/serve/
///     (rule det-thread);
///   - ambient randomness and wall-clock reads are banned from the kernel
///     layers tensor/nn/core (rules det-rand, det-time);
///   - no function in tensor/nn/core/metrics/data may iterate an unordered
///     container while accumulating floating-point state — hash order would
///     reorder the float additions (rule det-unordered-iter).
std::vector<Finding> RunDeterminismPass(const std::vector<SourceFile>& files);

}  // namespace sthsl::analyze

#endif  // STHSL_ANALYZE_DETERMINISM_H_
