/// Dense-vs-sparse hypergraph propagation sweep (BENCH_sparse.json).
///
/// Models the ST-HSL incidence matmul H · E2 followed by the transposed
/// propagation H^T · up at the paper's Fig.-1 sparsity regime (~5% of
/// region-day-category cells are nonzero). For each region count R the same
/// incidence pattern and values run through two arms:
///
///   dense  — the pre-sparse-subsystem path: a dense (H, R·C) parameter,
///            MatMul + Transpose + MatMul.
///   sparse — the src/sparse/ path: CSR pattern + values leaf, SpMM twice
///            (the transposed hop via the stable-counting-sort transpose
///            index).
///
/// Both arms run forward AND backward; forward outputs and the dense-operand
/// gradients are asserted bitwise identical (the zero-skip argument in
/// docs/sparse.md). Peak tensor bytes are captured from the obs profiler
/// after the forward pass and again after backward. The process exits
/// nonzero if the sparse forward peak exceeds 0.5x the dense forward peak at
/// the largest R — the memory gate CI enforces on BENCH_sparse.json.
///
/// Times are single-shot (one forward, one backward) — this bench gates
/// memory, not throughput; the roofline bench covers spmm/gather FLOP rates.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "sparse/sparse_tensor.h"
#include "tensor/ops.h"
#include "tensor/sparse_ops.h"
#include "tensor/tensor.h"
#include "util/check.h"
#include "util/obs/obs.h"
#include "util/rng.h"
#include "util/timer.h"

namespace sthsl {
namespace {

constexpr int64_t kCategories = 4;   // C: crime categories per region
constexpr int64_t kWindowFeats = 7 * 16;  // w · d: window x embedding dim
constexpr double kFig1Density = 0.05;
constexpr double kGateRatio = 0.5;

/// The shared incidence pattern + operands, held as raw std::vectors so the
/// generator data never counts against either arm's tracked tensor bytes.
struct PatternData {
  std::vector<int64_t> row_ptr;  // CSR over (H, R*C)
  std::vector<int64_t> cols;
  std::vector<float> vals;
  std::vector<float> b;  // dense (R*C, w*d) operand
};

PatternData MakePattern(int64_t h_rows, int64_t rc, uint64_t seed) {
  PatternData p;
  Rng rng(seed);
  p.row_ptr.assign(static_cast<size_t>(h_rows) + 1, 0);
  for (int64_t i = 0; i < h_rows; ++i) {
    for (int64_t j = 0; j < rc; ++j) {
      if (rng.Bernoulli(kFig1Density)) {
        p.cols.push_back(j);
        p.vals.push_back(static_cast<float>(rng.Uniform(-1.0, 1.0)));
      }
    }
    p.row_ptr[static_cast<size_t>(i) + 1] =
        static_cast<int64_t>(p.cols.size());
  }
  Rng brng(seed ^ 0x9e3779b97f4a7c15ull);
  p.b.resize(static_cast<size_t>(rc * kWindowFeats));
  for (float& v : p.b) v = static_cast<float>(brng.Uniform(-0.5, 0.5));
  return p;
}

struct ArmStats {
  double fwd_ms = 0.0;
  double bwd_ms = 0.0;
  int64_t fwd_peak_bytes = 0;
  int64_t total_peak_bytes = 0;
  std::vector<float> out;     // forward output, copied out untracked
  std::vector<float> b_grad;  // gradient of the dense operand
};

ArmStats RunDenseArm(const PatternData& p, int64_t h_rows, int64_t rc) {
  obs::ResetProfiler();
  ArmStats s;
  std::vector<float> dense(static_cast<size_t>(h_rows * rc), 0.0f);
  for (int64_t i = 0; i < h_rows; ++i) {
    for (int64_t e = p.row_ptr[i]; e < p.row_ptr[i + 1]; ++e) {
      dense[static_cast<size_t>(i * rc + p.cols[e])] = p.vals[e];
    }
  }
  Tensor h = Tensor::FromVector({h_rows, rc}, std::move(dense),
                                /*requires_grad=*/true);
  Tensor b =
      Tensor::FromVector({rc, kWindowFeats}, p.b, /*requires_grad=*/true);
  Timer fwd;
  Tensor to_edges = LeakyRelu(MatMul(h, b), 0.1f);
  Tensor back = LeakyRelu(MatMul(Transpose(h, 0, 1), to_edges), 0.1f);
  s.fwd_ms = fwd.ElapsedMillis();
  s.fwd_peak_bytes = obs::PeakTensorBytes();
  s.out = back.Data();
  Timer bwd;
  Sum(back).Backward();
  s.bwd_ms = bwd.ElapsedMillis();
  s.total_peak_bytes = obs::PeakTensorBytes();
  s.b_grad = b.Grad();
  return s;
}

ArmStats RunSparseArm(const PatternData& p, int64_t h_rows, int64_t rc) {
  obs::ResetProfiler();
  ArmStats s;
  auto csr = sparse::SparseTensor::CsrFromParts({h_rows, rc}, p.row_ptr,
                                                p.cols, p.vals);
  STHSL_CHECK(csr.ok()) << csr.status().message();
  Tensor values =
      Tensor::FromVector({static_cast<int64_t>(p.vals.size())}, p.vals,
                         /*requires_grad=*/true);
  Tensor b =
      Tensor::FromVector({rc, kWindowFeats}, p.b, /*requires_grad=*/true);
  Timer fwd;
  Tensor to_edges = LeakyRelu(SpMM(csr.value(), values, b), 0.1f);
  Tensor back = LeakyRelu(
      SpMM(csr.value(), values, to_edges, /*transpose_a=*/true), 0.1f);
  s.fwd_ms = fwd.ElapsedMillis();
  s.fwd_peak_bytes = obs::PeakTensorBytes();
  s.out = back.Data();
  Timer bwd;
  Sum(back).Backward();
  s.bwd_ms = bwd.ElapsedMillis();
  s.total_peak_bytes = obs::PeakTensorBytes();
  s.b_grad = b.Grad();
  return s;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

int RunSweep() {
  const std::vector<int64_t> regions = {256, 1024, 4096};
  bool prev_trace = obs::SetTraceEnabled(true);

  bench::PrintSectionTitle(
      "Hypergraph propagate: dense vs sparse (density 0.05)");
  bench::PrintTableHeader({"config", "nnz", "dense_MB", "sparse_MB", "ratio",
                           "d_fwd_ms", "s_fwd_ms", "d_bwd_ms", "s_bwd_ms"},
                          18, 10);

  std::string json = "{\n  \"density\": 0.05,\n  \"window_features\": " +
                     std::to_string(kWindowFeats) + ",\n  \"sweep\": [\n";
  bool gate_pass = true;
  double gate_ratio = 0.0;
  for (size_t i = 0; i < regions.size(); ++i) {
    const int64_t r = regions[i];
    const int64_t h_rows = r / 2;  // hyperedges: the model's default H = R/2
    const int64_t rc = r * kCategories;
    PatternData p = MakePattern(h_rows, rc, 0x5eed0000ull + r);
    const int64_t nnz = static_cast<int64_t>(p.vals.size());

    ArmStats dense = RunDenseArm(p, h_rows, rc);
    ArmStats sparse = RunSparseArm(p, h_rows, rc);
    obs::ResetProfiler();

    STHSL_CHECK(BitwiseEqual(dense.out, sparse.out))
        << "forward outputs diverge at R=" << r;
    STHSL_CHECK(BitwiseEqual(dense.b_grad, sparse.b_grad))
        << "dense-operand gradients diverge at R=" << r;

    const double ratio = dense.fwd_peak_bytes > 0
                             ? static_cast<double>(sparse.fwd_peak_bytes) /
                                   static_cast<double>(dense.fwd_peak_bytes)
                             : 0.0;
    if (r == regions.back()) {
      gate_ratio = ratio;
      gate_pass = ratio <= kGateRatio;
    }

    const double mb = 1.0 / (1024.0 * 1024.0);
    bench::PrintTableRow(
        "R=" + std::to_string(r),
        {static_cast<double>(nnz), dense.fwd_peak_bytes * mb,
         sparse.fwd_peak_bytes * mb, ratio, dense.fwd_ms, sparse.fwd_ms,
         dense.bwd_ms, sparse.bwd_ms},
        18, 10);

    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"regions\": %lld, \"hyperedges\": %lld, \"nnz\": %lld,\n"
        "     \"dense\": {\"fwd_ms\": %.3f, \"bwd_ms\": %.3f, "
        "\"fwd_peak_bytes\": %lld, \"total_peak_bytes\": %lld},\n"
        "     \"sparse\": {\"fwd_ms\": %.3f, \"bwd_ms\": %.3f, "
        "\"fwd_peak_bytes\": %lld, \"total_peak_bytes\": %lld},\n"
        "     \"fwd_peak_ratio\": %.4f, \"bitwise_equal\": true}%s\n",
        static_cast<long long>(r), static_cast<long long>(h_rows),
        static_cast<long long>(nnz), dense.fwd_ms, dense.bwd_ms,
        static_cast<long long>(dense.fwd_peak_bytes),
        static_cast<long long>(dense.total_peak_bytes), sparse.fwd_ms,
        sparse.bwd_ms, static_cast<long long>(sparse.fwd_peak_bytes),
        static_cast<long long>(sparse.total_peak_bytes), ratio,
        i + 1 < regions.size() ? "," : "");
    json += buf;
  }
  obs::SetTraceEnabled(prev_trace);

  char gate[256];
  std::snprintf(gate, sizeof(gate),
                "  ],\n  \"gate\": {\"max_regions\": %lld, "
                "\"fwd_peak_ratio\": %.4f, \"threshold\": %.2f, "
                "\"pass\": %s}\n}\n",
                static_cast<long long>(regions.back()), gate_ratio,
                kGateRatio, gate_pass ? "true" : "false");
  json += gate;
  bench::MaybeWriteBenchJson("sparse", json);

  std::printf("\nmemory gate @ R=%lld: sparse/dense forward peak = %.4f "
              "(threshold %.2f) -> %s\n",
              static_cast<long long>(regions.back()), gate_ratio, kGateRatio,
              gate_pass ? "PASS" : "FAIL");
  return gate_pass ? 0 : 1;
}

}  // namespace
}  // namespace sthsl

int main() { return sthsl::RunSweep(); }
