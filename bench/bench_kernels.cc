// Micro-benchmarks (google-benchmark) of the tensor kernels that dominate
// ST-HSL's training cost: matmul (hypergraph propagation), conv2d (spatial
// encoder), conv1d (temporal encoders), softmax (contrastive loss) and a
// full ST-HSL forward/backward step. Complements the experiment harnesses
// with the model-complexity analysis of Sec. III-F.
//
// After the google-benchmark suite, main() runs a thread-scaling sweep of
// the exec-layer kernels (1/2/4/8 threads, BENCH_parallel.json), a SIMD
// variant sweep plus fusion-footprint measurement (BENCH_kernels.json), and
// the roofline report (BENCH_roofline.json), all under
// $STHSL_BENCH_JSON_DIR.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common.h"
#include "core/sthsl_model.h"
#include "exec/exec.h"
#include "simd/simd.h"
#include "sparse/sparse_tensor.h"
#include "tensor/fusion.h"
#include "tensor/optimizer.h"
#include "tensor/sparse_ops.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/obs/calibrate.h"
#include "util/obs/obs.h"
#include "util/obs/perf_counters.h"
#include "util/obs/roofline.h"
#include "util/rng.h"
#include "util/timer.h"

namespace sthsl {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_HypergraphPropagation(benchmark::State& state) {
  // sigma(H^T sigma(H E)) at bench scale: H=(32, 256), E=(256, 224).
  Rng rng(2);
  Tensor hyper = Tensor::Randn({32, 256}, rng);
  Tensor embeddings = Tensor::Randn({256, 224}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    Tensor up = LeakyRelu(MatMul(hyper, embeddings), 0.1f);
    benchmark::DoNotOptimize(
        LeakyRelu(MatMul(Transpose(hyper, 0, 1), up), 0.1f));
  }
}
BENCHMARK(BM_HypergraphPropagation);

void BM_Conv2d(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(3);
  Tensor input = Tensor::Randn({batch, 4, 16, 16}, rng);
  Tensor weight = Tensor::Randn({4, 4, 3, 3}, rng);
  Tensor bias = Tensor::Randn({4}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv2d(input, weight, bias, 1, 1));
  }
}
BENCHMARK(BM_Conv2d)->Arg(16)->Arg(64);

void BM_Conv1d(benchmark::State& state) {
  Rng rng(4);
  Tensor input = Tensor::Randn({1024, 4, 14}, rng);
  Tensor weight = Tensor::Randn({4, 4, 3}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv1d(input, weight, Tensor(), 1));
  }
}
BENCHMARK(BM_Conv1d);

void BM_Softmax(benchmark::State& state) {
  Rng rng(5);
  Tensor logits = Tensor::Randn({256, 256}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(logits, 1));
  }
}
BENCHMARK(BM_Softmax);

void BM_SthslTrainStep(benchmark::State& state) {
  Rng rng(6);
  SthslConfig config;
  config.dim = 16;
  config.num_hyperedges = 32;
  SthslNet net(config, 8, 8, 4, 0.2f, 0.8f, rng);
  Tensor window = Tensor::Rand({64, 14, 4}, rng, 0.0f, 3.0f);
  Tensor target = Tensor::Rand({64, 4}, rng, 0.0f, 3.0f);
  for (auto _ : state) {
    SthslNet::Output out = net.Forward(window, /*training=*/true);
    Tensor loss = MseLoss(out.prediction, target);
    loss = Add(loss, MulScalar(out.infomax_loss, 0.2f));
    loss = Add(loss, MulScalar(out.contrastive_loss, 0.1f));
    loss.Backward();
    for (auto& p : net.Parameters()) p.ZeroGrad();
  }
}
BENCHMARK(BM_SthslTrainStep);

void BM_SthslInference(benchmark::State& state) {
  Rng rng(7);
  SthslConfig config;
  config.dim = 16;
  config.num_hyperedges = 32;
  SthslNet net(config, 8, 8, 4, 0.2f, 0.8f, rng);
  net.SetTraining(false);
  Tensor window = Tensor::Rand({64, 14, 4}, rng, 0.0f, 3.0f);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(window, /*training=*/false));
  }
}
BENCHMARK(BM_SthslInference);

// -- Thread-scaling sweep -----------------------------------------------------

// Best-of-`iters` wall time of `fn` in microseconds (one warmup call).
double TimeUs(const std::function<void()>& fn, int iters) {
  fn();
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedMicros());
  }
  return best;
}

struct SweepKernel {
  std::string name;
  std::function<void()> run;
};

void RunThreadScalingSweep() {
  Rng rng(8);
  Tensor ga = Tensor::Randn({256, 256}, rng);
  Tensor gb = Tensor::Randn({256, 256}, rng);
  Tensor c2_in = Tensor::Randn({64, 4, 16, 16}, rng);
  Tensor c2_w = Tensor::Randn({4, 4, 3, 3}, rng);
  Tensor c2_b = Tensor::Randn({4}, rng);
  Tensor c1_in = Tensor::Randn({1024, 4, 14}, rng);
  Tensor c1_w = Tensor::Randn({4, 4, 3}, rng);
  Tensor ex = Tensor::Randn({int64_t{1} << 20}, rng);
  Tensor ey = Tensor::Randn({int64_t{1} << 20}, rng);

  const std::vector<SweepKernel> kernels = {
      {"gemm_nn_256", [&] { benchmark::DoNotOptimize(MatMul(ga, gb)); }},
      {"conv2d_b64",
       [&] { benchmark::DoNotOptimize(Conv2d(c2_in, c2_w, c2_b, 1, 1)); }},
      {"conv1d_b1024",
       [&] { benchmark::DoNotOptimize(Conv1d(c1_in, c1_w, Tensor(), 1)); }},
      {"fused_elementwise_1m",
       [&] { benchmark::DoNotOptimize(Sigmoid(Add(Mul(ex, ey), ex))); }},
  };
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  constexpr int kIters = 5;

  NoGradGuard no_grad;
  const int previous_threads = exec::ThreadCount();

  bench::PrintSectionTitle("exec thread scaling (best-of-5, us)");
  {
    std::vector<std::string> columns = {"kernel"};
    for (int t : thread_counts) {
      columns.push_back("t" + std::to_string(t));
    }
    columns.push_back("speedup@4");
    bench::PrintTableHeader(columns, 24, 12);
  }

  std::string json = "{\n  \"hardware_threads\": " +
                     std::to_string(exec::HardwareThreadCount()) +
                     ",\n  \"kernels\": [\n";
  for (size_t ki = 0; ki < kernels.size(); ++ki) {
    const SweepKernel& kernel = kernels[ki];
    double serial_us = 0.0;
    std::vector<double> row;
    std::string entries;
    for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
      exec::SetThreadCount(thread_counts[ti]);
      const double us = TimeUs(kernel.run, kIters);
      if (thread_counts[ti] == 1) serial_us = us;
      const double speedup = us > 0.0 ? serial_us / us : 0.0;
      row.push_back(us);
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "      {\"threads\": %d, \"us\": %.1f, "
                    "\"speedup\": %.3f}%s\n",
                    thread_counts[ti], us, speedup,
                    ti + 1 < thread_counts.size() ? "," : "");
      entries += buf;
    }
    const double at4 = row.size() > 2 && row[2] > 0.0 ? serial_us / row[2]
                                                      : 0.0;
    row.push_back(at4);
    bench::PrintTableRow(kernel.name, row, 24, 12, 1);
    char head[160];
    std::snprintf(head, sizeof head,
                  "    {\"name\": \"%s\", \"serial_us\": %.1f, "
                  "\"threads\": [\n",
                  kernel.name.c_str(), serial_us);
    json += head;
    json += entries;
    json += ki + 1 < kernels.size() ? "    ]},\n" : "    ]}\n";
  }
  json += "  ]\n}\n";
  exec::SetThreadCount(previous_threads);
  bench::MaybeWriteBenchJson("parallel", json);
}

// -- ISA sweep + fusion memory bench ------------------------------------------

// Re-times the hot kernels under every microkernel set compiled into this
// binary (dispatched best first, then each named variant) so the artifact
// shows what the SIMD dispatch layer buys on this host, and measures the
// peak tensor footprint of an elementwise chain with fusion on vs off.
// Written to $STHSL_BENCH_JSON_DIR/BENCH_kernels.json.
void RunIsaSweepAndFusionBench() {
  Rng rng(10);
  Tensor ga = Tensor::Randn({256, 256}, rng);
  Tensor gb = Tensor::Randn({256, 256}, rng);
  Tensor logits = Tensor::Randn({256, 256}, rng);
  Tensor ex = Tensor::Randn({int64_t{1} << 20}, rng);
  Tensor ey = Tensor::Randn({int64_t{1} << 20}, rng);
  const std::vector<SweepKernel> kernels = {
      {"gemm_nn_256", [&] { benchmark::DoNotOptimize(MatMul(ga, gb)); }},
      {"softmax_256", [&] { benchmark::DoNotOptimize(Softmax(logits, 1)); }},
      {"elementwise_chain_1m",
       // .Data() forces materialization — the chain is lazy, so timing the
       // tensor construction alone would measure nothing.
       [&] {
         benchmark::DoNotOptimize(
             Sigmoid(Add(Mul(ex, ey), ex)).Data().data());
       }},
  };
  constexpr int kIters = 5;

  // Dispatched set first, then every other variant this binary carries.
  std::vector<const simd::MicrokernelSet*> variants = {&simd::Kernels()};
  for (const char* name : {"portable", "avx2", "neon"}) {
    const simd::MicrokernelSet* set = simd::KernelsByName(name);
    if (set != nullptr && std::string(set->name) != variants[0]->name) {
      variants.push_back(set);
    }
  }

  NoGradGuard no_grad;
  bench::PrintSectionTitle("SIMD variant sweep (best-of-5, us)");
  {
    std::vector<std::string> columns = {"kernel"};
    for (const auto* v : variants) columns.push_back(v->name);
    bench::PrintTableHeader(columns, 24, 12);
  }

  std::string json = "{\n  \"dispatched\": \"";
  json += simd::Kernels().name;
  json += "\",\n  \"cpu_features\": \"" + simd::CpuFeatureString() +
          "\",\n  \"threads\": " + std::to_string(exec::ThreadCount()) +
          ",\n  \"kernels\": [\n";
  for (size_t ki = 0; ki < kernels.size(); ++ki) {
    const SweepKernel& kernel = kernels[ki];
    std::vector<double> row;
    std::string entries;
    for (size_t vi = 0; vi < variants.size(); ++vi) {
      simd::SetKernelsForTesting(variants[vi]);
      const double us = TimeUs(kernel.run, kIters);
      simd::SetKernelsForTesting(nullptr);
      row.push_back(us);
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "      {\"variant\": \"%s\", \"us\": %.1f}%s\n",
                    variants[vi]->name, us,
                    vi + 1 < variants.size() ? "," : "");
      entries += buf;
    }
    bench::PrintTableRow(kernel.name, row, 24, 12, 1);
    json += "    {\"name\": \"" + kernel.name + "\", \"variants\": [\n" +
            entries;
    json += ki + 1 < kernels.size() ? "    ]},\n" : "    ]}\n";
  }
  json += "  ],\n";

  // Fusion footprint: a 4-step unary/binary chain on a 1M-element tensor.
  // Eager evaluation materializes every intermediate; the fused chain
  // allocates only the final buffer.
  const auto peak_bytes = [&](int fusion_mode) {
    SetFusionEnabledForTesting(fusion_mode);
    const bool previous = obs::SetTraceEnabled(true);
    obs::ResetProfiler();
    benchmark::DoNotOptimize(
        MulScalar(Sigmoid(AddScalar(Mul(ex, ey), 0.5f)), 2.0f).Data());
    const int64_t peak = obs::PeakTensorBytes();
    obs::ResetProfiler();
    obs::SetTraceEnabled(previous);
    SetFusionEnabledForTesting(-1);
    return peak;
  };
  const int64_t fused_peak = peak_bytes(1);
  const int64_t eager_peak = peak_bytes(0);
  std::printf("fusion peak tensor bytes: fused=%lld eager=%lld (%.2fx)\n",
              static_cast<long long>(fused_peak),
              static_cast<long long>(eager_peak),
              fused_peak > 0 ? static_cast<double>(eager_peak) /
                                   static_cast<double>(fused_peak)
                             : 0.0);
  json += "  \"fusion\": {\"chain\": \"mul_scalar(sigmoid(add_scalar(mul(x, "
          "y), 0.5)), 2.0) over 2^20 floats\", \"fused_peak_bytes\": " +
          std::to_string(fused_peak) +
          ", \"eager_peak_bytes\": " + std::to_string(eager_peak) + "}\n}\n";
  bench::MaybeWriteBenchJson("kernels", json);
}

// -- Roofline bench -----------------------------------------------------------

// Counter-isolated kernel workloads for the roofline report: each workload
// runs with the profiler reset, so its op profiles (analytic FLOPs/bytes +
// measured time) are cleanly attributable, and with a hardware-counter group
// open, whose reading is attached to the workload's dominant op (the counters
// cover the whole workload run, including autograd glue — documented in
// docs/performance.md). The first workload to produce a given op name wins,
// so micro workloads provide the canonical rows and the full train step only
// fills in ops nothing else exercised.
struct RooflineWorkload {
  std::string label;
  std::function<void()> run;
};

void RunRooflineBench() {
  const obs::MachinePeaks peaks =
      obs::CalibrateMachinePeaks(/*force_remeasure=*/false,
                                 /*seconds_budget=*/0.6);
  if (!peaks.valid()) {
    std::fprintf(stderr, "[bench] machine-peak calibration failed; "
                         "skipping roofline report\n");
    return;
  }
  const int threads = exec::ThreadCount();

  Rng rng(9);
  Tensor ma = Tensor::Randn({256, 256}, rng, 1.0f, true);
  Tensor mb = Tensor::Randn({256, 256}, rng, 1.0f, true);
  Tensor c_in = Tensor::Randn({16, 4, 16, 16}, rng, 1.0f, true);
  Tensor c_w = Tensor::Randn({4, 4, 3, 3}, rng, 1.0f, true);
  Tensor c_b = Tensor::Randn({4}, rng, 1.0f, true);
  Tensor logits = Tensor::Randn({256, 256}, rng, 1.0f, true);
  Tensor ex = Tensor::Randn({int64_t{1} << 20}, rng);
  Tensor ey = Tensor::Randn({int64_t{1} << 20}, rng);
  Tensor sgd_p = Tensor::Randn({int64_t{1} << 20}, rng, 1.0f, true);
  Sgd sgd_opt({sgd_p}, /*lr=*/0.01f, /*momentum=*/0.9f);
  Tensor adam_p = Tensor::Randn({int64_t{1} << 20}, rng, 1.0f, true);
  Adam adam_opt({adam_p}, /*lr=*/0.001f);

  SthslConfig net_config;
  net_config.dim = 16;
  net_config.num_hyperedges = 32;
  SthslNet net(net_config, 8, 8, 4, 0.2f, 0.8f, rng);
  Tensor window = Tensor::Rand({64, 14, 4}, rng, 0.0f, 3.0f);
  Tensor target = Tensor::Rand({64, 4}, rng, 0.0f, 3.0f);

  // Sparse kernels at the Fig.-1 density regime (~5% fill): an incidence-
  // shaped SpMM with fixed-pattern value grads, and an embedding-row gather.
  Tensor sp_dense = Tensor::Randn({128, 1024}, rng, 1.0f, true);
  for (float& v : sp_dense.MutableData()) {
    if (!rng.Bernoulli(0.05)) v = 0.0f;
  }
  sparse::SparseTensor sp_csr = ToSparse(sp_dense).ToCsr();
  Tensor sp_b = Tensor::Randn({1024, 64}, rng, 1.0f, true);
  Tensor gather_table = Tensor::Randn({4096, 64}, rng, 1.0f, true);
  std::vector<int64_t> gather_idx(2048);
  for (int64_t& idx : gather_idx) {
    idx = static_cast<int64_t>(rng.Uniform(0.0, 4096.0)) % 4096;
  }

  const std::vector<RooflineWorkload> workloads = {
      {"gemm_256",
       [&] {
         Sum(MatMul(ma, mb)).Backward();
         ma.ZeroGrad();
         mb.ZeroGrad();
       }},
      {"conv2d_b16",
       [&] {
         Sum(Conv2d(c_in, c_w, c_b, 1, 1)).Backward();
         c_in.ZeroGrad();
         c_w.ZeroGrad();
         c_b.ZeroGrad();
       }},
      {"softmax_256",
       [&] {
         Sum(Softmax(logits, 1)).Backward();
         logits.ZeroGrad();
       }},
      {"spmm_h128",
       [&] {
         Tensor vals = SparseValues(sp_dense, sp_csr);
         Sum(SpMM(sp_csr, vals, sp_b)).Backward();
         sp_dense.ZeroGrad();
         sp_b.ZeroGrad();
       }},
      {"gather_4k",
       [&] {
         Sum(GatherRows(gather_table, gather_idx)).Backward();
         gather_table.ZeroGrad();
       }},
      {"elementwise_1m",
       [&] {
         NoGradGuard no_grad;
         benchmark::DoNotOptimize(Sigmoid(Add(Mul(ex, ey), ex)));
       }},
      {"sgd_1m",
       [&] {
         sgd_p.MutableGrad().assign(static_cast<size_t>(sgd_p.Numel()),
                                    1e-4f);
         sgd_opt.Step();
       }},
      {"adam_1m",
       [&] {
         adam_p.MutableGrad().assign(static_cast<size_t>(adam_p.Numel()),
                                     1e-4f);
         adam_opt.Step();
       }},
      {"train_step",
       [&] {
         SthslNet::Output out = net.Forward(window, /*training=*/true);
         Tensor loss = MseLoss(out.prediction, target);
         loss = Add(loss, MulScalar(out.infomax_loss, 0.2f));
         loss = Add(loss, MulScalar(out.contrastive_loss, 0.1f));
         loss.Backward();
         for (auto& p : net.Parameters()) p.ZeroGrad();
       }},
  };
  constexpr int kIters = 3;

  const bool was_enabled = obs::SetTraceEnabled(true);
  std::vector<obs::RooflineEntry> entries;
  std::vector<std::string> have;
  for (const RooflineWorkload& workload : workloads) {
    obs::ResetProfiler();
    obs::HwCounterGroup counters;
    counters.Start();
    for (int i = 0; i < kIters; ++i) workload.run();
    const obs::HwCounterSample sample = counters.Stop();
    std::vector<obs::RooflineEntry> built =
        obs::BuildRoofline(obs::OpProfiles(), peaks, threads);
    size_t dominant = built.size();
    for (size_t i = 0; i < built.size(); ++i) {
      if (dominant == built.size() || built[i].flops > built[dominant].flops) {
        dominant = i;
      }
    }
    if (dominant < built.size() && sample.valid) {
      built[dominant].counters = sample;
    }
    for (auto& entry : built) {
      if (std::find(have.begin(), have.end(), entry.name) != have.end()) {
        continue;
      }
      have.push_back(entry.name);
      entries.push_back(std::move(entry));
    }
  }
  obs::ResetProfiler();
  obs::SetTraceEnabled(was_enabled);

  std::sort(entries.begin(), entries.end(),
            [](const obs::RooflineEntry& a, const obs::RooflineEntry& b) {
              return a.name < b.name;
            });

  bench::PrintSectionTitle("roofline (calibrated peaks)");
  std::printf("peaks: %.1f GFLOP/s x %d threads, %.1f GB/s (1T triad), "
              "cpu: %s%s\n",
              peaks.gflops_1t, threads, peaks.gbps_1t,
              peaks.cpu_model.c_str(), peaks.from_cache ? " [cached]" : "");
  bench::PrintTableHeader(
      {"op", "GFLOP/s", "GB/s", "int", "%roof", "bound"}, 24, 10);
  for (const obs::RooflineEntry& entry : entries) {
    std::printf("%-24s%-10.2f%-10.2f%-10.2f%-10.1f%s\n", entry.name.c_str(),
                entry.achieved_gflops, entry.achieved_gbps, entry.intensity,
                entry.pct_of_roof, entry.compute_bound ? "compute" : "memory");
  }

  bench::MaybeWriteBenchJson("roofline",
                             obs::RooflineJson(entries, peaks, threads));
}

}  // namespace
}  // namespace sthsl

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  sthsl::RunThreadScalingSweep();
  sthsl::RunIsaSweepAndFusionBench();
  sthsl::RunRooflineBench();
  return 0;
}
