// Micro-benchmarks (google-benchmark) of the tensor kernels that dominate
// ST-HSL's training cost: matmul (hypergraph propagation), conv2d (spatial
// encoder), conv1d (temporal encoders), softmax (contrastive loss) and a
// full ST-HSL forward/backward step. Complements the experiment harnesses
// with the model-complexity analysis of Sec. III-F.

#include <benchmark/benchmark.h>

#include "core/sthsl_model.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace sthsl {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_HypergraphPropagation(benchmark::State& state) {
  // sigma(H^T sigma(H E)) at bench scale: H=(32, 256), E=(256, 224).
  Rng rng(2);
  Tensor hyper = Tensor::Randn({32, 256}, rng);
  Tensor embeddings = Tensor::Randn({256, 224}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    Tensor up = LeakyRelu(MatMul(hyper, embeddings), 0.1f);
    benchmark::DoNotOptimize(
        LeakyRelu(MatMul(Transpose(hyper, 0, 1), up), 0.1f));
  }
}
BENCHMARK(BM_HypergraphPropagation);

void BM_Conv2d(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(3);
  Tensor input = Tensor::Randn({batch, 4, 16, 16}, rng);
  Tensor weight = Tensor::Randn({4, 4, 3, 3}, rng);
  Tensor bias = Tensor::Randn({4}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv2d(input, weight, bias, 1, 1));
  }
}
BENCHMARK(BM_Conv2d)->Arg(16)->Arg(64);

void BM_Conv1d(benchmark::State& state) {
  Rng rng(4);
  Tensor input = Tensor::Randn({1024, 4, 14}, rng);
  Tensor weight = Tensor::Randn({4, 4, 3}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Conv1d(input, weight, Tensor(), 1));
  }
}
BENCHMARK(BM_Conv1d);

void BM_Softmax(benchmark::State& state) {
  Rng rng(5);
  Tensor logits = Tensor::Randn({256, 256}, rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(logits, 1));
  }
}
BENCHMARK(BM_Softmax);

void BM_SthslTrainStep(benchmark::State& state) {
  Rng rng(6);
  SthslConfig config;
  config.dim = 16;
  config.num_hyperedges = 32;
  SthslNet net(config, 8, 8, 4, 0.2f, 0.8f, rng);
  Tensor window = Tensor::Rand({64, 14, 4}, rng, 0.0f, 3.0f);
  Tensor target = Tensor::Rand({64, 4}, rng, 0.0f, 3.0f);
  for (auto _ : state) {
    SthslNet::Output out = net.Forward(window, /*training=*/true);
    Tensor loss = MseLoss(out.prediction, target);
    loss = Add(loss, MulScalar(out.infomax_loss, 0.2f));
    loss = Add(loss, MulScalar(out.contrastive_loss, 0.1f));
    loss.Backward();
    for (auto& p : net.Parameters()) p.ZeroGrad();
  }
}
BENCHMARK(BM_SthslTrainStep);

void BM_SthslInference(benchmark::State& state) {
  Rng rng(7);
  SthslConfig config;
  config.dim = 16;
  config.num_hyperedges = 32;
  SthslNet net(config, 8, 8, 4, 0.2f, 0.8f, rng);
  net.SetTraining(false);
  Tensor window = Tensor::Rand({64, 14, 4}, rng, 0.0f, 3.0f);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(window, /*training=*/false));
  }
}
BENCHMARK(BM_SthslInference);

}  // namespace
}  // namespace sthsl

BENCHMARK_MAIN();
