// Reproduces Table V: computational time cost per training epoch for the
// efficiency-study subset of models on both cities.
//
// Absolute numbers are CPU seconds at the active scale (the paper used a
// GTX 1080Ti); the shape to verify is the relative ordering: plain
// convolutional models (STGCN) cheapest, recurrent/attention-heavy models
// (DCRNN, STDN) most expensive, ST-HSL in the middle of the pack.

#include <cstdio>
#include <numeric>

#include "common.h"
#include "util/timer.h"

namespace sthsl::bench {
namespace {

double MeanEpochSeconds(Forecaster& model, const CityBenchmark& city) {
  model.Fit(city.data, city.train_end);
  const auto epochs = model.EpochSeconds();
  if (epochs.empty()) return 0.0;
  return std::accumulate(epochs.begin(), epochs.end(), 0.0) /
         static_cast<double>(epochs.size());
}

void Run() {
  std::printf("Table V reproduction: per-epoch training time (seconds)\n");
  ComparisonConfig config = BenchComparisonConfig();
  // A short run suffices to time epochs.
  config.baseline.train.epochs = 3;
  config.sthsl.train.epochs = 3;
  config.baseline.train.validation_days = 0;
  config.sthsl.train.validation_days = 0;

  const CityBenchmark nyc = MakeNyc();
  const CityBenchmark chi = MakeChicago();

  PrintTableHeader({"Model", "NYC", "CHI"}, 14, 10);
  for (const auto& name : EfficiencyStudyModelNames()) {
    auto model_nyc = MakeForecaster(name, config.baseline, config.sthsl);
    const double nyc_seconds = MeanEpochSeconds(*model_nyc, nyc);
    auto model_chi = MakeForecaster(name, config.baseline, config.sthsl);
    const double chi_seconds = MeanEpochSeconds(*model_chi, chi);
    PrintTableRow(name, {nyc_seconds, chi_seconds}, 14, 10, 3);
    std::fprintf(stderr, "[table5] %s done\n", name.c_str());
  }
  std::printf("\nPaper shape to verify: STGCN cheapest; DCRNN and STDN most "
              "expensive;\nST-HSL mid-pack — its SSL losses add only small "
              "overhead.\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
