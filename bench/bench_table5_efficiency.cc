// Reproduces Table V: computational time cost per training epoch for the
// efficiency-study subset of models on both cities.
//
// Absolute numbers are CPU seconds at the active scale (the paper used a
// GTX 1080Ti); the shape to verify is the relative ordering: plain
// convolutional models (STGCN) cheapest, recurrent/attention-heavy models
// (DCRNN, STDN) most expensive, ST-HSL in the middle of the pack.
//
// With STHSL_TRACE=1 the per-op profiler additionally attributes each
// model's wall time to individual tensor ops, and the breakdown is printed
// per model and embedded in BENCH_table5_efficiency.json (written when
// STHSL_BENCH_JSON_DIR is set).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "common.h"
#include "util/obs/export.h"
#include "util/obs/obs.h"
#include "util/obs/run_ledger.h"
#include "util/timer.h"

namespace sthsl::bench {
namespace {

double MeanEpochSeconds(Forecaster& model, const CityBenchmark& city) {
  model.Fit(city.data, city.train_end);
  const auto epochs = model.EpochSeconds();
  if (epochs.empty()) return 0.0;
  return std::accumulate(epochs.begin(), epochs.end(), 0.0) /
         static_cast<double>(epochs.size());
}

/// Op profiles of the current model run, heaviest (forward + backward) first.
std::vector<obs::OpProfile> TopOps() {
  std::vector<obs::OpProfile> ops = obs::OpProfiles();
  std::sort(ops.begin(), ops.end(),
            [](const obs::OpProfile& a, const obs::OpProfile& b) {
              return a.forward_us + a.backward_us >
                     b.forward_us + b.backward_us;
            });
  return ops;
}

void PrintTopOps(const std::vector<obs::OpProfile>& ops) {
  const size_t shown = std::min<size_t>(ops.size(), 6);
  for (size_t i = 0; i < shown; ++i) {
    const obs::OpProfile& op = ops[i];
    std::printf("    %-16s calls %-7lld fwd %9.0fus  bwd %9.0fus\n",
                op.name.c_str(), static_cast<long long>(op.forward_calls),
                op.forward_us, op.backward_us);
  }
}

std::string OpsJson(const std::vector<obs::OpProfile>& ops) {
  std::string json = "[";
  const size_t shown = std::min<size_t>(ops.size(), 12);
  for (size_t i = 0; i < shown; ++i) {
    const obs::OpProfile& op = ops[i];
    if (i > 0) json += ",";
    json += "{\"name\":\"" + obs::JsonEscape(op.name) + "\"";
    json += ",\"forward_calls\":" + std::to_string(op.forward_calls);
    json += ",\"forward_us\":" + std::to_string(op.forward_us);
    json += ",\"backward_calls\":" + std::to_string(op.backward_calls);
    json += ",\"backward_us\":" + std::to_string(op.backward_us);
    json += ",\"forward_flops\":" + std::to_string(op.forward_flops);
    json += ",\"backward_flops\":" + std::to_string(op.backward_flops);
    json += ",\"bytes_touched\":" + std::to_string(op.bytes_touched);
    json += ",\"backward_bytes\":" + std::to_string(op.backward_bytes);
    const int64_t total_bytes = op.bytes_touched + op.backward_bytes;
    const double intensity =
        total_bytes > 0
            ? static_cast<double>(op.forward_flops + op.backward_flops) /
                  static_cast<double>(total_bytes)
            : 0.0;
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", intensity);
    json += ",\"intensity\":" + std::string(buf);
    json += "}";
  }
  json += "]";
  return json;
}

void Run() {
  std::printf("Table V reproduction: per-epoch training time (seconds)\n");
  ConfigureRunLedger("table5_efficiency");
  const bool ledgered = obs::RunLedger::Global().Configured();
  ComparisonConfig config = BenchComparisonConfig();
  // A short run suffices to time epochs.
  config.baseline.train.epochs = 3;
  config.sthsl.train.epochs = 3;
  config.baseline.train.validation_days = 0;
  config.sthsl.train.validation_days = 0;

  const CityBenchmark nyc = MakeNyc();
  const CityBenchmark chi = MakeChicago();

  std::string models_json;
  PrintTableHeader({"Model", "NYC", "CHI"}, 14, 10);
  for (const auto& name : EfficiencyStudyModelNames()) {
    // Per-model profile: drop whatever the previous model accumulated so the
    // op breakdown below belongs to this model alone.
    obs::ResetProfiler();
    Timer model_timer;
    auto model_nyc = MakeForecaster(name, config.baseline, config.sthsl);
    const double nyc_seconds = MeanEpochSeconds(*model_nyc, nyc);
    // When a run ledger collects this bench, close each model's run with
    // the masked test metrics so the regression gate can compare quality,
    // not just speed. Costs test-set forward passes, hence opt-in.
    if (ledgered) {
      EvaluateForecaster(*model_nyc, nyc.data, nyc.test_start, nyc.test_end);
    }
    auto model_chi = MakeForecaster(name, config.baseline, config.sthsl);
    const double chi_seconds = MeanEpochSeconds(*model_chi, chi);
    if (ledgered) {
      EvaluateForecaster(*model_chi, chi.data, chi.test_start, chi.test_end);
    }
    const double wall_micros = model_timer.ElapsedMicros();
    PrintTableRow(name, {nyc_seconds, chi_seconds}, 14, 10, 3);

    const std::vector<obs::OpProfile> ops = TopOps();
    if (obs::TraceEnabled() && !ops.empty()) {
      std::printf("  top ops by attributed time:\n");
      PrintTopOps(ops);
    }

    if (!models_json.empty()) models_json += ",";
    models_json += "{\"name\":\"" + obs::JsonEscape(name) + "\"";
    models_json += ",\"nyc_epoch_seconds\":" + std::to_string(nyc_seconds);
    models_json += ",\"chi_epoch_seconds\":" + std::to_string(chi_seconds);
    models_json += ",\"wall_micros\":" + std::to_string(wall_micros);
    models_json += ",\"ops\":" + OpsJson(ops) + "}";

    std::fprintf(stderr, "[table5] %s done\n", name.c_str());
  }
  MaybeWriteBenchJson(
      "table5_efficiency",
      "{\"bench\":\"table5_efficiency\",\"models\":[" + models_json + "]}");
  std::printf("\nPaper shape to verify: STGCN cheapest; DCRNN and STDN most "
              "expensive;\nST-HSL mid-pack — its SSL losses add only small "
              "overhead.\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
