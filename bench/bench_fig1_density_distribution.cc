// Reproduces Figure 1: distribution of crime-sequence density degrees of
// regions in NYC and Chicago. The paper's claim — most regions fall in the
// sparse bins — must hold on the synthetic substrate as well.

#include <cstdio>

#include "common.h"
#include "data/stats.h"

namespace sthsl::bench {
namespace {

void Report(const char* title, const CrimeDataset& data) {
  PrintSectionTitle(title);
  const auto histogram = DensityHistogram(data, 0.25);
  const char* bins[] = {"(0.00,0.25]", "(0.25,0.50]", "(0.50,0.75]",
                        "(0.75,1.00]"};
  PrintTableHeader({"Density bin", "Regions", "Share"}, 14, 12);
  for (size_t i = 0; i < histogram.size() && i < 4; ++i) {
    const double share = static_cast<double>(histogram[i]) /
                         static_cast<double>(data.num_regions());
    std::printf("%-14s%-12lld%-12.3f", bins[i],
                static_cast<long long>(histogram[i]), share);
    // ASCII bar for the figure shape.
    const int bar = static_cast<int>(share * 40.0 + 0.5);
    for (int b = 0; b < bar; ++b) std::printf("#");
    std::printf("\n");
  }
}

void Run() {
  std::printf("Figure 1 reproduction: region crime-sequence density "
              "distribution\n");
  Report("NYC", MakeNyc().data);
  Report("Chicago", MakeChicago().data);
  std::printf("\nPaper shape: the sparse bins dominate — most regions see "
              "crime on a\nminority of days, motivating self-supervised "
              "augmentation.\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
