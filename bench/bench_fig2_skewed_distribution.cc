// Reproduces Figure 2: the skewed (power-law) distribution of crime
// occurrence across regions for a one-month slice, per category. Prints the
// sorted per-region counts (the figure's bars) in decile summary form plus
// the Gini coefficient as a scalar skew measure.

#include <cstdio>

#include "common.h"
#include "data/stats.h"

namespace sthsl::bench {
namespace {

void Report(const char* title, const CrimeDataset& data) {
  PrintSectionTitle(title);
  // The paper plots September 2015 (one month); take a 30-day slice from
  // the equivalent position of the span.
  const int64_t start = data.num_days() * 2 / 3;
  const int64_t length = 30;

  PrintTableHeader({"Category", "max", "p90", "p50", "p10", "min", "Gini"},
                   12, 9);
  for (int64_t c = 0; c < data.num_categories(); ++c) {
    const auto sorted = SortedRegionCounts(data, c, start, length);
    const auto at = [&](double q) {
      return sorted[static_cast<size_t>(q * (sorted.size() - 1))];
    };
    PrintTableRow(data.category_names()[static_cast<size_t>(c)],
                  {sorted.front(), at(0.1), at(0.5), at(0.9), sorted.back(),
                   SpatialGini(data, c)},
                  12, 9, 2);
  }

  // The figure itself: sorted counts of the first category, as an ASCII
  // bar sequence sampled every few regions.
  const auto sorted = SortedRegionCounts(data, 0, start, length);
  std::printf("\nsorted region counts, category %s:\n",
              data.category_names()[0].c_str());
  const double peak = sorted.front() > 0 ? sorted.front() : 1.0;
  const size_t step = sorted.size() / 16 + 1;
  for (size_t i = 0; i < sorted.size(); i += step) {
    std::printf("region#%3zu %7.1f ", i, sorted[i]);
    const int bar = static_cast<int>(sorted[i] / peak * 40.0 + 0.5);
    for (int b = 0; b < bar; ++b) std::printf("#");
    std::printf("\n");
  }
}

void Run() {
  std::printf("Figure 2 reproduction: skewed crime occurrence across "
              "regions\n");
  Report("NYC", MakeNyc().data);
  Report("Chicago", MakeChicago().data);
  std::printf("\nPaper shape: a long-tail / power-law decay — a few regions "
              "hold most\ncases (high Gini), the tail is near zero.\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
