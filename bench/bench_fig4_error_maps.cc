// Reproduces Figure 4: per-region prediction-error (MAPE) maps over the
// urban grid for ST-HSL against representative baselines. The paper renders
// color maps; this harness prints ASCII heat maps plus summary statistics
// (regions where each model attains the lowest error).

#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"
#include "core/forecaster.h"
#include "util/timer.h"

namespace sthsl::bench {
namespace {

// Intensity ramp for the ASCII map: low error '.' -> high error '#'.
char Shade(double mape) {
  if (mape < 0.0) return ' ';  // region never evaluated
  static const char kRamp[] = ".:-=+*%#";
  int idx = static_cast<int>(mape / 0.2);
  if (idx > 7) idx = 7;
  return kRamp[idx];
}

void RunCity(const char* title, const CityBenchmark& city) {
  PrintSectionTitle(title);
  const ComparisonConfig config = BenchComparisonConfig();
  const std::vector<std::string> models = {"STGCN", "STSHN", "ST-HSL"};

  // Overall region MAPE (averaged over categories) per model.
  std::vector<std::vector<double>> region_mape;
  for (const auto& name : models) {
    Timer timer;
    auto model = MakeForecaster(name, config.baseline, config.sthsl);
    model->Fit(city.data, city.train_end);
    CrimeMetrics metrics =
        EvaluateForecaster(*model, city.data, city.test_start, city.test_end);
    std::vector<double> overall(
        static_cast<size_t>(city.data.num_regions()), -1.0);
    for (int64_t r = 0; r < city.data.num_regions(); ++r) {
      double sum = 0.0;
      int count = 0;
      for (int64_t c = 0; c < city.data.num_categories(); ++c) {
        const double m = metrics.RegionMape(c)[static_cast<size_t>(r)];
        if (m >= 0.0) {
          sum += m;
          ++count;
        }
      }
      if (count > 0) overall[static_cast<size_t>(r)] = sum / count;
    }
    region_mape.push_back(std::move(overall));
    std::fprintf(stderr, "[fig4] %s %s done in %.1fs\n", title, name.c_str(),
                 timer.ElapsedSeconds());
  }

  // ASCII maps side by side.
  std::printf("per-region MAPE maps ('.' low error ... '#' high error):\n");
  for (size_t m = 0; m < models.size(); ++m) {
    std::printf("%-*s", static_cast<int>(city.data.cols()) + 3,
                models[m].c_str());
  }
  std::printf("\n");
  for (int64_t i = 0; i < city.data.rows(); ++i) {
    for (size_t m = 0; m < models.size(); ++m) {
      for (int64_t j = 0; j < city.data.cols(); ++j) {
        std::printf("%c",
                    Shade(region_mape[m][static_cast<size_t>(
                        i * city.data.cols() + j)]));
      }
      std::printf("   ");
    }
    std::printf("\n");
  }

  // Who wins where.
  std::vector<int> wins(models.size(), 0);
  int evaluated = 0;
  for (int64_t r = 0; r < city.data.num_regions(); ++r) {
    double best = 1e18;
    int best_model = -1;
    for (size_t m = 0; m < models.size(); ++m) {
      const double v = region_mape[m][static_cast<size_t>(r)];
      if (v >= 0.0 && v < best) {
        best = v;
        best_model = static_cast<int>(m);
      }
    }
    if (best_model >= 0) {
      ++wins[static_cast<size_t>(best_model)];
      ++evaluated;
    }
  }
  std::printf("\nlowest-error region count (out of %d evaluated):\n",
              evaluated);
  for (size_t m = 0; m < models.size(); ++m) {
    std::printf("  %-10s %d\n", models[m].c_str(), wins[m]);
  }
}

void Run() {
  std::printf("Figure 4 reproduction: prediction-error visualization over "
              "the urban grid\n");
  ConfigureRunLedger("fig4_error_maps");
  RunCity("NYC", MakeNyc());
  RunCity("Chicago", MakeChicago());
  std::printf("\nPaper shape to verify: ST-HSL's map is lighter overall and "
              "it wins the\nmost regions, including low-occurrence ones.\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
