#ifndef STHSL_BENCH_COMMON_H_
#define STHSL_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/sthsl_model.h"
#include "data/crime_dataset.h"
#include "data/generator.h"

namespace sthsl::bench {

/// Scale of a benchmark run, selected via the STHSL_BENCH_SCALE environment
/// variable ("small" default, "full" for paper-sized grids). "full" runs the
/// 256/168-region presets and is slow on a single core.
enum class Scale { kSmall, kFull };

Scale GetScale();

/// The two evaluation cities at the active scale.
struct CityBenchmark {
  CrimeDataset data;
  int64_t train_end;   // days [0, train_end) are trainable
  int64_t test_start;  // = train_end
  int64_t test_end;    // last day + 1
};

CityBenchmark MakeCity(const CrimeGenConfig& config);
CityBenchmark MakeNyc();
CityBenchmark MakeChicago();

/// Shared training scale for model comparisons; honors STHSL_BENCH_EPOCHS
/// and STHSL_BENCH_STEPS overrides.
ComparisonConfig BenchComparisonConfig();

/// Writes `json` to $STHSL_BENCH_JSON_DIR/BENCH_<name>.json so the bench
/// harness can collect machine-readable results; no-op when the environment
/// variable is unset.
void MaybeWriteBenchJson(const std::string& name, const std::string& json);

/// Points the run-ledger default path at
/// $STHSL_BENCH_JSON_DIR/LEDGER_<name>.jsonl so every training run of the
/// benchmark appends its config/per-epoch/final records there (see
/// src/util/obs/run_ledger.h); no-op when the environment variable is
/// unset. Call once at the top of a model-training benchmark's Run().
void ConfigureRunLedger(const std::string& name);

/// Formatted table printing: fixed-width columns, 4-decimal floats.
void PrintTableHeader(const std::vector<std::string>& columns,
                      int first_width = 16, int width = 9);
void PrintTableRow(const std::string& label,
                   const std::vector<double>& values, int first_width = 16,
                   int width = 9, int precision = 4);
void PrintSectionTitle(const std::string& title);

}  // namespace sthsl::bench

#endif  // STHSL_BENCH_COMMON_H_
