// Reproduces Table IV: ablation of the hypergraph dual-stage self-supervised
// learning paradigm. Each variant disables one component of ST-HSL (see
// core/ablation.h); all variants share data, split and training budget.
//
// Paper shape: the full model has the lowest MAE in (almost) every column;
// removing the contrastive objective ("w/o ConL") or the global temporal
// encoder ("w/o GlobalTem") hurts most.

#include <cstdio>

#include "common.h"
#include "core/ablation.h"
#include "core/forecaster.h"
#include "util/timer.h"

namespace sthsl::bench {
namespace {

void RunCity(const char* title, const CityBenchmark& city) {
  PrintSectionTitle(title);
  const ComparisonConfig config = BenchComparisonConfig();
  const auto& cats = city.data.category_names();

  std::vector<std::string> header = {"Variant"};
  for (const auto& cat : cats) header.push_back(cat.substr(0, 7) + ".MAE");
  PrintTableHeader(header, 18, 12);

  for (const auto& name : SslVariantNames()) {
    Timer timer;
    SthslForecaster model(AblationVariant(name, config.sthsl), name);
    model.Fit(city.data, city.train_end);
    CrimeMetrics metrics =
        EvaluateForecaster(model, city.data, city.test_start, city.test_end);
    std::vector<double> row;
    for (int64_t c = 0; c < city.data.num_categories(); ++c) {
      row.push_back(metrics.Category(c).mae);
    }
    PrintTableRow(name, row, 18, 12);
    std::fprintf(stderr, "[table4] %s %s done in %.1fs\n", title,
                 name.c_str(), timer.ElapsedSeconds());
  }
}

void Run() {
  std::printf("Table IV reproduction: ablation of the hypergraph dual-stage "
              "self-supervised learning (MAE, lower is better)\n");
  ConfigureRunLedger("table4_ssl_ablation");
  RunCity("NYC-Data", MakeNyc());
  RunCity("Chicago-Data", MakeChicago());
  std::printf("\nPaper shape to verify: every ablation raises MAE relative "
              "to the full\nST-HSL row.\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
