#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exec/exec.h"
#include "simd/simd.h"
#include "util/logging.h"
#include "util/obs/calibrate.h"
#include "util/obs/export.h"
#include "util/obs/run_ledger.h"

namespace sthsl::bench {

Scale GetScale() {
  const char* env = std::getenv("STHSL_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "full") == 0) return Scale::kFull;
  return Scale::kSmall;
}

namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  return std::atoll(env);
}

std::string GitHashOrUnknown() {
  std::FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  const size_t n = std::fread(buf, 1, sizeof buf - 1, pipe);
  pclose(pipe);
  std::string hash(buf, n);
  while (!hash.empty() && (hash.back() == '\n' || hash.back() == '\r')) {
    hash.pop_back();
  }
  return hash.empty() ? "unknown" : hash;
}

// Provenance stamp spliced into every bench JSON document so a committed
// artifact records where its numbers came from. Purely additive keys:
// existing consumers that look up their own fields are unaffected.
std::string ProvenanceJson() {
  std::string json = "\"provenance\":{\"git_hash\":\"";
  json += obs::JsonEscape(GitHashOrUnknown());
  json += "\",\"created_utc\":\"";
  json += obs::JsonEscape(internal_logging::FormatTimestampIso8601());
  json += "\",\"threads\":";
  json += std::to_string(exec::ThreadCount());
  json += ",\"cpu_model\":\"";
  json += obs::JsonEscape(obs::CpuModelName());
  json += "\",\"simd\":\"";
  json += obs::JsonEscape(simd::Kernels().name);
  json += "\",\"cpu_features\":\"";
  json += obs::JsonEscape(simd::CpuFeatureString());
  json += "\"}";
  return json;
}

}  // namespace

CityBenchmark MakeCity(const CrimeGenConfig& config) {
  CityBenchmark city;
  city.data = GenerateCrimeData(config);
  const int64_t days = city.data.num_days();
  const int64_t test_days = days / 8;  // paper: train:test = 7:1
  city.train_end = days - test_days;
  city.test_start = city.train_end;
  city.test_end = days;
  return city;
}

CityBenchmark MakeNyc() {
  return MakeCity(GetScale() == Scale::kFull ? NycPreset() : NycSmallPreset());
}

CityBenchmark MakeChicago() {
  return MakeCity(GetScale() == Scale::kFull ? ChicagoPreset()
                                             : ChicagoSmallPreset());
}

ComparisonConfig BenchComparisonConfig() {
  const int64_t epochs = EnvInt("STHSL_BENCH_EPOCHS", 10);
  const int64_t steps = EnvInt("STHSL_BENCH_STEPS", 14);
  ComparisonConfig config =
      MakeComparisonConfig(/*window=*/14, epochs, steps, /*seed=*/77);
  const char* lr_env = std::getenv("STHSL_BENCH_LR");
  if (lr_env != nullptr) {
    const float lr = static_cast<float>(std::atof(lr_env));
    config.baseline.train.lr = lr;
    config.sthsl.train.lr = lr;
  }
  return config;
}

void MaybeWriteBenchJson(const std::string& name, const std::string& json) {
  const char* dir = std::getenv("STHSL_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string(dir) + "/BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n", path.c_str());
    return;
  }
  // Stamp provenance right after the opening brace of object documents.
  std::string stamped = json;
  const size_t brace = stamped.find_first_not_of(" \t\r\n");
  if (brace != std::string::npos && stamped[brace] == '{') {
    const std::string provenance = ProvenanceJson();
    const bool empty_object =
        stamped.find_first_not_of(" \t\r\n", brace + 1) != std::string::npos &&
        stamped[stamped.find_first_not_of(" \t\r\n", brace + 1)] == '}';
    stamped.insert(brace + 1, provenance + (empty_object ? "" : ","));
  }
  std::fwrite(stamped.data(), 1, stamped.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

void ConfigureRunLedger(const std::string& name) {
  const char* dir = std::getenv("STHSL_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  obs::RunLedger::Global().SetDefaultPath(std::string(dir) + "/LEDGER_" +
                                          name + ".jsonl");
}

void PrintTableHeader(const std::vector<std::string>& columns,
                      int first_width, int width) {
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%-*s", i == 0 ? first_width : width, columns[i].c_str());
  }
  std::printf("\n");
  const int total =
      first_width + width * (static_cast<int>(columns.size()) - 1);
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void PrintTableRow(const std::string& label,
                   const std::vector<double>& values, int first_width,
                   int width, int precision) {
  std::printf("%-*s", first_width, label.c_str());
  for (double v : values) std::printf("%-*.*f", width, precision, v);
  std::printf("\n");
}

void PrintSectionTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace sthsl::bench
