// Reproduces Table III: overall crime-prediction comparison of ST-HSL with
// the baseline zoo on both cities, per category, in MAE and MAPE.
//
// All models share the same data, chronological split, window length and
// training budget. Absolute values differ from the paper (synthetic data,
// reduced scale); the shape to check is the ranking: ST-HSL should lead,
// with the largest margins on sparse categories.
//
// Environment knobs: STHSL_BENCH_SCALE=small|full, STHSL_BENCH_EPOCHS,
// STHSL_BENCH_STEPS, STHSL_BENCH_MODELS (comma list to subset).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "core/forecaster.h"
#include "util/timer.h"

namespace sthsl::bench {
namespace {

std::vector<std::string> SelectedModels() {
  const char* env = std::getenv("STHSL_BENCH_MODELS");
  if (env == nullptr) return AllModelNames();
  std::vector<std::string> out;
  std::string token;
  for (const char* p = env;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) out.push_back(token);
      token.clear();
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return out;
}

void RunCity(const char* title, const CityBenchmark& city) {
  PrintSectionTitle(title);
  const ComparisonConfig config = BenchComparisonConfig();
  const auto& cats = city.data.category_names();

  std::vector<std::string> header = {"Model"};
  for (const auto& cat : cats) {
    header.push_back(cat.substr(0, 6) + ".MAE");
    header.push_back(cat.substr(0, 6) + ".MAPE");
  }
  PrintTableHeader(header, 12, 12);

  for (const auto& name : SelectedModels()) {
    Timer timer;
    auto model = MakeForecaster(name, config.baseline, config.sthsl);
    model->Fit(city.data, city.train_end);
    CrimeMetrics metrics =
        EvaluateForecaster(*model, city.data, city.test_start, city.test_end);
    std::vector<double> row;
    for (int64_t c = 0; c < city.data.num_categories(); ++c) {
      const EvalResult r = metrics.Category(c);
      row.push_back(r.mae);
      row.push_back(r.mape);
    }
    PrintTableRow(name, row, 12, 12);
    std::fprintf(stderr, "[table3] %s %s done in %.1fs\n", title,
                 name.c_str(), timer.ElapsedSeconds());
  }
}

void Run() {
  std::printf("Table III reproduction: overall performance comparison "
              "(MAE / MAPE, lower is better)\n");
  ConfigureRunLedger("table3_main_comparison");
  RunCity("New York City", MakeNyc());
  RunCity("Chicago", MakeChicago());
  std::printf("\nPaper shape to verify: ST-HSL attains the lowest MAE and "
              "MAPE in every\ncategory; margins are widest on the sparser "
              "categories.\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
