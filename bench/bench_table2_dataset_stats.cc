// Reproduces Table II: statistics of the experimented urban crime datasets
// (total reported cases per category for NYC and Chicago). On the synthetic
// substrate these totals are generator targets; the table reports both the
// realized totals and the paper's reference numbers.

#include <cstdio>

#include "common.h"
#include "data/generator.h"

namespace sthsl::bench {
namespace {

void Report(const char* title, const CrimeGenConfig& config,
            const CrimeDataset& data,
            const std::vector<double>& paper_totals) {
  PrintSectionTitle(title);
  std::printf("regions=%lld (%lldx%lld grid)  days=%lld  categories=%lld\n",
              static_cast<long long>(data.num_regions()),
              static_cast<long long>(data.rows()),
              static_cast<long long>(data.cols()),
              static_cast<long long>(data.num_days()),
              static_cast<long long>(data.num_categories()));
  PrintTableHeader({"Category", "Cases", "Target", "Paper"}, 16, 12);
  for (int64_t c = 0; c < data.num_categories(); ++c) {
    std::printf("%-16s%-12.0f%-12.0f%-12.0f\n",
                data.category_names()[static_cast<size_t>(c)].c_str(),
                data.CategoryTotal(c),
                config.category_totals[static_cast<size_t>(c)],
                paper_totals[static_cast<size_t>(c)]);
  }
}

void Run() {
  std::printf("Table II reproduction: dataset statistics\n");
  std::printf("(synthetic generator calibrated to the paper's case counts; "
              "scale=%s)\n", GetScale() == Scale::kFull ? "full" : "small");

  const CrimeGenConfig nyc =
      GetScale() == Scale::kFull ? NycPreset() : NycSmallPreset();
  const CrimeGenConfig chi =
      GetScale() == Scale::kFull ? ChicagoPreset() : ChicagoSmallPreset();
  // Paper Table II reference totals (full-scale datasets).
  Report("NYC-Crimes", nyc, GenerateCrimeData(nyc),
         {31799, 85899, 33453, 40429});
  Report("Chicago-Crimes", chi, GenerateCrimeData(chi),
         {124630, 99389, 37972, 59886});
  std::printf("\nNote: at small scale the generator preserves per-region-day "
              "density,\nso totals scale with grid size and span.\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
