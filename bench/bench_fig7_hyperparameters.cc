// Reproduces Figure 7: hyperparameter study of ST-HSL — embedding
// dimensionality d, number of hyperedges H, and convolution kernel size —
// one sweep per knob with the other knobs at their defaults.
//
// Paper shape: d = 16, H = 128 (scaled to H = 32 at small scale, the same
// H/RC ratio) and kernel = 3 are at or near the optimum; larger values
// overfit or inject noise.

#include <cstdio>

#include "common.h"
#include "core/forecaster.h"
#include "util/timer.h"

namespace sthsl::bench {
namespace {

void Sweep(const char* knob, const std::vector<int64_t>& values,
           const CityBenchmark& city,
           void (*apply)(SthslConfig&, int64_t)) {
  const ComparisonConfig base = BenchComparisonConfig();
  PrintSectionTitle(std::string("sweep: ") + knob);
  PrintTableHeader({knob, "MAE", "MAPE"}, 10, 10);
  for (int64_t value : values) {
    Timer timer;
    SthslConfig config = base.sthsl;
    apply(config, value);
    SthslForecaster model(config);
    model.Fit(city.data, city.train_end);
    CrimeMetrics metrics =
        EvaluateForecaster(model, city.data, city.test_start, city.test_end);
    const EvalResult overall = metrics.Overall();
    PrintTableRow(std::to_string(value), {overall.mae, overall.mape}, 10, 10);
    std::fprintf(stderr, "[fig7] %s=%lld done in %.1fs\n", knob,
                 static_cast<long long>(value), timer.ElapsedSeconds());
  }
}

void Run() {
  std::printf("Figure 7 reproduction: hyperparameter study on ST-HSL\n");
  ConfigureRunLedger("fig7_hyperparameters");
  std::printf("(one city per scale; defaults: d=16, H=32 small / 128 full, "
              "kernel=3)\n");
  const CityBenchmark city = MakeNyc();

  Sweep("dim", {4, 8, 16, 32}, city,
        [](SthslConfig& c, int64_t v) { c.dim = v; });
  const bool full = GetScale() == Scale::kFull;
  Sweep("hyperedges",
        full ? std::vector<int64_t>{32, 64, 128, 256}
             : std::vector<int64_t>{8, 16, 32, 64},
        city, [](SthslConfig& c, int64_t v) { c.num_hyperedges = v; });
  Sweep("kernel", {3, 5, 7}, city,
        [](SthslConfig& c, int64_t v) { c.kernel_size = v; });

  std::printf("\nPaper shape to verify: mid-sized d and H win; kernel 3 "
              "beats larger\nkernels (bigger receptive fields admit noise).\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
