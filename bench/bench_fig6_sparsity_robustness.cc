// Reproduces Figure 6: robustness to data sparsity. Test-period MAE/MAPE is
// broken down by region crime-density group — (0.0, 0.25] and (0.25, 0.5] —
// for ST-HSL and representative baselines.
//
// Paper shape: ST-HSL keeps its lead in both sparse groups, with the margin
// largest on the sparsest group.

#include <cstdio>
#include <vector>

#include "common.h"
#include "core/forecaster.h"
#include "data/stats.h"
#include "util/timer.h"

namespace sthsl::bench {
namespace {

const char* kModels[] = {"STGCN", "GMAN", "STSHN", "DMSTGCN", "ST-HSL"};

void RunCity(const char* title, const CityBenchmark& city) {
  PrintSectionTitle(title);
  const ComparisonConfig config = BenchComparisonConfig();

  const auto sparse = RegionsInDensityRange(city.data, 0.0, 0.25);
  const auto mid = RegionsInDensityRange(city.data, 0.25, 0.5);
  std::printf("regions: %zu in (0.00,0.25], %zu in (0.25,0.50]\n",
              sparse.size(), mid.size());

  PrintTableHeader({"Model", "MAE(0,.25]", "MAPE(0,.25]", "MAE(.25,.5]",
                    "MAPE(.25,.5]"},
                   12, 13);
  for (const char* name : kModels) {
    Timer timer;
    auto model = MakeForecaster(name, config.baseline, config.sthsl);
    model->Fit(city.data, city.train_end);
    CrimeMetrics metrics =
        EvaluateForecaster(*model, city.data, city.test_start, city.test_end);
    // Aggregate the group metrics across categories.
    auto group_result = [&](const std::vector<int64_t>& regions) {
      double mae_sum = 0.0;
      double mape_sum = 0.0;
      int64_t entries = 0;
      for (int64_t c = 0; c < city.data.num_categories(); ++c) {
        EvalResult r = metrics.CategoryForRegions(c, regions);
        mae_sum += r.mae * static_cast<double>(r.evaluated_entries);
        mape_sum += r.mape * static_cast<double>(r.evaluated_entries);
        entries += r.evaluated_entries;
      }
      if (entries == 0) return std::pair<double, double>{0.0, 0.0};
      return std::pair<double, double>{mae_sum / entries, mape_sum / entries};
    };
    const auto [mae_sparse, mape_sparse] = group_result(sparse);
    const auto [mae_mid, mape_mid] = group_result(mid);
    PrintTableRow(name, {mae_sparse, mape_sparse, mae_mid, mape_mid}, 12, 13);
    std::fprintf(stderr, "[fig6] %s %s done in %.1fs\n", title, name,
                 timer.ElapsedSeconds());
  }
}

void Run() {
  std::printf("Figure 6 reproduction: robustness to region-level data "
              "sparsity\n");
  ConfigureRunLedger("fig6_sparsity_robustness");
  RunCity("NYC", MakeNyc());
  RunCity("Chicago", MakeChicago());
  std::printf("\nPaper shape to verify: ST-HSL leads in both density groups; "
              "the margin\nis widest on the sparsest group (0, 0.25].\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
