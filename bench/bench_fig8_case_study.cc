// Reproduces Figure 8: case study of the learned hyperedge-region
// dependencies. Trains ST-HSL, then
//   (i)  for sampled hyperedges, lists the top-3 most relevant regions and
//        their min-max-normalized crime activity on sampled days (the
//        paper's 4x3 matrices),
//   (ii) prints each hyperedge's dependency scores over the whole grid as
//        an ASCII map next to the ground-truth crime intensity map,
//   (iii) quantifies the claim "highly dependent regions share similar
//        crime patterns": mean pairwise correlation of top-3 region series
//        versus random region pairs.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "common.h"
#include "core/forecaster.h"
#include "core/sthsl_model.h"

namespace sthsl::bench {
namespace {

std::vector<double> RegionSeries(const CrimeDataset& data, int64_t r) {
  std::vector<double> series(static_cast<size_t>(data.num_days()), 0.0);
  for (int64_t t = 0; t < data.num_days(); ++t) {
    for (int64_t c = 0; c < data.num_categories(); ++c) {
      series[static_cast<size_t>(t)] += data.Count(r, t, c);
    }
  }
  return series;
}

double Correlation(const std::vector<double>& a,
                   const std::vector<double>& b) {
  const double n = static_cast<double>(a.size());
  double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

void Run() {
  std::printf("Figure 8 reproduction: hyperedge-region dependency case "
              "study\n");
  ConfigureRunLedger("fig8_case_study");
  const CityBenchmark city = MakeChicago();  // the paper's case-study city
  const ComparisonConfig config = BenchComparisonConfig();

  SthslForecaster model(config.sthsl);
  model.Fit(city.data, city.train_end);
  const SthslNet* net = model.net();
  Tensor hyper = net->hyperedge_weights();  // (H, R*C)
  const int64_t num_edges = hyper.Size(0);
  const int64_t regions = city.data.num_regions();
  const int64_t cats = city.data.num_categories();

  // Per-(hyperedge, region) relevance: sum of |weight| over categories.
  auto relevance = [&](int64_t e, int64_t r) {
    double total = 0.0;
    for (int64_t c = 0; c < cats; ++c) {
      total += std::fabs(hyper.At({e, r * cats + c}));
    }
    return total;
  };

  // Sample up to 8 hyperedges, evenly spread.
  std::vector<int64_t> sampled;
  for (int64_t i = 0; i < std::min<int64_t>(8, num_edges); ++i) {
    sampled.push_back(i * num_edges / std::min<int64_t>(8, num_edges));
  }

  double top_corr_sum = 0.0;
  int top_corr_count = 0;
  for (int64_t e : sampled) {
    std::vector<int64_t> order(static_cast<size_t>(regions));
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                      [&](int64_t a, int64_t b) {
                        return relevance(e, a) > relevance(e, b);
                      });
    std::printf("\nhyperedge e%lld: top-3 regions %lld, %lld, %lld\n",
                static_cast<long long>(e), static_cast<long long>(order[0]),
                static_cast<long long>(order[1]),
                static_cast<long long>(order[2]));

    // 4x3 matrix: min-max normalized crime on 4 sampled test days.
    std::printf("  day   |");
    for (int k = 0; k < 3; ++k) {
      std::printf("  r%-4lld", static_cast<long long>(order[k]));
    }
    std::printf("   (min-max normalized daily crime)\n");
    std::vector<std::vector<double>> series;
    for (int k = 0; k < 3; ++k) {
      series.push_back(RegionSeries(city.data, order[k]));
    }
    std::vector<double> lo(3, 1e18);
    std::vector<double> hi(3, -1e18);
    for (int k = 0; k < 3; ++k) {
      for (double v : series[k]) {
        lo[k] = std::min(lo[k], v);
        hi[k] = std::max(hi[k], v);
      }
    }
    for (int d = 0; d < 4; ++d) {
      const int64_t day =
          city.test_start + d * (city.test_end - city.test_start) / 4;
      std::printf("  t=%-4lld|", static_cast<long long>(day));
      for (int k = 0; k < 3; ++k) {
        const double denom = std::max(hi[k] - lo[k], 1e-9);
        std::printf("  %.2f ",
                    (series[k][static_cast<size_t>(day)] - lo[k]) / denom);
      }
      std::printf("\n");
    }

    // Similarity of the top regions' crime patterns.
    for (int a = 0; a < 3; ++a) {
      for (int b = a + 1; b < 3; ++b) {
        top_corr_sum += Correlation(series[a], series[b]);
        ++top_corr_count;
      }
    }
  }

  // Dependency map of the first sampled hyperedge vs ground-truth intensity.
  const int64_t e0 = sampled.front();
  double max_rel = 1e-9;
  double max_crime = 1e-9;
  std::vector<double> totals(static_cast<size_t>(regions), 0.0);
  for (int64_t r = 0; r < regions; ++r) {
    max_rel = std::max(max_rel, relevance(e0, r));
    const auto series = RegionSeries(city.data, r);
    totals[static_cast<size_t>(r)] =
        std::accumulate(series.begin(), series.end(), 0.0);
    max_crime = std::max(max_crime, totals[static_cast<size_t>(r)]);
  }
  std::printf("\nhyperedge e%lld dependency map        ground-truth crime "
              "map\n", static_cast<long long>(e0));
  static const char kRamp[] = " .:-=+*%#";
  for (int64_t i = 0; i < city.data.rows(); ++i) {
    for (int64_t j = 0; j < city.data.cols(); ++j) {
      const double v = relevance(e0, i * city.data.cols() + j) / max_rel;
      std::printf("%c", kRamp[static_cast<int>(v * 8.0)]);
    }
    std::printf("        ");
    for (int64_t j = 0; j < city.data.cols(); ++j) {
      const double v =
          totals[static_cast<size_t>(i * city.data.cols() + j)] / max_crime;
      std::printf("%c", kRamp[static_cast<int>(v * 8.0)]);
    }
    std::printf("\n");
  }

  // Baseline: correlation of random region pairs.
  Rng rng(123);
  double random_corr_sum = 0.0;
  const int random_pairs = 60;
  for (int i = 0; i < random_pairs; ++i) {
    const int64_t a = static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(regions)));
    const int64_t b = static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(regions)));
    random_corr_sum += Correlation(RegionSeries(city.data, a),
                                   RegionSeries(city.data, b));
  }
  std::printf("\npattern-similarity check:\n");
  std::printf("  mean correlation of top-3 regions per hyperedge : %.3f\n",
              top_corr_sum / std::max(top_corr_count, 1));
  std::printf("  mean correlation of random region pairs         : %.3f\n",
              random_corr_sum / random_pairs);
  std::printf("\nPaper shape to verify: regions tied to the same hyperedge "
              "share crime\npatterns (higher correlation than random pairs), "
              "and dependency maps\ntrack the ground-truth intensity maps.\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
