// Reproduces Figure 5: ablation of the multi-view spatial-temporal
// convolution encoder ("w/o S-Conv", "w/o T-Conv", "w/o C-Conv",
// "w/o Local") in MAE and MAPE on both cities.

#include <cstdio>

#include "common.h"
#include "core/ablation.h"
#include "core/forecaster.h"
#include "util/timer.h"

namespace sthsl::bench {
namespace {

void RunCity(const char* title, const CityBenchmark& city) {
  PrintSectionTitle(title);
  const ComparisonConfig config = BenchComparisonConfig();
  PrintTableHeader({"Variant", "MAE", "MAPE"}, 14, 10);
  for (const auto& name : LocalEncoderVariantNames()) {
    Timer timer;
    SthslForecaster model(AblationVariant(name, config.sthsl), name);
    model.Fit(city.data, city.train_end);
    CrimeMetrics metrics =
        EvaluateForecaster(model, city.data, city.test_start, city.test_end);
    const EvalResult overall = metrics.Overall();
    PrintTableRow(name, {overall.mae, overall.mape}, 14, 10);
    std::fprintf(stderr, "[fig5] %s %s done in %.1fs\n", title, name.c_str(),
                 timer.ElapsedSeconds());
  }
}

void Run() {
  std::printf("Figure 5 reproduction: multi-view local encoder ablation\n");
  ConfigureRunLedger("fig5_local_ablation");
  RunCity("NYC", MakeNyc());
  RunCity("Chicago", MakeChicago());
  std::printf("\nPaper shape to verify: the full ST-HSL row is the lowest; "
              "each removed\nview (spatial, temporal, category, or the whole "
              "local encoder) hurts.\n");
}

}  // namespace
}  // namespace sthsl::bench

int main() {
  sthsl::bench::Run();
  return 0;
}
